//! Cross-checks between the analytical timing/energy models (Elmore,
//! `E = C·V·ΔV`, constant-current slew — the quantities every figure of
//! the reproduction is computed from) and the numerical MNA transient
//! solver in `esam-circuit`.
//!
//! The paper gets these numbers from Cadence Spectre; here the transient
//! engine plays Spectre's role and the analytical models must land within
//! the known closed-form bands of the numerical solution.

use esam_circuit::{Circuit, RcLadder, Waveform};
use esam_sram::{ArrayConfig, BitcellKind, LineKind, TimingAnalysis};
use esam_tech::elmore::driven_wire_delay;
use esam_tech::units::{charge_energy, Farads, Ohms, Seconds, Volts};

fn paper_4r() -> ArrayConfig {
    ArrayConfig::paper_default(BitcellKind::MultiPort { read_ports: 4 })
}

/// The analytical precharge model says 90 % charge takes 2.2·RC; the
/// transient solver integrates the same R-C and must cross 90 % at
/// ln(10)·RC ≈ 2.30·RC. Both are "the same number" at the model's stated
/// fidelity: assert within 10 %.
#[test]
fn precharge_time_matches_transient_rc_charge() {
    let config = paper_4r();
    let timing = TimingAnalysis::new(&config);
    let rbl = config.geometry().line(LineKind::InferenceBitline);
    let c = rbl.total_capacitance();
    let rail = config.vprech();
    let share = timing.rbl_precharge_pitch_share();
    let r = timing.precharge_resistance(rail, share);
    let analytical = timing.precharge_time(c, rail, share);

    let mut ckt = Circuit::new();
    let supply = ckt.add_node("vprech");
    let bl = ckt.add_node("rbl");
    ckt.add_voltage_source(supply, Circuit::GROUND, Waveform::dc(rail.v()))
        .unwrap();
    ckt.add_resistor(supply, bl, r.value()).unwrap();
    ckt.add_capacitor(bl, Circuit::GROUND, c.value()).unwrap();
    let tau = r.value() * c.value();
    let result = ckt.transient(8.0 * tau, tau / 400.0).unwrap();
    let t90 = result
        .rising_crossing(bl, 0.9 * rail.v())
        .expect("charges to 90 %");

    let ratio = analytical.value() / t90;
    assert!(
        (0.90..1.10).contains(&ratio),
        "precharge model {analytical} vs transient {t90:.3e} s (ratio {ratio:.3})"
    );
}

/// The bitline develop model treats the cell pulldown as a constant
/// current sink. Numerically sinking the same current from the same
/// capacitance must reproduce `t = C·ΔV/I` almost exactly; modeling the
/// pulldown as the equivalent resistor instead shifts the crossing by the
/// known `−ln(1−x)/x` factor (≈ 1.15 at a 25 % swing).
#[test]
fn develop_time_matches_transient_discharge() {
    let config = paper_4r();
    let timing = TimingAnalysis::new(&config);
    let rbl = config.geometry().line(LineKind::InferenceBitline);
    let c = rbl.total_capacitance();
    let rail = config.vprech();
    let i_cell = timing.cell_read_current();
    let swing = 0.25 * rail.v();
    let analytical = c.value() * swing / i_cell.value();

    // Constant-current sink: exact agreement expected.
    let mut ckt = Circuit::new();
    let bl = ckt.add_node("rbl");
    ckt.add_capacitor(bl, Circuit::GROUND, c.value()).unwrap();
    ckt.set_initial_voltage(bl, rail.v()).unwrap();
    ckt.add_current_source(bl, Circuit::GROUND, Waveform::dc(i_cell.value()))
        .unwrap();
    ckt.add_resistor(bl, Circuit::GROUND, 1e12).unwrap(); // DC path for MNA
    let result = ckt.transient(4.0 * analytical, analytical / 500.0).unwrap();
    let t_cc = result
        .falling_crossing(bl, rail.v() - swing)
        .expect("discharges through the sense threshold");
    assert!(
        (t_cc / analytical - 1.0).abs() < 0.01,
        "constant-current crossing {t_cc:.3e} vs model {analytical:.3e}"
    );

    // Resistor-equivalent pulldown: ratio must sit at −ln(1−x)/x.
    let r_eq = rail.v() / i_cell.value();
    let mut ckt = Circuit::new();
    let bl = ckt.add_node("rbl");
    ckt.add_capacitor(bl, Circuit::GROUND, c.value()).unwrap();
    ckt.set_initial_voltage(bl, rail.v()).unwrap();
    ckt.add_switch(bl, Circuit::GROUND, r_eq, 0.0, None)
        .unwrap();
    let result = ckt.transient(6.0 * analytical, analytical / 500.0).unwrap();
    let t_rc = result
        .falling_crossing(bl, rail.v() - swing)
        .expect("discharges");
    let expected_ratio = -(1.0f64 - 0.25).ln() / 0.25;
    assert!(
        (t_rc / analytical / expected_ratio - 1.0).abs() < 0.05,
        "resistor-model crossing ratio {} vs theory {expected_ratio:.3}",
        t_rc / analytical
    );
}

/// The wordline rise model (`driven_wire_delay`) applies 50 %-crossing
/// coefficients (0.69·RC lumped, 0.38·RC distributed) rather than raw
/// Elmore sums, so it must land *on* a 32-segment distributed ladder
/// driven through the same resistance, not merely above it: the
/// analytic/numeric ratio is required to stay within ±20 %.
#[test]
fn wordline_elmore_bounds_the_distributed_response() {
    let config = paper_4r();
    let rwl = config.geometry().line(LineKind::InferenceWordline);
    let r_driver = 1.2e3; // the fitted WL driver class
    let analytical = driven_wire_delay(
        Ohms::new(r_driver),
        rwl.resistance(),
        rwl.wire_capacitance(),
        rwl.device_load(),
    );

    let mut ckt = Circuit::new();
    let drv = ckt.add_node("drv");
    let wl_in = ckt.add_node("wl_in");
    ckt.add_voltage_source(drv, Circuit::GROUND, Waveform::step(0.0, 0.0, 0.7))
        .unwrap();
    ckt.add_resistor(drv, wl_in, r_driver).unwrap();
    let ladder = RcLadder::build(
        &mut ckt,
        wl_in,
        32,
        rwl.resistance().value(),
        rwl.wire_capacitance().value(),
        "wl",
    )
    .unwrap();
    ckt.add_capacitor(ladder.output(), Circuit::GROUND, rwl.device_load().value())
        .unwrap();
    let window = 10.0 * analytical.value();
    let result = ckt.transient(window, window / 2000.0).unwrap();
    let t50 = result
        .rising_crossing(ladder.output(), 0.35)
        .expect("wordline rises");

    let ratio = analytical.value() / t50;
    assert!(
        (0.8..1.2).contains(&ratio),
        "analytic {analytical} vs distributed t50 {t50:.3e} s (ratio {ratio:.3})"
    );
}

/// Restoring a bitline swing ΔV from the rail draws `E = C·V_rail·ΔV`
/// from the supply — the identity behind every precharge-energy number in
/// Figs. 6–8. The transient source-energy integral must agree.
#[test]
fn precharge_energy_matches_the_cv_dv_identity() {
    let c = Farads::from_ff(4.0);
    let rail = Volts::from_mv(500.0);
    let swing = Volts::from_mv(125.0);
    let analytical = charge_energy(c, rail, swing);

    let mut ckt = Circuit::new();
    let supply = ckt.add_node("vprech");
    let bl = ckt.add_node("rbl");
    ckt.add_voltage_source(supply, Circuit::GROUND, Waveform::dc(rail.v()))
        .unwrap();
    ckt.add_resistor(supply, bl, 2e3).unwrap();
    ckt.add_capacitor(bl, Circuit::GROUND, c.value()).unwrap();
    ckt.set_initial_voltage(bl, rail.v() - swing.v()).unwrap();
    let tau = 2e3 * c.value();
    let result = ckt.transient(15.0 * tau, tau / 200.0).unwrap();
    let numerical = result.source_energy(0);

    assert!(
        (numerical / analytical.value() - 1.0).abs() < 0.03,
        "transient energy {numerical:.3e} J vs C·V·ΔV {analytical}"
    );
}

/// Sanity on trends the analytical model asserts across the Fig. 7 sweep:
/// longer bitlines (more ports ⇒ larger cells ⇒ longer wires) discharge
/// slower in the numerical model too.
#[test]
fn transient_discharge_slows_with_port_count() {
    let mut previous: Option<f64> = None;
    for ports in 1..=4u8 {
        let config = ArrayConfig::paper_default(BitcellKind::MultiPort { read_ports: ports });
        let timing = TimingAnalysis::new(&config);
        let rbl = config.geometry().line(LineKind::InferenceBitline);
        let rail = config.vprech();
        let i_cell = timing.cell_read_current();
        let r_eq = rail.v() / i_cell.value();

        let mut ckt = Circuit::new();
        let bl = ckt.add_node("rbl");
        ckt.add_capacitor(bl, Circuit::GROUND, rbl.total_capacitance().value())
            .unwrap();
        ckt.set_initial_voltage(bl, rail.v()).unwrap();
        ckt.add_switch(bl, Circuit::GROUND, r_eq, 0.0, None)
            .unwrap();
        let tau = r_eq * rbl.total_capacitance().value();
        let result = ckt.transient(4.0 * tau, tau / 300.0).unwrap();
        let t = result
            .falling_crossing(bl, 0.75 * rail.v())
            .expect("discharges");
        if let Some(prev) = previous {
            assert!(
                t >= prev,
                "{ports}-port bitline discharged faster ({t:.3e}) than {}-port ({prev:.3e})",
                ports - 1
            );
        }
        previous = Some(t);
    }
}

/// The analytical read breakdown should be dominated by the same terms the
/// numerical model sees: at the paper operating point the sense window is
/// longer than the wordline rise for every multiport cell.
#[test]
fn read_breakdown_terms_are_ordered_as_modeled() {
    for ports in 1..=4u8 {
        let config = ArrayConfig::paper_default(BitcellKind::MultiPort { read_ports: ports });
        let timing = TimingAnalysis::new(&config);
        let read = timing.inference_read();
        assert!(read.precharge > Seconds::ZERO);
        assert!(
            timing.inference_sense_window() > read.wordline,
            "{ports}R: sense window should dominate the wordline rise"
        );
    }
}
