//! The functional/cost split the paper's §4.4 relies on, as a property:
//! teaching with the same rule and seed produces **bit-identical weight
//! matrices** on multiport and 6T tiles — the bitcell decides only what the
//! update *costs* (cycles/latency/energy), never what it *computes*. This
//! is what lets the repo quote one learning curve for both cells while
//! comparing their training budgets.

use esam::prelude::*;
use esam_core::OnlineSession;
use proptest::prelude::*;

fn system(seed: u64, cell: BitcellKind) -> EsamSystem {
    let net = BnnNetwork::new(&[96, 40, 8], seed).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(cell, &[96, 40, 8])
        .build()
        .expect("valid configuration");
    EsamSystem::from_model(&model, &config).expect("topologies match")
}

fn all_weight_matrices(system: &EsamSystem) -> Vec<Vec<BitVec>> {
    system
        .tiles()
        .iter()
        .map(|tile| (0..tile.outputs()).map(|n| tile.weight_column(n)).collect())
        .collect()
}

/// Random labelled frames of the given width.
fn samples_strategy(width: usize, max: usize) -> impl Strategy<Value = Vec<(BitVec, u8)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<bool>(), width)
                .prop_map(|bits| BitVec::from_bools(&bits)),
            0u8..8,
        ),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn teach_is_bit_identical_across_cells(
        net_seed in 0u64..500,
        rng_seed in 0u64..500,
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 96)
                .prop_map(|bits| BitVec::from_bools(&bits)),
            1..6,
        ),
        neuron in 0usize..8,
    ) {
        let mut multi = system(net_seed, BitcellKind::multiport(4).unwrap());
        let mut single = system(net_seed, BitcellKind::Std6T);
        let mut multi_engine = OnlineLearningEngine::new(StdpRule::paper_default(), rng_seed);
        let mut single_engine = OnlineLearningEngine::new(StdpRule::paper_default(), rng_seed);
        let mut multi_cost = LearningCost::default();
        let mut single_cost = LearningCost::default();
        for (i, frame) in frames.iter().enumerate() {
            let signal = if i % 2 == 0 {
                TeacherSignal::ShouldFire
            } else {
                TeacherSignal::ShouldNotFire
            };
            // Teach the output layer through each cell's own access path.
            let pre = multi.infer_traced(frame).expect("inference").layer_inputs[1].clone();
            multi_cost += multi_engine
                .teach_system(&mut multi, 1, &pre, neuron, signal)
                .expect("multiport teach");
            single_cost += single_engine
                .teach_system(&mut single, 1, &pre, neuron, signal)
                .expect("6T teach");
        }
        // Same functional result, bit for bit, on every layer.
        prop_assert_eq!(all_weight_matrices(&multi), all_weight_matrices(&single));
        prop_assert_eq!(multi_cost.bits_flipped, single_cost.bits_flipped);
        // Only the access cost differs — and strictly, whenever anything
        // was accessed at all (updates always read, even flipping nothing).
        prop_assert!(multi_cost.cycles < single_cost.cycles);
        prop_assert!(multi_cost.latency < single_cost.latency);
        prop_assert!(multi_cost.energy < single_cost.energy);
    }

    #[test]
    fn learning_sessions_are_bit_identical_across_cells(
        net_seed in 0u64..500,
        rng_seed in 0u64..500,
        samples in samples_strategy(96, 10),
    ) {
        let mut multi = system(net_seed, BitcellKind::multiport(2).unwrap());
        let mut single = system(net_seed, BitcellKind::Std6T);
        let rule = StdpRule::new(0.5, 0.2);

        let mut multi_session = OnlineSession::new(&mut multi, rule, rng_seed);
        for (frame, label) in &samples {
            multi_session.learn_sample(frame, *label as usize).expect("multiport sample");
        }
        let multi_tally = *multi_session.tally();
        let multi_curve = multi_session.curve().clone();

        let mut single_session = OnlineSession::new(&mut single, rule, rng_seed);
        for (frame, label) in &samples {
            single_session.learn_sample(frame, *label as usize).expect("6T sample");
        }
        let single_tally = *single_session.tally();
        let single_curve = single_session.curve().clone();

        // Identical functional trajectory: same weights, same predictions,
        // same flip counts, same curve.
        prop_assert_eq!(all_weight_matrices(&multi), all_weight_matrices(&single));
        prop_assert_eq!(multi_tally.samples, single_tally.samples);
        prop_assert_eq!(multi_tally.correct, single_tally.correct);
        prop_assert_eq!(multi_tally.updates, single_tally.updates);
        prop_assert_eq!(multi_tally.cost.bits_flipped, single_tally.cost.bits_flipped);
        prop_assert_eq!(&multi_curve, &single_curve);
        // Different cost whenever any column was actually updated.
        if multi_tally.updates > 0 {
            prop_assert!(multi_tally.cost.cycles < single_tally.cost.cycles);
            prop_assert!(multi_tally.cost.energy < single_tally.cost.energy);
        } else {
            prop_assert_eq!(multi_tally.cost.cycles, 0);
            prop_assert_eq!(single_tally.cost.cycles, 0);
        }
    }
}
