//! Cross-crate physical invariants: monotonicities and paper anchors that
//! must survive any recalibration of the technology constants.

use esam::prelude::*;
use esam::sram::{EnergyAnalysis, TimingAnalysis};
use esam::tech::calibration::paper;

#[test]
fn clock_periods_are_consistent_everywhere() {
    // The system clock must equal the slower pipeline stage, and learning
    // latencies must be exact multiples of it.
    for cell in BitcellKind::ALL {
        let config = SystemConfig::builder(cell, &[128, 128, 10])
            .build()
            .unwrap();
        let pipeline = PipelineTiming::analyze(&config).unwrap();
        let clock = pipeline.clock_period();
        assert_eq!(
            clock,
            pipeline.arbiter_stage.max(pipeline.sram_neuron_stage),
            "{cell}"
        );
        let net = BnnNetwork::new(&[128, 128, 10], 1).unwrap();
        let model = SnnModel::from_bnn(&net).unwrap();
        let mut system = EsamSystem::from_model(&model, &config).unwrap();
        let mut engine = OnlineLearningEngine::new(StdpRule::paper_default(), 2);
        let cost = engine
            .teach_system(
                &mut system,
                0,
                &BitVec::from_indices(128, &[1]),
                0,
                TeacherSignal::ShouldFire,
            )
            .unwrap();
        let cycles_from_latency = cost.latency / clock;
        assert!(
            (cycles_from_latency - cost.cycles as f64).abs() < 1e-9,
            "{cell}: latency must be cycles x clock"
        );
    }
}

#[test]
fn every_operation_has_positive_cost() {
    for cell in BitcellKind::ALL {
        let config = ArrayConfig::paper_default(cell);
        let timing = TimingAnalysis::new(&config);
        let energy = EnergyAnalysis::new(&config);
        assert!(timing.inference_read().total().ps() > 0.0);
        assert!(timing.rw_read().total().ps() > 0.0);
        assert!(timing.rw_write().unwrap().total().ps() > 0.0);
        assert!(energy.inference_read(0).fj() > 0.0);
        assert!(energy.rw_read_cycle().fj() > 0.0);
        assert!(energy.rw_write_cycle().unwrap().fj() > 0.0);
        assert!(energy.leakage_power().uw() > 0.0);
    }
}

#[test]
fn system_energy_equals_sum_of_tile_energies() {
    let net = BnnNetwork::new(&[256, 128, 10], 5).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[256, 128, 10])
        .build()
        .unwrap();
    let mut system = EsamSystem::from_model(&model, &config).unwrap();
    let frame = BitVec::from_indices(256, &(0..256).step_by(5).collect::<Vec<_>>());
    system.infer(&frame).unwrap();
    let total = system.accumulated_energy().unwrap();
    let by_tiles: f64 = system
        .tiles()
        .iter()
        .map(|t| t.dynamic_energy().unwrap().pj())
        .sum();
    assert!((total.pj() - by_tiles).abs() < 1e-9);
}

#[test]
fn more_input_spikes_cost_more_energy_and_cycles() {
    let net = BnnNetwork::new(&[128, 64, 10], 6).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(BitcellKind::multiport(2).unwrap(), &[128, 64, 10])
        .build()
        .unwrap();
    let mut prev_energy = Joules::ZERO;
    for spikes in [4usize, 32, 96] {
        let mut system = EsamSystem::from_model(&model, &config).unwrap();
        let frame = BitVec::from_indices(128, &(0..spikes).map(|i| i % 128).collect::<Vec<_>>());
        system.infer(&frame).unwrap();
        let energy = system.accumulated_energy().unwrap();
        assert!(
            energy > prev_energy,
            "{spikes} spikes must cost more than fewer spikes"
        );
        prev_energy = energy;
    }
}

#[test]
fn learning_anchor_latencies_hold() {
    // §4.4.1: 2x128 cycles at the 6T clock ≈ 257.8 ns; 2x4 cycles per block
    // at the 4R clock ≈ 9.9 ns.
    let c6 = SystemConfig::builder(BitcellKind::Std6T, &[128, 128, 10])
        .build()
        .unwrap();
    let clock6 = PipelineTiming::analyze(&c6).unwrap().clock_period();
    let rowwise = clock6 * 256.0;
    assert!(
        (rowwise.ns() - paper::LEARN_ROWWISE_NS).abs() / paper::LEARN_ROWWISE_NS < 0.05,
        "row-wise latency {} vs paper {} ns",
        rowwise,
        paper::LEARN_ROWWISE_NS
    );
    let c4 = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[128, 128, 10])
        .build()
        .unwrap();
    let clock4 = PipelineTiming::analyze(&c4).unwrap().clock_period();
    let transposed = clock4 * 8.0;
    let anchor = paper::LEARN_ROWWISE_NS / paper::LEARN_TIME_GAIN;
    assert!(
        (transposed.ns() - anchor).abs() / anchor < 0.15,
        "transposed latency {} vs paper ≈{:.1} ns",
        transposed,
        anchor
    );
}

#[test]
fn leakage_scales_with_system_size() {
    let cell = BitcellKind::multiport(4).unwrap();
    let small_net = BnnNetwork::new(&[128, 64, 10], 1).unwrap();
    let small = EsamSystem::from_model(
        &SnnModel::from_bnn(&small_net).unwrap(),
        &SystemConfig::builder(cell, &[128, 64, 10]).build().unwrap(),
    )
    .unwrap();
    let big_net = BnnNetwork::new(&[768, 256, 10], 1).unwrap();
    let big = EsamSystem::from_model(
        &SnnModel::from_bnn(&big_net).unwrap(),
        &SystemConfig::builder(cell, &[768, 256, 10])
            .build()
            .unwrap(),
    )
    .unwrap();
    assert!(big.leakage_power().value() > 5.0 * small.leakage_power().value());
    assert!(big.area().value() > 5.0 * small.area().value());
}

#[test]
fn paper_system_leakage_is_in_the_2mw_class() {
    // Table 3 arithmetic: 29 mW total − 607 pJ × 44 MInf/s ≈ 2.3 mW leakage.
    let net = BnnNetwork::new(&paper::NETWORK_TOPOLOGY, 1).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::paper_default(BitcellKind::multiport(4).unwrap());
    let system = EsamSystem::from_model(&model, &config).unwrap();
    let leakage = system.leakage_power().mw();
    assert!(
        leakage > 1.2 && leakage < 3.5,
        "leakage {leakage} mW out of the paper's ~2.3 mW class"
    );
}
