//! The batch engine's merge law, end to end: sharding a batch over any
//! number of worker pipelines and merging their counters must reproduce the
//! sequential `measure_batch` *bit-for-bit* — same `SystemMetrics` struct,
//! field by field, no tolerance — because workers only accumulate `u64`
//! counters (associative, commutative sums) and the float finalization runs
//! once over the merged integers (§4.1's spike-by-spike methodology makes
//! every figure of merit a pure function of those counters).

use esam::prelude::*;
use esam_core::{BatchConfig, BatchEngine};
use proptest::prelude::*;

/// Random spike frames of the given width and approximate density.
fn batch_strategy(width: usize, max_frames: usize) -> impl Strategy<Value = Vec<BitVec>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), width).prop_map(|bits| BitVec::from_bools(&bits)),
        1..max_frames,
    )
}

fn system(seed: u64, cell: BitcellKind) -> EsamSystem {
    let net = BnnNetwork::new(&[96, 40, 8], seed).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(cell, &[96, 40, 8])
        .build()
        .expect("valid configuration");
    EsamSystem::from_model(&model, &config).expect("topologies match")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_measurement_is_bit_identical_for_1_2_4_7_threads(
        seed in 0u64..500,
        batch in batch_strategy(96, 24),
    ) {
        let mut reference = system(seed, BitcellKind::multiport(4).unwrap());
        let sequential = reference.measure_batch(&batch).expect("sequential measure");
        for threads in [1usize, 2, 4, 7] {
            let mut parallel = system(seed, BitcellKind::multiport(4).unwrap());
            let metrics = parallel
                .measure_batch_parallel(&batch, &BatchConfig::with_threads(threads))
                .expect("parallel measure");
            prop_assert_eq!(metrics, sequential, "{} threads diverged", threads);
        }
    }

    #[test]
    fn merge_law_holds_for_every_cell_kind(
        seed in 0u64..500,
        batch in batch_strategy(96, 12),
    ) {
        for cell in BitcellKind::ALL {
            let mut reference = system(seed, cell);
            let sequential = reference.measure_batch(&batch).expect("sequential measure");
            let mut engine = BatchEngine::new(&system(seed, cell), &BatchConfig::with_threads(4));
            prop_assert_eq!(engine.measure(&batch).expect("engine measure"), sequential, "{}", cell);
        }
    }

    #[test]
    fn chunk_size_never_affects_results(
        seed in 0u64..500,
        batch in batch_strategy(96, 20),
        chunk in 1usize..32,
    ) {
        let mut reference = system(seed, BitcellKind::multiport(2).unwrap());
        let sequential = reference.measure_batch(&batch).expect("sequential measure");
        let config = BatchConfig::with_threads(3).chunk_size(chunk);
        let mut engine = BatchEngine::new(&system(seed, BitcellKind::multiport(2).unwrap()), &config);
        prop_assert_eq!(engine.measure(&batch).expect("engine measure"), sequential);
    }

    #[test]
    fn parallel_infer_batch_matches_sequential_order(
        seed in 0u64..500,
        batch in batch_strategy(96, 16),
    ) {
        let mut reference = system(seed, BitcellKind::multiport(4).unwrap());
        let expected: Vec<InferenceResult> = batch
            .iter()
            .map(|f| reference.infer(f).expect("sequential inference"))
            .collect();
        let mut engine = BatchEngine::new(
            &system(seed, BitcellKind::multiport(4).unwrap()),
            &BatchConfig::with_threads(4).chunk_size(2),
        );
        let got = engine.infer_batch(&batch).expect("parallel inference");
        prop_assert_eq!(got, expected);
    }
}
