//! Determinism of the data-parallel learning epoch: for a fixed seed and
//! shard count, `BatchEngine::learn_epoch` must produce the **same final
//! weights and the same learning curve at 1, 2, 4 and 7 threads** — shard
//! partitions and per-shard ChaCha streams (`seed ⊕ shard`) are fixed by
//! the epoch config, threads only execute them. The sequential merge
//! policy must additionally reproduce a plain streaming session bit for
//! bit.

use esam::prelude::*;
use esam_core::{EpochConfig, OnlineSession, WeightMergePolicy};
use proptest::prelude::*;

fn system(seed: u64) -> EsamSystem {
    let net = BnnNetwork::new(&[96, 40, 8], seed).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[96, 40, 8])
        .build()
        .expect("valid configuration");
    EsamSystem::from_model(&model, &config).expect("topologies match")
}

fn output_weights(system: &EsamSystem) -> Vec<BitVec> {
    let tile = system.tiles().last().expect("output tile");
    (0..tile.outputs()).map(|n| tile.weight_column(n)).collect()
}

fn samples_strategy(max: usize) -> impl Strategy<Value = Vec<(BitVec, u8)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<bool>(), 96).prop_map(|bits| BitVec::from_bools(&bits)),
            0u8..8,
        ),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn majority_epoch_is_deterministic_for_1_2_4_7_threads(
        net_seed in 0u64..500,
        epoch_seed in 0u64..500,
        shards in 1usize..6,
        samples in samples_strategy(24),
    ) {
        let epoch = EpochConfig::new(StdpRule::new(0.5, 0.2), epoch_seed)
            .shards(shards)
            .curve_interval(3);
        let mut reference: Option<(Vec<BitVec>, esam_core::EpochResult)> = None;
        for threads in [1usize, 2, 4, 7] {
            let mut target = system(net_seed);
            let mut engine = BatchEngine::new(&target, &BatchConfig::with_threads(threads));
            let result = engine
                .learn_epoch(&mut target, &samples, &epoch)
                .expect("epoch runs");
            let weights = output_weights(&target);
            match &reference {
                None => reference = Some((weights, result)),
                Some((expected_weights, expected_result)) => {
                    prop_assert_eq!(&weights, expected_weights,
                        "{} threads changed the final weights", threads);
                    prop_assert_eq!(&result, expected_result,
                        "{} threads changed the tally/curve", threads);
                }
            }
        }
    }

    #[test]
    fn sequential_policy_reproduces_a_streaming_session(
        net_seed in 0u64..500,
        epoch_seed in 0u64..500,
        samples in samples_strategy(16),
    ) {
        let epoch = EpochConfig::new(StdpRule::new(0.4, 0.1), epoch_seed)
            .merge_policy(WeightMergePolicy::Sequential)
            .curve_interval(4);

        let mut reference = system(net_seed);
        let mut session = OnlineSession::with_curve_interval(
            &mut reference,
            epoch.rule(),
            epoch.seed(),
            epoch.curve_interval_samples(),
        );
        for (frame, label) in &samples {
            session.learn_sample(frame, *label as usize).expect("session sample");
        }
        let expected_tally = *session.tally();
        let expected_curve = session.curve().clone();

        for threads in [1usize, 4] {
            let mut target = system(net_seed);
            let mut engine = BatchEngine::new(&target, &BatchConfig::with_threads(threads));
            let result = engine
                .learn_epoch(&mut target, &samples, &epoch)
                .expect("epoch runs");
            prop_assert_eq!(result.tally, expected_tally);
            prop_assert_eq!(&result.curve, &expected_curve);
            prop_assert_eq!(output_weights(&target), output_weights(&reference));
        }
    }
}
