//! Cross-crate equivalence: the spike-by-spike hardware simulation must be
//! bit-exact with the converted SNN golden model, which in turn must be
//! bit-exact with the trained BNN — for every cell kind, since port
//! parallelism only reorders commutative accumulations.

use esam::prelude::*;
use proptest::prelude::*;

fn frame_strategy(width: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), width).prop_map(|bits| BitVec::from_bools(&bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hardware_equals_golden_equals_bnn(
        seed in 0u64..1000,
        frame in frame_strategy(96),
    ) {
        let net = BnnNetwork::new(&[96, 40, 8], seed).expect("valid topology");
        let model = SnnModel::from_bnn(&net).expect("conversion");
        let golden = model.forward(&frame).expect("golden forward");

        // BNN equivalence.
        let x: Vec<f32> = frame.to_bools().iter().map(|&b| f32::from(b)).collect();
        let bnn = net.forward_trace(&x).expect("bnn forward");
        prop_assert_eq!(golden.prediction(), bnn.prediction());

        // Hardware equivalence for single- and multi-port cells.
        for cell in [BitcellKind::Std6T, BitcellKind::multiport(4).unwrap()] {
            let config = SystemConfig::builder(cell, &[96, 40, 8])
                .build()
                .expect("valid config");
            let mut system = EsamSystem::from_model(&model, &config).expect("system");
            let hw = system.infer(&frame).expect("inference");
            prop_assert_eq!(&hw.membranes, &golden.membranes, "membranes diverged on {}", cell);
            prop_assert_eq!(hw.prediction, golden.prediction(), "prediction diverged on {}", cell);
        }
    }

    #[test]
    fn membranes_identical_across_all_cell_kinds(
        seed in 0u64..1000,
        frame in frame_strategy(128),
    ) {
        // Port parallelism changes cycle counts, never results.
        let net = BnnNetwork::new(&[128, 32, 10], seed).expect("valid topology");
        let model = SnnModel::from_bnn(&net).expect("conversion");
        let mut reference: Option<Vec<i32>> = None;
        for cell in BitcellKind::ALL {
            let config = SystemConfig::builder(cell, &[128, 32, 10])
                .build()
                .expect("valid config");
            let mut system = EsamSystem::from_model(&model, &config).expect("system");
            let membranes = system.infer(&frame).expect("inference").membranes;
            match &reference {
                None => reference = Some(membranes),
                Some(r) => prop_assert_eq!(r, &membranes, "cell {} diverged", cell),
            }
        }
    }

    #[test]
    fn repeated_inference_is_stateless(
        seed in 0u64..1000,
        frame in frame_strategy(64),
    ) {
        // EveryTimestep reset: running the same frame twice gives the same
        // answer (no membrane leakage between inferences).
        let net = BnnNetwork::new(&[64, 24, 6], seed).expect("valid topology");
        let model = SnnModel::from_bnn(&net).expect("conversion");
        let config = SystemConfig::builder(BitcellKind::multiport(2).unwrap(), &[64, 24, 6])
            .build()
            .expect("valid config");
        let mut system = EsamSystem::from_model(&model, &config).expect("system");
        let first = system.infer(&frame).expect("first");
        let second = system.infer(&frame).expect("second");
        prop_assert_eq!(first.membranes, second.membranes);
        prop_assert_eq!(first.per_tile_cycles, second.per_tile_cycles);
    }
}

#[test]
fn empty_frame_still_produces_a_prediction() {
    // All-zero input: no spikes served, output = biases only.
    let net = BnnNetwork::new(&[64, 16, 4], 3).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[64, 16, 4])
        .build()
        .unwrap();
    let mut system = EsamSystem::from_model(&model, &config).unwrap();
    let result = system.infer(&BitVec::new(64)).unwrap();
    let golden = model.forward(&BitVec::new(64)).unwrap();
    assert_eq!(result.prediction, golden.prediction());
}

#[test]
fn full_frame_matches_golden() {
    let net = BnnNetwork::new(&[64, 16, 4], 4).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(BitcellKind::multiport(3).unwrap(), &[64, 16, 4])
        .build()
        .unwrap();
    let mut system = EsamSystem::from_model(&model, &config).unwrap();
    let mut frame = BitVec::new(64);
    frame.set_all();
    let result = system.infer(&frame).unwrap();
    let golden = model.forward(&frame).unwrap();
    assert_eq!(result.membranes, golden.membranes);
}
