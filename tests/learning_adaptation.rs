//! Online-learning integration: the STDP engine must functionally adapt a
//! deployed system and its access costs must follow §4.4.1.

use esam::prelude::*;

/// Builds a 128→128→10 system whose first-layer weights we adapt.
fn system_with(cell: BitcellKind) -> EsamSystem {
    let net = BnnNetwork::new(&[128, 128, 10], 21).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(cell, &[128, 128, 10])
        .build()
        .unwrap();
    EsamSystem::from_model(&model, &config).unwrap()
}

#[test]
fn teaching_should_fire_eventually_fires_the_neuron() {
    let mut system = system_with(BitcellKind::multiport(4).unwrap());
    let mut engine = OnlineLearningEngine::new(StdpRule::new(0.6, 0.3), 5);
    let pattern = BitVec::from_indices(128, &(0..128).step_by(4).collect::<Vec<_>>());
    let neuron = 7usize;

    // Drive the first tile directly: teach until neuron 7 fires on the
    // pattern (threshold is fixed; the weights move toward the pattern).
    let mut fired_at = None;
    for round in 0..40 {
        let traced = system.infer_traced(&pattern).unwrap();
        // layer_inputs[1] is tile 1's input = tile 0's firing pattern.
        let hidden = &traced.layer_inputs[1];
        if hidden.get(neuron) {
            fired_at = Some(round);
            break;
        }
        engine
            .teach_system(&mut system, 0, &pattern, neuron, TeacherSignal::ShouldFire)
            .unwrap();
    }
    assert!(
        fired_at.is_some(),
        "repeated potentiation must eventually make neuron {neuron} fire"
    );
}

#[test]
fn teaching_should_not_fire_eventually_silences_the_neuron() {
    let mut system = system_with(BitcellKind::multiport(4).unwrap());
    let mut engine = OnlineLearningEngine::new(StdpRule::new(0.6, 0.3), 6);
    let pattern = BitVec::from_indices(128, &(0..128).step_by(2).collect::<Vec<_>>());

    // Find a neuron that currently fires on the pattern.
    let traced = system.infer_traced(&pattern).unwrap();
    let Some(neuron) = traced.layer_inputs[1].first_set() else {
        // Nothing fires: vacuously silenced.
        return;
    };
    let mut silenced = false;
    for _ in 0..40 {
        engine
            .teach_system(
                &mut system,
                0,
                &pattern,
                neuron,
                TeacherSignal::ShouldNotFire,
            )
            .unwrap();
        let traced = system.infer_traced(&pattern).unwrap();
        if !traced.layer_inputs[1].get(neuron) {
            silenced = true;
            break;
        }
    }
    assert!(silenced, "repeated depression must silence neuron {neuron}");
}

#[test]
fn transposed_update_cost_scales_with_row_groups() {
    // A 128-input tile needs 1 block update (8 cycles); the 768-input tile
    // needs 6 (48 cycles) — one per row group.
    let net = BnnNetwork::new(&[768, 128, 10], 2).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[768, 128, 10])
        .build()
        .unwrap();
    let mut system = EsamSystem::from_model(&model, &config).unwrap();
    let mut engine = OnlineLearningEngine::new(StdpRule::paper_default(), 8);
    let pre = BitVec::from_indices(768, &[0, 100, 700]);
    let cost = engine
        .teach_system(&mut system, 0, &pre, 0, TeacherSignal::ShouldFire)
        .unwrap();
    assert_eq!(
        cost.cycles,
        6 * 8,
        "6 row groups x (4 read + 4 write) cycles"
    );
}

#[test]
fn transposed_beats_rowwise_by_the_paper_margins() {
    let mut multi = system_with(BitcellKind::multiport(4).unwrap());
    let mut single = system_with(BitcellKind::Std6T);
    let mut engine = OnlineLearningEngine::new(StdpRule::paper_default(), 9);
    let pre = BitVec::from_indices(128, &[1, 2, 3]);

    let transposed = engine
        .teach_system(&mut multi, 0, &pre, 0, TeacherSignal::ShouldFire)
        .unwrap();
    let rowwise = engine
        .teach_system(&mut single, 0, &pre, 0, TeacherSignal::ShouldFire)
        .unwrap();

    assert_eq!(transposed.cycles, 8);
    assert_eq!(rowwise.cycles, 256);
    let time_gain = rowwise.latency / transposed.latency;
    assert!(
        time_gain > 19.0 && time_gain < 33.0,
        "time gain {time_gain:.1} should be in the paper's 26x class"
    );
    let energy_gain = rowwise.energy / transposed.energy;
    assert!(
        energy_gain > 10.0 && energy_gain < 40.0,
        "energy gain {energy_gain:.1} should be in the paper's 19.5x class"
    );
}

#[test]
fn online_learning_beats_the_untrained_baseline_on_digits() {
    // The acceptance property of the streaming-session workload: an
    // *untrained* 768:10 readout taught online (infer → teacher derivation
    // → transposed-port STDP) must end up measurably better than it
    // started on the synthetic digit split.
    let data = Dataset::generate(&DigitsConfig {
        train_count: 150,
        test_count: 100,
        ..DigitsConfig::default()
    })
    .unwrap();
    let net = BnnNetwork::new(&[768, 10], 7).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[768, 10])
        .build()
        .unwrap();
    let mut system = EsamSystem::from_model(&model, &config).unwrap();

    let accuracy = |system: &mut EsamSystem| {
        let correct = (0..data.test.len())
            .filter(|&i| {
                system.infer(&data.test.spikes(i)).unwrap().prediction
                    == data.test.label(i) as usize
            })
            .count();
        correct as f64 / data.test.len() as f64
    };
    let before = accuracy(&mut system);

    let mut session = OnlineSession::new(&mut system, StdpRule::new(0.4, 0.02), 7);
    session.run_stream(data.train.stream(7)).unwrap();
    let metrics = session.finalize_metrics().unwrap();
    let learning = metrics.learning.expect("the session learned");
    assert!(learning.updates > 0);
    assert!(learning.cost.cycles > 0);
    assert_eq!(learning.samples, 150);

    let after = accuracy(&mut system);
    assert!(
        after > before,
        "online learning must beat the untrained baseline ({before:.3} -> {after:.3})"
    );
}

#[test]
fn learning_preserves_unrelated_columns() {
    let mut system = system_with(BitcellKind::multiport(2).unwrap());
    let before: Vec<BitVec> = (0..10)
        .map(|c| system.tiles()[0].arrays()[0].bits().column(c))
        .collect();
    let mut engine = OnlineLearningEngine::new(StdpRule::new(1.0, 1.0), 10);
    let pre = BitVec::from_indices(128, &[5, 50]);
    engine
        .teach_system(&mut system, 0, &pre, 3, TeacherSignal::ShouldFire)
        .unwrap();
    for (c, old) in before.iter().enumerate() {
        let now = system.tiles()[0].arrays()[0].bits().column(c);
        if c == 3 {
            assert_ne!(&now, old, "taught column must change");
        } else {
            assert_eq!(&now, old, "column {c} must be untouched");
        }
    }
}
