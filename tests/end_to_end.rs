//! End-to-end integration: dataset → BNN training → conversion → hardware
//! simulation → metrics, on the paper's full topology.

use std::sync::OnceLock;

use esam::prelude::*;
use esam_nn::{evaluate_bnn, evaluate_snn};

/// One shared (quick) end-to-end artifact for this test binary — training is
/// the expensive part, so both tests reuse it.
fn trained_pipeline() -> &'static (Dataset, BnnNetwork, SnnModel) {
    static PIPELINE: OnceLock<(Dataset, BnnNetwork, SnnModel)> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let data = Dataset::generate(&DigitsConfig {
            train_count: 1100,
            test_count: 250,
            ..DigitsConfig::default()
        })
        .expect("dataset generates");
        let mut net = BnnNetwork::new(&[768, 256, 256, 256, 10], 42).expect("network builds");
        Trainer::new(TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        })
        .train(&mut net, &data.train)
        .expect("training runs");
        let model = SnnModel::from_bnn(&net).expect("conversion");
        (data, net, model)
    })
}

#[test]
fn full_pipeline_learns_converts_and_simulates() {
    let (data, net, model) = trained_pipeline();

    // Training reached usable accuracy on the easy synthetic set.
    let bnn_accuracy = evaluate_bnn(net, &data.test).unwrap().accuracy();
    assert!(
        bnn_accuracy > 0.70,
        "BNN accuracy {bnn_accuracy:.3} too low"
    );

    // Conversion is lossless.
    let snn_accuracy = evaluate_snn(model, &data.test).unwrap().accuracy();
    assert!(
        (bnn_accuracy - snn_accuracy).abs() < 1e-12,
        "conversion must be bit-exact: {bnn_accuracy} vs {snn_accuracy}"
    );

    // Thresholds fit the paper-default 12-bit registers.
    model.check_threshold_registers(12).expect("thresholds fit");

    // The hardware simulation agrees sample-by-sample with the golden model.
    let config = SystemConfig::paper_default(BitcellKind::multiport(4).unwrap());
    let mut system = EsamSystem::from_model(model, &config).unwrap();
    for i in 0..40 {
        let frame = data.test.spikes(i);
        let hw = system.infer(&frame).unwrap();
        let golden = model.forward(&frame).unwrap();
        assert_eq!(hw.prediction, golden.prediction(), "sample {i}");
    }

    // System metrics land in the paper's class (Table 3).
    let frames: Vec<BitVec> = (0..60).map(|i| data.test.spikes(i)).collect();
    let metrics = system.measure_batch(&frames).unwrap();
    assert!(
        metrics.throughput_minf_s() > 20.0 && metrics.throughput_minf_s() < 100.0,
        "throughput {} MInf/s out of the paper's class",
        metrics.throughput_minf_s()
    );
    assert!(
        metrics.energy_per_inf.pj() > 200.0 && metrics.energy_per_inf.pj() < 1500.0,
        "energy {} out of class",
        metrics.energy_per_inf
    );
    assert!(
        metrics.total_power().mw() > 5.0 && metrics.total_power().mw() < 80.0,
        "power {} out of class",
        metrics.total_power()
    );
    assert!(
        (metrics.clock.mhz() - 766.0).abs() < 100.0,
        "clock {} off the 4R design point",
        metrics.clock
    );
}

#[test]
fn headline_gains_reproduce_on_the_trained_network() {
    let (data, _net, model) = trained_pipeline();
    let frames: Vec<BitVec> = (0..50).map(|i| data.test.spikes(i)).collect();

    let mut single =
        EsamSystem::from_model(model, &SystemConfig::paper_default(BitcellKind::Std6T)).unwrap();
    let mut multi = EsamSystem::from_model(
        model,
        &SystemConfig::paper_default(BitcellKind::multiport(4).unwrap()),
    )
    .unwrap();
    let m1 = single.measure_batch(&frames).unwrap();
    let m4 = multi.measure_batch(&frames).unwrap();

    let speedup = m4.throughput_inf_s / m1.throughput_inf_s;
    let energy_gain = m1.energy_per_inf / m4.energy_per_inf;
    assert!(
        speedup > 2.4 && speedup < 3.8,
        "speedup {speedup:.2} should be in the paper's 3.1x class"
    );
    assert!(
        energy_gain > 1.8 && energy_gain < 2.7,
        "energy gain {energy_gain:.2} should be in the paper's 2.2x class"
    );
    // Area: the multiport system costs ~2.4x the single-port one (Fig. 8).
    let area_ratio = m4.area / m1.area;
    assert!(
        (area_ratio - 2.4).abs() < 0.25,
        "area ratio {area_ratio:.2} off the paper's 2.4x"
    );
}
