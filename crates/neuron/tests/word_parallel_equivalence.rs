//! Bit-identity of the word-parallel [`NeuronArray`] against the retained
//! scalar reference model ([`ScalarNeuronArray`]): membranes, fired frames
//! and pending spike requests must match *exactly* after any interleaving
//! of integrate / end-timestep / grant operations, for both reset policies
//! and for arrays that span word boundaries (the carry-save decode and the
//! per-lane compare have no tolerance to hide behind).

use esam_bits::BitVec;
use esam_neuron::{NeuronArray, NeuronConfig, ResetPolicy, ScalarNeuronArray};
use proptest::prelude::*;
use proptest::TestCaseError;

/// One cycle of port stimulus: rows of fixed stimulus width (truncated to
/// the sampled array width by the caller) plus a validity flag per row.
type Cycle = Vec<(Vec<bool>, bool)>;

/// Up to 9 port rows per cycle — deliberately beyond the 7-row carry-save
/// flush boundary of the optimized decode.
fn cycle_strategy(width: usize) -> impl Strategy<Value = Cycle> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<bool>(), width),
            any::<bool>(),
        ),
        1usize..=9,
    )
}

fn run_equivalence(
    width: usize,
    thresholds: &[i32],
    policy: ResetPolicy,
    cycles: &[Cycle],
    grant_mask: &[bool],
) -> Result<(), TestCaseError> {
    let config = NeuronConfig::new(12, 12, policy);
    let mut optimized = NeuronArray::new(config, thresholds);
    let mut reference = ScalarNeuronArray::new(config, thresholds);
    for (i, cycle) in cycles.iter().enumerate() {
        let rows: Vec<BitVec> = cycle
            .iter()
            .map(|(r, _)| BitVec::from_bools(&r[..width]))
            .collect();
        let valid: Vec<bool> = cycle.iter().map(|&(_, v)| v).collect();
        optimized.integrate(&rows, &valid);
        reference.integrate(&rows, &valid);
        let ref_membranes = reference.membranes();
        prop_assert_eq!(
            optimized.membranes(),
            ref_membranes.as_slice(),
            "membranes diverged after integrate {}",
            i
        );
        // Every few cycles: end the timestep and compare the fired frame
        // plus the request register, then grant a random subset.
        if i % 3 == 2 {
            let fired_opt = optimized.end_timestep();
            let fired_ref = reference.end_timestep();
            prop_assert_eq!(&fired_opt, &fired_ref, "fired frames diverged at {}", i);
            let ref_requests = reference.spike_requests();
            prop_assert_eq!(
                optimized.spike_requests(),
                &ref_requests,
                "requests diverged at {}",
                i
            );
            let ref_post_fire = reference.membranes();
            prop_assert_eq!(
                optimized.membranes(),
                ref_post_fire.as_slice(),
                "post-fire membranes diverged at {}",
                i
            );
            let granted: BitVec = (0..width)
                .map(|j| fired_opt.get(j) && grant_mask[(i + j) % grant_mask.len()])
                .collect();
            optimized.grant(&granted);
            reference.grant(&granted);
            let ref_after_grant = reference.spike_requests();
            prop_assert_eq!(optimized.spike_requests(), &ref_after_grant);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn word_parallel_array_matches_scalar_reference(
        width in 1usize..200,
        on_fire in any::<bool>(),
        cycles in proptest::collection::vec(cycle_strategy(200), 1..12),
        grant_mask in proptest::collection::vec(any::<bool>(), 1..16),
    ) {
        let policy = if on_fire { ResetPolicy::OnFire } else { ResetPolicy::EveryTimestep };
        let thresholds: Vec<i32> = (0..width).map(|j| (j as i32 % 17) - 8).collect();
        run_equivalence(width, &thresholds, policy, &cycles, &grant_mask)?;
    }

    #[test]
    fn random_thresholds_fire_identically(
        thresholds in proptest::collection::vec(-20i32..20, 130usize),
        cycles in proptest::collection::vec(cycle_strategy(130), 1..8),
    ) {
        run_equivalence(130, &thresholds, ResetPolicy::EveryTimestep, &cycles, &[true])?;
    }
}
