//! Leaky Integrate-and-Fire extension.
//!
//! The paper picks a plain IF neuron because its test setup "involves a
//! time-static classification task" (§3.4) — every image is one timestep.
//! For temporal streams (the natural follow-on workload for a transposable,
//! online-learning design) the membrane must *leak*, or stale evidence
//! accumulates forever. [`LifNeuron`] adds the cheapest digital leak: an
//! arithmetic right-shift per timestep, `V ← V − (V >> k)`, which costs one
//! extra adder pass in the `R_empty` cycle and no multiplier.

use crate::config::{NeuronConfig, ResetPolicy};
use crate::if_neuron::IfNeuron;

/// A leaky IF neuron: an [`IfNeuron`] with a shift-based decay applied at
/// every end-of-timestep evaluation.
///
/// The decay factor per timestep is `1 − 2^(−leak_shift)`; `leak_shift = 0`
/// clears the membrane every step, large shifts approach the plain IF
/// behaviour.
///
/// # Examples
///
/// ```
/// use esam_neuron::{LifNeuron, NeuronConfig, ResetPolicy};
///
/// let config = NeuronConfig::new(12, 12, ResetPolicy::OnFire);
/// let mut n = LifNeuron::new(config, 100, 2); // keeps 3/4 per timestep
/// n.accumulate(40);
/// n.end_timestep();
/// assert_eq!(n.v_mem(), 30); // 40 − (40 >> 2)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifNeuron {
    inner: IfNeuron,
    leak_shift: u8,
}

impl LifNeuron {
    /// Creates a leaky neuron.
    ///
    /// # Panics
    ///
    /// Panics if the threshold does not fit the configured register, or if
    /// `leak_shift > 30` (a meaningless shift for an `i32` membrane).
    pub fn new(config: NeuronConfig, threshold: i32, leak_shift: u8) -> Self {
        assert!(
            leak_shift <= 30,
            "leak shift {leak_shift} exceeds the register"
        );
        Self {
            inner: IfNeuron::new(config, threshold),
            leak_shift,
        }
    }

    /// Current membrane potential.
    pub fn v_mem(&self) -> i32 {
        self.inner.v_mem()
    }

    /// Firing threshold.
    pub fn v_th(&self) -> i32 {
        self.inner.v_th()
    }

    /// Leak shift `k` (decay `1 − 2^(−k)` per timestep).
    pub fn leak_shift(&self) -> u8 {
        self.leak_shift
    }

    /// Pending spike request.
    pub fn spike_request(&self) -> bool {
        self.inner.spike_request()
    }

    /// Integrates one cycle's decoded ±1 sum.
    pub fn accumulate(&mut self, delta: i32) {
        self.inner.accumulate(delta);
    }

    /// End-of-timestep: compare/fire like the IF neuron, then leak the
    /// surviving membrane. Returns whether the neuron fired.
    pub fn end_timestep(&mut self) -> bool {
        let fired = self.inner.end_timestep();
        if !fired && self.inner.config().reset_policy() == ResetPolicy::OnFire {
            let v = self.inner.v_mem();
            let leaked = v - (v >> self.leak_shift);
            // Re-apply through the saturating accumulate to stay in range.
            self.inner.accumulate(leaked - v);
        }
        fired
    }

    /// Clears a granted spike request.
    pub fn grant(&mut self) {
        self.inner.grant();
    }

    /// Power-on reset.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lif(threshold: i32, shift: u8) -> LifNeuron {
        LifNeuron::new(
            NeuronConfig::new(12, 12, ResetPolicy::OnFire),
            threshold,
            shift,
        )
    }

    #[test]
    fn leak_decays_by_shift() {
        let mut n = lif(1000, 2);
        n.accumulate(100);
        n.end_timestep();
        assert_eq!(n.v_mem(), 75);
        n.end_timestep();
        assert_eq!(n.v_mem(), 57); // 75 − 18
    }

    #[test]
    fn zero_shift_clears_everything() {
        let mut n = lif(1000, 0);
        n.accumulate(500);
        n.end_timestep();
        assert_eq!(n.v_mem(), 0);
    }

    #[test]
    fn firing_still_resets() {
        let mut n = lif(10, 3);
        n.accumulate(12);
        assert!(n.end_timestep());
        assert_eq!(n.v_mem(), 0);
        assert!(n.spike_request());
        n.grant();
        assert!(!n.spike_request());
    }

    #[test]
    fn negative_membrane_leaks_toward_zero() {
        let mut n = lif(1000, 1);
        n.accumulate(-64);
        n.end_timestep();
        assert_eq!(n.v_mem(), -32);
        n.end_timestep();
        assert_eq!(n.v_mem(), -16);
    }

    #[test]
    fn stale_evidence_decays_away_if_vs_lif() {
        // The motivation: with IF, sub-threshold evidence accumulates across
        // timesteps and eventually fires on noise; with LIF it decays.
        let config = NeuronConfig::new(12, 12, ResetPolicy::OnFire);
        let mut if_neuron = IfNeuron::new(config, 50);
        let mut lif_neuron = LifNeuron::new(config, 50, 1);
        for _ in 0..20 {
            if_neuron.accumulate(5);
            if_neuron.end_timestep();
            lif_neuron.accumulate(5);
            lif_neuron.end_timestep();
        }
        assert!(
            if_neuron.spike_request(),
            "IF integrates 5/step and must cross 50"
        );
        assert!(
            !lif_neuron.spike_request(),
            "LIF equilibrium ≈ 2×rate = 10 < 50: never fires"
        );
    }

    #[test]
    #[should_panic(expected = "leak shift")]
    fn absurd_shift_panics() {
        lif(10, 31);
    }
}
