//! Scalar reference implementation of the neuron array.
//!
//! [`ScalarNeuronArray`] is the original array-of-structs implementation —
//! one [`IfNeuron`] per column, integrated bit-by-bit exactly as §3.4
//! describes a single column's datapath. It is *not* on the hot path: the
//! word-parallel [`NeuronArray`](crate::NeuronArray) replaced it there, and
//! this model is retained as the executable specification the optimized
//! array is property-tested against (`tests/word_parallel_equivalence.rs`
//! asserts bit-identical membranes, fired frames and request registers over
//! random stimulus).

use esam_bits::BitVec;

use crate::config::NeuronConfig;
use crate::if_neuron::IfNeuron;

/// The scalar (array-of-structs) neuron array: the single-neuron reference
/// model applied column by column.
#[derive(Debug, Clone)]
pub struct ScalarNeuronArray {
    neurons: Vec<IfNeuron>,
}

impl ScalarNeuronArray {
    /// Builds an array from per-neuron thresholds.
    ///
    /// # Panics
    ///
    /// Panics if any threshold exceeds the configured register width.
    pub fn new(config: NeuronConfig, thresholds: &[i32]) -> Self {
        Self {
            neurons: thresholds
                .iter()
                .map(|&t| IfNeuron::new(config, t))
                .collect(),
        }
    }

    /// Builds `count` neurons sharing one threshold.
    pub fn with_uniform_threshold(config: NeuronConfig, count: usize, threshold: i32) -> Self {
        Self::new(config, &vec![threshold; count])
    }

    /// Number of neurons (columns).
    pub fn len(&self) -> usize {
        self.neurons.len()
    }

    /// `true` when the array has no neurons.
    pub fn is_empty(&self) -> bool {
        self.neurons.is_empty()
    }

    /// Immutable view of the neurons.
    pub fn neurons(&self) -> &[IfNeuron] {
        &self.neurons
    }

    /// Current membrane potentials.
    pub fn membranes(&self) -> Vec<i32> {
        self.neurons.iter().map(|n| n.v_mem()).collect()
    }

    /// Pending spike requests as a packed frame.
    pub fn spike_requests(&self) -> BitVec {
        self.neurons.iter().map(|n| n.spike_request()).collect()
    }

    /// Integrates one cycle of sensed rows, neuron by neuron, bit by bit.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `valid` lengths differ, or any valid row width
    /// does not match the neuron count.
    pub fn integrate(&mut self, rows: &[BitVec], valid: &[bool]) {
        assert_eq!(
            rows.len(),
            valid.len(),
            "one validity flag per port is required"
        );
        for (row, &is_valid) in rows.iter().zip(valid) {
            if !is_valid {
                continue;
            }
            assert_eq!(
                row.len(),
                self.neurons.len(),
                "row width {} does not match neuron count {}",
                row.len(),
                self.neurons.len()
            );
        }
        for (j, neuron) in self.neurons.iter_mut().enumerate() {
            let mut delta = 0;
            for (row, &is_valid) in rows.iter().zip(valid) {
                if is_valid {
                    delta += if row.get(j) { 1 } else { -1 };
                }
            }
            if delta != 0 {
                neuron.accumulate(delta);
            }
        }
    }

    /// End-of-timestep evaluation: every neuron compares and conditionally
    /// fires. Returns the fired pattern.
    pub fn end_timestep(&mut self) -> BitVec {
        let mut fired = BitVec::new(self.neurons.len());
        for (j, neuron) in self.neurons.iter_mut().enumerate() {
            if neuron.end_timestep() {
                fired.set(j, true);
            }
        }
        fired
    }

    /// Clears the spike requests that were granted by the next tile.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn grant(&mut self, granted: &BitVec) {
        assert_eq!(granted.len(), self.neurons.len(), "grant width mismatch");
        for j in granted.iter_ones() {
            self.neurons[j].grant();
        }
    }

    /// Resets every neuron to its power-on state.
    pub fn reset(&mut self) {
        for neuron in &mut self.neurons {
            neuron.reset();
        }
    }

    /// Replaces all thresholds (after learning).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or register overflow.
    pub fn load_thresholds(&mut self, thresholds: &[i32]) {
        assert_eq!(
            thresholds.len(),
            self.neurons.len(),
            "threshold count mismatch"
        );
        for (neuron, &t) in self.neurons.iter_mut().zip(thresholds) {
            neuron.set_threshold(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_array_follows_single_neuron_semantics() {
        let mut a = ScalarNeuronArray::new(NeuronConfig::paper_default(), &[1, 2, 3]);
        a.integrate(&[BitVec::from_indices(3, &[0, 1, 2])], &[true]);
        a.integrate(&[BitVec::from_indices(3, &[0, 1])], &[true]);
        let fired = a.end_timestep();
        assert!(fired.get(0) && fired.get(1) && !fired.get(2));
        assert_eq!(a.spike_requests(), fired);
        a.grant(&fired);
        assert!(!a.spike_requests().any());
        assert_eq!(a.membranes(), vec![0, 0, 0]);
    }
}
