//! The ESAM Integrate-and-Fire neuron array (§3.4, Fig. 5).
//!
//! Each SRAM column ends in a digital IF neuron. Per clock cycle the neuron
//! receives the sensed bits of up to `p` read ports, each qualified by a
//! validity flag so unused ports are never misread as data. Valid bits are
//! decoded to `+1`/`−1`, summed in a small adder tree and accumulated into a
//! saturating `m`-bit membrane register. When the arbiter signals `R_empty`
//! (all input spikes of the timestep served), each neuron compares
//! `V_mem ≥ V_th` against its private `t`-bit threshold register, fires a
//! spike request `r` to the next tile and resets.
//!
//! # Examples
//!
//! ```
//! use esam_bits::BitVec;
//! use esam_neuron::{NeuronArray, NeuronConfig};
//!
//! let thresholds = [1, 2, 3, 100];
//! let mut array = NeuronArray::new(NeuronConfig::paper_default(), &thresholds);
//! for _ in 0..3 {
//!     array.integrate(&[BitVec::from_indices(4, &[0, 1, 2, 3])], &[true]);
//! }
//! let fired = array.end_timestep();
//! assert_eq!(fired.count_ones(), 3); // all but the 100-threshold neuron
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod config;
pub mod if_neuron;
pub mod lif;
pub mod reference;
pub mod structural;
pub mod timing;

pub use array::NeuronArray;
pub use config::{NeuronConfig, ResetPolicy};
pub use if_neuron::IfNeuron;
pub use lif::LifNeuron;
pub use reference::ScalarNeuronArray;
pub use timing::NeuronTiming;
