//! One Integrate-and-Fire neuron (§3.4, Fig. 5).

use crate::config::{NeuronConfig, ResetPolicy};

/// A digital Integrate-and-Fire neuron.
///
/// Valid bitline values are decoded to `+1`/`−1`, summed, and accumulated in
/// the saturating `m`-bit membrane register. When the tile's arbiter raises
/// `R_empty` (all input spikes served), [`IfNeuron::end_timestep`] compares
/// `V_mem ≥ V_th`; on fire, the output register `r` is set (a spike request
/// to the next tile) and `V_mem` resets to zero. A granted request clears
/// `r` via [`IfNeuron::grant`].
///
/// # Examples
///
/// ```
/// use esam_neuron::{IfNeuron, NeuronConfig};
///
/// let mut n = IfNeuron::new(NeuronConfig::paper_default(), 2);
/// n.accumulate(3);           // three +1 contributions this cycle
/// assert!(n.end_timestep()); // 3 ≥ 2 → fire
/// assert!(n.spike_request());
/// n.grant();
/// assert!(!n.spike_request());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfNeuron {
    config: NeuronConfig,
    v_mem: i32,
    v_th: i32,
    spike_request: bool,
}

impl IfNeuron {
    /// Creates a neuron with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold does not fit the configured `t`-bit register.
    pub fn new(config: NeuronConfig, threshold: i32) -> Self {
        assert!(
            (config.threshold_min()..=config.threshold_max()).contains(&threshold),
            "threshold {threshold} does not fit a {}-bit register",
            config.threshold_bits()
        );
        Self {
            config,
            v_mem: 0,
            v_th: threshold,
            spike_request: false,
        }
    }

    /// Current membrane potential.
    pub fn v_mem(&self) -> i32 {
        self.v_mem
    }

    /// Firing threshold.
    pub fn v_th(&self) -> i32 {
        self.v_th
    }

    /// Replaces the threshold (e.g. after on-chip learning re-calibration).
    ///
    /// # Panics
    ///
    /// Panics if the new threshold does not fit the register.
    pub fn set_threshold(&mut self, threshold: i32) {
        assert!(
            (self.config.threshold_min()..=self.config.threshold_max()).contains(&threshold),
            "threshold {threshold} does not fit a {}-bit register",
            self.config.threshold_bits()
        );
        self.v_th = threshold;
    }

    /// Pending spike request (`r` register).
    pub fn spike_request(&self) -> bool {
        self.spike_request
    }

    /// The neuron's configuration.
    pub fn config(&self) -> NeuronConfig {
        self.config
    }

    /// Adds `delta` (the decoded ±1 sum of the valid ports this cycle) to
    /// the membrane potential, saturating at the `m`-bit register bounds.
    pub fn accumulate(&mut self, delta: i32) {
        self.v_mem = (self.v_mem + delta).clamp(self.config.mem_min(), self.config.mem_max());
    }

    /// End-of-timestep evaluation, enabled by `R_empty` (§3.4): fires when
    /// `V_mem ≥ V_th`, setting the spike request and resetting the membrane.
    /// Returns whether the neuron fired.
    pub fn end_timestep(&mut self) -> bool {
        let fired = self.v_mem >= self.v_th;
        if fired {
            self.spike_request = true;
            self.v_mem = 0;
        } else if self.config.reset_policy() == ResetPolicy::EveryTimestep {
            self.v_mem = 0;
        }
        fired
    }

    /// Clears the spike request once the downstream arbiter granted it
    /// (`g = 1` in Fig. 5).
    pub fn grant(&mut self) {
        self.spike_request = false;
    }

    /// Forces the neuron to its power-on state.
    pub fn reset(&mut self) {
        self.v_mem = 0;
        self.spike_request = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neuron(threshold: i32) -> IfNeuron {
        IfNeuron::new(NeuronConfig::paper_default(), threshold)
    }

    #[test]
    fn fires_at_threshold() {
        let mut n = neuron(5);
        n.accumulate(4);
        assert!(!n.end_timestep());
        n.accumulate(5);
        assert!(n.end_timestep(), "V_mem == V_th must fire (≥ comparison)");
        assert_eq!(n.v_mem(), 0, "membrane resets on fire");
    }

    #[test]
    fn negative_contributions() {
        let mut n = neuron(0);
        n.accumulate(-3);
        assert!(!n.end_timestep(), "-3 < 0: no fire");
        n.accumulate(0);
        assert!(n.end_timestep(), "0 ≥ 0 fires");
    }

    #[test]
    fn saturation_at_register_bounds() {
        let cfg = NeuronConfig::new(4, 4, ResetPolicy::OnFire); // range −8..=7
        let mut n = IfNeuron::new(cfg, 7);
        for _ in 0..100 {
            n.accumulate(3);
        }
        assert_eq!(n.v_mem(), 7, "must clamp at +7");
        for _ in 0..100 {
            n.accumulate(-5);
        }
        assert_eq!(n.v_mem(), -8, "must clamp at −8");
    }

    #[test]
    fn reset_policy_every_timestep_clears_residue() {
        let mut n = neuron(100);
        n.accumulate(50);
        assert!(!n.end_timestep());
        assert_eq!(n.v_mem(), 0, "static-task policy clears V_mem");
    }

    #[test]
    fn reset_policy_on_fire_keeps_residue() {
        let cfg = NeuronConfig::new(12, 12, ResetPolicy::OnFire);
        let mut n = IfNeuron::new(cfg, 100);
        n.accumulate(50);
        assert!(!n.end_timestep());
        assert_eq!(n.v_mem(), 50, "temporal policy integrates across timesteps");
        n.accumulate(50);
        assert!(n.end_timestep());
        assert_eq!(n.v_mem(), 0);
    }

    #[test]
    fn request_grant_handshake() {
        let mut n = neuron(1);
        n.accumulate(2);
        n.end_timestep();
        assert!(n.spike_request());
        n.grant();
        assert!(!n.spike_request());
    }

    #[test]
    fn request_persists_until_granted() {
        let mut n = neuron(1);
        n.accumulate(2);
        n.end_timestep();
        // A second quiet timestep must not clear the pending request.
        n.end_timestep();
        assert!(n.spike_request());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_threshold_panics() {
        IfNeuron::new(NeuronConfig::new(8, 4, ResetPolicy::EveryTimestep), 100);
    }

    #[test]
    fn full_reset() {
        let mut n = neuron(1);
        n.accumulate(5);
        n.end_timestep();
        n.reset();
        assert_eq!(n.v_mem(), 0);
        assert!(!n.spike_request());
    }
}
