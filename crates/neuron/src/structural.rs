//! Gate-level (structural) model of the Fig. 5 accumulation datapath.
//!
//! The neuron of §3.4 takes the `p` sensed bitline values with their
//! validity flags, decodes them to ±1, sums them, and adds the sum to the
//! `m`-bit membrane register. The behavioral model in
//! [`timing`](crate::timing) carries fitted delay constants for that
//! path; this module emits the actual logic — a validity mask, a popcount
//! tree over the valid `+1` hits, and the `V_mem` ripple-carry accumulate
//! adder — so the fitted constants can be cross-checked by static timing
//! analysis and the arithmetic by exhaustive evaluation.
//!
//! The ±1 decode is implemented in counting form: with `v` valid ports of
//! which `k` sensed a `1`, the membrane update is `2k − v`, so the
//! datapath needs `popcount(data AND valid)`, `popcount(valid)` and one
//! adder pass — exactly what is generated here.

use esam_logic::gen::{input_bus, popcount, ripple_carry_adder, zero_extend, Bus};
use esam_logic::{GateKind, GateTiming, Level, LogicError, Netlist, TimingAnalysis};
use esam_tech::units::Seconds;

/// Gate-level accumulation datapath for `ports` bitlines feeding an
/// `mem_bits`-wide membrane register.
///
/// # Examples
///
/// ```
/// use esam_neuron::structural::AccumulatorNetlist;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let acc = AccumulatorNetlist::new(4, 8)?;
/// // Membrane 5, ports 0 and 2 valid (mask 0b0101), only port 2 sensed a
/// // '1' (mask 0b0100): update = 2·1 − 2 = 0 … V_mem stays 5.
/// let v = acc.evaluate(5, 0b0100, 0b0101)?;
/// assert_eq!(v, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AccumulatorNetlist {
    netlist: Netlist,
    ports: usize,
    mem_bits: u8,
    mem_out: Bus,
}

impl AccumulatorNetlist {
    /// Builds the datapath for `ports` read ports and an `mem_bits`-wide
    /// two's-complement membrane.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures; `ports` and `mem_bits`
    /// must be non-zero and `mem_bits` at least 4 so the ±ports update
    /// fits.
    pub fn new(ports: usize, mem_bits: u8) -> Result<Self, LogicError> {
        assert!(ports > 0, "a neuron needs at least one input port");
        assert!(
            (4..=31).contains(&mem_bits),
            "mem_bits {mem_bits} out of the supported 4..=31 range"
        );
        let width = mem_bits as usize;
        let mut nl = Netlist::new();
        let mem_in = input_bus(&mut nl, "vmem", width);
        let data_in = input_bus(&mut nl, "rbl", ports);
        let valid_in = input_bus(&mut nl, "valid", ports);

        // hits = popcount(data AND valid); vcount = popcount(valid).
        let masked: Vec<_> = (0..ports)
            .map(|p| {
                nl.add_cell(
                    GateKind::And,
                    &[data_in.net(p), valid_in.net(p)],
                    format!("hit[{p}]"),
                )
            })
            .collect::<Result<_, _>>()?;
        let hits = popcount(&mut nl, &masked, "hits")?;
        let vcount = popcount(&mut nl, valid_in.nets(), "vcount")?;

        // update = 2·hits − vcount, in `width`-bit two's complement:
        // (hits << 1) + NOT(vcount) + 1.
        let zero = nl.add_cell(GateKind::Const0, &[], "zero")?;
        let mut doubled = vec![zero];
        doubled.extend_from_slice(hits.nets());
        let doubled = zero_extend(&mut nl, &Bus::from_nets(doubled), width, "hits2x")?;
        let vext = zero_extend(&mut nl, &vcount, width, "vext")?;
        let vneg: Vec<_> = vext
            .nets()
            .iter()
            .enumerate()
            .map(|(i, &n)| nl.add_cell(GateKind::Not, &[n], format!("vinv[{i}]")))
            .collect::<Result<_, _>>()?;
        let one = nl.add_cell(GateKind::Const1, &[], "one")?;
        let (update, _c) =
            ripple_carry_adder(&mut nl, &doubled, &Bus::from_nets(vneg), one, "upd")?;

        // V_mem' = V_mem + update (wrapping two's complement; the
        // behavioral model's saturation is a register-side policy).
        let (mem_out, _c) = ripple_carry_adder(&mut nl, &mem_in, &update, zero, "acc")?;
        for &n in mem_out.nets() {
            nl.mark_output(n)?;
        }
        nl.validate()?;
        // Stimulus order in `evaluate` relies on the declaration order of
        // the three input buses above (vmem, rbl, valid).
        let _ = (mem_in, data_in, valid_in);
        Ok(Self {
            netlist: nl,
            ports,
            mem_bits,
            mem_out,
        })
    }

    /// Number of read ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Membrane register width in bits.
    pub fn mem_bits(&self) -> u8 {
        self.mem_bits
    }

    /// The generated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Evaluates one accumulation: `vmem + 2·popcount(data&valid) −
    /// popcount(valid)` in wrapping `mem_bits` two's complement.
    ///
    /// `data` and `valid` are port bitmasks (bit `p` = port `p`).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (an internal generation bug).
    pub fn evaluate(&self, vmem: i32, data: u32, valid: u32) -> Result<i32, LogicError> {
        let width = self.mem_bits as usize;
        let mask = (1u64 << width) - 1;
        let mem = (vmem as i64 as u64) & mask;
        let mut stimulus: Vec<Level> = Vec::with_capacity(width + 2 * self.ports);
        for bit in 0..width {
            stimulus.push(Level::from(mem >> bit & 1 == 1));
        }
        for p in 0..self.ports {
            stimulus.push(Level::from(data >> p & 1 == 1));
        }
        for p in 0..self.ports {
            stimulus.push(Level::from(valid >> p & 1 == 1));
        }
        let levels = self.netlist.evaluate(&stimulus)?;
        let raw = self.mem_out.decode(&levels).expect("outputs are driven");
        // Sign-extend from mem_bits.
        let shifted = (raw << (64 - width)) as i64 >> (64 - width);
        Ok(shifted as i32)
    }

    /// STA critical path of the accumulate stage under `timing`.
    ///
    /// # Errors
    ///
    /// Propagates STA failures (an internal generation bug).
    pub fn sta_delay(&self, timing: &GateTiming) -> Result<Seconds, LogicError> {
        Ok(TimingAnalysis::run(&self.netlist, timing)?
            .critical_path()
            .delay())
    }

    /// Unused-input helper for tests: all-ports-valid mask.
    pub fn all_valid(&self) -> u32 {
        (1u32 << self.ports) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::NeuronTiming;

    fn reference(vmem: i32, data: u32, valid: u32, ports: usize, bits: u8) -> i32 {
        let hits = (data & valid & ((1 << ports) - 1)).count_ones() as i32;
        let v = (valid & ((1 << ports) - 1)).count_ones() as i32;
        let update = 2 * hits - v;
        // Wrapping two's complement at `bits`.
        let width = bits as u32;
        let raw = (vmem.wrapping_add(update)) as i64;
        ((raw << (64 - width)) >> (64 - width)) as i32
    }

    #[test]
    fn matches_the_reference_exhaustively_at_4_ports() {
        let acc = AccumulatorNetlist::new(4, 6).unwrap();
        for vmem in [-32, -17, -1, 0, 1, 13, 31] {
            for data in 0..16u32 {
                for valid in 0..16u32 {
                    assert_eq!(
                        acc.evaluate(vmem, data, valid).unwrap(),
                        reference(vmem, data, valid, 4, 6),
                        "vmem={vmem} data={data:04b} valid={valid:04b}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_ports_do_not_count() {
        // §3.4: "a validity flag is used … an unused port is not
        // erroneously read as a '1'".
        let acc = AccumulatorNetlist::new(4, 8).unwrap();
        // All data lines high but nothing valid: V_mem must not move.
        assert_eq!(acc.evaluate(7, 0b1111, 0b0000).unwrap(), 7);
        // One valid port carrying a 1: +1.
        assert_eq!(acc.evaluate(7, 0b1111, 0b0001).unwrap(), 8);
        // One valid port carrying a 0: −1.
        assert_eq!(acc.evaluate(7, 0b1110, 0b0001).unwrap(), 6);
    }

    #[test]
    fn full_valid_full_hits_adds_ports() {
        let acc = AccumulatorNetlist::new(8, 8).unwrap();
        let all = acc.all_valid();
        assert_eq!(acc.evaluate(0, all, all).unwrap(), 8);
        assert_eq!(acc.evaluate(0, 0, all).unwrap(), -8);
    }

    #[test]
    fn sta_grows_with_membrane_width_and_tracks_the_fitted_model() {
        let timing = GateTiming::finfet_3nm();
        let narrow = AccumulatorNetlist::new(4, 6)
            .unwrap()
            .sta_delay(&timing)
            .unwrap();
        let wide = AccumulatorNetlist::new(4, 16)
            .unwrap()
            .sta_delay(&timing)
            .unwrap();
        assert!(wide > narrow, "wider V_mem must be slower");

        // The fitted accumulate stage (Table 2's SRAM+Neuron component) and
        // the generated ripple datapath must sit in the same few-hundred-ps
        // decade at the paper's 8-bit membrane.
        let fitted = NeuronTiming::new(4).accumulate_delay();
        let structural = AccumulatorNetlist::new(4, 8)
            .unwrap()
            .sta_delay(&timing)
            .unwrap();
        let ratio = structural.value() / fitted.value();
        assert!(
            (0.2..5.0).contains(&ratio),
            "structural {structural} vs fitted {fitted} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn wrapping_behaviour_is_twos_complement() {
        let acc = AccumulatorNetlist::new(2, 4).unwrap();
        // 7 + 2 wraps to -7 in 4-bit two's complement.
        assert_eq!(acc.evaluate(7, 0b11, 0b11).unwrap(), -7);
        // -8 - 2 wraps to 6.
        assert_eq!(acc.evaluate(-8, 0b00, 0b11).unwrap(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one input port")]
    fn zero_ports_is_a_bug() {
        let _ = AccumulatorNetlist::new(0, 8);
    }
}
