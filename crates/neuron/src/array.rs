//! A column of IF neurons fed by the multiport bitlines (§3.4).

use esam_bits::BitVec;

use crate::config::NeuronConfig;
use crate::if_neuron::IfNeuron;

/// The neuron array of one tile: one IF neuron per SRAM column.
///
/// Each clock cycle the array receives up to `p` sensed rows (one per SRAM
/// read port) plus a validity flag per port — "an unused port is not
/// erroneously read as a '1' and added to the membrane potential" (§3.4).
/// Valid bits are decoded `1 → +1`, `0 → −1`, summed per column and
/// accumulated.
///
/// # Examples
///
/// ```
/// use esam_bits::BitVec;
/// use esam_neuron::{NeuronArray, NeuronConfig};
///
/// let mut array = NeuronArray::with_uniform_threshold(NeuronConfig::paper_default(), 4, 1);
/// // Two valid ports: column 0 sees (1, 1) → +2; column 3 sees (0, 0) → −2.
/// let rows = vec![
///     BitVec::from_indices(4, &[0, 1]),
///     BitVec::from_indices(4, &[0, 2]),
/// ];
/// array.integrate(&rows, &[true, true]);
/// let fired = array.end_timestep();
/// assert!(fired.get(0));
/// assert!(!fired.get(3));
/// ```
#[derive(Debug, Clone)]
pub struct NeuronArray {
    neurons: Vec<IfNeuron>,
}

impl NeuronArray {
    /// Builds an array from per-neuron thresholds.
    ///
    /// # Panics
    ///
    /// Panics if any threshold exceeds the configured register width.
    pub fn new(config: NeuronConfig, thresholds: &[i32]) -> Self {
        Self {
            neurons: thresholds
                .iter()
                .map(|&t| IfNeuron::new(config, t))
                .collect(),
        }
    }

    /// Builds `count` neurons sharing one threshold.
    pub fn with_uniform_threshold(config: NeuronConfig, count: usize, threshold: i32) -> Self {
        Self::new(config, &vec![threshold; count])
    }

    /// Number of neurons (columns).
    pub fn len(&self) -> usize {
        self.neurons.len()
    }

    /// `true` when the array has no neurons.
    pub fn is_empty(&self) -> bool {
        self.neurons.is_empty()
    }

    /// Immutable view of the neurons.
    pub fn neurons(&self) -> &[IfNeuron] {
        &self.neurons
    }

    /// Current membrane potentials (useful as an analog readout of the
    /// output layer).
    pub fn membranes(&self) -> Vec<i32> {
        self.neurons.iter().map(|n| n.v_mem()).collect()
    }

    /// Integrates one cycle of sensed rows.
    ///
    /// `rows[k]` is the row read on port `k` (one bit per column);
    /// `valid[k]` is that port's validity flag. Invalid ports contribute
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `valid` lengths differ, or any row width does
    /// not match the neuron count.
    pub fn integrate(&mut self, rows: &[BitVec], valid: &[bool]) {
        assert_eq!(
            rows.len(),
            valid.len(),
            "one validity flag per port is required"
        );
        for (row, &is_valid) in rows.iter().zip(valid) {
            if !is_valid {
                continue;
            }
            assert_eq!(
                row.len(),
                self.neurons.len(),
                "row width {} does not match neuron count {}",
                row.len(),
                self.neurons.len()
            );
        }
        for (j, neuron) in self.neurons.iter_mut().enumerate() {
            let mut delta = 0;
            for (row, &is_valid) in rows.iter().zip(valid) {
                if is_valid {
                    delta += if row.get(j) { 1 } else { -1 };
                }
            }
            if delta != 0 {
                neuron.accumulate(delta);
            }
        }
    }

    /// End-of-timestep evaluation of the whole array (`R_empty` asserted):
    /// every neuron compares and conditionally fires. Returns the fired
    /// pattern — the binary pulses sent fully in parallel to the next tile
    /// (§3.1).
    pub fn end_timestep(&mut self) -> BitVec {
        let mut fired = BitVec::new(self.neurons.len());
        for (j, neuron) in self.neurons.iter_mut().enumerate() {
            if neuron.end_timestep() {
                fired.set(j, true);
            }
        }
        fired
    }

    /// Clears the spike requests that were granted by the next tile.
    pub fn grant(&mut self, granted: &BitVec) {
        assert_eq!(granted.len(), self.neurons.len(), "grant width mismatch");
        for j in granted.iter_ones() {
            self.neurons[j].grant();
        }
    }

    /// Resets every neuron to its power-on state.
    pub fn reset(&mut self) {
        for neuron in &mut self.neurons {
            neuron.reset();
        }
    }

    /// Replaces all thresholds (after learning).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or register overflow.
    pub fn load_thresholds(&mut self, thresholds: &[i32]) {
        assert_eq!(
            thresholds.len(),
            self.neurons.len(),
            "threshold count mismatch"
        );
        for (neuron, &t) in self.neurons.iter_mut().zip(thresholds) {
            neuron.set_threshold(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(count: usize, threshold: i32) -> NeuronArray {
        NeuronArray::with_uniform_threshold(NeuronConfig::paper_default(), count, threshold)
    }

    #[test]
    fn plus_minus_decode() {
        let mut a = array(3, 0);
        // Port row: col0 = 1 (+1), col1 = 0 (−1), col2 = 1 (+1).
        a.integrate(&[BitVec::from_indices(3, &[0, 2])], &[true]);
        assert_eq!(a.membranes(), vec![1, -1, 1]);
    }

    #[test]
    fn invalid_ports_are_ignored() {
        let mut a = array(2, 0);
        let all_ones = BitVec::from_indices(2, &[0, 1]);
        a.integrate(&[all_ones.clone(), all_ones], &[true, false]);
        assert_eq!(a.membranes(), vec![1, 1], "only the valid port counts");
    }

    #[test]
    fn multiport_sum_per_cycle() {
        let mut a = array(2, 0);
        let rows = vec![
            BitVec::from_indices(2, &[0]), // col0 +1, col1 −1
            BitVec::from_indices(2, &[0]), // col0 +1, col1 −1
            BitVec::from_indices(2, &[1]), // col0 −1, col1 +1
            BitVec::new(2),                // col0 −1, col1 −1
        ];
        a.integrate(&rows, &[true; 4]);
        assert_eq!(a.membranes(), vec![0, -2]);
    }

    #[test]
    fn end_timestep_produces_spike_frame() {
        let mut a = NeuronArray::new(NeuronConfig::paper_default(), &[1, 2, 3]);
        a.integrate(&[BitVec::from_indices(3, &[0, 1, 2])], &[true]);
        a.integrate(&[BitVec::from_indices(3, &[0, 1])], &[true]);
        // Membranes: [2, 2, 0] vs thresholds [1, 2, 3].
        let fired = a.end_timestep();
        assert!(fired.get(0));
        assert!(fired.get(1));
        assert!(!fired.get(2));
        assert_eq!(a.membranes(), vec![0, 0, 0]);
    }

    #[test]
    fn grant_clears_requests() {
        let mut a = array(2, 0);
        a.integrate(&[BitVec::from_indices(2, &[0, 1])], &[true]);
        let fired = a.end_timestep();
        assert_eq!(fired.count_ones(), 2);
        a.grant(&fired);
        assert!(a.neurons().iter().all(|n| !n.spike_request()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        array(4, 0).integrate(&[BitVec::new(3)], &[true]);
    }

    #[test]
    #[should_panic(expected = "validity flag")]
    fn missing_valid_flag_panics() {
        array(4, 0).integrate(&[BitVec::new(4)], &[]);
    }

    #[test]
    fn load_thresholds_roundtrip() {
        let mut a = array(3, 0);
        a.load_thresholds(&[5, -4, 7]);
        let ths: Vec<i32> = a.neurons().iter().map(|n| n.v_th()).collect();
        assert_eq!(ths, vec![5, -4, 7]);
    }
}
