//! A column of IF neurons fed by the multiport bitlines (§3.4) —
//! word-parallel struct-of-arrays implementation.
//!
//! The hardware integrates all columns of a tile *simultaneously*: every
//! read port drives one sensed row across the whole neuron array per clock
//! cycle. To make the software act like that, [`NeuronArray`] stores its
//! state as struct-of-arrays — `membranes: Vec<i32>`, `thresholds:
//! Vec<i32>` and a packed spike-request [`BitVec`] — and walks the port
//! rows 64 neurons at a time on their packed words instead of issuing a
//! bounds-checked bit read per neuron per port.
//!
//! Per 64-lane word the ±1 decode (`delta = 2·ones − valid_ports`, the same
//! counting form the gate-level datapath in [`crate::structural`] uses) is
//! computed by a carry-save bit-slice over the port words, so the inner
//! loop touches each membrane exactly once per cycle. The behaviour is
//! **bit-identical** to applying [`IfNeuron`](crate::IfNeuron) column by
//! column — the retained scalar model lives in
//! [`reference::ScalarNeuronArray`](crate::reference::ScalarNeuronArray)
//! and `tests/word_parallel_equivalence.rs` property-tests the equivalence
//! over random stimulus.

use esam_bits::BitVec;

use crate::config::{NeuronConfig, ResetPolicy};

const WORD_BITS: usize = BitVec::WORD_BITS;

/// The neuron array of one tile: one IF neuron per SRAM column, stored
/// struct-of-arrays and integrated word-parallel.
///
/// Each clock cycle the array receives up to `p` sensed rows (one per SRAM
/// read port) plus a validity flag per port — "an unused port is not
/// erroneously read as a '1' and added to the membrane potential" (§3.4).
/// Valid bits are decoded `1 → +1`, `0 → −1`, summed per column and
/// accumulated.
///
/// # Examples
///
/// ```
/// use esam_bits::BitVec;
/// use esam_neuron::{NeuronArray, NeuronConfig};
///
/// let mut array = NeuronArray::with_uniform_threshold(NeuronConfig::paper_default(), 4, 1);
/// // Two valid ports: column 0 sees (1, 1) → +2; column 3 sees (0, 0) → −2.
/// let rows = vec![
///     BitVec::from_indices(4, &[0, 1]),
///     BitVec::from_indices(4, &[0, 2]),
/// ];
/// array.integrate(&rows, &[true, true]);
/// let fired = array.end_timestep();
/// assert!(fired.get(0));
/// assert!(!fired.get(3));
/// ```
#[derive(Debug, Clone)]
pub struct NeuronArray {
    config: NeuronConfig,
    /// Membrane potentials, one per column (`V_mem` registers).
    membranes: Vec<i32>,
    /// Firing thresholds, one per column (`V_th` registers).
    thresholds: Vec<i32>,
    /// Packed pending spike requests (the `r` registers): bit `j` — column
    /// `j`, leftmost column at the LSB of word 0.
    requests: BitVec,
}

impl NeuronArray {
    /// Builds an array from per-neuron thresholds.
    ///
    /// # Panics
    ///
    /// Panics if any threshold exceeds the configured register width.
    pub fn new(config: NeuronConfig, thresholds: &[i32]) -> Self {
        for &t in thresholds {
            assert!(
                (config.threshold_min()..=config.threshold_max()).contains(&t),
                "threshold {t} does not fit a {}-bit register",
                config.threshold_bits()
            );
        }
        Self {
            config,
            membranes: vec![0; thresholds.len()],
            thresholds: thresholds.to_vec(),
            requests: BitVec::new(thresholds.len()),
        }
    }

    /// Builds `count` neurons sharing one threshold.
    pub fn with_uniform_threshold(config: NeuronConfig, count: usize, threshold: i32) -> Self {
        Self::new(config, &vec![threshold; count])
    }

    /// Number of neurons (columns).
    #[inline]
    pub fn len(&self) -> usize {
        self.membranes.len()
    }

    /// `true` when the array has no neurons.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.membranes.is_empty()
    }

    /// The shared neuron datapath configuration.
    pub fn config(&self) -> NeuronConfig {
        self.config
    }

    /// Current membrane potentials (useful as an analog readout of the
    /// output layer). Borrowed, not copied — the readout path allocates
    /// nothing.
    #[inline]
    pub fn membranes(&self) -> &[i32] {
        &self.membranes
    }

    /// Firing thresholds, one per column.
    #[inline]
    pub fn thresholds(&self) -> &[i32] {
        &self.thresholds
    }

    /// Packed pending spike requests (bit `j` = column `j`'s `r` register,
    /// leftmost column at the LSB of word 0).
    #[inline]
    pub fn spike_requests(&self) -> &BitVec {
        &self.requests
    }

    /// Integrates one cycle of sensed rows, word-parallel.
    ///
    /// `rows[k]` is the row read on port `k` (one bit per column);
    /// `valid[k]` is that port's validity flag. Invalid ports contribute
    /// nothing. Per 64-column word, a carry-save bit-slice counts how many
    /// valid ports sensed a `1` in each lane; the membrane update is then
    /// `2·ones − valid_ports` per column (saturating at the register
    /// bounds), identical to the per-neuron ±1 decode of
    /// [`IfNeuron::accumulate`](crate::IfNeuron::accumulate).
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `valid` lengths differ, or any valid row width
    /// does not match the neuron count.
    pub fn integrate(&mut self, rows: &[BitVec], valid: &[bool]) {
        assert_eq!(
            rows.len(),
            valid.len(),
            "one validity flag per port is required"
        );
        for (row, &is_valid) in rows.iter().zip(valid) {
            if !is_valid {
                continue;
            }
            assert_eq!(
                row.len(),
                self.membranes.len(),
                "row width {} does not match neuron count {}",
                row.len(),
                self.membranes.len()
            );
        }
        let valid_count = valid.iter().filter(|&&v| v).count() as i32;
        if valid_count == 0 {
            return;
        }
        let (mem_min, mem_max) = (self.config.mem_min(), self.config.mem_max());
        let n = self.membranes.len();
        for w in 0..n.div_ceil(WORD_BITS) {
            let base = w * WORD_BITS;
            let lanes = (n - base).min(WORD_BITS);
            // Carry-save per-lane popcount over the valid port words. Three
            // counter planes count exactly up to 7 ports per flush; flushing
            // every 7 rows keeps the count exact for any port count.
            let mut ones = [0i32; WORD_BITS];
            let (mut c0, mut c1, mut c2) = (0u64, 0u64, 0u64);
            let mut pending = 0u32;
            for (row, &is_valid) in rows.iter().zip(valid) {
                if !is_valid {
                    continue;
                }
                let x = row.words()[w];
                let t0 = c0 & x;
                c0 ^= x;
                let t1 = c1 & t0;
                c1 ^= t0;
                c2 ^= t1;
                pending += 1;
                if pending == 7 {
                    flush_counters(&mut ones, lanes, c0, c1, c2);
                    (c0, c1, c2) = (0, 0, 0);
                    pending = 0;
                }
            }
            if pending > 0 {
                flush_counters(&mut ones, lanes, c0, c1, c2);
            }
            for (lane, membrane) in self.membranes[base..base + lanes].iter_mut().enumerate() {
                let delta = 2 * ones[lane] - valid_count;
                if delta != 0 {
                    *membrane = (*membrane + delta).clamp(mem_min, mem_max);
                }
            }
        }
    }

    /// End-of-timestep evaluation of the whole array (`R_empty` asserted):
    /// every neuron compares and conditionally fires. Returns the fired
    /// pattern — the binary pulses sent fully in parallel to the next tile
    /// (§3.1).
    pub fn end_timestep(&mut self) -> BitVec {
        let mut fired = BitVec::new(self.membranes.len());
        self.end_timestep_into(&mut fired);
        fired
    }

    /// End-of-timestep evaluation into a caller-owned frame — the
    /// allocation-free form of [`end_timestep`](Self::end_timestep). The
    /// fired pattern is assembled word by word (bit `j` = column `j`,
    /// leftmost at the LSB of word 0), ORed into the pending spike
    /// requests, and the membranes reset per the configured
    /// [`ResetPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `fired.len()` is not the neuron count.
    pub fn end_timestep_into(&mut self, fired: &mut BitVec) {
        let n = self.membranes.len();
        assert_eq!(fired.len(), n, "fired frame width mismatch");
        {
            let words = fired.words_mut();
            for (w, slot) in words.iter_mut().enumerate() {
                let base = w * WORD_BITS;
                let lanes = (n - base).min(WORD_BITS);
                let mut word = 0u64;
                for (lane, (&membrane, &threshold)) in self.membranes[base..base + lanes]
                    .iter()
                    .zip(&self.thresholds[base..base + lanes])
                    .enumerate()
                {
                    word |= u64::from(membrane >= threshold) << lane;
                }
                *slot = word;
            }
        }
        fired.union_into(&mut self.requests);
        match self.config.reset_policy() {
            ResetPolicy::EveryTimestep => self.membranes.fill(0),
            ResetPolicy::OnFire => {
                for j in fired.iter_ones() {
                    self.membranes[j] = 0;
                }
            }
        }
    }

    /// Clears the spike requests that were granted by the next tile — a
    /// word-wise `requests &= !granted`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn grant(&mut self, granted: &BitVec) {
        assert_eq!(granted.len(), self.membranes.len(), "grant width mismatch");
        self.requests.and_not_assign(granted);
    }

    /// Resets every neuron to its power-on state.
    pub fn reset(&mut self) {
        self.membranes.fill(0);
        self.requests.clear();
    }

    /// Replaces all thresholds (after learning).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or register overflow.
    pub fn load_thresholds(&mut self, thresholds: &[i32]) {
        assert_eq!(
            thresholds.len(),
            self.thresholds.len(),
            "threshold count mismatch"
        );
        for &t in thresholds {
            assert!(
                (self.config.threshold_min()..=self.config.threshold_max()).contains(&t),
                "threshold {t} does not fit a {}-bit register",
                self.config.threshold_bits()
            );
        }
        self.thresholds.copy_from_slice(thresholds);
    }
}

/// Adds the carry-save counter planes into the per-lane totals:
/// `ones[lane] += c0[lane] + 2·c1[lane] + 4·c2[lane]`.
#[inline]
fn flush_counters(ones: &mut [i32; WORD_BITS], lanes: usize, c0: u64, c1: u64, c2: u64) {
    for (lane, total) in ones.iter_mut().enumerate().take(lanes) {
        *total +=
            (((c0 >> lane) & 1) + (((c1 >> lane) & 1) << 1) + (((c2 >> lane) & 1) << 2)) as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(count: usize, threshold: i32) -> NeuronArray {
        NeuronArray::with_uniform_threshold(NeuronConfig::paper_default(), count, threshold)
    }

    #[test]
    fn plus_minus_decode() {
        let mut a = array(3, 0);
        // Port row: col0 = 1 (+1), col1 = 0 (−1), col2 = 1 (+1).
        a.integrate(&[BitVec::from_indices(3, &[0, 2])], &[true]);
        assert_eq!(a.membranes(), &[1, -1, 1]);
    }

    #[test]
    fn invalid_ports_are_ignored() {
        let mut a = array(2, 0);
        let all_ones = BitVec::from_indices(2, &[0, 1]);
        a.integrate(&[all_ones.clone(), all_ones], &[true, false]);
        assert_eq!(a.membranes(), &[1, 1], "only the valid port counts");
    }

    #[test]
    fn multiport_sum_per_cycle() {
        let mut a = array(2, 0);
        let rows = vec![
            BitVec::from_indices(2, &[0]), // col0 +1, col1 −1
            BitVec::from_indices(2, &[0]), // col0 +1, col1 −1
            BitVec::from_indices(2, &[1]), // col0 −1, col1 +1
            BitVec::new(2),                // col0 −1, col1 −1
        ];
        a.integrate(&rows, &[true; 4]);
        assert_eq!(a.membranes(), &[0, -2]);
    }

    #[test]
    fn more_than_seven_ports_stay_exact() {
        // Exercises the carry-save flush boundary: 9 valid rows all driving
        // column 0 high and column 1 low → deltas +9 / −9.
        let mut a = array(2, 0);
        let rows = vec![BitVec::from_indices(2, &[0]); 9];
        a.integrate(&rows, &[true; 9]);
        assert_eq!(a.membranes(), &[9, -9]);
    }

    #[test]
    fn end_timestep_produces_spike_frame() {
        let mut a = NeuronArray::new(NeuronConfig::paper_default(), &[1, 2, 3]);
        a.integrate(&[BitVec::from_indices(3, &[0, 1, 2])], &[true]);
        a.integrate(&[BitVec::from_indices(3, &[0, 1])], &[true]);
        // Membranes: [2, 2, 0] vs thresholds [1, 2, 3].
        let fired = a.end_timestep();
        assert!(fired.get(0));
        assert!(fired.get(1));
        assert!(!fired.get(2));
        assert_eq!(a.membranes(), &[0, 0, 0]);
    }

    #[test]
    fn grant_clears_requests() {
        let mut a = array(2, 0);
        a.integrate(&[BitVec::from_indices(2, &[0, 1])], &[true]);
        let fired = a.end_timestep();
        assert_eq!(fired.count_ones(), 2);
        assert_eq!(a.spike_requests(), &fired);
        a.grant(&fired);
        assert!(!a.spike_requests().any());
        assert!(!a.spike_requests().get(0) && !a.spike_requests().get(1));
    }

    #[test]
    fn requests_persist_until_granted() {
        let mut a = array(2, -1);
        let fired = a.end_timestep(); // 0 ≥ −1: both fire
        assert_eq!(fired.count_ones(), 2);
        // A second quiet timestep must not clear the pending requests.
        a.end_timestep();
        assert_eq!(a.spike_requests().count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        array(4, 0).integrate(&[BitVec::new(3)], &[true]);
    }

    #[test]
    #[should_panic(expected = "validity flag")]
    fn missing_valid_flag_panics() {
        array(4, 0).integrate(&[BitVec::new(4)], &[]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_threshold_rejected() {
        NeuronArray::new(NeuronConfig::new(8, 4, ResetPolicy::EveryTimestep), &[100]);
    }

    #[test]
    fn load_thresholds_roundtrip() {
        let mut a = array(3, 0);
        a.load_thresholds(&[5, -4, 7]);
        assert_eq!(a.thresholds(), &[5, -4, 7]);
        assert_eq!(a.config(), NeuronConfig::paper_default());
    }

    #[test]
    fn on_fire_reset_keeps_unfired_residue() {
        let cfg = NeuronConfig::new(12, 12, ResetPolicy::OnFire);
        let mut a = NeuronArray::new(cfg, &[10, 100]);
        for _ in 0..10 {
            a.integrate(&[BitVec::from_indices(2, &[0, 1])], &[true]);
        }
        let fired = a.end_timestep();
        assert!(fired.get(0) && !fired.get(1));
        assert_eq!(a.membranes(), &[0, 10], "unfired membrane integrates on");
    }
}
