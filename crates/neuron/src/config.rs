//! Neuron datapath configuration.

use std::fmt;

/// What happens to the membrane potential at the end of a timestep when the
/// neuron did *not* fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResetPolicy {
    /// Reset `V_mem` to zero every timestep, fired or not. This is the mode
    /// used for the time-static classification task (§4.4.2): each image is
    /// one timestep and must not leak potential into the next, matching the
    /// BNN conversion exactly.
    #[default]
    EveryTimestep,
    /// Reset only on fire, as the neuron description in §3.4 states —
    /// appropriate for temporal streams where potential integrates across
    /// timesteps.
    OnFire,
}

/// Bit widths and reset behaviour of the IF neuron datapath (§3.4: the
/// `m`-bit `V_mem` register and the `t`-bit `V_th` register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeuronConfig {
    mem_bits: u8,
    threshold_bits: u8,
    reset_policy: ResetPolicy,
}

impl NeuronConfig {
    /// Creates a configuration with `mem_bits`-wide membrane register and
    /// `threshold_bits`-wide threshold register.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 31` for both registers (they are signed
    /// two's-complement values held in `i32`).
    pub fn new(mem_bits: u8, threshold_bits: u8, reset_policy: ResetPolicy) -> Self {
        assert!(
            (2..=31).contains(&mem_bits) && (2..=31).contains(&threshold_bits),
            "register widths must be within 2..=31 bits"
        );
        Self {
            mem_bits,
            threshold_bits,
            reset_policy,
        }
    }

    /// Defaults sized for the paper's system: a 768-input first layer can
    /// accumulate at most ±768, so 12 bits cover every layer with margin.
    pub fn paper_default() -> Self {
        Self::new(12, 12, ResetPolicy::EveryTimestep)
    }

    /// Membrane register width (`m`).
    pub fn mem_bits(&self) -> u8 {
        self.mem_bits
    }

    /// Threshold register width (`t`).
    pub fn threshold_bits(&self) -> u8 {
        self.threshold_bits
    }

    /// Reset behaviour at end-of-timestep.
    pub fn reset_policy(&self) -> ResetPolicy {
        self.reset_policy
    }

    /// Largest representable membrane value.
    pub fn mem_max(&self) -> i32 {
        (1 << (self.mem_bits - 1)) - 1
    }

    /// Smallest representable membrane value.
    pub fn mem_min(&self) -> i32 {
        -(1 << (self.mem_bits - 1))
    }

    /// Largest representable threshold.
    pub fn threshold_max(&self) -> i32 {
        (1 << (self.threshold_bits - 1)) - 1
    }

    /// Smallest representable threshold.
    pub fn threshold_min(&self) -> i32 {
        -(1 << (self.threshold_bits - 1))
    }
}

impl Default for NeuronConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for NeuronConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IF neuron (Vmem {} bits, Vth {} bits, reset {:?})",
            self.mem_bits, self.threshold_bits, self.reset_policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_ranges() {
        let c = NeuronConfig::paper_default();
        assert_eq!(c.mem_max(), 2047);
        assert_eq!(c.mem_min(), -2048);
        assert!(
            c.mem_max() >= 768,
            "must hold a full 768-input accumulation"
        );
        assert_eq!(c.reset_policy(), ResetPolicy::EveryTimestep);
    }

    #[test]
    fn custom_widths() {
        let c = NeuronConfig::new(8, 6, ResetPolicy::OnFire);
        assert_eq!(c.mem_max(), 127);
        assert_eq!(c.mem_min(), -128);
        assert_eq!(c.threshold_max(), 31);
        assert_eq!(c.threshold_min(), -32);
    }

    #[test]
    #[should_panic(expected = "within 2..=31")]
    fn absurd_width_panics() {
        NeuronConfig::new(40, 12, ResetPolicy::EveryTimestep);
    }

    #[test]
    fn display_is_informative() {
        assert!(NeuronConfig::paper_default().to_string().contains("12"));
    }
}
