//! Neuron datapath timing and energy (the "+ Neuron accumulation" share of
//! the Table 2 pipeline stage).

use esam_tech::calibration::fitted;
use esam_tech::units::{Joules, Seconds};

/// Timing/energy model of the neuron accumulation datapath.
///
/// The datapath per cycle is: validity-gated ±1 decode of the `p` port bits,
/// a small adder tree of depth `⌈log₂ p⌉`, and the `m`-bit membrane adder +
/// register write. The threshold compare runs in the (rarer) `R_empty`
/// cycle and is typically off the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeuronTiming {
    ports: usize,
}

impl NeuronTiming {
    /// Model for a neuron fed from `ports` bitlines per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "a neuron is fed by at least one port");
        Self { ports }
    }

    /// Number of ports feeding the neuron.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Depth of the ±1 adder tree (stages before the membrane adder).
    pub fn adder_tree_depth(&self) -> usize {
        (usize::BITS - (self.ports - 1).leading_zeros()).max(1) as usize
    }

    /// Per-cycle accumulation delay: decode + adder tree + membrane
    /// add/register.
    pub fn accumulate_delay(&self) -> Seconds {
        let stages = self.adder_tree_depth() + 1; // +1: the m-bit Vmem adder
        Seconds::new(fitted::NEURON_ADD_STAGE_DELAY) * stages as f64
            + Seconds::new(fitted::NEURON_COMPARE_DELAY) * 0.5 // register + mux share
    }

    /// Delay of the `R_empty` fire cycle: compare + request-register update.
    pub fn fire_delay(&self) -> Seconds {
        Seconds::new(fitted::NEURON_COMPARE_DELAY)
    }

    /// The neuron's contribution to the pipeline stage: the slower of the
    /// accumulate and fire paths.
    pub fn stage_delay(&self) -> Seconds {
        self.accumulate_delay().max(self.fire_delay())
    }

    /// Energy of integrating `valid_bits` port bits this cycle.
    pub fn accumulate_energy(&self, valid_bits: usize) -> Joules {
        Joules::new(fitted::NEURON_ACCUM_ENERGY_PER_BIT) * valid_bits as f64
    }

    /// Energy of one end-of-timestep evaluation (compare + fire).
    pub fn fire_energy(&self) -> Joules {
        Joules::new(fitted::NEURON_FIRE_ENERGY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_depth_by_port_count() {
        assert_eq!(NeuronTiming::new(1).adder_tree_depth(), 1);
        assert_eq!(NeuronTiming::new(2).adder_tree_depth(), 1);
        assert_eq!(NeuronTiming::new(3).adder_tree_depth(), 2);
        assert_eq!(NeuronTiming::new(4).adder_tree_depth(), 2);
        assert_eq!(NeuronTiming::new(8).adder_tree_depth(), 3);
    }

    #[test]
    fn delay_grows_with_ports() {
        let d1 = NeuronTiming::new(1).stage_delay();
        let d4 = NeuronTiming::new(4).stage_delay();
        assert!(d4 >= d1);
        assert!(
            d4.ps() < 500.0,
            "neuron path stays a fraction of the 1.2 ns cycle"
        );
    }

    #[test]
    fn energy_scales_with_valid_bits() {
        let t = NeuronTiming::new(4);
        assert!(t.accumulate_energy(4) > t.accumulate_energy(1));
        assert!(t.accumulate_energy(0).is_zero());
        assert!(t.fire_energy().fj() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        NeuronTiming::new(0);
    }
}
