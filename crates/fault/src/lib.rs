//! Deterministic fault injection for the ESAM stack.
//!
//! A [`FaultPlan`] is a *pure function from coordinates to fault
//! decisions*: it carries a user seed, a [`FaultConfig`] of per-domain
//! rates, and one ChaCha8-derived 64-bit subkey per fault domain. Whether a
//! given site faults is decided by hashing the site's coordinates with the
//! domain subkey (a splitmix64-style finalizer) and comparing the hash
//! against `rate · 2^64` — no mutable RNG state is consumed, so:
//!
//! * **Order independence.** A site's verdict does not depend on how many
//!   other sites were queried before it, or from which thread. The same
//!   seed yields bit-identical fault sites at any worker count, core
//!   count, chunking or interleaving — the property every determinism
//!   suite in this workspace pins.
//! * **Nested sites.** For a fixed seed, raising a rate only *adds* fault
//!   sites (`hash < t1 ⇒ hash < t2` when `t1 ≤ t2`), so sweeping a rate
//!   produces monotone degradation by construction.
//! * **Zero cost when disabled.** Every decision helper short-circuits on
//!   a zero rate before hashing, and [`FaultPlan::none`] disables every
//!   domain — pinned bit-identical to the unfaulted baseline by the
//!   consumer crates' test suites.
//!
//! The three fault domains (SRAM, serve, mesh) are documented on
//! [`FaultConfig`]; the injection and recovery machinery lives in
//! `esam-core`, `esam-serve` and `esam-mesh` respectively — this crate
//! only answers "does site X fault under plan P".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of fault domains (= derived subkeys) in a plan.
///
/// New domains are appended, never inserted: subkeys derive sequentially
/// from one ChaCha8 stream over the seed, so appending keeps every
/// existing domain's fault sites stable for a given seed.
const DOMAINS: usize = 10;

/// Subkey indices, one per fault domain.
const STUCK: usize = 0;
const WFLIP: usize = 1;
const MFLIP: usize = 2;
const WPANIC: usize = 3;
const WSTALL: usize = 4;
const DROP: usize = 5;
const DELAY: usize = 6;
const CSTALL: usize = 7;
const CPANIC: usize = 8;
const CORRUPT: usize = 9;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hashes a coordinate tuple under a domain subkey.
#[inline]
fn site_hash(key: u64, coords: &[u64]) -> u64 {
    let mut h = mix(key);
    for &c in coords {
        h = mix(h ^ c);
    }
    h
}

/// `rate` mapped onto `[0, 2^64]` so `hash < threshold` fires with
/// probability `rate` (clamped; `rate >= 1` always fires).
#[inline]
fn threshold(rate: f64) -> u128 {
    if rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        1u128 << 64
    } else {
        // rate in (0, 1): the product is < 2^64 and non-negative, so the
        // cast is exact-enough (and monotone in rate, which is what the
        // nested-sites property needs).
        (rate * 18_446_744_073_709_551_616.0) as u128
    }
}

#[inline]
fn decide(key: u64, rate: f64, coords: &[u64]) -> bool {
    rate > 0.0 && u128::from(site_hash(key, coords)) < threshold(rate)
}

/// Per-domain fault rates and shape parameters. All rates are
/// probabilities in `[0, 1]` (clamped at decision time); a zero rate
/// disables its domain entirely.
///
/// | domain | knob | unit of the rate |
/// |---|---|---|
/// | SRAM | [`stuck_rate`](Self::with_stuck_rate) | per weight bit (permanent) |
/// | SRAM | [`weight_flip_rate`](Self::with_weight_flip_rate) | per weight bit *per frame* (transient) |
/// | SRAM | [`membrane_flip_rate`](Self::with_membrane_flip_rate) | per output neuron per frame |
/// | serve | [`worker_panic_rate`](Self::with_worker_panic_rate) | per (request, attempt) |
/// | serve | [`worker_stall_rate`](Self::with_worker_stall) | per (request, attempt) |
/// | mesh | [`drop_rate`](Self::with_drop_rate) | per link hand-off |
/// | mesh | [`delay_rate`](Self::with_delay) | per link hand-off |
/// | mesh | [`core_stall_rate`](Self::with_core_stall) | per core hand-off |
/// | mesh | [`core_panic_rate`](Self::with_core_panic_rate) | per core hand-off |
/// | mesh | [`packet_corrupt_rate`](Self::with_packet_corrupt_rate) | per link transmission attempt |
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    stuck_rate: f64,
    weight_flip_rate: f64,
    membrane_flip_rate: f64,
    worker_panic_rate: f64,
    worker_stall_rate: f64,
    worker_stall_micros: u64,
    drop_rate: f64,
    delay_rate: f64,
    delay_cycles: u64,
    core_stall_rate: f64,
    core_stall_cycles: u64,
    core_panic_rate: f64,
    packet_corrupt_rate: f64,
}

impl FaultConfig {
    /// All rates zero: no faults in any domain.
    pub fn none() -> Self {
        Self::default()
    }

    /// Permanent stuck-at faults: each weight bit is stuck (to a
    /// hash-derived 0 or 1) with probability `rate`. Materialized into the
    /// weight arrays once at plan installation — zero hot-path cost.
    #[must_use]
    pub fn with_stuck_rate(mut self, rate: f64) -> Self {
        self.stuck_rate = rate;
        self
    }

    /// Transient weight-bit flips: each weight bit flips, for the duration
    /// of one frame, with probability `rate` per frame.
    #[must_use]
    pub fn with_weight_flip_rate(mut self, rate: f64) -> Self {
        self.weight_flip_rate = rate;
        self
    }

    /// Transient membrane-word upsets: each output neuron's membrane word
    /// takes a low-bit flip with probability `rate` per frame.
    #[must_use]
    pub fn with_membrane_flip_rate(mut self, rate: f64) -> Self {
        self.membrane_flip_rate = rate;
        self
    }

    /// Worker panics: each (request, attempt) execution panics with
    /// probability `rate` (keyed on the attempt so retries terminate).
    #[must_use]
    pub fn with_worker_panic_rate(mut self, rate: f64) -> Self {
        self.worker_panic_rate = rate;
        self
    }

    /// Worker stalls: each (request, attempt) execution sleeps `stall` with
    /// probability `rate` before serving.
    #[must_use]
    pub fn with_worker_stall(mut self, rate: f64, stall: Duration) -> Self {
        self.worker_stall_rate = rate;
        self.worker_stall_micros = stall.as_micros() as u64;
        self
    }

    /// Dropped AER packets: each link hand-off loses its packet with
    /// probability `rate` (the mesh recovers the lost frames afterwards).
    #[must_use]
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Delayed AER packets: each link hand-off costs `cycles` extra link
    /// cycles with probability `rate`.
    #[must_use]
    pub fn with_delay(mut self, rate: f64, cycles: u64) -> Self {
        self.delay_rate = rate;
        self.delay_cycles = cycles;
        self
    }

    /// Core stalls: each core hand-off adds `cycles` to the core's modeled
    /// occupancy with probability `rate`.
    #[must_use]
    pub fn with_core_stall(mut self, rate: f64, cycles: u64) -> Self {
        self.core_stall_rate = rate;
        self.core_stall_cycles = cycles;
        self
    }

    /// Core panics: each core hand-off kills the core's pipeline thread
    /// with probability `rate` (pipelined execution only; the mesh degrades
    /// to the sequential walk for the affected frames).
    #[must_use]
    pub fn with_core_panic_rate(mut self, rate: f64) -> Self {
        self.core_panic_rate = rate;
        self
    }

    /// In-flight AER packet corruption: each link transmission *attempt*
    /// (the original hand-off and every retransmission) takes a single-bit
    /// payload upset with probability `rate`. The mesh's CRC verify must
    /// catch these — a missed one would be consumed as wrong data.
    #[must_use]
    pub fn with_packet_corrupt_rate(mut self, rate: f64) -> Self {
        self.packet_corrupt_rate = rate;
        self
    }

    /// Permanent stuck-at rate per weight bit.
    pub fn stuck_rate(&self) -> f64 {
        self.stuck_rate
    }

    /// Transient weight-flip rate per weight bit per frame.
    pub fn weight_flip_rate(&self) -> f64 {
        self.weight_flip_rate
    }

    /// Membrane-word upset rate per output neuron per frame.
    pub fn membrane_flip_rate(&self) -> f64 {
        self.membrane_flip_rate
    }

    /// Worker panic rate per (request, attempt).
    pub fn worker_panic_rate(&self) -> f64 {
        self.worker_panic_rate
    }

    /// Worker stall rate per (request, attempt).
    pub fn worker_stall_rate(&self) -> f64 {
        self.worker_stall_rate
    }

    /// Injected worker stall duration.
    pub fn worker_stall(&self) -> Duration {
        Duration::from_micros(self.worker_stall_micros)
    }

    /// Packet drop rate per link hand-off.
    pub fn drop_rate(&self) -> f64 {
        self.drop_rate
    }

    /// Packet delay rate per link hand-off.
    pub fn delay_rate(&self) -> f64 {
        self.delay_rate
    }

    /// Extra link cycles charged per delayed packet.
    pub fn delay_cycles(&self) -> u64 {
        self.delay_cycles
    }

    /// Core stall rate per core hand-off.
    pub fn core_stall_rate(&self) -> f64 {
        self.core_stall_rate
    }

    /// Extra occupancy cycles charged per core stall.
    pub fn core_stall_cycles(&self) -> u64 {
        self.core_stall_cycles
    }

    /// Core panic rate per core hand-off.
    pub fn core_panic_rate(&self) -> f64 {
        self.core_panic_rate
    }

    /// Packet corruption rate per link transmission attempt.
    pub fn packet_corrupt_rate(&self) -> f64 {
        self.packet_corrupt_rate
    }
}

/// A seeded, reproducible fault plan: the seed, the per-domain rates, and
/// one derived subkey per domain.
///
/// Plans are `Copy` and stateless — see the crate docs for why that makes
/// every decision order-independent and thread-count-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    keys: [u64; DOMAINS],
}

impl FaultPlan {
    /// The disabled plan: every rate zero, every decision `false`, every
    /// consumer bit-identical to its unfaulted baseline.
    pub fn none() -> Self {
        Self {
            seed: 0,
            config: FaultConfig::none(),
            keys: [0; DOMAINS],
        }
    }

    /// Derives a plan from a seed and a rate configuration. The per-domain
    /// subkeys come from a ChaCha8 stream over the seed, so distinct
    /// domains never share fault sites even at equal rates.
    pub fn seeded(seed: u64, config: FaultConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut keys = [0u64; DOMAINS];
        for key in &mut keys {
            *key = rng.next_u64();
        }
        Self { seed, config, keys }
    }

    /// The seed the plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rate configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether any stuck-at faults are configured.
    pub fn stuck_active(&self) -> bool {
        self.config.stuck_rate > 0.0
    }

    /// Whether any *transient* SRAM-domain faults are configured (weight or
    /// membrane flips). Transient faults change per-frame results, so the
    /// bit-sliced block path (which has no per-frame hook) is ineligible
    /// while they are active; stuck-at faults alone keep it eligible.
    pub fn transient_active(&self) -> bool {
        self.config.weight_flip_rate > 0.0 || self.config.membrane_flip_rate > 0.0
    }

    /// Whether any serve-domain faults are configured.
    pub fn serve_active(&self) -> bool {
        self.config.worker_panic_rate > 0.0 || self.config.worker_stall_rate > 0.0
    }

    /// Whether any mesh-domain faults are configured.
    pub fn mesh_active(&self) -> bool {
        self.config.drop_rate > 0.0
            || self.config.delay_rate > 0.0
            || self.config.core_stall_rate > 0.0
            || self.config.core_panic_rate > 0.0
            || self.config.packet_corrupt_rate > 0.0
    }

    /// Whether in-flight packet corruption is configured (the mesh arms
    /// its CRC verify + NACK/retransmit protocol only while this is true,
    /// keeping the clean path bit-identical to the unprotected baseline).
    pub fn corrupt_active(&self) -> bool {
        self.config.packet_corrupt_rate > 0.0
    }

    /// Whether the plan injects nothing anywhere.
    pub fn is_none(&self) -> bool {
        !self.stuck_active()
            && !self.transient_active()
            && !self.serve_active()
            && !self.mesh_active()
    }

    /// Stuck-at verdict for weight bit `(layer, input, output)`:
    /// `Some(value)` if the bit is permanently stuck at `value`.
    pub fn stuck_site(&self, layer: u64, input: u64, output: u64) -> Option<bool> {
        let rate = self.config.stuck_rate;
        if rate <= 0.0 {
            return None;
        }
        let h = site_hash(self.keys[STUCK], &[layer, input, output]);
        if u128::from(h) < threshold(rate) {
            // The stuck value comes from a second mix so it is independent
            // of the (biased-low) site hash.
            Some(mix(h) & 1 == 1)
        } else {
            None
        }
    }

    /// Whether weight bit `(layer, input, output)` flips during `frame_id`.
    pub fn weight_flip(&self, frame_id: u64, layer: u64, input: u64, output: u64) -> bool {
        decide(
            self.keys[WFLIP],
            self.config.weight_flip_rate,
            &[frame_id, layer, input, output],
        )
    }

    /// Whether output neuron `neuron`'s membrane word is upset during
    /// `frame_id`.
    pub fn membrane_flip(&self, frame_id: u64, neuron: u64) -> bool {
        decide(
            self.keys[MFLIP],
            self.config.membrane_flip_rate,
            &[frame_id, neuron],
        )
    }

    /// Whether serving attempt `attempt` of request `request_id` panics.
    pub fn worker_panic(&self, request_id: u64, attempt: u64) -> bool {
        decide(
            self.keys[WPANIC],
            self.config.worker_panic_rate,
            &[request_id, attempt],
        )
    }

    /// Whether serving attempt `attempt` of request `request_id` stalls.
    pub fn worker_stall(&self, request_id: u64, attempt: u64) -> bool {
        decide(
            self.keys[WSTALL],
            self.config.worker_stall_rate,
            &[request_id, attempt],
        )
    }

    /// Whether the packet for frame `t` is dropped on link `src → dst`.
    pub fn packet_drop(&self, t: u64, src: u64, dst: u64) -> bool {
        decide(self.keys[DROP], self.config.drop_rate, &[t, src, dst])
    }

    /// Whether the packet for frame `t` is delayed on link `src → dst`.
    pub fn packet_delay(&self, t: u64, src: u64, dst: u64) -> bool {
        decide(self.keys[DELAY], self.config.delay_rate, &[t, src, dst])
    }

    /// Whether core `core` stalls on its `t`-th hand-off.
    pub fn core_stall(&self, t: u64, core: u64) -> bool {
        decide(self.keys[CSTALL], self.config.core_stall_rate, &[t, core])
    }

    /// Whether core `core` panics on its `t`-th hand-off.
    pub fn core_panic(&self, t: u64, core: u64) -> bool {
        decide(self.keys[CPANIC], self.config.core_panic_rate, &[t, core])
    }

    /// Corruption verdict for transmission `attempt` of the frame-`t`
    /// packet on link `src → dst`: `Some(selector)` when the attempt takes
    /// a single-bit in-flight upset. The selector is a well-mixed 64-bit
    /// value the consumer reduces onto its payload width to pick the
    /// struck bit — derived from a second mix so it is independent of the
    /// (biased-low) site hash, exactly like [`stuck_site`](Self::stuck_site).
    pub fn packet_corrupt(&self, t: u64, src: u64, dst: u64, attempt: u64) -> Option<u64> {
        let rate = self.config.packet_corrupt_rate;
        if rate <= 0.0 {
            return None;
        }
        let h = site_hash(self.keys[CORRUPT], &[t, src, dst, attempt]);
        if u128::from(h) < threshold(rate) {
            Some(mix(h))
        } else {
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// SRAM-domain injection counters, merged under the workspace's exact u64
/// law (plain sums — bit-identical at any thread or core count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTally {
    /// Transient weight-bit flips applied (counted once per faulted frame,
    /// not double-counted for the post-frame revert).
    pub weight_flips: u64,
    /// Membrane-word upsets applied.
    pub membrane_flips: u64,
}

impl FaultTally {
    /// Adds another tally's counts into this one (exact integer sums).
    /// Overflow is loud in debug builds and saturates in release (see
    /// [`esam_obs::tally_add`]).
    pub fn merge(&mut self, other: &FaultTally) {
        esam_obs::tally_add(&mut self.weight_flips, other.weight_flips);
        esam_obs::tally_add(&mut self.membrane_flips, other.membrane_flips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lively() -> FaultConfig {
        FaultConfig::none()
            .with_stuck_rate(0.3)
            .with_weight_flip_rate(0.3)
            .with_membrane_flip_rate(0.3)
            .with_worker_panic_rate(0.3)
            .with_worker_stall(0.3, Duration::from_micros(50))
            .with_drop_rate(0.3)
            .with_delay(0.3, 7)
            .with_core_stall(0.3, 9)
            .with_core_panic_rate(0.3)
            .with_packet_corrupt_rate(0.3)
    }

    #[test]
    fn none_never_fires_anywhere() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!plan.stuck_active());
        assert!(!plan.transient_active());
        assert!(!plan.serve_active());
        assert!(!plan.mesh_active());
        assert!(!plan.corrupt_active());
        for a in 0..50u64 {
            for b in 0..5u64 {
                assert_eq!(plan.stuck_site(a, b, a ^ b), None);
                assert!(!plan.weight_flip(a, b, a, b));
                assert!(!plan.membrane_flip(a, b));
                assert!(!plan.worker_panic(a, b));
                assert!(!plan.worker_stall(a, b));
                assert!(!plan.packet_drop(a, b, a));
                assert!(!plan.packet_delay(a, b, a));
                assert!(!plan.core_stall(a, b));
                assert!(!plan.core_panic(a, b));
                assert_eq!(plan.packet_corrupt(a, b, a, b), None);
            }
        }
    }

    #[test]
    fn same_seed_same_sites_fresh_plans() {
        let a = FaultPlan::seeded(42, lively());
        let b = FaultPlan::seeded(42, lively());
        assert_eq!(a, b);
        for t in 0..200u64 {
            assert_eq!(a.weight_flip(t, 1, 2, 3), b.weight_flip(t, 1, 2, 3));
            assert_eq!(a.packet_drop(t, 0, 1), b.packet_drop(t, 0, 1));
            assert_eq!(a.stuck_site(0, t, 5), b.stuck_site(0, t, 5));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::seeded(1, lively());
        let b = FaultPlan::seeded(2, lively());
        let differs = (0..500u64).any(|t| a.weight_flip(t, 0, 0, 0) != b.weight_flip(t, 0, 0, 0));
        assert!(
            differs,
            "seeds 1 and 2 agree on 500 sites — keys not mixed in"
        );
    }

    #[test]
    fn rate_one_always_fires_and_rates_clamp() {
        let hot = FaultPlan::seeded(7, FaultConfig::none().with_drop_rate(5.0));
        let cold = FaultPlan::seeded(7, FaultConfig::none().with_drop_rate(-3.0));
        for t in 0..100u64 {
            assert!(hot.packet_drop(t, 0, 1));
            assert!(!cold.packet_drop(t, 0, 1));
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::seeded(9, FaultConfig::none().with_weight_flip_rate(0.1));
        let hits = (0..10_000u64)
            .filter(|&t| plan.weight_flip(t, 0, 0, 0))
            .count();
        assert!((800..1200).contains(&hits), "10% rate gave {hits}/10000");
    }

    #[test]
    fn corrupt_verdicts_are_attempt_keyed() {
        // Retransmission attempts draw independent verdicts, so a bounded
        // retry loop terminates with overwhelming probability; and the
        // struck-bit selector varies across sites (it is a mixed hash,
        // not a constant).
        let plan = FaultPlan::seeded(11, FaultConfig::none().with_packet_corrupt_rate(0.5));
        let verdicts: Vec<_> = (0..64u64)
            .map(|a| plan.packet_corrupt(3, 0, 1, a))
            .collect();
        assert!(verdicts.iter().any(Option::is_some));
        assert!(verdicts.iter().any(Option::is_none));
        let selectors: std::collections::BTreeSet<u64> =
            verdicts.iter().flatten().copied().collect();
        assert!(selectors.len() > 1, "selectors should vary across attempts");
        assert!(plan.corrupt_active());
        assert!(plan.mesh_active());
    }

    #[test]
    fn domains_use_distinct_keys() {
        let plan = FaultPlan::seeded(
            3,
            FaultConfig::none().with_drop_rate(0.5).with_delay(0.5, 1),
        );
        let differs = (0..200u64).any(|t| plan.packet_drop(t, 0, 1) != plan.packet_delay(t, 0, 1));
        assert!(differs, "drop and delay share sites — domain keys collide");
    }

    #[test]
    fn fault_tally_merge_is_plain_addition() {
        let mut a = FaultTally {
            weight_flips: 3,
            membrane_flips: 5,
        };
        a.merge(&FaultTally {
            weight_flips: 10,
            membrane_flips: 1,
        });
        assert_eq!(
            a,
            FaultTally {
                weight_flips: 13,
                membrane_flips: 6,
            }
        );
    }

    proptest! {
        /// Raising a rate only adds fault sites (the nesting that makes
        /// swept degradation curves monotone by construction).
        #[test]
        fn sites_nest_as_rates_rise(
            seed in 0u64..1000,
            lo in 0.0f64..0.5,
            extra in 0.0f64..0.5,
            t in 0u64..10_000,
        ) {
            let low = FaultPlan::seeded(seed, FaultConfig::none().with_weight_flip_rate(lo));
            let high = FaultPlan::seeded(
                seed,
                FaultConfig::none().with_weight_flip_rate(lo + extra),
            );
            if low.weight_flip(t, 1, 2, 3) {
                prop_assert!(high.weight_flip(t, 1, 2, 3));
            }
        }

        /// Decisions are pure: re-querying in any order gives the same
        /// verdict (no hidden RNG state).
        #[test]
        fn decisions_are_pure(seed in 0u64..1000, t in 0u64..10_000) {
            let plan = FaultPlan::seeded(seed, FaultConfig::none().with_drop_rate(0.37));
            let first = plan.packet_drop(t, 2, 3);
            // Interleave unrelated queries, then re-ask.
            for other in 0..16u64 {
                let _ = plan.packet_drop(other, 0, 1);
            }
            prop_assert_eq!(plan.packet_drop(t, 2, 3), first);
        }
    }
}
