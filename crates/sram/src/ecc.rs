//! SECDED ECC for weight rows: Hamming single-error correction plus an
//! overall parity bit for double-error detection.
//!
//! Production SRAM macros at scaled nodes ship ECC because bitcell upsets
//! are a fact of life; this module gives the modeled CIM array the same
//! self-checking ability, with **no oracle** — detection and correction
//! use only the stored codeword, never the fault plan.
//!
//! # Codeword layout
//!
//! Each row of `k` data bits (`k ≤ 128` for the paper's arrays) is
//! protected by `r` Hamming check bits with `2^r ≥ k + r + 1` plus one
//! overall parity bit, stored *beside* the row (spare columns in a real
//! macro; a `u16` sidecar word per row here — `r + 1 ≤ 9` bits for
//! `k ≤ 128`). Data bits occupy the non-power-of-two codeword positions
//! `1..=n` in order; check bit `j` lives at position `2^j` and covers every
//! position with bit `j` set.
//!
//! # Syndrome path
//!
//! The hot read path is word-parallel: check bit `j`'s data coverage is
//! precomputed as a mask over the row's packed `u64` words, so one
//! syndrome bit is an AND + XOR-fold + popcount-parity over
//! `cols.div_ceil(64)` words — the check piggybacks on the packed-row read
//! instead of walking bits. A scalar bit-by-bit reference
//! ([`SecdedCode::encode_reference`], [`SecdedCode::syndrome_reference`])
//! is retained and pinned equivalent by proptests.
//!
//! # Classification
//!
//! With syndrome `s` (over data + stored check bits) and overall parity
//! mismatch `p`:
//!
//! | `s`     | `p`   | verdict |
//! |---------|-------|---------|
//! | 0       | clean | [`RowVerdict::Clean`] |
//! | ≠0      | odd   | single-bit error at position `s` (data or check bit) — correctable |
//! | 0       | odd   | the overall parity bit itself flipped — data intact |
//! | ≠0      | clean | double-bit error — detected, **not** miscorrected |

use esam_bits::{BitMatrix, BitVec};
use esam_obs::tally_add;

/// How the read path treats the per-row SECDED codewords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// No codewords, no syndrome checks: bit-identical to the unprotected
    /// baseline (outputs, counters, allocations).
    #[default]
    Off,
    /// Syndrome-check every row read and count what is found, but deliver
    /// the raw (possibly corrupted) bits — the "monitoring only" rung of
    /// the quarantine ladder.
    Detect,
    /// Syndrome-check every row read and repair single-bit errors in the
    /// delivered bits (the stored row is healed later by the scrub pass).
    Correct,
}

impl IntegrityMode {
    /// Whether this mode performs syndrome checks at all.
    pub fn checks(self) -> bool {
        !matches!(self, IntegrityMode::Off)
    }
}

/// Integrity event counters, merged under the workspace's exact u64 law
/// (plain sums — bit-identical at any thread or core count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegrityTally {
    /// Row reads that went through the syndrome check.
    pub checked_reads: u64,
    /// Single-bit (correctable) errors observed on reads. Under
    /// [`IntegrityMode::Correct`] the delivered bits were repaired; under
    /// [`IntegrityMode::Detect`] the error was only counted.
    pub corrected: u64,
    /// Double-bit (detected-uncorrectable) errors observed on reads.
    pub detected: u64,
    /// Corruption the codeword could *not* see (verdict `Clean`, content
    /// wrong), found by the scrub pass's golden audit. SECDED guarantees
    /// this stays zero for ≤ 2 flipped bits per row.
    pub silent: u64,
    /// Rows healed in place by the scrub pass (single-bit errors).
    pub scrub_corrected: u64,
    /// Rows the scrub pass had to reload from the golden store
    /// (uncorrectable or silent corruption).
    pub scrub_reloaded: u64,
}

impl IntegrityTally {
    /// Adds another tally's counts into this one (exact integer sums;
    /// saturating in release, loud in debug — see [`esam_obs::tally_add`]).
    pub fn merge(&mut self, other: &IntegrityTally) {
        tally_add(&mut self.checked_reads, other.checked_reads);
        tally_add(&mut self.corrected, other.corrected);
        tally_add(&mut self.detected, other.detected);
        tally_add(&mut self.silent, other.silent);
        tally_add(&mut self.scrub_corrected, other.scrub_corrected);
        tally_add(&mut self.scrub_reloaded, other.scrub_reloaded);
    }

    /// Uncorrectable events: detected-uncorrectable reads plus golden
    /// reloads — the signal the serving layer's health monitor folds into
    /// quarantine decisions.
    pub fn uncorrectable(&self) -> u64 {
        self.detected.saturating_add(self.scrub_reloaded)
    }
}

/// What the syndrome check concluded about one row read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowVerdict {
    /// Syndrome zero, parity clean: the codeword is consistent.
    Clean,
    /// Single-bit error in a *data* bit at this column — corrected in the
    /// delivered bits under [`IntegrityMode::Correct`].
    CorrectedData(usize),
    /// Single-bit error in a stored check bit (or the overall parity bit):
    /// the data bits are intact.
    CorrectedCheck,
    /// Double-bit error: detected, deliberately not miscorrected.
    DetectedUncorrectable,
}

/// A SECDED code for rows of a fixed width, with precomputed word-parallel
/// syndrome masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecdedCode {
    /// Data bits per row.
    k: usize,
    /// Hamming check bits (`2^r ≥ k + r + 1`).
    r: usize,
    /// Codeword length without the overall parity bit (`k + r`).
    n: usize,
    /// `masks[j]` covers the data bits check bit `j` protects, as packed
    /// words aligned with [`BitMatrix::row_words`].
    masks: Vec<Vec<u64>>,
    /// Codeword position (1-based) of each data bit.
    data_pos: Vec<u32>,
    /// Data index of each codeword position (`usize::MAX` marks check-bit
    /// positions); index 0 unused.
    pos_data: Vec<usize>,
}

/// Parity (as 0/1 in the LSB) of the popcount of `words`.
#[inline]
fn words_parity(words: &[u64]) -> u64 {
    words.iter().fold(0u64, |acc, w| acc ^ w).count_ones() as u64 & 1
}

impl SecdedCode {
    /// Builds the code for rows of `k` data bits.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero (an empty row has nothing to protect) or
    /// needs more than 15 sidecar bits (`k` beyond ~16 Kbit per row — far
    /// past any modeled array).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "SECDED over an empty row");
        let mut r = 1usize;
        while (1usize << r) < k + r + 1 {
            r += 1;
        }
        assert!(r < 15, "row width {k} needs too many check bits");
        let n = k + r;
        let words_per_row = k.div_ceil(64);
        let mut masks = vec![vec![0u64; words_per_row]; r];
        let mut data_pos = Vec::with_capacity(k);
        let mut pos_data = vec![usize::MAX; n + 1];
        let mut pos = 1u32;
        for i in 0..k {
            while (pos & (pos - 1)) == 0 {
                pos += 1; // skip power-of-two (check bit) positions
            }
            data_pos.push(pos);
            pos_data[pos as usize] = i;
            for (j, mask) in masks.iter_mut().enumerate() {
                if pos >> j & 1 == 1 {
                    mask[i / 64] |= 1u64 << (i % 64);
                }
            }
            pos += 1;
        }
        Self {
            k,
            r,
            n,
            masks,
            data_pos,
            pos_data,
        }
    }

    /// Data bits per row.
    pub fn data_bits(&self) -> usize {
        self.k
    }

    /// Hamming check bits per row (the sidecar word carries `r + 1` bits
    /// including the overall parity).
    pub fn check_bits(&self) -> usize {
        self.r
    }

    /// Encodes one packed row into its sidecar word: Hamming check bits in
    /// bits `0..r`, the overall parity bit at bit `r` (chosen so the full
    /// codeword — data + check + parity — has even parity).
    pub fn encode(&self, row_words: &[u64]) -> u16 {
        debug_assert_eq!(row_words.len(), self.k.div_ceil(64));
        let mut sidecar = 0u16;
        let mut total = words_parity(row_words);
        for (j, mask) in self.masks.iter().enumerate() {
            let covered: u64 = row_words
                .iter()
                .zip(mask)
                .fold(0u64, |acc, (w, m)| acc ^ (w & m))
                .count_ones() as u64
                & 1;
            sidecar |= (covered as u16) << j;
            total ^= covered;
        }
        sidecar | ((total as u16) << self.r)
    }

    /// Scalar bit-by-bit reference of [`encode`](Self::encode), used by
    /// the property suite to pin the word-parallel masks.
    pub fn encode_reference(&self, row: &BitVec) -> u16 {
        assert_eq!(row.len(), self.k);
        let mut sidecar = 0u16;
        let mut total = 0u16;
        for j in 0..self.r {
            let mut parity = 0u16;
            for (i, &pos) in self.data_pos.iter().enumerate() {
                if pos >> j & 1 == 1 && row.get(i) {
                    parity ^= 1;
                }
            }
            sidecar |= parity << j;
            total ^= parity;
        }
        for i in 0..self.k {
            if row.get(i) {
                total ^= 1;
            }
        }
        sidecar | (total << self.r)
    }

    /// Word-parallel syndrome of a read row against its stored sidecar:
    /// returns `(syndrome, parity_mismatch)`.
    pub fn syndrome(&self, row_words: &[u64], sidecar: u16) -> (u32, bool) {
        debug_assert_eq!(row_words.len(), self.k.div_ceil(64));
        let mut s = 0u32;
        let mut total = words_parity(row_words) as u16;
        for (j, mask) in self.masks.iter().enumerate() {
            let covered: u64 = row_words
                .iter()
                .zip(mask)
                .fold(0u64, |acc, (w, m)| acc ^ (w & m))
                .count_ones() as u64
                & 1;
            let stored = u64::from(sidecar) >> j & 1;
            s |= ((covered ^ stored) as u32) << j;
            total ^= stored as u16;
        }
        total ^= sidecar >> self.r & 1;
        (s, total & 1 == 1)
    }

    /// Scalar reference of [`syndrome`](Self::syndrome).
    pub fn syndrome_reference(&self, row: &BitVec, sidecar: u16) -> (u32, bool) {
        let recomputed = self.encode_reference(row);
        let mut s = 0u32;
        for j in 0..self.r {
            s |= u32::from((recomputed ^ sidecar) >> j & 1) << j;
        }
        // Parity mismatch: the total parity over data + stored check bits +
        // stored parity bit is odd.
        let mut total = 0u16;
        for i in 0..self.k {
            total ^= u16::from(row.get(i));
        }
        for j in 0..=self.r {
            total ^= sidecar >> j & 1;
        }
        (s, total & 1 == 1)
    }

    /// Classifies one read from its syndrome/parity pair.
    pub fn classify(&self, syndrome: u32, parity_mismatch: bool) -> RowVerdict {
        match (syndrome, parity_mismatch) {
            (0, false) => RowVerdict::Clean,
            (0, true) => RowVerdict::CorrectedCheck, // the parity bit itself
            (s, true) => {
                let s = s as usize;
                if s <= self.n && self.pos_data[s] != usize::MAX {
                    RowVerdict::CorrectedData(self.pos_data[s])
                } else {
                    // A power-of-two position (a stored check bit flipped)
                    // or an out-of-range syndrome that cannot name a data
                    // bit: the data itself is intact either way.
                    RowVerdict::CorrectedCheck
                }
            }
            (_, false) => RowVerdict::DetectedUncorrectable,
        }
    }
}

/// Per-array SECDED state: the code plus one sidecar word per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccState {
    code: SecdedCode,
    sidecars: Vec<u16>,
}

impl EccState {
    /// Encodes every row of `bits` (row width = `bits.cols()`).
    pub fn encode_matrix(bits: &BitMatrix) -> Self {
        let code = SecdedCode::new(bits.cols());
        let sidecars = (0..bits.rows())
            .map(|row| code.encode(bits.row_words(row)))
            .collect();
        Self { code, sidecars }
    }

    /// The code in effect.
    pub fn code(&self) -> &SecdedCode {
        &self.code
    }

    /// The stored sidecar word of `row`.
    pub fn sidecar(&self, row: usize) -> u16 {
        self.sidecars[row]
    }

    /// Re-encodes `row` from its current content (a legitimate write path
    /// refreshing the codeword; fault strikes deliberately bypass this).
    pub fn refresh_row(&mut self, row: usize, row_words: &[u64]) {
        self.sidecars[row] = self.code.encode(row_words);
    }

    /// Re-encodes every row (bulk load path).
    pub fn refresh_all(&mut self, bits: &BitMatrix) {
        debug_assert_eq!(self.sidecars.len(), bits.rows());
        for row in 0..bits.rows() {
            self.sidecars[row] = self.code.encode(bits.row_words(row));
        }
    }

    /// Syndrome-checks one read row (its packed words) against the stored
    /// sidecar and classifies the result. Pure — the repair decisions
    /// belong to the caller, which owns the delivered bits and the store.
    pub fn check_row(&self, row: usize, row_words: &[u64]) -> RowVerdict {
        let (s, p) = self.code.syndrome(row_words, self.sidecars[row]);
        self.code.classify(s, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_row(width: usize, seed: u64) -> BitVec {
        // Deterministic pseudo-random content (splitmix-style walk).
        let mut v = BitVec::new(width);
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in 0..width {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            if x & 1 == 1 {
                v.set(i, true);
            }
        }
        v
    }

    #[test]
    fn code_dimensions_match_hamming_bound() {
        for (k, r) in [
            (1, 2),
            (4, 3),
            (11, 4),
            (26, 5),
            (57, 6),
            (120, 7),
            (128, 8),
        ] {
            let code = SecdedCode::new(k);
            assert_eq!(code.check_bits(), r, "k = {k}");
            assert!((1 << r) > k + r);
        }
    }

    #[test]
    fn encode_matches_scalar_reference() {
        for width in [1usize, 7, 63, 64, 65, 128] {
            let code = SecdedCode::new(width);
            for seed in 0..8u64 {
                let row = random_row(width, seed);
                assert_eq!(
                    code.encode(row.words()),
                    code.encode_reference(&row),
                    "width {width} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn clean_rows_have_zero_syndrome() {
        let code = SecdedCode::new(128);
        for seed in 0..8u64 {
            let row = random_row(128, seed);
            let sidecar = code.encode(row.words());
            let (s, p) = code.syndrome(row.words(), sidecar);
            assert_eq!((s, p), (0, false));
            assert_eq!(code.classify(s, p), RowVerdict::Clean);
            assert_eq!(code.syndrome_reference(&row, sidecar), (0, false));
        }
    }

    #[test]
    fn every_single_data_flip_is_located() {
        let code = SecdedCode::new(128);
        let row = random_row(128, 3);
        let sidecar = code.encode(row.words());
        for col in 0..128 {
            let mut struck = row.clone();
            struck.set(col, !struck.get(col));
            let (s, p) = code.syndrome(struck.words(), sidecar);
            assert_eq!(
                code.classify(s, p),
                RowVerdict::CorrectedData(col),
                "flip at {col}"
            );
            assert_eq!(code.syndrome_reference(&struck, sidecar), (s, p));
        }
    }

    #[test]
    fn every_sidecar_bit_flip_is_a_check_correction() {
        let code = SecdedCode::new(128);
        let row = random_row(128, 5);
        let sidecar = code.encode(row.words());
        for bit in 0..=code.check_bits() {
            let struck = sidecar ^ (1 << bit);
            let (s, p) = code.syndrome(row.words(), struck);
            assert_eq!(
                code.classify(s, p),
                RowVerdict::CorrectedCheck,
                "sidecar bit {bit}"
            );
        }
    }

    #[test]
    fn double_flips_detect_without_miscorrection() {
        let code = SecdedCode::new(64);
        let row = random_row(64, 9);
        let sidecar = code.encode(row.words());
        for a in 0..64 {
            for b in (a + 1)..64 {
                let mut struck = row.clone();
                struck.set(a, !struck.get(a));
                struck.set(b, !struck.get(b));
                let (s, p) = code.syndrome(struck.words(), sidecar);
                assert_eq!(
                    code.classify(s, p),
                    RowVerdict::DetectedUncorrectable,
                    "flips at {a},{b}"
                );
            }
        }
    }

    #[test]
    fn ecc_state_tracks_a_matrix() {
        let bits = BitMatrix::from_fn(16, 70, |r, c| (r * 31 + c * 7) % 3 == 0);
        let mut state = EccState::encode_matrix(&bits);
        for row in 0..16 {
            assert_eq!(state.check_row(row, bits.row_words(row)), RowVerdict::Clean);
        }
        let mut struck = bits.clone();
        struck.flip(4, 69);
        assert_eq!(
            state.check_row(4, struck.row_words(4)),
            RowVerdict::CorrectedData(69)
        );
        // A legitimate rewrite refreshes the codeword: clean again.
        state.refresh_row(4, struck.row_words(4));
        assert_eq!(state.check_row(4, struck.row_words(4)), RowVerdict::Clean);
        state.refresh_all(&bits);
        assert_eq!(state.check_row(4, bits.row_words(4)), RowVerdict::Clean);
        assert_eq!(state.code().data_bits(), 70);
        assert!(state.sidecar(0) == EccState::encode_matrix(&bits).sidecar(0));
    }

    #[test]
    fn tally_merge_is_plain_addition() {
        let mut a = IntegrityTally {
            checked_reads: 10,
            corrected: 3,
            detected: 1,
            silent: 0,
            scrub_corrected: 2,
            scrub_reloaded: 1,
        };
        a.merge(&IntegrityTally {
            checked_reads: 5,
            corrected: 1,
            detected: 2,
            silent: 1,
            scrub_corrected: 0,
            scrub_reloaded: 4,
        });
        assert_eq!(a.checked_reads, 15);
        assert_eq!(a.corrected, 4);
        assert_eq!(a.detected, 3);
        assert_eq!(a.silent, 1);
        assert_eq!(a.scrub_corrected, 2);
        assert_eq!(a.scrub_reloaded, 5);
        assert_eq!(a.uncorrectable(), 3 + 5);
    }

    #[test]
    fn off_mode_never_checks() {
        assert!(!IntegrityMode::Off.checks());
        assert!(IntegrityMode::Detect.checks());
        assert!(IntegrityMode::Correct.checks());
        assert_eq!(IntegrityMode::default(), IntegrityMode::Off);
    }
}
