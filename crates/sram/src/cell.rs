//! The transposable multiport SRAM bitcell family (§3.2).
//!
//! ESAM's synapse cell keeps the classic 6T latch (M1–M6) but rotates it: the
//! Read/Write wordline WL runs *vertically* and the BL/BLB pair *horizontally*,
//! giving column-wise (transposed) Read/Write access for online learning. On
//! top of that, a shared buffer transistor M7 mirrors the cell content onto an
//! internal node `Qr`, and up to four access transistors (M8–M11) connect `Qr`
//! to decoupled read bitlines RBL0–RBL3, selected by row-wise read wordlines
//! RWL0–RWL3. Because M7 connects to the latch only through its gate, the
//! added ports barely disturb cell stability and the read rail can be scaled
//! below VDD (§3.2).
//!
//! The plain 6T cell (named `1RW` in the paper) is kept in its *standard*
//! orientation — it has no decoupled ports and no transposed access; it is the
//! baseline of every figure.
//!
//! # Examples
//!
//! ```
//! use esam_sram::cell::BitcellKind;
//!
//! let cell = BitcellKind::multiport(4).unwrap();
//! assert_eq!(cell.name(), "1RW+4R");
//! assert_eq!(cell.inference_parallelism(), 4);
//! assert!(cell.is_transposable());
//! // §4.2: the 4-port cell is 2.625× the 6T area.
//! assert!((cell.area_multiplier() - 2.625).abs() < 1e-12);
//! ```

use std::fmt;

use esam_tech::calibration::paper;
use esam_tech::units::{AreaUm2, MicroMeters};

use crate::error::SramError;

/// Maximum number of decoupled read ports that fit the cell pitch (§4.2:
/// "only 4 Bitlines could match the pitch of the 4-port cell").
pub const MAX_READ_PORTS: u8 = 4;

/// Physical orientation of the 6T core inside the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Conventional SRAM: WL horizontal (row-select), BL/BLB vertical.
    /// Used by the plain 6T baseline.
    Standard,
    /// ESAM multiport cell: WL vertical (column-select), BL/BLB horizontal,
    /// enabling transposed Read/Write for online learning (Fig. 2, green).
    Transposed,
}

/// A member of the ESAM bitcell family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitcellKind {
    /// The standard 6T cell — one Read/Write port, no decoupled read ports,
    /// standard orientation ("1RW" throughout the paper).
    Std6T,
    /// Transposed 6T core plus `read_ports` decoupled single-ended read
    /// ports ("1RW+pR"). `read_ports` is guaranteed to be in `1..=4`.
    MultiPort {
        /// Number of decoupled read ports (1..=4).
        read_ports: u8,
    },
}

impl BitcellKind {
    /// All five cell options evaluated by the paper, in Fig. 6/8 order.
    pub const ALL: [BitcellKind; 5] = [
        BitcellKind::Std6T,
        BitcellKind::MultiPort { read_ports: 1 },
        BitcellKind::MultiPort { read_ports: 2 },
        BitcellKind::MultiPort { read_ports: 3 },
        BitcellKind::MultiPort { read_ports: 4 },
    ];

    /// Creates a multiport cell with `read_ports` decoupled read ports.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::TooManyPorts`] when `read_ports` is zero or
    /// exceeds [`MAX_READ_PORTS`] — §4.2 shows a fifth port would add 87.5 %
    /// of the 6T area and no longer match the bitline pitch.
    pub fn multiport(read_ports: u8) -> Result<Self, SramError> {
        if read_ports == 0 || read_ports > MAX_READ_PORTS {
            return Err(SramError::TooManyPorts {
                requested: read_ports,
            });
        }
        Ok(BitcellKind::MultiPort { read_ports })
    }

    /// Number of decoupled read ports (0 for the 6T baseline).
    pub fn read_ports(self) -> usize {
        match self {
            BitcellKind::Std6T => 0,
            BitcellKind::MultiPort { read_ports } => read_ports as usize,
        }
    }

    /// How many rows can be read simultaneously for inference.
    ///
    /// The 6T baseline still serves one spike per cycle through its RW port;
    /// multiport cells serve one per decoupled read port.
    pub fn inference_parallelism(self) -> usize {
        match self {
            BitcellKind::Std6T => 1,
            BitcellKind::MultiPort { read_ports } => read_ports as usize,
        }
    }

    /// Whether the cell offers column-wise (transposed) Read/Write access.
    pub fn is_transposable(self) -> bool {
        matches!(self, BitcellKind::MultiPort { .. })
    }

    /// Orientation of the 6T core (see [`Orientation`]).
    pub fn orientation(self) -> Orientation {
        match self {
            BitcellKind::Std6T => Orientation::Standard,
            BitcellKind::MultiPort { .. } => Orientation::Transposed,
        }
    }

    /// Transistors in the cell: the 6T latch, plus the shared mirror device
    /// M7 and one access transistor per decoupled port (M8–M11).
    pub fn transistor_count(self) -> usize {
        match self {
            BitcellKind::Std6T => 6,
            BitcellKind::MultiPort { read_ports } => 6 + 1 + read_ports as usize,
        }
    }

    /// Layout area relative to the 6T cell (§4.2: 1×, 1.5×, 1.875×, 2.25×,
    /// 2.625×).
    pub fn area_multiplier(self) -> f64 {
        paper::CELL_AREA_MULTIPLIERS[self.read_ports_index()]
    }

    /// Absolute cell area, anchored to the published 6T area of
    /// 0.01512 µm² \[20\].
    pub fn area(self) -> AreaUm2 {
        AreaUm2::new(paper::CELL_AREA_6T_UM2 * self.area_multiplier())
    }

    /// Cell width (horizontal pitch). The added vertical bitlines widen the
    /// cell while its height stays fixed, so width carries the whole area
    /// multiplier.
    pub fn width(self) -> MicroMeters {
        Self::base_width() * self.area_multiplier()
    }

    /// Cell height (vertical pitch) — identical for all family members.
    pub fn height(self) -> MicroMeters {
        Self::base_height()
    }

    /// Width of the hypothetical 6T cell (2:1 aspect ratio assumed, typical
    /// for high-density FinFET SRAM).
    fn base_width() -> MicroMeters {
        MicroMeters::new((paper::CELL_AREA_6T_UM2 * 2.0).sqrt())
    }

    fn base_height() -> MicroMeters {
        MicroMeters::new((paper::CELL_AREA_6T_UM2 / 2.0).sqrt())
    }

    /// Short display name matching the paper's figures ("1RW", "1RW+3R", …).
    pub fn name(self) -> &'static str {
        match self {
            BitcellKind::Std6T => "1RW",
            BitcellKind::MultiPort { read_ports: 1 } => "1RW+1R",
            BitcellKind::MultiPort { read_ports: 2 } => "1RW+2R",
            BitcellKind::MultiPort { read_ports: 3 } => "1RW+3R",
            BitcellKind::MultiPort { read_ports: 4 } => "1RW+4R",
            BitcellKind::MultiPort { read_ports } => {
                unreachable!("invalid port count {read_ports} escaped construction")
            }
        }
    }

    /// Index into the paper's five-entry per-cell tables (0 = 1RW … 4 = +4R).
    pub fn read_ports_index(self) -> usize {
        self.read_ports()
    }

    /// Area a fifth read port would cost, relative to the 6T cell — the
    /// reason the family stops at four ports (§4.2).
    pub fn fifth_port_area_multiplier() -> f64 {
        paper::CELL_AREA_MULTIPLIERS[4] + paper::FIFTH_PORT_EXTRA_AREA_FRACTION
    }
}

impl fmt::Display for BitcellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_matches_paper_areas() {
        let expected = [1.0, 1.5, 1.875, 2.25, 2.625];
        for (cell, &mult) in BitcellKind::ALL.iter().zip(&expected) {
            assert!((cell.area_multiplier() - mult).abs() < 1e-12);
            assert!((cell.area().value() - 0.01512 * mult).abs() < 1e-9);
        }
    }

    #[test]
    fn width_carries_area_height_fixed() {
        let base = BitcellKind::Std6T;
        for cell in BitcellKind::ALL {
            assert!((cell.height().um() - base.height().um()).abs() < 1e-12);
            let area = cell.width() * cell.height();
            assert!((area.value() - cell.area().value()).abs() < 1e-9);
        }
    }

    #[test]
    fn port_accessors() {
        assert_eq!(BitcellKind::Std6T.read_ports(), 0);
        assert_eq!(BitcellKind::Std6T.inference_parallelism(), 1);
        assert!(!BitcellKind::Std6T.is_transposable());
        let four = BitcellKind::multiport(4).unwrap();
        assert_eq!(four.read_ports(), 4);
        assert_eq!(four.inference_parallelism(), 4);
        assert!(four.is_transposable());
    }

    #[test]
    fn transistor_inventory() {
        assert_eq!(BitcellKind::Std6T.transistor_count(), 6);
        assert_eq!(BitcellKind::multiport(1).unwrap().transistor_count(), 8);
        assert_eq!(BitcellKind::multiport(4).unwrap().transistor_count(), 11);
    }

    #[test]
    fn five_ports_are_rejected() {
        assert!(matches!(
            BitcellKind::multiport(5),
            Err(SramError::TooManyPorts { requested: 5 })
        ));
        assert!(matches!(
            BitcellKind::multiport(0),
            Err(SramError::TooManyPorts { requested: 0 })
        ));
        // §4.2: a fifth port would land at 3.5× the 6T area.
        assert!((BitcellKind::fifth_port_area_multiplier() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn orientation_split() {
        assert_eq!(BitcellKind::Std6T.orientation(), Orientation::Standard);
        for p in 1..=4 {
            assert_eq!(
                BitcellKind::multiport(p).unwrap().orientation(),
                Orientation::Transposed
            );
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = BitcellKind::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["1RW", "1RW+1R", "1RW+2R", "1RW+3R", "1RW+4R"]);
        assert_eq!(BitcellKind::Std6T.to_string(), "1RW");
    }
}
