//! Error type for SRAM construction and access.

use std::fmt;

use esam_tech::nbl::WriteMarginError;

/// Errors produced by the SRAM macro model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SramError {
    /// A multiport cell was requested with an unbuildable port count; the
    /// family supports 1–4 decoupled read ports (§4.2).
    TooManyPorts {
        /// The rejected port count.
        requested: u8,
    },
    /// The array dimensions violate the NBL write-margin yield rule of §4.1.
    WriteMargin(WriteMarginError),
    /// An inference read addressed a decoupled port the cell does not have.
    PortOutOfRange {
        /// Requested port index.
        port: usize,
        /// Ports available on this cell.
        available: usize,
    },
    /// A row index exceeded the array height.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Array rows.
        rows: usize,
    },
    /// A column index exceeded the array width.
    ColOutOfRange {
        /// Requested column.
        col: usize,
        /// Array columns.
        cols: usize,
    },
    /// Provided data does not match the array dimensions.
    DimensionMismatch {
        /// Expected number of bits.
        expected: usize,
        /// Received number of bits.
        got: usize,
    },
    /// A transposed access was issued on a cell without transposed ports
    /// (the 6T baseline must fall back to row-wise read-modify-write).
    NotTransposable,
    /// Invalid configuration parameter (zero dimension, bad voltage, …).
    InvalidConfig(String),
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::TooManyPorts { requested } => write!(
                f,
                "unbuildable port count {requested}: the cell family supports 1..=4 decoupled read ports (a 5th would add 87.5% of the 6T area)"
            ),
            SramError::WriteMargin(e) => write!(f, "{e}"),
            SramError::PortOutOfRange { port, available } => {
                write!(f, "read port {port} out of range: cell has {available} decoupled ports")
            }
            SramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for {rows}-row array")
            }
            SramError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range for {cols}-column array")
            }
            SramError::DimensionMismatch { expected, got } => {
                write!(f, "data width mismatch: expected {expected} bits, got {got}")
            }
            SramError::NotTransposable => {
                write!(f, "transposed access on a cell without transposed ports (6T baseline)")
            }
            SramError::InvalidConfig(msg) => write!(f, "invalid SRAM configuration: {msg}"),
        }
    }
}

impl std::error::Error for SramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SramError::WriteMargin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WriteMarginError> for SramError {
    fn from(e: WriteMarginError) -> Self {
        SramError::WriteMargin(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let e = SramError::TooManyPorts { requested: 6 };
        assert!(e.to_string().contains("1..=4"));
        let e = SramError::PortOutOfRange {
            port: 3,
            available: 2,
        };
        assert!(e.to_string().contains("port 3"));
        let e = SramError::DimensionMismatch {
            expected: 128,
            got: 64,
        };
        assert!(e.to_string().contains("128"));
        let e = SramError::NotTransposable;
        assert!(e.to_string().contains("6T"));
    }

    #[test]
    fn write_margin_source_chain() {
        use esam_tech::nbl::NblModel;
        let inner = NblModel::paper_default()
            .required_assist(512, 1.0)
            .unwrap_err();
        let e: SramError = inner.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
