//! Per-operation energy analysis of the SRAM array.
//!
//! Follows the paper's accounting (§4.2): *read energy* is the energy of a
//! full clock cycle including bitline precharge; *write energy* is the energy
//! consumed during the write time, dominated by the full-swing BL/BLB
//! transition deepened by the NBL assist.
//!
//! All energies derive from switched capacitance (`E = C·V·ΔV`), the NBL
//! charge-pump model, the inverter-SA crossover current and the
//! decoder/flip constants of [`calibration::fitted`](esam_tech::calibration::fitted).
//! Three mechanisms produce the Fig. 7 energy shape:
//!
//! * read-bitline restore scales with `V_prech²` (big savings at 500 mV);
//! * the inverter SA is supplied from the precharge rail (`∝ V_prech²`);
//! * its crossover current grows as the sensing margin shrinks and flows for
//!   the whole (precharge-stretched) sensing window — which is what makes
//!   400 mV *counter-productive* for the 3–4-port cells whose pitch-shared
//!   precharge devices are weakest.

use esam_tech::calibration::fitted;
use esam_tech::finfet::{FinFet, Polarity, VtFlavor};
use esam_tech::units::{dynamic_energy, Joules, Watts};

use crate::cell::BitcellKind;
use crate::config::ArrayConfig;
use crate::error::SramError;
use crate::lines::LineKind;
use crate::sense_amp::SenseAmpKind;
use crate::timing::TimingAnalysis;

/// Per-operation energy analysis for one array configuration.
#[derive(Debug, Clone)]
pub struct EnergyAnalysis {
    config: ArrayConfig,
}

impl EnergyAnalysis {
    /// Builds the analysis for a validated configuration.
    pub fn new(config: &ArrayConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    // ---- Inference path ----------------------------------------------------

    /// Fixed energy of one inference row activation on one port: wordline
    /// switching, sense-amplifier evaluation + crossover on every column,
    /// and decode.
    pub fn inference_read_fixed(&self) -> Joules {
        let geometry = self.config.geometry();
        let cols = self.config.cols() as f64;
        let vdd = self.config.vdd();
        match self.config.cell() {
            BitcellKind::Std6T => {
                let wl = geometry.line(LineKind::WriteWordline);
                let swing = SenseAmpKind::Differential.required_swing(vdd);
                let bl = geometry.line(LineKind::WriteBitline);
                dynamic_energy(wl.total_capacitance(), vdd, vdd)
                    // Every column pair develops the differential swing and
                    // draws DC cell current while the WL pulse is open.
                    + (dynamic_energy(bl.total_capacitance(), vdd, swing)
                        + self.rw_read_dc_per_pair())
                        * cols
                    + SenseAmpKind::Differential.energy(vdd) * cols
                    + Joules::new(fitted::DECODE_ENERGY_PER_ACCESS)
            }
            BitcellKind::MultiPort { .. } => {
                let rwl = geometry.line(LineKind::InferenceWordline);
                let rail = self.config.vprech();
                let sa = SenseAmpKind::CascadedInverter;
                let window = TimingAnalysis::new(&self.config).inference_sense_window();
                let crossover = sa.crossover_power(rail) * window;
                dynamic_energy(rwl.total_capacitance(), vdd, vdd)
                    + (sa.energy(rail) + crossover) * cols
                    + Joules::new(fitted::DECODE_ENERGY_PER_ACCESS)
            }
        }
    }

    /// Energy of restoring one discharged read bitline.
    ///
    /// Single-ended RBLs fall to the ratioed trip point (half the rail) when
    /// the stored bit is 0 — the M7/M8 stack mirrors `QB` — and are restored
    /// from the precharge rail: `E = C · V_prech · (V_prech/2)`. 1-bits cost
    /// nothing. The 6T baseline develops only the limited differential
    /// swing, which is already counted in
    /// [`inference_read_fixed`](Self::inference_read_fixed).
    pub fn inference_read_per_zero(&self) -> Joules {
        match self.config.cell() {
            BitcellKind::Std6T => Joules::ZERO,
            BitcellKind::MultiPort { .. } => {
                let rbl = self.config.geometry().line(LineKind::InferenceBitline);
                let rail = self.config.vprech();
                dynamic_energy(
                    rbl.total_capacitance(),
                    rail,
                    rail * fitted::RBL_RESTORE_SWING_FRACTION,
                )
            }
        }
    }

    /// Total energy of one inference row read that found `zeros` zero-bits.
    ///
    /// # Panics
    ///
    /// Panics if `zeros` exceeds the column count.
    pub fn inference_read(&self, zeros: usize) -> Joules {
        assert!(
            zeros <= self.config.cols(),
            "cannot discharge {zeros} bitlines in a {}-column array",
            self.config.cols()
        );
        self.inference_read_fixed() + self.inference_read_per_zero() * zeros as f64
    }

    /// DC energy one accessed cell burns into its BL/BLB pair during the
    /// wordline pulse of a differential read: `I_cell · V_DD · t_pulse`.
    /// The limited-swing clamp does not stop the cell current, so every
    /// read on the RW port pays this per pair; the decoupled single-ended
    /// ports do not (their RBL stops drawing once discharged).
    fn rw_read_dc_per_pair(&self) -> Joules {
        let current = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1).on_current(self.config.vdd())
            * fitted::RW_READ_STACK_FACTOR
            * self.config.variation().worst_case_current_factor();
        self.config.vdd() * current * esam_tech::units::Seconds::new(fitted::RW_WL_PULSE_WIDTH)
    }

    // ---- Read/Write (transposed) port ---------------------------------------

    /// Energy of one read cycle on the RW port.
    ///
    /// For multiport cells this is a transposed read: the column-select WL
    /// opens every cell of the column, all `rows` BL pairs develop swing and
    /// `rows / mux` differential SAs evaluate. For the 6T baseline it is a
    /// plain row read with all `cols` SAs evaluating.
    pub fn rw_read_cycle(&self) -> Joules {
        let geometry = self.config.geometry();
        let vdd = self.config.vdd();
        let wl = geometry.line(LineKind::WriteWordline);
        let bl = geometry.line(LineKind::WriteBitline);
        let swing = SenseAmpKind::Differential.required_swing(vdd);
        let (pairs, sensed) = self.rw_pairs_and_sensed();
        dynamic_energy(wl.total_capacitance(), vdd, vdd)
            + (dynamic_energy(bl.total_capacitance(), vdd, swing) + self.rw_read_dc_per_pair())
                * pairs as f64
            + SenseAmpKind::Differential.energy(vdd) * sensed as f64
            + Joules::new(fitted::DECODE_ENERGY_PER_ACCESS)
    }

    /// Energy of one write cycle on the RW port (NBL-assisted).
    ///
    /// Multiport: `rows / mux` pairs are driven full-swing below ground
    /// while the remaining pairs of the selected column are *half-selected*
    /// — the open column WL lets those cells drive a substantial swing onto
    /// their floating bitlines. 6T baseline: all `cols` pairs are driven,
    /// none half-selected.
    ///
    /// # Errors
    ///
    /// Propagates the write-margin violation for unwritable configurations.
    pub fn rw_write_cycle(&self) -> Result<Joules, SramError> {
        let geometry = self.config.geometry();
        let vdd = self.config.vdd();
        let wl = geometry.line(LineKind::WriteWordline);
        let (pairs, driven) = self.rw_pairs_and_sensed();
        let half_selected = pairs - driven;

        let bl = geometry.line(LineKind::WriteBitline);
        let c_bl = bl.total_capacitance();
        let per_half_selected = dynamic_energy(c_bl, vdd, vdd * fitted::HALF_SELECT_SWING_FRACTION);

        Ok(dynamic_energy(wl.total_capacitance(), vdd, vdd)
            + self.driven_pair_energy()? * driven as f64
            + per_half_selected * half_selected as f64
            + Joules::new(fitted::CELL_FLIP_ENERGY) * driven as f64
            + Joules::new(fitted::DECODE_ENERGY_PER_ACCESS))
    }

    /// Energy of driving one BL/BLB pair full-swing with the NBL excursion:
    /// `C·(V_DD² + PUMP·(2·V_DD·|V_WD| + V_WD²))`.
    fn driven_pair_energy(&self) -> Result<Joules, SramError> {
        let assist = self.config.write_assist()?;
        let bl = self.config.geometry().line(LineKind::WriteBitline);
        let vdd = self.config.vdd();
        let vwd = assist.abs();
        Ok(Joules::new(
            bl.total_capacitance().value()
                * (vdd.v() * vdd.v()
                    + fitted::NBL_PUMP_FACTOR * (2.0 * vdd.v() * vwd.v() + vwd.v() * vwd.v())),
        ))
    }

    /// `(BL pairs that develop swing, pairs actually sensed/driven)` for one
    /// RW-port cycle.
    fn rw_pairs_and_sensed(&self) -> (usize, usize) {
        match self.config.cell() {
            BitcellKind::Std6T => (self.config.cols(), self.config.cols()),
            BitcellKind::MultiPort { .. } => (
                self.config.rows(),
                self.config.rows() / self.config.mux_ratio(),
            ),
        }
    }

    /// Cells sharing one RW wordline (the divisor for per-cell WL energy).
    fn cells_on_rw_wordline(&self) -> usize {
        match self.config.cell() {
            BitcellKind::Std6T => self.config.cols(),
            BitcellKind::MultiPort { .. } => self.config.rows(),
        }
    }

    // ---- Per-cell characterization (Fig. 6) ---------------------------------

    /// Energy of writing a single cell through the RW port — the Fig. 6
    /// "Write energy" characterization ("Writing to the cell … using the
    /// Transposed port"): one BL/BLB pair full-swing with the NBL excursion,
    /// plus this cell's share of the wordline, plus the latch flip.
    ///
    /// # Errors
    ///
    /// Propagates the write-margin violation for unwritable configurations.
    pub fn rw_write_per_cell(&self) -> Result<Joules, SramError> {
        let geometry = self.config.geometry();
        let vdd = self.config.vdd();
        let wl = geometry.line(LineKind::WriteWordline);
        let wl_share =
            dynamic_energy(wl.total_capacitance(), vdd, vdd) / self.cells_on_rw_wordline() as f64;
        Ok(self.driven_pair_energy()? + wl_share + Joules::new(fitted::CELL_FLIP_ENERGY))
    }

    /// Energy of reading a single cell through the RW port — the Fig. 6
    /// "Read energy" characterization: the differential swing on one BL/BLB
    /// pair, one sense-amp evaluation and the wordline share, accounted over
    /// a full clock cycle including precharge restore (§4.2).
    pub fn rw_read_per_cell(&self) -> Joules {
        let geometry = self.config.geometry();
        let vdd = self.config.vdd();
        let bl = geometry.line(LineKind::WriteBitline);
        let wl = geometry.line(LineKind::WriteWordline);
        let swing = SenseAmpKind::Differential.required_swing(vdd);
        let wl_share =
            dynamic_energy(wl.total_capacitance(), vdd, vdd) / self.cells_on_rw_wordline() as f64;
        dynamic_energy(bl.total_capacitance(), vdd, swing)
            + self.rw_read_dc_per_pair()
            + SenseAmpKind::Differential.energy(vdd)
            + wl_share
    }

    // ---- Static power --------------------------------------------------------

    /// Leakage power of the cell array plus periphery.
    pub fn leakage_power(&self) -> Watts {
        let device = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1);
        let per_transistor = device.leakage_power(self.config.vdd());
        let transistors = (self.config.rows() * self.config.cols()) as f64
            * self.config.cell().transistor_count() as f64
            * fitted::BITCELL_FINS_PER_TRANSISTOR;
        per_transistor * transistors * (1.0 + fitted::PERIPHERY_LEAK_FRACTION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esam_tech::units::Volts;

    fn energy(cell: BitcellKind) -> EnergyAnalysis {
        EnergyAnalysis::new(&ArrayConfig::paper_default(cell))
    }

    fn at_vprech(p: u8, mv: f64) -> EnergyAnalysis {
        let cell = BitcellKind::multiport(p).unwrap();
        let cfg = ArrayConfig::builder(128, 128, cell)
            .vprech(Volts::from_mv(mv))
            .build()
            .unwrap();
        EnergyAnalysis::new(&cfg)
    }

    #[test]
    fn inference_read_energy_is_femto_to_pico_scale() {
        for cell in BitcellKind::ALL {
            let e = energy(cell).inference_read(64);
            assert!(
                e.fj() > 10.0 && e.pj() < 5.0,
                "{cell}: inference read {e} out of plausible range"
            );
        }
    }

    #[test]
    fn zeros_cost_energy_on_decoupled_ports() {
        let e = energy(BitcellKind::multiport(4).unwrap());
        assert!(e.inference_read_per_zero().fj() > 0.0);
        assert!(e.inference_read(128) > e.inference_read(0));
        // 6T differential reads burn the same swing regardless of data.
        let e6 = energy(BitcellKind::Std6T);
        assert!(e6.inference_read_per_zero().is_zero());
        assert_eq!(e6.inference_read(0), e6.inference_read(128));
    }

    #[test]
    fn vprech_500_saves_heavily_over_700_fig7() {
        use esam_tech::calibration::paper;
        for p in 1..=4u8 {
            let e700 = at_vprech(p, 700.0).inference_read(64);
            let e500 = at_vprech(p, 500.0).inference_read(64);
            let saving = 1.0 - e500 / e700;
            assert!(
                saving >= paper::VPRECH_500_ENERGY_SAVING_MIN - 0.02,
                "p={p}: saving {saving:.3} below the ~43 % the paper reports"
            );
        }
    }

    #[test]
    fn vprech_400_helps_low_port_hurts_high_port_fig7() {
        // Fig. 7: 400 mV saves up to ~10 % more for 1–2-port cells but
        // *increases* energy for 3–4-port cells (slower pitch-shared
        // precharge stretches the crossover window).
        let saving = |p: u8| {
            let e500 = at_vprech(p, 500.0).inference_read(64);
            let e400 = at_vprech(p, 400.0).inference_read(64);
            1.0 - e400 / e500
        };
        assert!(saving(1) > 0.0, "1-port must still save at 400 mV");
        assert!(saving(1) < 0.15, "1-port saving is modest (≤ ~10 %)");
        assert!(saving(4) < 0.0, "4-port energy must increase at 400 mV");
        assert!(saving(1) > saving(2), "savings shrink with port count");
        assert!(saving(2) > saving(3));
        assert!(saving(3) > saving(4));
    }

    #[test]
    fn per_cell_write_energy_grows_with_ports_fig6_shape() {
        let mut prev = Joules::ZERO;
        for cell in BitcellKind::ALL {
            let e = energy(cell).rw_write_per_cell().unwrap();
            assert!(
                e > prev,
                "{cell}: per-cell write energy must grow with ports"
            );
            prev = e;
        }
    }

    #[test]
    fn per_cell_read_energy_grows_with_ports_fig6_shape() {
        let mut prev = Joules::ZERO;
        for cell in BitcellKind::ALL {
            let e = energy(cell).rw_read_per_cell();
            assert!(
                e > prev,
                "{cell}: per-cell read energy must grow with ports"
            );
            prev = e;
        }
    }

    #[test]
    fn learning_cycle_energies_match_441_anchors() {
        use esam_tech::calibration::paper;
        // 6T row-wise full-array read+write ≈ 157 pJ.
        let e6 = energy(BitcellKind::Std6T);
        let rowwise = (e6.rw_read_cycle() + e6.rw_write_cycle().unwrap()) * 128.0;
        let anchor = paper::LEARN_ROWWISE_PJ;
        assert!(
            (rowwise.pj() - anchor).abs() / anchor < 0.35,
            "row-wise learning energy {rowwise} vs paper {anchor} pJ"
        );
        // 4R transposed column read+write ≈ 8.04 pJ.
        let e4 = energy(BitcellKind::multiport(4).unwrap());
        let transposed = (e4.rw_read_cycle() + e4.rw_write_cycle().unwrap()) * 4.0;
        let anchor = paper::LEARN_ROWWISE_PJ / paper::LEARN_ENERGY_GAIN;
        assert!(
            (transposed.pj() - anchor).abs() / anchor < 0.35,
            "transposed learning energy {transposed} vs paper {anchor:.2} pJ"
        );
    }

    #[test]
    fn leakage_power_scales_with_transistor_count() {
        let p6 = energy(BitcellKind::Std6T).leakage_power();
        let p4 = energy(BitcellKind::multiport(4).unwrap()).leakage_power();
        assert!((p4.value() / p6.value() - 11.0 / 6.0).abs() < 1e-9);
        // One 128×128 6T array leaks in the µW class.
        assert!(p6.uw() > 1.0 && p6.uw() < 500.0, "got {p6}");
    }

    #[test]
    #[should_panic(expected = "cannot discharge")]
    fn too_many_zeros_panics() {
        energy(BitcellKind::multiport(1).unwrap()).inference_read(129);
    }
}
