//! Functional multiport SRAM array with access accounting.
//!
//! [`SramArray`] stores actual weight bits and mimics the port semantics of
//! the hardware: row-parallel inference reads on up to four decoupled ports,
//! and column-wise (transposed) Read/Write in `mux_ratio` cycles per column.
//! Every operation updates [`AccessStats`], from which
//! [`SramArray::consumed_energy`] reconstructs the energy spike-by-spike, the
//! same methodology the paper uses (§4.1: "simulate the network on a
//! spike-by-spike basis … to determine the timing, power and energy").

use esam_bits::{BitMatrix, BitVec};

use crate::config::ArrayConfig;
use crate::ecc::{EccState, IntegrityMode, IntegrityTally, RowVerdict};
use crate::energy::EnergyAnalysis;
use crate::error::SramError;
use crate::timing::TimingAnalysis;
use esam_tech::units::Joules;

/// Operation counters for energy reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Row activations on inference ports.
    pub inference_reads: u64,
    /// Total zero-bits returned by inference reads (each discharges an RBL).
    pub inference_zero_bits: u64,
    /// RW-port read cycles (transposed reads for multiport cells, row reads
    /// for the 6T baseline).
    pub rw_read_cycles: u64,
    /// RW-port write cycles.
    pub rw_write_cycles: u64,
}

impl AccessStats {
    /// Sum of all port activities (any kind of cycle).
    pub fn total_accesses(&self) -> u64 {
        self.inference_reads + self.rw_read_cycles + self.rw_write_cycles
    }

    /// Adds another counter set into this one.
    ///
    /// Counters are plain sums over accesses, so merging shards of a
    /// partitioned workload is exact (`u64` addition is associative and
    /// commutative): any interleaving of accesses across shards produces the
    /// same merged counters as running the whole workload on one array.
    pub fn merge(&mut self, other: &AccessStats) {
        self.inference_reads += other.inference_reads;
        self.inference_zero_bits += other.inference_zero_bits;
        self.rw_read_cycles += other.rw_read_cycles;
        self.rw_write_cycles += other.rw_write_cycles;
    }
}

/// A functional `rows × cols` SRAM array of a given bitcell kind.
///
/// # Examples
///
/// ```
/// use esam_bits::BitMatrix;
/// use esam_sram::{ArrayConfig, BitcellKind, SramArray};
///
/// let cfg = ArrayConfig::paper_default(BitcellKind::multiport(4).unwrap());
/// let mut array = SramArray::new(cfg);
/// array.load_weights(&BitMatrix::from_fn(128, 128, |r, c| (r + c) % 2 == 0)).unwrap();
/// let row = array.inference_read(0, 5).unwrap();
/// assert_eq!(row.len(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct SramArray {
    config: ArrayConfig,
    bits: BitMatrix,
    stats: AccessStats,
    ecc: Option<EccState>,
}

impl SramArray {
    /// Creates an array with all-zero content.
    pub fn new(config: ArrayConfig) -> Self {
        let bits = BitMatrix::new(config.rows(), config.cols());
        Self {
            config,
            bits,
            stats: AccessStats::default(),
            ecc: None,
        }
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Immutable view of the stored bits.
    pub fn bits(&self) -> &BitMatrix {
        &self.bits
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets the access counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Bulk-initializes the contents (boot-time weight load; not counted as
    /// runtime accesses).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::DimensionMismatch`] when the matrix shape does
    /// not match the array.
    pub fn load_weights(&mut self, weights: &BitMatrix) -> Result<(), SramError> {
        if weights.rows() != self.config.rows() || weights.cols() != self.config.cols() {
            return Err(SramError::DimensionMismatch {
                expected: self.config.rows() * self.config.cols(),
                got: weights.rows() * weights.cols(),
            });
        }
        self.bits = weights.clone();
        if let Some(ecc) = &mut self.ecc {
            ecc.refresh_all(&self.bits);
        }
        Ok(())
    }

    /// Enables SECDED protection: encodes one codeword sidecar per row from
    /// the *current* contents (the spare-column check bits of a real
    /// macro). Idempotent — re-enabling re-encodes from the current store.
    pub fn enable_ecc(&mut self) {
        self.ecc = Some(EccState::encode_matrix(&self.bits));
    }

    /// Drops the stored codewords (back to the unprotected baseline).
    pub fn disable_ecc(&mut self) {
        self.ecc = None;
    }

    /// Whether codewords are currently stored.
    pub fn ecc_enabled(&self) -> bool {
        self.ecc.is_some()
    }

    /// Inverts one stored bit in place — the fault layer's physical
    /// bit-flip primitive (a particle strike or stuck-at materialization,
    /// not a port access), so it is **not counted** in [`AccessStats`] and
    /// needs no port. Flipping the same bit twice restores the cell. It
    /// deliberately bypasses the SECDED codeword refresh: the strike
    /// corrupts the cell *behind* the code's back, which is what the
    /// syndrome check exists to catch.
    ///
    /// # Errors
    ///
    /// [`SramError::RowOutOfRange`] or [`SramError::ColOutOfRange`].
    pub fn flip_bit(&mut self, row: usize, col: usize) -> Result<(), SramError> {
        if row >= self.config.rows() {
            return Err(SramError::RowOutOfRange {
                row,
                rows: self.config.rows(),
            });
        }
        if col >= self.config.cols() {
            return Err(SramError::ColOutOfRange {
                col,
                cols: self.config.cols(),
            });
        }
        self.bits.flip(row, col);
        Ok(())
    }

    /// Reads one row through inference port `port` (0-based).
    ///
    /// For the 6T baseline only port 0 exists (its RW port). The returned
    /// bits mirror the cell contents exactly (M7 inverts `QB`, §3.2).
    ///
    /// # Errors
    ///
    /// [`SramError::PortOutOfRange`] or [`SramError::RowOutOfRange`].
    pub fn inference_read(&mut self, port: usize, row: usize) -> Result<BitVec, SramError> {
        let mut stats = self.stats;
        let bits = self.read_row_counted(&mut stats, port, row)?;
        self.stats = stats;
        Ok(bits)
    }

    /// Reads one row through inference port `port`, counting the access in
    /// an *external* counter set instead of this array's own — the shared
    /// implementation behind [`inference_read`](Self::inference_read), also
    /// used by callers that keep per-worker counter mirrors so concurrent
    /// shards can read the same (immutable) array.
    ///
    /// # Errors
    ///
    /// [`SramError::PortOutOfRange`] or [`SramError::RowOutOfRange`].
    pub fn read_row_counted(
        &self,
        stats: &mut AccessStats,
        port: usize,
        row: usize,
    ) -> Result<BitVec, SramError> {
        let available = self.config.cell().inference_parallelism();
        if port >= available {
            return Err(SramError::PortOutOfRange { port, available });
        }
        if row >= self.config.rows() {
            return Err(SramError::RowOutOfRange {
                row,
                rows: self.config.rows(),
            });
        }
        let bits = self.bits.row(row);
        stats.inference_reads += 1;
        stats.inference_zero_bits += (self.config.cols() - bits.count_ones()) as u64;
        Ok(bits)
    }

    /// Reads one row through inference port `port` into caller-owned
    /// scratch — the allocation-free form of
    /// [`read_row_counted`](Self::read_row_counted), with identical bounds
    /// checks and counter increments. The row lands in `dst` as a straight
    /// word copy (column 0 at the LSB of the first word).
    ///
    /// # Errors
    ///
    /// [`SramError::PortOutOfRange`] or [`SramError::RowOutOfRange`];
    /// [`SramError::DimensionMismatch`] when `dst.len()` is not the column
    /// count.
    pub fn read_row_counted_into(
        &self,
        stats: &mut AccessStats,
        port: usize,
        row: usize,
        dst: &mut BitVec,
    ) -> Result<(), SramError> {
        let available = self.config.cell().inference_parallelism();
        if port >= available {
            return Err(SramError::PortOutOfRange { port, available });
        }
        if row >= self.config.rows() {
            return Err(SramError::RowOutOfRange {
                row,
                rows: self.config.rows(),
            });
        }
        if dst.len() != self.config.cols() {
            return Err(SramError::DimensionMismatch {
                expected: self.config.cols(),
                got: dst.len(),
            });
        }
        self.bits.copy_row_into(row, dst);
        stats.inference_reads += 1;
        stats.inference_zero_bits += (self.config.cols() - dst.count_ones()) as u64;
        Ok(())
    }

    /// Reads one row into caller-owned scratch with a word-parallel SECDED
    /// syndrome check piggybacked on the packed-row read — the self-checking
    /// form of [`read_row_counted_into`](Self::read_row_counted_into).
    ///
    /// Under [`IntegrityMode::Correct`] a located single-bit data error is
    /// repaired in the *delivered* bits (`dst`); the stored row is healed
    /// later by [`scrub_audited`](Self::scrub_audited). Under
    /// [`IntegrityMode::Detect`] errors are counted but the raw bits are
    /// delivered unchanged. Under [`IntegrityMode::Off`] (or with ECC never
    /// enabled) this is exactly the unchecked read and reports
    /// [`RowVerdict::Clean`].
    ///
    /// Zero-bit energy counting happens *before* correction: the read-
    /// bitline discharge is driven by the stored (possibly corrupted)
    /// cells; the repair is downstream logic.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`read_row_counted_into`](Self::read_row_counted_into).
    #[allow(clippy::too_many_arguments)]
    pub fn read_row_checked_into(
        &self,
        stats: &mut AccessStats,
        tally: &mut IntegrityTally,
        mode: IntegrityMode,
        port: usize,
        row: usize,
        dst: &mut BitVec,
    ) -> Result<RowVerdict, SramError> {
        self.read_row_counted_into(stats, port, row, dst)?;
        let ecc = match (mode.checks(), &self.ecc) {
            (true, Some(ecc)) => ecc,
            _ => return Ok(RowVerdict::Clean),
        };
        tally.checked_reads += 1;
        let verdict = ecc.check_row(row, dst.words());
        match verdict {
            RowVerdict::Clean => {}
            RowVerdict::CorrectedData(col) => {
                tally.corrected += 1;
                if mode == IntegrityMode::Correct {
                    dst.set(col, !dst.get(col));
                }
            }
            RowVerdict::CorrectedCheck => tally.corrected += 1,
            RowVerdict::DetectedUncorrectable => tally.detected += 1,
        }
        Ok(verdict)
    }

    /// Background scrub pass with a golden audit.
    ///
    /// Under [`IntegrityMode::Correct`], walks every row: single-bit data
    /// errors are healed in place (`scrub_corrected`), flipped check bits
    /// re-encoded, and detected-uncorrectable rows reloaded from `golden`
    /// (`scrub_reloaded`). A final content audit against `golden` catches
    /// corruption the codeword could not see — counted as `silent` (SECDED
    /// guarantees zero for ≤ 2 flipped bits per row) and also reloaded.
    ///
    /// Under [`IntegrityMode::Detect`], rows differing from `golden` are
    /// reloaded without classification or counting — a frame-independence
    /// restore, not an audit. Under [`IntegrityMode::Off`] this is a no-op.
    ///
    /// `golden` models the pristine off-chip weight image a real deployment
    /// reloads from; it is never consulted on the read path.
    ///
    /// # Errors
    ///
    /// [`SramError::DimensionMismatch`] when `golden` does not match the
    /// array shape.
    pub fn scrub_audited(
        &mut self,
        golden: &BitMatrix,
        mode: IntegrityMode,
        tally: &mut IntegrityTally,
    ) -> Result<(), SramError> {
        if !mode.checks() {
            return Ok(());
        }
        if golden.rows() != self.config.rows() || golden.cols() != self.config.cols() {
            return Err(SramError::DimensionMismatch {
                expected: self.config.rows() * self.config.cols(),
                got: golden.rows() * golden.cols(),
            });
        }
        for row in 0..self.config.rows() {
            if mode == IntegrityMode::Detect {
                if self.bits.row_words(row) != golden.row_words(row) {
                    self.bits.set_row(row, &golden.row(row));
                    if let Some(ecc) = &mut self.ecc {
                        ecc.refresh_row(row, self.bits.row_words(row));
                    }
                }
                continue;
            }
            if let Some(ecc) = &mut self.ecc {
                match ecc.check_row(row, self.bits.row_words(row)) {
                    RowVerdict::Clean => {}
                    RowVerdict::CorrectedData(col) => {
                        self.bits.flip(row, col);
                        tally.scrub_corrected += 1;
                    }
                    RowVerdict::CorrectedCheck => {
                        ecc.refresh_row(row, self.bits.row_words(row));
                        tally.scrub_corrected += 1;
                    }
                    RowVerdict::DetectedUncorrectable => {
                        self.bits.set_row(row, &golden.row(row));
                        ecc.refresh_row(row, self.bits.row_words(row));
                        tally.scrub_reloaded += 1;
                    }
                }
            }
            if self.bits.row_words(row) != golden.row_words(row) {
                tally.silent += 1;
                self.bits.set_row(row, &golden.row(row));
                if let Some(ecc) = &mut self.ecc {
                    ecc.refresh_row(row, self.bits.row_words(row));
                }
                tally.scrub_reloaded += 1;
            }
        }
        Ok(())
    }

    /// Reads a full weight column through the transposed port.
    ///
    /// Costs `mux_ratio` RW-port cycles (4 in the paper: §4.4.1's `2 × 4`
    /// counts 4 read + 4 write cycles per column update).
    ///
    /// # Errors
    ///
    /// [`SramError::NotTransposable`] on the 6T baseline,
    /// [`SramError::ColOutOfRange`] for bad addresses.
    pub fn transposed_read(&mut self, col: usize) -> Result<BitVec, SramError> {
        self.require_transposable()?;
        if col >= self.config.cols() {
            return Err(SramError::ColOutOfRange {
                col,
                cols: self.config.cols(),
            });
        }
        self.stats.rw_read_cycles += self.config.mux_ratio() as u64;
        Ok(self.bits.column(col))
    }

    /// Writes a full weight column through the transposed port
    /// (`mux_ratio` NBL-assisted cycles).
    ///
    /// # Errors
    ///
    /// [`SramError::NotTransposable`], [`SramError::ColOutOfRange`] or
    /// [`SramError::DimensionMismatch`].
    pub fn transposed_write(&mut self, col: usize, bits: &BitVec) -> Result<(), SramError> {
        self.require_transposable()?;
        if col >= self.config.cols() {
            return Err(SramError::ColOutOfRange {
                col,
                cols: self.config.cols(),
            });
        }
        if bits.len() != self.config.rows() {
            return Err(SramError::DimensionMismatch {
                expected: self.config.rows(),
                got: bits.len(),
            });
        }
        self.bits.set_column(col, bits);
        if let Some(ecc) = &mut self.ecc {
            // A column write touches one bit of every row: re-encode all
            // sidecars (the learning path is not read-latency critical).
            ecc.refresh_all(&self.bits);
        }
        self.stats.rw_write_cycles += self.config.mux_ratio() as u64;
        Ok(())
    }

    /// Reads one row through the RW port — the 6T baseline's only way to
    /// access weights for learning (one cycle per row, §4.4.1).
    ///
    /// # Errors
    ///
    /// [`SramError::RowOutOfRange`]; also fails on multiport cells, whose RW
    /// port is column-oriented.
    pub fn rowwise_read(&mut self, row: usize) -> Result<BitVec, SramError> {
        if self.config.cell().is_transposable() {
            return Err(SramError::InvalidConfig(
                "row-wise RW access applies to the standard-orientation 6T baseline".into(),
            ));
        }
        if row >= self.config.rows() {
            return Err(SramError::RowOutOfRange {
                row,
                rows: self.config.rows(),
            });
        }
        self.stats.rw_read_cycles += 1;
        Ok(self.bits.row(row))
    }

    /// Writes one row through the RW port (6T baseline learning path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`rowwise_read`](Self::rowwise_read), plus
    /// [`SramError::DimensionMismatch`].
    pub fn rowwise_write(&mut self, row: usize, bits: &BitVec) -> Result<(), SramError> {
        if self.config.cell().is_transposable() {
            return Err(SramError::InvalidConfig(
                "row-wise RW access applies to the standard-orientation 6T baseline".into(),
            ));
        }
        if row >= self.config.rows() {
            return Err(SramError::RowOutOfRange {
                row,
                rows: self.config.rows(),
            });
        }
        if bits.len() != self.config.cols() {
            return Err(SramError::DimensionMismatch {
                expected: self.config.cols(),
                got: bits.len(),
            });
        }
        self.bits.set_row(row, bits);
        if let Some(ecc) = &mut self.ecc {
            ecc.refresh_row(row, self.bits.row_words(row));
        }
        self.stats.rw_write_cycles += 1;
        Ok(())
    }

    /// Timing analysis for this array's configuration.
    pub fn timing(&self) -> TimingAnalysis {
        TimingAnalysis::new(&self.config)
    }

    /// Energy analysis for this array's configuration.
    pub fn energy(&self) -> EnergyAnalysis {
        EnergyAnalysis::new(&self.config)
    }

    /// Dynamic energy implied by the accumulated [`AccessStats`].
    ///
    /// # Errors
    ///
    /// Propagates write-margin violations from the write-energy model.
    pub fn consumed_energy(&self) -> Result<Joules, SramError> {
        self.energy_for_stats(&self.stats)
    }

    /// Dynamic energy implied by an *external* counter set for an array of
    /// this configuration — the same reconstruction as
    /// [`consumed_energy`](Self::consumed_energy), used by callers that
    /// account accesses outside the array (e.g. per-worker shard counters).
    ///
    /// # Errors
    ///
    /// Propagates write-margin violations from the write-energy model.
    pub fn energy_for_stats(&self, stats: &AccessStats) -> Result<Joules, SramError> {
        let energy = self.energy();
        let write = if stats.rw_write_cycles > 0 {
            energy.rw_write_cycle()? * stats.rw_write_cycles as f64
        } else {
            Joules::ZERO
        };
        Ok(energy.inference_read_fixed() * stats.inference_reads as f64
            + energy.inference_read_per_zero() * stats.inference_zero_bits as f64
            + energy.rw_read_cycle() * stats.rw_read_cycles as f64
            + write)
    }

    fn require_transposable(&self) -> Result<(), SramError> {
        if self.config.cell().is_transposable() {
            Ok(())
        } else {
            Err(SramError::NotTransposable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::BitcellKind;

    fn array(cell: BitcellKind) -> SramArray {
        SramArray::new(ArrayConfig::paper_default(cell))
    }

    fn checkerboard() -> BitMatrix {
        BitMatrix::from_fn(128, 128, |r, c| (r + c) % 2 == 0)
    }

    #[test]
    fn inference_read_mirrors_contents() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&checkerboard()).unwrap();
        for port in 0..4 {
            let row = a.inference_read(port, 7).unwrap();
            assert_eq!(row.to_bools(), checkerboard().row(7).to_bools());
        }
        assert_eq!(a.stats().inference_reads, 4);
        assert_eq!(a.stats().inference_zero_bits, 4 * 64);
    }

    #[test]
    fn flip_bit_is_uncounted_and_involutive() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&checkerboard()).unwrap();
        let before = a.bits().clone();
        a.flip_bit(3, 40).unwrap();
        assert_ne!(a.bits().get(3, 40), before.get(3, 40));
        a.flip_bit(3, 40).unwrap();
        assert_eq!(*a.bits(), before, "double flip restores the array");
        assert_eq!(a.stats().inference_reads, 0, "faults are not accesses");
        assert!(matches!(
            a.flip_bit(128, 0),
            Err(SramError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            a.flip_bit(0, 128),
            Err(SramError::ColOutOfRange { .. })
        ));
    }

    #[test]
    fn port_bounds_enforced() {
        let mut a = array(BitcellKind::multiport(2).unwrap());
        assert!(matches!(
            a.inference_read(2, 0),
            Err(SramError::PortOutOfRange {
                port: 2,
                available: 2
            })
        ));
        let mut a6 = array(BitcellKind::Std6T);
        assert!(a6.inference_read(0, 0).is_ok(), "6T reads via its RW port");
        assert!(a6.inference_read(1, 0).is_err());
    }

    #[test]
    fn read_row_counted_into_matches_allocating_read() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&checkerboard()).unwrap();
        let mut scratch = BitVec::new(128);
        let mut stats = AccessStats::default();
        for row in [0usize, 1, 64, 127] {
            a.read_row_counted_into(&mut stats, 1, row, &mut scratch)
                .unwrap();
            assert_eq!(scratch, a.inference_read(1, row).unwrap(), "row {row}");
        }
        // Identical counting: 4 reads each, same zero-bit totals.
        assert_eq!(stats, *a.stats());
        // Same bounds checks as the allocating read.
        assert!(matches!(
            a.read_row_counted_into(&mut stats, 4, 0, &mut scratch),
            Err(SramError::PortOutOfRange { .. })
        ));
        assert!(matches!(
            a.read_row_counted_into(&mut stats, 0, 128, &mut scratch),
            Err(SramError::RowOutOfRange { .. })
        ));
        let mut short = BitVec::new(64);
        assert!(matches!(
            a.read_row_counted_into(&mut stats, 0, 0, &mut short),
            Err(SramError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transposed_roundtrip_counts_mux_cycles() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        let column = BitVec::from_indices(128, &[0, 3, 127]);
        a.transposed_write(9, &column).unwrap();
        let read = a.transposed_read(9).unwrap();
        assert_eq!(read, column);
        // 4 write cycles + 4 read cycles (4:1 mux), §4.4.1.
        assert_eq!(a.stats().rw_write_cycles, 4);
        assert_eq!(a.stats().rw_read_cycles, 4);
    }

    #[test]
    fn transposed_access_rejected_on_6t() {
        let mut a = array(BitcellKind::Std6T);
        assert!(matches!(
            a.transposed_read(0),
            Err(SramError::NotTransposable)
        ));
        assert!(matches!(
            a.transposed_write(0, &BitVec::new(128)),
            Err(SramError::NotTransposable)
        ));
    }

    #[test]
    fn rowwise_roundtrip_on_6t() {
        let mut a = array(BitcellKind::Std6T);
        let row = BitVec::from_indices(128, &[1, 2, 3]);
        a.rowwise_write(42, &row).unwrap();
        assert_eq!(a.rowwise_read(42).unwrap(), row);
        assert_eq!(a.stats().rw_read_cycles, 1);
        assert_eq!(a.stats().rw_write_cycles, 1);
    }

    #[test]
    fn rowwise_rejected_on_multiport() {
        let mut a = array(BitcellKind::multiport(1).unwrap());
        assert!(a.rowwise_read(0).is_err());
        assert!(a.rowwise_write(0, &BitVec::new(128)).is_err());
    }

    #[test]
    fn checked_read_corrects_single_flips_and_detects_doubles() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&checkerboard()).unwrap();
        a.enable_ecc();
        assert!(a.ecc_enabled());
        let mut stats = AccessStats::default();
        let mut tally = IntegrityTally::default();
        let mut dst = BitVec::new(128);

        // Clean row: clean verdict, counted check, bits untouched.
        let v = a
            .read_row_checked_into(
                &mut stats,
                &mut tally,
                IntegrityMode::Correct,
                0,
                7,
                &mut dst,
            )
            .unwrap();
        assert_eq!(v, RowVerdict::Clean);
        assert_eq!(dst, checkerboard().row(7));
        assert_eq!(tally.checked_reads, 1);

        // Single-bit strike: Detect counts but delivers raw; Correct repairs.
        a.flip_bit(7, 33).unwrap();
        let v = a
            .read_row_checked_into(
                &mut stats,
                &mut tally,
                IntegrityMode::Detect,
                0,
                7,
                &mut dst,
            )
            .unwrap();
        assert_eq!(v, RowVerdict::CorrectedData(33));
        assert_ne!(dst, checkerboard().row(7), "Detect delivers raw bits");
        let v = a
            .read_row_checked_into(
                &mut stats,
                &mut tally,
                IntegrityMode::Correct,
                0,
                7,
                &mut dst,
            )
            .unwrap();
        assert_eq!(v, RowVerdict::CorrectedData(33));
        assert_eq!(dst, checkerboard().row(7), "Correct repairs the read");
        assert_eq!(tally.corrected, 2);

        // Second strike in the same row: detected, not miscorrected.
        a.flip_bit(7, 90).unwrap();
        let v = a
            .read_row_checked_into(
                &mut stats,
                &mut tally,
                IntegrityMode::Correct,
                0,
                7,
                &mut dst,
            )
            .unwrap();
        assert_eq!(v, RowVerdict::DetectedUncorrectable);
        assert_eq!(tally.detected, 1);

        // Off mode: no check, no counting, raw delivery.
        let before = tally;
        let v = a
            .read_row_checked_into(&mut stats, &mut tally, IntegrityMode::Off, 0, 7, &mut dst)
            .unwrap();
        assert_eq!(v, RowVerdict::Clean);
        assert_eq!(tally, before);
    }

    #[test]
    fn scrub_heals_the_store_and_audits_against_golden() {
        let golden = checkerboard();
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&golden).unwrap();
        a.enable_ecc();
        a.flip_bit(3, 10).unwrap(); // single-bit: healable in place
        a.flip_bit(5, 20).unwrap(); // double-bit: needs golden reload
        a.flip_bit(5, 21).unwrap();
        let mut tally = IntegrityTally::default();
        a.scrub_audited(&golden, IntegrityMode::Correct, &mut tally)
            .unwrap();
        assert_eq!(*a.bits(), golden, "scrub restores the pristine image");
        assert_eq!(tally.scrub_corrected, 1);
        assert_eq!(tally.scrub_reloaded, 1);
        assert_eq!(tally.silent, 0, "SECDED sees every <=2-bit upset");
        // Store healed: subsequent checked reads are clean again.
        let mut stats = AccessStats::default();
        let mut dst = BitVec::new(128);
        for row in [3usize, 5] {
            let v = a
                .read_row_checked_into(
                    &mut stats,
                    &mut tally,
                    IntegrityMode::Correct,
                    0,
                    row,
                    &mut dst,
                )
                .unwrap();
            assert_eq!(v, RowVerdict::Clean, "row {row}");
        }
    }

    #[test]
    fn detect_scrub_restores_without_counting() {
        let golden = checkerboard();
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&golden).unwrap();
        a.enable_ecc();
        a.flip_bit(0, 0).unwrap();
        a.flip_bit(1, 1).unwrap();
        a.flip_bit(1, 2).unwrap();
        let mut tally = IntegrityTally::default();
        a.scrub_audited(&golden, IntegrityMode::Detect, &mut tally)
            .unwrap();
        assert_eq!(*a.bits(), golden);
        assert_eq!(tally, IntegrityTally::default(), "restore, not audit");
        // Off mode never touches the store.
        a.flip_bit(2, 2).unwrap();
        a.scrub_audited(&golden, IntegrityMode::Off, &mut tally)
            .unwrap();
        assert_ne!(*a.bits(), golden);
    }

    #[test]
    fn legitimate_writes_refresh_codewords() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&checkerboard()).unwrap();
        a.enable_ecc();
        // Transposed (learning) write changes one bit of every row; the
        // sidecars must follow so the new content reads clean.
        let column = BitVec::from_indices(128, &[0, 5, 77]);
        a.transposed_write(64, &column).unwrap();
        let mut stats = AccessStats::default();
        let mut tally = IntegrityTally::default();
        let mut dst = BitVec::new(128);
        for row in 0..128 {
            let v = a
                .read_row_checked_into(
                    &mut stats,
                    &mut tally,
                    IntegrityMode::Correct,
                    0,
                    row,
                    &mut dst,
                )
                .unwrap();
            assert_eq!(v, RowVerdict::Clean, "row {row}");
        }
        // Bulk reload also re-encodes.
        a.flip_bit(9, 9).unwrap();
        a.load_weights(&checkerboard()).unwrap();
        let v = a
            .read_row_checked_into(
                &mut stats,
                &mut tally,
                IntegrityMode::Correct,
                0,
                9,
                &mut dst,
            )
            .unwrap();
        assert_eq!(v, RowVerdict::Clean);
        // And the 6T row-wise learning write on its own array kind.
        let mut a6 = array(BitcellKind::Std6T);
        a6.enable_ecc();
        a6.rowwise_write(4, &BitVec::from_indices(128, &[1, 2]))
            .unwrap();
        let v = a6
            .read_row_checked_into(
                &mut stats,
                &mut tally,
                IntegrityMode::Correct,
                0,
                4,
                &mut dst,
            )
            .unwrap();
        assert_eq!(v, RowVerdict::Clean);
    }

    #[test]
    fn consumed_energy_tracks_stats() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        a.load_weights(&checkerboard()).unwrap();
        assert!(a.consumed_energy().unwrap().is_zero());
        a.inference_read(0, 0).unwrap();
        let e1 = a.consumed_energy().unwrap();
        assert!(e1.fj() > 0.0);
        a.transposed_write(0, &BitVec::new(128)).unwrap();
        let e2 = a.consumed_energy().unwrap();
        assert!(e2 > e1);
        a.reset_stats();
        assert!(a.consumed_energy().unwrap().is_zero());
    }

    #[test]
    fn dimension_mismatch_reported() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        assert!(matches!(
            a.transposed_write(0, &BitVec::new(64)),
            Err(SramError::DimensionMismatch {
                expected: 128,
                got: 64
            })
        ));
        assert!(a.load_weights(&BitMatrix::new(64, 128)).is_err());
    }

    #[test]
    fn out_of_range_addresses() {
        let mut a = array(BitcellKind::multiport(4).unwrap());
        assert!(matches!(
            a.inference_read(0, 128),
            Err(SramError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            a.transposed_read(128),
            Err(SramError::ColOutOfRange { .. })
        ));
    }
}
