//! Array wiring: geometry and parasitics of every word/bit line.
//!
//! Four line classes exist in an ESAM array (Fig. 2 / Fig. 3(a)):
//!
//! * **Write wordline** (`WL`) — selects the cell row (6T baseline) or cell
//!   *column* (transposed multiport cell). In multiport cells it is drawn
//!   narrow because RBL0–RBL3 occupy the same metal layer, which is the root
//!   cause of the Fig. 6 jump from 1RW to 1RW+1R.
//! * **Write bitline** (`BL`/`BLB`) — differential pair carrying write data
//!   and transposed reads.
//! * **Inference wordline** (`RWL0–RWL3`) — row-select of the decoupled read
//!   ports, driven by the arbiter grants.
//! * **Inference bitline** (`RBL0–RBL3`) — single-ended, precharged to
//!   `V_prech`, discharged by the M7/M8 stack when the stored bit is 0.
//!
//! Lengths follow directly from the cell pitch: horizontal lines span
//! `cols × cell_width` (and therefore grow with the multiport area
//! multiplier), vertical lines span `rows × cell_height` (constant across the
//! family).

use esam_tech::calibration::fitted;
use esam_tech::finfet::{FinFet, Polarity, VtFlavor};
use esam_tech::units::{Farads, MicroMeters, Ohms};
use esam_tech::wire::{WireSegment, WireSpec, WireWidth};

use crate::cell::{BitcellKind, Orientation};

/// The four line classes of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// Read/Write wordline of the 6T core.
    WriteWordline,
    /// One wire of the BL/BLB differential pair.
    WriteBitline,
    /// Decoupled read wordline (RWLx).
    InferenceWordline,
    /// Decoupled read bitline (RBLx).
    InferenceBitline,
}

/// Resistance, wire capacitance and attached-device load of one line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineParasitics {
    wire: WireSegment,
    device_load: Farads,
}

impl LineParasitics {
    /// Total distributed wire resistance.
    pub fn resistance(&self) -> Ohms {
        self.wire.resistance()
    }

    /// Wire-only capacitance.
    pub fn wire_capacitance(&self) -> Farads {
        self.wire.capacitance()
    }

    /// Attached transistor gate/junction load.
    pub fn device_load(&self) -> Farads {
        self.device_load
    }

    /// Total switched capacitance.
    pub fn total_capacitance(&self) -> Farads {
        self.wire.capacitance() + self.device_load
    }

    /// Run length of the wire.
    pub fn length(&self) -> MicroMeters {
        self.wire.length()
    }
}

/// Physical floorplan of one `rows × cols` array of a given cell kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayGeometry {
    rows: usize,
    cols: usize,
    cell: BitcellKind,
}

impl ArrayGeometry {
    /// Creates the geometry for a `rows × cols` array of `cell`s.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, cell: BitcellKind) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self { rows, cols, cell }
    }

    /// Array rows (pre-synaptic dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (post-synaptic dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cell kind.
    pub fn cell(&self) -> BitcellKind {
        self.cell
    }

    /// Horizontal span of the cell mat.
    pub fn mat_width(&self) -> MicroMeters {
        self.cell.width() * self.cols as f64
    }

    /// Vertical span of the cell mat.
    pub fn mat_height(&self) -> MicroMeters {
        self.cell.height() * self.rows as f64
    }

    /// Number of cells hanging on one write bitline — the quantity the NBL
    /// write-margin rule constrains (§4.1).
    ///
    /// In standard orientation BL runs vertically over `rows` cells; in the
    /// transposed multiport cell it runs horizontally over `cols` cells.
    pub fn cells_on_write_bitline(&self) -> usize {
        match self.cell.orientation() {
            Orientation::Standard => self.rows,
            Orientation::Transposed => self.cols,
        }
    }

    /// Parasitics of one line of the given kind.
    ///
    /// # Panics
    ///
    /// Panics when asking for inference lines on the 6T baseline — it has no
    /// decoupled ports; use [`LineKind::WriteWordline`]/[`LineKind::WriteBitline`],
    /// which double as its (only) read path.
    pub fn line(&self, kind: LineKind) -> LineParasitics {
        let gate = access_gate_cap();
        let drain = access_drain_cap();
        let (wire, device_load) = match (kind, self.cell.orientation()) {
            // --- 6T baseline: conventional orientation -------------------
            (LineKind::WriteWordline, Orientation::Standard) => (
                self.horizontal(WireWidth::Standard),
                // Two pass-gate gates per cell along the row.
                gate * (2 * self.cols) as f64,
            ),
            (LineKind::WriteBitline, Orientation::Standard) => {
                (self.vertical(WireWidth::Standard), drain * self.rows as f64)
            }
            (LineKind::InferenceWordline | LineKind::InferenceBitline, Orientation::Standard) => {
                panic!("the 6T baseline has no decoupled inference ports")
            }
            // --- Multiport cell: transposed orientation ------------------
            (LineKind::WriteWordline, Orientation::Transposed) => (
                // WL runs vertically and is narrowed to make room for the
                // RBLs in the same layer (§4.2).
                self.vertical(WireWidth::Narrow),
                gate * (2 * self.rows) as f64,
            ),
            (LineKind::WriteBitline, Orientation::Transposed) => (
                self.horizontal(WireWidth::Standard),
                drain * self.cols as f64,
            ),
            (LineKind::InferenceWordline, Orientation::Transposed) => (
                self.horizontal(WireWidth::Standard),
                // One read-access gate (M8..M11) per cell along the row.
                gate * self.cols as f64,
            ),
            (LineKind::InferenceBitline, Orientation::Transposed) => {
                (self.vertical(WireWidth::Standard), drain * self.rows as f64)
            }
        };
        LineParasitics { wire, device_load }
    }

    fn horizontal(&self, width: WireWidth) -> WireSegment {
        WireSegment::new(WireSpec::new(width), self.mat_width())
    }

    fn vertical(&self, width: WireWidth) -> WireSegment {
        WireSegment::new(WireSpec::new(width), self.mat_height())
    }
}

/// Gate capacitance of a single-fin access transistor.
fn access_gate_cap() -> Farads {
    FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1).gate_capacitance()
}

/// Junction + contact capacitance one access transistor adds to a bitline.
fn access_drain_cap() -> Farads {
    FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1).drain_capacitance()
        + Farads::new(fitted::BITLINE_CONTACT_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(cell: BitcellKind) -> ArrayGeometry {
        ArrayGeometry::new(128, 128, cell)
    }

    #[test]
    fn mat_dimensions_scale_with_ports() {
        let g6 = geo(BitcellKind::Std6T);
        let g4 = geo(BitcellKind::multiport(4).unwrap());
        assert!((g4.mat_width().um() / g6.mat_width().um() - 2.625).abs() < 1e-9);
        assert!((g4.mat_height().um() - g6.mat_height().um()).abs() < 1e-12);
    }

    #[test]
    fn multiport_wordline_is_more_resistive() {
        let g6 = geo(BitcellKind::Std6T);
        let g1 = geo(BitcellKind::multiport(1).unwrap());
        let wl6 = g6.line(LineKind::WriteWordline);
        let wl1 = g1.line(LineKind::WriteWordline);
        // The 6T WL is horizontal (long, standard width); the multiport WL is
        // vertical (short) but narrow — its per-µm resistance is much higher.
        assert!(
            wl1.resistance().value() / wl1.length().um()
                > 2.0 * wl6.resistance().value() / wl6.length().um()
        );
    }

    #[test]
    fn write_bitline_grows_with_cell_width() {
        let g1 = geo(BitcellKind::multiport(1).unwrap());
        let g4 = geo(BitcellKind::multiport(4).unwrap());
        let bl1 = g1.line(LineKind::WriteBitline);
        let bl4 = g4.line(LineKind::WriteBitline);
        assert!(bl4.resistance().value() > 1.5 * bl1.resistance().value());
        assert!(bl4.total_capacitance().value() > bl1.total_capacitance().value());
    }

    #[test]
    fn inference_bitline_constant_across_family() {
        let g1 = geo(BitcellKind::multiport(1).unwrap());
        let g4 = geo(BitcellKind::multiport(4).unwrap());
        let r1 = g1.line(LineKind::InferenceBitline);
        let r4 = g4.line(LineKind::InferenceBitline);
        assert!((r1.total_capacitance().ff() - r4.total_capacitance().ff()).abs() < 1e-9);
    }

    #[test]
    fn write_bitline_cell_count_follows_orientation() {
        assert_eq!(geo(BitcellKind::Std6T).cells_on_write_bitline(), 128);
        let tall = ArrayGeometry::new(64, 128, BitcellKind::Std6T);
        assert_eq!(tall.cells_on_write_bitline(), 64);
        let wide = ArrayGeometry::new(64, 128, BitcellKind::multiport(2).unwrap());
        assert_eq!(wide.cells_on_write_bitline(), 128);
    }

    #[test]
    #[should_panic(expected = "no decoupled inference ports")]
    fn inference_lines_absent_on_6t() {
        geo(BitcellKind::Std6T).line(LineKind::InferenceBitline);
    }

    #[test]
    fn capacitances_are_femto_scale() {
        let g = geo(BitcellKind::multiport(4).unwrap());
        let rbl = g.line(LineKind::InferenceBitline);
        let c = rbl.total_capacitance().ff();
        assert!(
            c > 2.0 && c < 50.0,
            "RBL capacitance {c} fF out of plausible range"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        ArrayGeometry::new(0, 128, BitcellKind::Std6T);
    }
}
