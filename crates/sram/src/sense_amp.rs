//! Sense amplifiers (§3.2).
//!
//! Two sensing schemes coexist in the macro:
//!
//! * the **transposed port** (BL/BLB) uses a conventional voltage-mode
//!   differential sense amplifier, row-muxed 4:1 to match the SRAM row
//!   pitch — fast, fires on a small fixed differential;
//! * the **decoupled read ports** (RBL0–RBL3) are single-ended and use
//!   cascaded-inverter sense amplifiers, which fit the column pitch but
//!   "deliver a slightly slower readout result than traditional Sense
//!   Amplifiers". Their speed and crossover current depend on the sensing
//!   margin `V_prech − V_trip`: lowering the precharge rail saves dynamic
//!   energy but slows the resolve — the Fig. 7 trade-off.

use esam_tech::calibration::fitted;
use esam_tech::units::{Joules, Seconds, Volts, Watts};

/// The sensing scheme attached to a bitline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SenseAmpKind {
    /// Voltage-mode differential SA on the BL/BLB pair (4:1 row-muxed).
    Differential,
    /// Cascaded-inverter single-ended SA on an RBL.
    CascadedInverter,
}

impl SenseAmpKind {
    /// Sensing margin of the inverter chain at rail `v` (clamped ≥ 20 mV so
    /// degenerate rails stay finite; the config validator rejects them
    /// anyway).
    fn inverter_margin(rail: Volts) -> f64 {
        (rail.v() - fitted::INV_SA_VT).max(0.02)
    }

    /// Reference margin at the nominal 500 mV rail.
    fn reference_margin() -> f64 {
        0.5 - fitted::INV_SA_VT
    }

    /// Resolve delay once the bitline swing reaches the amplifier.
    ///
    /// The differential SA is margin-independent; the inverter SA slows as
    /// `1 / (V_prech − V_trip)`.
    pub fn resolve_delay(self, rail: Volts) -> Seconds {
        match self {
            SenseAmpKind::Differential => Seconds::new(fitted::DIFF_SA_DELAY),
            SenseAmpKind::CascadedInverter => {
                let ratio = Self::reference_margin() / Self::inverter_margin(rail);
                Seconds::new(fitted::INV_SA_DELAY_AT_500MV)
                    * ratio.powf(fitted::INV_SA_DELAY_MARGIN_EXP)
            }
        }
    }

    /// Bitline swing the amplifier needs before it can resolve.
    ///
    /// Differential: a small fixed differential. Inverter chain: the RBL
    /// must approach the (ratioed) trip point — but because the cell
    /// discharges in the triode region, the *time* this takes is modeled
    /// with the rail-independent [`fitted::RBL_TIMING_SWING`].
    pub fn required_swing(self, _rail: Volts) -> Volts {
        match self {
            SenseAmpKind::Differential => Volts::new(fitted::DIFF_SA_SWING),
            SenseAmpKind::CascadedInverter => Volts::new(fitted::RBL_TIMING_SWING),
        }
    }

    /// Switching energy of one evaluation at rail `rail` (the inverter SA is
    /// supplied from the precharge rail, so its dynamic energy scales with
    /// `rail²`).
    pub fn energy(self, rail: Volts) -> Joules {
        match self {
            SenseAmpKind::Differential => Joules::new(fitted::DIFF_SA_ENERGY),
            SenseAmpKind::CascadedInverter => {
                Joules::new(fitted::INV_SA_ENERGY) * (rail.v() / 0.5).powi(2)
            }
        }
    }

    /// Crossover (short-circuit) power burned while the input traverses the
    /// transition region; zero for the clocked differential SA.
    pub fn crossover_power(self, rail: Volts) -> Watts {
        match self {
            SenseAmpKind::Differential => Watts::ZERO,
            SenseAmpKind::CascadedInverter => {
                let ratio = Self::reference_margin() / Self::inverter_margin(rail);
                Watts::new(fitted::INV_SA_SC_POWER_AT_500MV) * (ratio * ratio)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V500: Volts = Volts::new(0.5);
    const V700: Volts = Volts::new(0.7);
    const V400: Volts = Volts::new(0.4);

    #[test]
    fn inverter_sa_is_slower_than_differential() {
        let d = SenseAmpKind::Differential;
        let i = SenseAmpKind::CascadedInverter;
        assert!(
            i.resolve_delay(V500) > d.resolve_delay(V500),
            "§3.2: slightly slower readout"
        );
    }

    #[test]
    fn inverter_delay_grows_as_rail_drops() {
        let i = SenseAmpKind::CascadedInverter;
        assert!(i.resolve_delay(V400) > i.resolve_delay(V500));
        assert!(i.resolve_delay(V500) > i.resolve_delay(V700));
        // At 400 mV the margin halves: delay grows substantially.
        let ratio = i.resolve_delay(V400) / i.resolve_delay(V500);
        assert!(ratio > 1.3 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn differential_is_rail_independent() {
        let d = SenseAmpKind::Differential;
        assert_eq!(d.resolve_delay(V400), d.resolve_delay(V700));
        assert_eq!(d.required_swing(V400), d.required_swing(V700));
        assert!(d.crossover_power(V500).is_zero());
    }

    #[test]
    fn inverter_energy_scales_with_rail_squared() {
        let i = SenseAmpKind::CascadedInverter;
        let ratio = i.energy(V700) / i.energy(V500);
        assert!((ratio - 1.96).abs() < 1e-9);
    }

    #[test]
    fn crossover_power_explodes_near_trip() {
        let i = SenseAmpKind::CascadedInverter;
        assert!(i.crossover_power(V400).value() > 1.5 * i.crossover_power(V500).value());
    }
}
