//! Transposable multiport SRAM-based CIM macro — the core circuit
//! contribution of the ESAM paper (§3.2).
//!
//! This crate models the full bitcell family the paper evaluates:
//!
//! | Cell | Ports | Area (vs 6T) | Orientation |
//! |------|-------|--------------|-------------|
//! | `1RW` | 1 R/W | 1× | standard |
//! | `1RW+1R` … `1RW+4R` | 1 R/W + 1–4 decoupled reads | 1.5× … 2.625× | transposed |
//!
//! Three views of the array are provided:
//!
//! * **functional** — [`SramArray`] stores bits and honours port semantics
//!   (multi-port row reads, 4:1-muxed transposed column access), counting
//!   every access for spike-by-spike energy reconstruction;
//! * **timing** — [`TimingAnalysis`] derives precharge/read/write times from
//!   wire parasitics, FinFET drive currents and ±3σ worst-case derating
//!   (Fig. 6, Fig. 7, Table 2);
//! * **energy** — [`EnergyAnalysis`] prices every operation from switched
//!   capacitance and the NBL write-assist charge pump (Fig. 6–8, §4.4.1).
//!
//! # Examples
//!
//! ```
//! use esam_sram::{ArrayConfig, BitcellKind, SramArray, TimingAnalysis};
//!
//! // The paper's 128×128 array of 4-port cells at 700 mV / 500 mV.
//! let cfg = ArrayConfig::paper_default(BitcellKind::multiport(4)?);
//! let timing = TimingAnalysis::new(&cfg);
//! let access = timing.inference_read();
//! assert!(access.total().ns() < 2.0);
//!
//! // Arrays beyond 128 cells per write bitline violate the NBL yield rule.
//! assert!(ArrayConfig::builder(256, 256, BitcellKind::Std6T).build().is_err());
//! # Ok::<(), esam_sram::SramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod config;
pub mod ecc;
pub mod energy;
pub mod error;
pub mod lines;
pub mod macro_;
pub mod sense_amp;
pub mod timing;

pub use array::{AccessStats, SramArray};
pub use cell::{BitcellKind, Orientation, MAX_READ_PORTS};
pub use config::{ArrayConfig, ArrayConfigBuilder};
pub use ecc::{EccState, IntegrityMode, IntegrityTally, RowVerdict, SecdedCode};
pub use energy::EnergyAnalysis;
pub use error::SramError;
pub use lines::{ArrayGeometry, LineKind, LineParasitics};
pub use macro_::{MacroArea, SramMacro};
pub use sense_amp::SenseAmpKind;
pub use timing::{ReadBreakdown, TimingAnalysis, WriteBreakdown};
