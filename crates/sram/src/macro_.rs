//! The SRAM macro: cell mat plus periphery, with area and leakage summaries.

use esam_tech::calibration::fitted;
use esam_tech::units::{AreaUm2, Watts};

use crate::config::ArrayConfig;
use crate::energy::EnergyAnalysis;

/// Area breakdown of one SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroArea {
    /// Cell mat area (`rows × cols × cell area`).
    pub cells: AreaUm2,
    /// Periphery: decoders, precharge, sense amplifiers, write drivers,
    /// row mux.
    pub periphery: AreaUm2,
}

impl MacroArea {
    /// Total macro footprint.
    pub fn total(&self) -> AreaUm2 {
        self.cells + self.periphery
    }
}

/// Physical summary of one SRAM macro instance.
///
/// # Examples
///
/// ```
/// use esam_sram::{ArrayConfig, BitcellKind, SramMacro};
///
/// let m6 = SramMacro::new(ArrayConfig::paper_default(BitcellKind::Std6T));
/// let m4 = SramMacro::new(ArrayConfig::paper_default(BitcellKind::multiport(4).unwrap()));
/// // §4.2: the 4-port mat is 2.625× the 6T mat.
/// let ratio = m4.area().cells / m6.area().cells;
/// assert!((ratio - 2.625).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SramMacro {
    config: ArrayConfig,
}

impl SramMacro {
    /// Creates the macro summary for a configuration.
    pub fn new(config: ArrayConfig) -> Self {
        Self { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Area breakdown.
    pub fn area(&self) -> MacroArea {
        let cells =
            self.config.cell().area() * (self.config.rows() as f64 * self.config.cols() as f64);
        MacroArea {
            cells,
            periphery: cells * fitted::MACRO_PERIPHERY_AREA_FRACTION,
        }
    }

    /// Static leakage of the macro (array + periphery).
    pub fn leakage_power(&self) -> Watts {
        EnergyAnalysis::new(&self.config).leakage_power()
    }

    /// Number of synapse bits stored.
    pub fn bit_count(&self) -> usize {
        self.config.rows() * self.config.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::BitcellKind;

    #[test]
    fn area_scales_with_cell_family() {
        let areas: Vec<f64> = BitcellKind::ALL
            .iter()
            .map(|&c| {
                SramMacro::new(ArrayConfig::paper_default(c))
                    .area()
                    .total()
                    .value()
            })
            .collect();
        assert!(areas.windows(2).all(|w| w[1] > w[0]));
        // 128×128 6T mat ≈ 16384 × 0.01512 µm² ≈ 248 µm² plus periphery.
        assert!(
            areas[0] > 240.0 && areas[0] < 320.0,
            "6T macro {} µm²",
            areas[0]
        );
    }

    #[test]
    fn periphery_is_a_fraction_of_cells() {
        let m = SramMacro::new(ArrayConfig::paper_default(BitcellKind::Std6T));
        let a = m.area();
        assert!(a.periphery.value() < a.cells.value());
        assert!((a.total().value() - (a.cells + a.periphery).value()).abs() < 1e-9);
    }

    #[test]
    fn leakage_is_microwatt_class() {
        let m = SramMacro::new(ArrayConfig::paper_default(
            BitcellKind::multiport(4).unwrap(),
        ));
        let p = m.leakage_power();
        assert!(p.uw() > 1.0 && p.uw() < 1000.0, "got {p}");
        assert_eq!(m.bit_count(), 128 * 128);
    }
}
