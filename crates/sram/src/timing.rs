//! Access-time analysis of the SRAM array.
//!
//! Reproduces what the paper extracts from Spectre transients (Fig. 6, Fig. 7,
//! the SRAM share of Table 2):
//!
//! * **Read time** — "the delay between the Wordline being driven and the
//!   data output of the Sense Amplifier flipping" (§4.2);
//! * **Write time** — "the delay between the start of the Write process and
//!   the cell content flipping to 90 % of its intended value";
//! * **Total access time** (Fig. 7) — "the sum of the precharge time and the
//!   Read time".
//!
//! Every number is computed from the line parasitics of
//! [`ArrayGeometry`](crate::lines::ArrayGeometry), the FinFET drive model and
//! the worst-case ±3σ derating — no figure value is hard-coded.
//!
//! Two rail-dependent mechanisms matter for the Fig. 7 trade-off:
//!
//! * the precharge device is a velocity-saturating square-law PMOS, and the
//!   precharge transistors of the `p` read-bitline planes share the cell's
//!   column pitch, so each gets width `mult(p)/p` of a full device;
//! * the inverter sense amplifier slows as the sensing margin
//!   `V_prech − V_trip` shrinks.

use esam_tech::calibration::fitted;
use esam_tech::elmore::{constant_current_slew, driven_wire_delay};
use esam_tech::finfet::{FinFet, Polarity, VtFlavor};
use esam_tech::units::{Amps, Farads, Ohms, Seconds, Volts};

use crate::cell::BitcellKind;
use crate::config::ArrayConfig;
use crate::error::SramError;
use crate::lines::LineKind;
use crate::sense_amp::SenseAmpKind;

/// Phase-by-phase breakdown of a read access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadBreakdown {
    /// Bitline precharge to the read rail.
    pub precharge: Seconds,
    /// Decode + wordline rise.
    pub wordline: Seconds,
    /// Bitline swing development by the cell current.
    pub develop: Seconds,
    /// Sense-amplifier resolution (plus row-mux for transposed reads).
    pub sense: Seconds,
}

impl ReadBreakdown {
    /// Read time in the paper's sense: wordline → SA output (§4.2).
    pub fn read_time(&self) -> Seconds {
        self.wordline + self.develop + self.sense
    }

    /// Total access time in the Fig. 7 sense: precharge + read time.
    pub fn total(&self) -> Seconds {
        self.precharge + self.read_time()
    }
}

/// Phase-by-phase breakdown of a write access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteBreakdown {
    /// Decode + wordline rise.
    pub wordline: Seconds,
    /// Write driver slewing the bitline pair.
    pub drive: Seconds,
    /// Negative-bitline assist kick settling.
    pub nbl_kick: Seconds,
    /// Cell latch regeneration to 90 % of the target value.
    pub flip: Seconds,
}

impl WriteBreakdown {
    /// Write time in the paper's sense: start of write → 90 % content flip.
    pub fn total(&self) -> Seconds {
        self.wordline + self.drive + self.nbl_kick + self.flip
    }
}

/// Access-time analysis for one array configuration.
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    config: ArrayConfig,
}

impl TimingAnalysis {
    /// Builds the analysis for a validated configuration.
    pub fn new(config: &ArrayConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    /// Worst-case (±3σ) cell read current through a two-transistor stack
    /// with the given stack degradation factor.
    fn stack_current(&self, stack_factor: f64) -> Amps {
        let device = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1);
        device.on_current(self.config.vdd())
            * stack_factor
            * self.config.variation().worst_case_current_factor()
    }

    /// Worst-case read current of the decoupled M7/M8 path.
    pub fn cell_read_current(&self) -> Amps {
        self.stack_current(fitted::DECOUPLED_READ_STACK_FACTOR)
    }

    /// Effective resistance of a precharge device fed from `rail`, with
    /// `pitch_share` of a full-width device (triode model).
    pub fn precharge_resistance(&self, rail: Volts, pitch_share: f64) -> Ohms {
        let overdrive = rail.v() - fitted::PRECHARGE_VTP;
        assert!(
            overdrive > 0.0,
            "precharge rail {rail} leaves no overdrive (validated at config build)"
        );
        assert!(pitch_share > 0.0, "pitch share must be positive");
        let effective = overdrive * overdrive.min(fitted::PRECHARGE_VSAT);
        Ohms::new(fitted::PRECHARGE_R0_OHM_V2 / effective / pitch_share)
    }

    /// Pitch share of one RBL-plane precharge device: the `p` planes split
    /// the (widened) cell pitch `mult(p)`.
    pub fn rbl_precharge_pitch_share(&self) -> f64 {
        match self.config.cell() {
            BitcellKind::Std6T => 1.0,
            BitcellKind::MultiPort { read_ports } => {
                self.config.cell().area_multiplier() / read_ports as f64
            }
        }
    }

    /// Time to precharge capacitance `c` to 90 % of `rail` (2.2 τ).
    pub fn precharge_time(&self, c: Farads, rail: Volts, pitch_share: f64) -> Seconds {
        2.2 * (self.precharge_resistance(rail, pitch_share) * c)
    }

    /// Inference read access (the path Table 2 and Fig. 7 time):
    /// the decoupled single-ended port for multiport cells, the ordinary
    /// differential RW port for the 6T baseline.
    pub fn inference_read(&self) -> ReadBreakdown {
        match self.config.cell() {
            BitcellKind::Std6T => self.rw_read(),
            BitcellKind::MultiPort { .. } => {
                let geometry = self.config.geometry();
                let rwl = geometry.line(LineKind::InferenceWordline);
                let rbl = geometry.line(LineKind::InferenceBitline);
                let rail = self.config.vprech();
                let sa = SenseAmpKind::CascadedInverter;
                ReadBreakdown {
                    precharge: self.precharge_time(
                        rbl.total_capacitance(),
                        rail,
                        self.rbl_precharge_pitch_share(),
                    ),
                    wordline: self.wordline_time(&rwl),
                    develop: constant_current_slew(
                        rbl.total_capacitance(),
                        sa.required_swing(rail),
                        self.cell_read_current(),
                    ),
                    sense: sa.resolve_delay(rail),
                }
            }
        }
    }

    /// The sensing window of one decoupled-port access: precharge + develop
    /// \+ sense. The inverter SA burns crossover current over this window
    /// (used by the energy model).
    pub fn inference_sense_window(&self) -> Seconds {
        let r = self.inference_read();
        r.precharge + r.develop + r.sense
    }

    /// Read via the Read/Write port (the "Transposed port" of Fig. 6 for
    /// multiport cells; the one-and-only port of the 6T baseline).
    pub fn rw_read(&self) -> ReadBreakdown {
        let geometry = self.config.geometry();
        let wl = geometry.line(LineKind::WriteWordline);
        let bl = geometry.line(LineKind::WriteBitline);
        let vdd = self.config.vdd();
        let sa = SenseAmpKind::Differential;
        let mux = match self.config.cell() {
            BitcellKind::Std6T => Seconds::ZERO,
            BitcellKind::MultiPort { .. } => Seconds::new(fitted::MUX_PASS_DELAY),
        };
        ReadBreakdown {
            precharge: self.precharge_time(bl.total_capacitance(), vdd, 1.0),
            wordline: self.wordline_time(&wl),
            develop: constant_current_slew(
                bl.total_capacitance(),
                sa.required_swing(vdd),
                self.stack_current(fitted::RW_READ_STACK_FACTOR),
            ),
            sense: sa.resolve_delay(vdd) + mux,
        }
    }

    /// Write via the Read/Write port, with NBL assist.
    ///
    /// # Errors
    ///
    /// Propagates the write-margin violation if the configured array size
    /// needs an assist below the yield limit.
    pub fn rw_write(&self) -> Result<WriteBreakdown, SramError> {
        // The assist level is validated here even though its depth enters the
        // energy (not timing) model — an unwritable array has no write time.
        let _assist = self.config.write_assist()?;
        let geometry = self.config.geometry();
        let wl = geometry.line(LineKind::WriteWordline);
        let bl = geometry.line(LineKind::WriteBitline);
        let drive = driven_wire_delay(
            Ohms::new(fitted::WRITE_DRIVER_RES),
            bl.resistance(),
            bl.wire_capacitance(),
            bl.device_load(),
        );
        Ok(WriteBreakdown {
            wordline: self.wordline_time(&wl),
            drive,
            nbl_kick: Seconds::new(fitted::NBL_KICK_TIME),
            flip: Seconds::new(fitted::CELL_FLIP_TIME)
                * self.config.variation().worst_case_delay_factor(),
        })
    }

    /// Decode chain + RC rise of a wordline.
    fn wordline_time(&self, line: &crate::lines::LineParasitics) -> Seconds {
        Seconds::new(fitted::WL_DECODE_DELAY)
            + driven_wire_delay(
                Ohms::new(fitted::WL_DRIVER_RES),
                line.resistance(),
                line.wire_capacitance(),
                line.device_load(),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;

    fn timing(cell: BitcellKind) -> TimingAnalysis {
        TimingAnalysis::new(&ArrayConfig::paper_default(cell))
    }

    #[test]
    fn read_times_are_sub_nanosecond_scale() {
        for cell in BitcellKind::ALL {
            let t = timing(cell).inference_read();
            let ns = t.total().ns();
            assert!(ns > 0.1 && ns < 2.0, "{cell}: access {ns} ns out of range");
        }
    }

    #[test]
    fn decoupled_port_is_slower_than_6t_differential() {
        // Table 2: the SRAM stage jumps from 0.69 ns (1RW) to ≥ 1.08 ns once
        // the decoupled single-ended port is used.
        let t6 = timing(BitcellKind::Std6T).inference_read().total();
        let t1 = timing(BitcellKind::multiport(1).unwrap())
            .inference_read()
            .total();
        assert!(t1.ps() > 1.3 * t6.ps(), "6T {} vs +1R {}", t6, t1);
    }

    #[test]
    fn inference_access_grows_with_ports() {
        let mut prev = Seconds::ZERO;
        for p in 1..=4 {
            let t = timing(BitcellKind::multiport(p).unwrap())
                .inference_read()
                .total();
            assert!(t > prev, "access time must grow with ports (p={p})");
            prev = t;
        }
    }

    #[test]
    fn transposed_port_slows_with_ports_fig6_shape() {
        // Fig. 6: both RW-port read and write times grow monotonically with
        // added ports, with a jump from 1RW to 1RW+1R.
        let mut prev_read = Seconds::ZERO;
        let mut prev_write = Seconds::ZERO;
        for cell in BitcellKind::ALL {
            let t = timing(cell);
            let read = t.rw_read().total();
            let write = t.rw_write().unwrap().total();
            assert!(read > prev_read, "{cell}: RW read time must grow");
            assert!(write > prev_write, "{cell}: RW write time must grow");
            prev_read = read;
            prev_write = write;
        }
    }

    #[test]
    fn narrow_wordline_causes_1r_jump() {
        // §4.2: one extra port causes an immediate, significant increase in
        // transposed-port times because the WL narrows.
        let t6 = timing(BitcellKind::Std6T).rw_read().read_time();
        let t1 = timing(BitcellKind::multiport(1).unwrap())
            .rw_read()
            .read_time();
        assert!(
            t1.ps() > t6.ps() * 1.05,
            "expected a visible jump: 6T {} vs +1R {}",
            t6,
            t1
        );
    }

    #[test]
    fn lower_precharge_rail_costs_bounded_time_fig7() {
        use esam_tech::calibration::paper;
        // Fig. 7 discussion: Vprech 500 mV costs at most ~19 % access time
        // over 700 mV; 400 mV is disproportionately slow.
        for p in 1..=4u8 {
            let cell = BitcellKind::multiport(p).unwrap();
            let mk = |mv: f64| {
                let cfg = ArrayConfig::builder(128, 128, cell)
                    .vprech(Volts::from_mv(mv))
                    .build()
                    .unwrap();
                TimingAnalysis::new(&cfg).inference_read().total()
            };
            let t700 = mk(700.0);
            let t500 = mk(500.0);
            let t400 = mk(400.0);
            let penalty500 = t500 / t700 - 1.0;
            assert!(
                penalty500 > 0.0 && penalty500 < paper::VPRECH_500_TIME_PENALTY_MAX + 0.03,
                "p={p}: 500 mV penalty {penalty500:.3} out of band"
            );
            assert!(t400 > t500, "p={p}: 400 mV must be slower still");
        }
    }

    #[test]
    fn worst_case_cell_is_slower_than_nominal() {
        use esam_tech::process::VariationModel;
        let cell = BitcellKind::multiport(4).unwrap();
        let worst = ArrayConfig::paper_default(cell);
        let nominal = ArrayConfig::builder(128, 128, cell)
            .variation(VariationModel::nominal())
            .build()
            .unwrap();
        let t_worst = TimingAnalysis::new(&worst).inference_read().develop;
        let t_nom = TimingAnalysis::new(&nominal).inference_read().develop;
        assert!(t_worst > t_nom);
    }

    #[test]
    fn breakdown_sums() {
        let t = timing(BitcellKind::multiport(3).unwrap());
        let r = t.inference_read();
        assert!(
            (r.total().ps() - (r.precharge + r.wordline + r.develop + r.sense).ps()).abs() < 1e-9
        );
        let w = t.rw_write().unwrap();
        assert!((w.total().ps() - (w.wordline + w.drive + w.nbl_kick + w.flip).ps()).abs() < 1e-9);
    }

    #[test]
    fn write_fits_in_the_learning_clock() {
        // §4.4.1: the 4-port cell's transposed ops run at a ~1.2 ns clock.
        let w = timing(BitcellKind::multiport(4).unwrap())
            .rw_write()
            .unwrap();
        assert!(
            w.total().ns() < 1.25,
            "write {} must fit a 1.2 ns cycle",
            w.total()
        );
    }

    #[test]
    fn pitch_share_follows_cell_family() {
        assert_eq!(timing(BitcellKind::Std6T).rbl_precharge_pitch_share(), 1.0);
        let s1 = timing(BitcellKind::multiport(1).unwrap()).rbl_precharge_pitch_share();
        let s4 = timing(BitcellKind::multiport(4).unwrap()).rbl_precharge_pitch_share();
        assert!((s1 - 1.5).abs() < 1e-12);
        assert!((s4 - 2.625 / 4.0).abs() < 1e-12);
        assert!(s4 < 1.0, "4 planes squeeze each precharge device");
    }
}
