//! SRAM array configuration and validation.

use esam_tech::calibration::paper;
use esam_tech::nbl::NblModel;
use esam_tech::process::VariationModel;
use esam_tech::units::Volts;

use crate::cell::BitcellKind;
use crate::error::SramError;
use crate::lines::ArrayGeometry;

/// Configuration of one SRAM array macro.
///
/// Construct with [`ArrayConfig::builder`]; [`ArrayConfig::paper_default`]
/// gives the paper's 128×128 / 700 mV / 500 mV setup (Table 1) for any cell
/// kind.
///
/// # Examples
///
/// ```
/// use esam_sram::{ArrayConfig, BitcellKind};
///
/// let cfg = ArrayConfig::paper_default(BitcellKind::multiport(4).unwrap());
/// assert_eq!(cfg.rows(), 128);
/// assert!(cfg.write_assist().unwrap().mv() < 0.0); // NBL kick required
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayConfig {
    rows: usize,
    cols: usize,
    cell: BitcellKind,
    vdd: Volts,
    vprech: Volts,
    mux_ratio: usize,
    variation: VariationModel,
    nbl: NblModel,
}

impl ArrayConfig {
    /// Starts building a configuration for a `rows × cols` array of `cell`s.
    pub fn builder(rows: usize, cols: usize, cell: BitcellKind) -> ArrayConfigBuilder {
        ArrayConfigBuilder {
            config: ArrayConfig {
                rows,
                cols,
                cell,
                vdd: Volts::from_mv(paper::VDD_MV),
                vprech: Volts::from_mv(paper::VPRECH_MV),
                mux_ratio: 4,
                variation: VariationModel::paper_default(),
                nbl: NblModel::paper_default(),
            },
        }
    }

    /// The paper's experimental setup (Table 1): 128×128 array, 700 mV
    /// supply, 500 mV precharge for the decoupled ports, 4:1 row mux,
    /// worst-case ±3σ cell.
    pub fn paper_default(cell: BitcellKind) -> Self {
        Self::builder(128, 128, cell)
            .build()
            .expect("the paper's 128x128 configuration is always valid")
    }

    /// Array rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The bitcell kind.
    pub fn cell(&self) -> BitcellKind {
        self.cell
    }

    /// Supply voltage.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Precharge rail of the decoupled single-ended read ports.
    pub fn vprech(&self) -> Volts {
        self.vprech
    }

    /// Row-mux ratio of the transposed port sense amplifiers (4 in the
    /// paper, giving the `2 × 4` learning cycles of §4.4.1).
    pub fn mux_ratio(&self) -> usize {
        self.mux_ratio
    }

    /// Process-variation model (±3σ worst case by default).
    pub fn variation(&self) -> &VariationModel {
        &self.variation
    }

    /// NBL write-assist model.
    pub fn nbl(&self) -> &NblModel {
        &self.nbl
    }

    /// Geometry view of the array.
    pub fn geometry(&self) -> ArrayGeometry {
        ArrayGeometry::new(self.rows, self.cols, self.cell)
    }

    /// The negative bitline voltage the write driver must generate.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::WriteMargin`] when the array dimensions violate
    /// the −400 mV yield rule (§4.1).
    pub fn write_assist(&self) -> Result<Volts, SramError> {
        let geometry = self.geometry();
        Ok(self.nbl.required_assist(
            geometry.cells_on_write_bitline(),
            self.cell.area_multiplier(),
        )?)
    }

    fn validate(&self) -> Result<(), SramError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(SramError::InvalidConfig(
                "array dimensions must be non-zero".into(),
            ));
        }
        if self.vdd.v() <= 0.0 {
            return Err(SramError::InvalidConfig("VDD must be positive".into()));
        }
        if self.vprech.v() <= 0.0 || self.vprech > self.vdd {
            return Err(SramError::InvalidConfig(format!(
                "precharge rail {} must lie in (0, VDD = {}]",
                self.vprech, self.vdd
            )));
        }
        if self.mux_ratio == 0 || !self.rows.is_multiple_of(self.mux_ratio) {
            return Err(SramError::InvalidConfig(format!(
                "mux ratio {} must divide the row count {}",
                self.mux_ratio, self.rows
            )));
        }
        // Precharge devices need overdrive to operate at all.
        if self.vprech.v() <= esam_tech::calibration::fitted::PRECHARGE_VTP {
            return Err(SramError::InvalidConfig(format!(
                "precharge rail {} leaves no overdrive over the {} mV device threshold",
                self.vprech,
                esam_tech::calibration::fitted::PRECHARGE_VTP * 1e3
            )));
        }
        // The NBL yield rule (§4.1) is what actually limits array sizes.
        self.write_assist()?;
        Ok(())
    }
}

/// Builder for [`ArrayConfig`] (`C-BUILDER`).
#[derive(Debug, Clone)]
pub struct ArrayConfigBuilder {
    config: ArrayConfig,
}

impl ArrayConfigBuilder {
    /// Sets the supply voltage (default 700 mV).
    pub fn vdd(mut self, vdd: Volts) -> Self {
        self.config.vdd = vdd;
        self
    }

    /// Sets the decoupled-port precharge rail (default 500 mV).
    pub fn vprech(mut self, vprech: Volts) -> Self {
        self.config.vprech = vprech;
        self
    }

    /// Sets the transposed-port row-mux ratio (default 4).
    pub fn mux_ratio(mut self, mux_ratio: usize) -> Self {
        self.config.mux_ratio = mux_ratio;
        self
    }

    /// Sets the process-variation model (default ±3σ worst case).
    pub fn variation(mut self, variation: VariationModel) -> Self {
        self.config.variation = variation;
        self
    }

    /// Sets the NBL write-assist model.
    pub fn nbl(mut self, nbl: NblModel) -> Self {
        self.config.nbl = nbl;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] for malformed parameters and
    /// [`SramError::WriteMargin`] for array sizes the NBL rule rejects.
    pub fn build(self) -> Result<ArrayConfig, SramError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_for_all_cells() {
        for cell in BitcellKind::ALL {
            let cfg = ArrayConfig::paper_default(cell);
            assert_eq!((cfg.rows(), cfg.cols()), (128, 128));
            assert!((cfg.vdd().mv() - 700.0).abs() < 1e-9);
            assert!(cfg.write_assist().is_ok());
        }
    }

    #[test]
    fn oversized_arrays_are_rejected() {
        for cell in BitcellKind::ALL {
            let result = ArrayConfig::builder(256, 256, cell).build();
            assert!(
                matches!(result, Err(SramError::WriteMargin(_))),
                "256x256 must violate the yield rule for {cell}"
            );
        }
    }

    #[test]
    fn transposed_cells_are_limited_by_columns() {
        // The multiport write BL runs along the columns: a wide-but-short
        // array is as hard to write as a square one.
        let cell = BitcellKind::multiport(4).unwrap();
        assert!(ArrayConfig::builder(8, 256, cell).build().is_err());
        assert!(ArrayConfig::builder(128, 128, cell).build().is_ok());
    }

    #[test]
    fn bad_voltages_are_rejected() {
        let cell = BitcellKind::Std6T;
        assert!(matches!(
            ArrayConfig::builder(128, 128, cell)
                .vprech(Volts::from_mv(900.0))
                .build(),
            Err(SramError::InvalidConfig(_))
        ));
        assert!(matches!(
            ArrayConfig::builder(128, 128, cell)
                .vprech(Volts::from_mv(100.0))
                .build(),
            Err(SramError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mux_ratio_must_divide_rows() {
        let cell = BitcellKind::multiport(1).unwrap();
        assert!(ArrayConfig::builder(128, 128, cell)
            .mux_ratio(3)
            .build()
            .is_err());
        assert!(ArrayConfig::builder(128, 128, cell)
            .mux_ratio(8)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_customization() {
        let cfg = ArrayConfig::builder(64, 128, BitcellKind::multiport(2).unwrap())
            .vprech(Volts::from_mv(400.0))
            .vdd(Volts::from_mv(700.0))
            .build()
            .unwrap();
        assert!((cfg.vprech().mv() - 400.0).abs() < 1e-9);
        assert_eq!(cfg.rows(), 64);
    }
}
