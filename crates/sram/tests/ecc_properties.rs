//! Property tests for the SECDED code: the single-error-correct /
//! double-error-detect guarantees, and equivalence of the word-parallel
//! syndrome path with the scalar bit-by-bit reference.

use esam_bits::BitVec;
use esam_sram::{RowVerdict, SecdedCode};
use proptest::prelude::*;

/// A random row of `width` bits driven by one seed word.
fn row(width: usize, seed: u64) -> BitVec {
    let mut v = BitVec::new(width);
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for i in 0..width {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        if x & 1 == 1 {
            v.set(i, true);
        }
    }
    v
}

/// Row widths spanning word boundaries up to the paper's 128 columns, with
/// the boundary cases themselves visited often.
fn widths() -> impl Strategy<Value = usize> {
    any::<u64>().prop_map(|w| match w % 8 {
        0 => 1,
        1 => 63,
        2 => 64,
        3 => 65,
        4 => 127,
        5 => 128,
        _ => 1 + (w >> 3) as usize % 128,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn word_parallel_encode_matches_scalar_reference(
        width in widths(),
        seed in any::<u64>(),
    ) {
        let code = SecdedCode::new(width);
        let data = row(width, seed);
        prop_assert_eq!(code.encode(data.words()), code.encode_reference(&data));
    }

    #[test]
    fn word_parallel_syndrome_matches_scalar_reference(
        width in widths(),
        seed in any::<u64>(),
        strike in any::<u64>(),
    ) {
        let code = SecdedCode::new(width);
        let mut data = row(width, seed);
        let sidecar = code.encode(data.words());
        // Strike 0–2 data bits so all verdict classes are exercised.
        let flips = (strike % 3) as usize;
        for f in 0..flips {
            let col = ((strike >> (8 * (f + 1))) as usize + f * 31) % width;
            data.set(col, !data.get(col));
        }
        prop_assert_eq!(
            code.syndrome(data.words(), sidecar),
            code.syndrome_reference(&data, sidecar)
        );
    }

    #[test]
    fn every_single_bit_flip_is_corrected(
        width in widths(),
        seed in any::<u64>(),
    ) {
        let code = SecdedCode::new(width);
        let data = row(width, seed);
        let sidecar = code.encode(data.words());
        // Every data-bit flip is located at its exact column.
        for col in 0..width {
            let mut struck = data.clone();
            struck.set(col, !struck.get(col));
            let (s, p) = code.syndrome(struck.words(), sidecar);
            prop_assert_eq!(
                code.classify(s, p),
                RowVerdict::CorrectedData(col),
                "width {} col {}",
                width,
                col
            );
        }
        // Every sidecar-bit flip (check bits + overall parity) leaves the
        // data intact and says so.
        for bit in 0..=code.check_bits() {
            let (s, p) = code.syndrome(data.words(), sidecar ^ (1 << bit));
            prop_assert_eq!(code.classify(s, p), RowVerdict::CorrectedCheck);
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected_not_miscorrected(
        width in widths(),
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        prop_assume!(width >= 2);
        let code = SecdedCode::new(width);
        let data = row(width, seed);
        let sidecar = code.encode(data.words());
        // Two distinct data-bit flips.
        let a = (pick as usize) % width;
        let b = {
            let cand = ((pick >> 17) as usize) % width;
            if cand == a { (cand + 1) % width } else { cand }
        };
        let mut struck = data.clone();
        struck.set(a, !struck.get(a));
        struck.set(b, !struck.get(b));
        let (s, p) = code.syndrome(struck.words(), sidecar);
        prop_assert_eq!(code.classify(s, p), RowVerdict::DetectedUncorrectable);
        // One data flip + one sidecar flip is also a double error.
        let mut one = data.clone();
        one.set(a, !one.get(a));
        let bit = ((pick >> 33) as usize) % (code.check_bits() + 1);
        let (s, p) = code.syndrome(one.words(), sidecar ^ (1 << bit));
        prop_assert_eq!(code.classify(s, p), RowVerdict::DetectedUncorrectable);
        // Two sidecar flips likewise.
        let other = (bit + 1) % (code.check_bits() + 1);
        let (s, p) = code.syndrome(data.words(), sidecar ^ (1 << bit) ^ (1 << other));
        prop_assert_eq!(code.classify(s, p), RowVerdict::DetectedUncorrectable);
    }

    #[test]
    fn correction_round_trips_to_the_original_row(
        width in widths(),
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let code = SecdedCode::new(width);
        let data = row(width, seed);
        let sidecar = code.encode(data.words());
        let col = (pick as usize) % width;
        let mut struck = data.clone();
        struck.set(col, !struck.get(col));
        let (s, p) = code.syndrome(struck.words(), sidecar);
        if let RowVerdict::CorrectedData(located) = code.classify(s, p) {
            struck.set(located, !struck.get(located));
            prop_assert_eq!(struck, data);
        } else {
            prop_assert!(false, "single data flip must be located");
        }
    }
}
