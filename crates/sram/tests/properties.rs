//! Property tests for the functional SRAM array: port semantics, transposed
//! access, and physical-model monotonicities.

use esam_bits::{BitMatrix, BitVec};
use esam_sram::{ArrayConfig, BitcellKind, EnergyAnalysis, SramArray, TimingAnalysis};
use esam_tech::units::Volts;
use proptest::prelude::*;

fn weights(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    any::<u64>().prop_map(move |seed| {
        BitMatrix::from_fn(rows, cols, |r, c| {
            (seed >> ((r * 13 + c * 7) % 64)) & 1 == 1
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn inference_reads_mirror_contents_on_every_port(
        w in weights(128, 128),
        row in 0usize..128,
    ) {
        for ports in 1..=4u8 {
            let cell = BitcellKind::multiport(ports).unwrap();
            let mut array = SramArray::new(ArrayConfig::paper_default(cell));
            array.load_weights(&w).unwrap();
            for port in 0..ports as usize {
                let bits = array.inference_read(port, row).unwrap();
                prop_assert_eq!(&bits, &w.row(row), "port {} row {}", port, row);
            }
        }
    }

    #[test]
    fn transposed_write_then_read_roundtrips(
        w in weights(128, 128),
        col in 0usize..128,
        column_seed in any::<u64>(),
    ) {
        let cell = BitcellKind::multiport(4).unwrap();
        let mut array = SramArray::new(ArrayConfig::paper_default(cell));
        array.load_weights(&w).unwrap();
        let column: BitVec = (0..128).map(|r| (column_seed >> (r % 64)) & 1 == 1).collect();
        array.transposed_write(col, &column).unwrap();
        prop_assert_eq!(array.transposed_read(col).unwrap(), column);
        // Neighbouring columns are untouched.
        let other = (col + 1) % 128;
        prop_assert_eq!(array.transposed_read(other).unwrap(), w.column(other));
    }

    #[test]
    fn rowwise_rmw_equals_transposed_update(
        w in weights(64, 64),
        col in 0usize..64,
        column_seed in any::<u64>(),
    ) {
        // The 6T baseline's row-wise read-modify-write must produce the same
        // final contents as a multiport transposed write.
        let column: BitVec = (0..64).map(|r| (column_seed >> (r % 64)) & 1 == 1).collect();

        let mp = BitcellKind::multiport(2).unwrap();
        let mut multi = SramArray::new(ArrayConfig::builder(64, 64, mp).build().unwrap());
        multi.load_weights(&w).unwrap();
        let _old_column = multi.transposed_read(col).unwrap(); // read-modify-write
        multi.transposed_write(col, &column).unwrap();

        let mut single = SramArray::new(ArrayConfig::builder(64, 64, BitcellKind::Std6T).build().unwrap());
        single.load_weights(&w).unwrap();
        for row in 0..64 {
            let mut bits = single.rowwise_read(row).unwrap();
            bits.set(col, column.get(row));
            single.rowwise_write(row, &bits).unwrap();
        }
        prop_assert_eq!(single.bits(), multi.bits());
        // …but at wildly different access cost (the §4.4.1 point).
        prop_assert_eq!(multi.stats().rw_read_cycles + multi.stats().rw_write_cycles, 8);
        prop_assert_eq!(single.stats().rw_read_cycles + single.stats().rw_write_cycles, 128);
    }

    #[test]
    fn zero_count_energy_accounting_is_exact(
        w in weights(128, 128),
        row in 0usize..128,
    ) {
        let cell = BitcellKind::multiport(3).unwrap();
        let mut array = SramArray::new(ArrayConfig::paper_default(cell));
        array.load_weights(&w).unwrap();
        array.inference_read(0, row).unwrap();
        let zeros = 128 - w.row(row).count_ones();
        prop_assert_eq!(array.stats().inference_zero_bits, zeros as u64);
        let expected = EnergyAnalysis::new(array.config()).inference_read(zeros);
        let consumed = array.consumed_energy().unwrap();
        prop_assert!((consumed.fj() - expected.fj()).abs() < 1e-9);
    }

    #[test]
    fn lower_precharge_rail_never_speeds_access(
        ports in 1u8..=4,
        rail_mv in 320.0f64..700.0,
    ) {
        // Monotonicity of the Fig. 7 time axis: any rail below 700 mV is at
        // least as slow as 700 mV.
        let cell = BitcellKind::multiport(ports).unwrap();
        let low = ArrayConfig::builder(128, 128, cell)
            .vprech(Volts::from_mv(rail_mv))
            .build()
            .unwrap();
        let high = ArrayConfig::builder(128, 128, cell)
            .vprech(Volts::from_mv(700.0))
            .build()
            .unwrap();
        let t_low = TimingAnalysis::new(&low).inference_read().total();
        let t_high = TimingAnalysis::new(&high).inference_read().total();
        prop_assert!(t_low >= t_high);
    }

    #[test]
    fn smaller_arrays_are_never_slower_or_hungrier(
        rows in 1usize..=128,
        cols in 1usize..=128,
    ) {
        // Any sub-array of the paper's 128×128 has shorter lines: its access
        // time and per-op energy cannot exceed the full array's.
        prop_assume!(rows.is_multiple_of(4) || rows < 4);
        let cell = BitcellKind::multiport(4).unwrap();
        let mux = if rows.is_multiple_of(4) { 4 } else { 1 };
        let small = ArrayConfig::builder(rows, cols, cell).mux_ratio(mux).build().unwrap();
        let full = ArrayConfig::paper_default(cell);
        let t_small = TimingAnalysis::new(&small).inference_read().total();
        let t_full = TimingAnalysis::new(&full).inference_read().total();
        prop_assert!(t_small.ps() <= t_full.ps() + 1e-6);
        let e_small = EnergyAnalysis::new(&small).inference_read_fixed();
        let e_full = EnergyAnalysis::new(&full).inference_read_fixed();
        prop_assert!(e_small.fj() <= e_full.fj() + 1e-9);
    }
}
