//! Calibration probe: dumps the raw circuit-level quantities (Fig. 6/7,
//! §4.4.1 anchors, leakage, per-spike energies) used to fit the constants in
//! `esam_tech::calibration::fitted`. Not a reproduction artifact — see the
//! `repro` binary for those.

use esam_sram::{ArrayConfig, BitcellKind, EnergyAnalysis, TimingAnalysis};
use esam_tech::units::Volts;

fn main() {
    println!("== Fig6: RW (transposed) port per-cell write/read ==");
    for cell in BitcellKind::ALL {
        let cfg = ArrayConfig::paper_default(cell);
        let t = TimingAnalysis::new(&cfg);
        let e = EnergyAnalysis::new(&cfg);
        let w = t.rw_write().unwrap();
        let r = t.rw_read();
        println!(
            "{:8} wr={:.0}ps (wl {:.0} drv {:.0} kick {:.0} flip {:.0})  rd={:.0}ps (pre {:.0} wl {:.0} dev {:.0} sns {:.0})  Ewr={:.1}fJ Erd={:.1}fJ",
            cell.name(), w.total().ps(), w.wordline.ps(), w.drive.ps(), w.nbl_kick.ps(), w.flip.ps(),
            r.total().ps(), r.precharge.ps(), r.wordline.ps(), r.develop.ps(), r.sense.ps(),
            e.rw_write_per_cell().unwrap().fj(), e.rw_read_per_cell().fj()
        );
    }
    println!("\n== Inference read (Table2 SRAM part, Vprech=500) ==");
    for cell in BitcellKind::ALL {
        let cfg = ArrayConfig::paper_default(cell);
        let t = TimingAnalysis::new(&cfg).inference_read();
        println!(
            "{:8} total={:.0}ps (pre {:.0} wl {:.0} dev {:.0} sns {:.0})",
            cell.name(),
            t.total().ps(),
            t.precharge.ps(),
            t.wordline.ps(),
            t.develop.ps(),
            t.sense.ps()
        );
    }
    println!(
        "\n== Fig7: access time/energy per port count & Vprech (avg per access, full util) =="
    );
    for mv in [700.0, 600.0, 500.0, 400.0] {
        print!("Vp={mv:3.0}mV: ");
        for p in 1..=4u8 {
            let cell = BitcellKind::multiport(p).unwrap();
            let cfg = ArrayConfig::builder(128, 128, cell)
                .vprech(Volts::from_mv(mv))
                .build()
                .unwrap();
            let t = TimingAnalysis::new(&cfg).inference_read();
            let e = EnergyAnalysis::new(&cfg).inference_read(64);
            print!(
                " p{p}: {:.0}ps/{:.0}fJ",
                t.total().ps() / p as f64,
                e.fj() / p as f64
            );
        }
        println!();
    }
    println!("\n== 4.4.1 learning energies ==");
    let e6 = EnergyAnalysis::new(&ArrayConfig::paper_default(BitcellKind::Std6T));
    let row = (e6.rw_read_cycle().pj() + e6.rw_write_cycle().unwrap().pj()) * 128.0;
    println!("6T rowwise read+write all: {row:.1} pJ (paper 157)");
    let e4 = EnergyAnalysis::new(&ArrayConfig::paper_default(
        BitcellKind::multiport(4).unwrap(),
    ));
    let col = (e4.rw_read_cycle().pj() + e4.rw_write_cycle().unwrap().pj()) * 4.0;
    println!("4R transposed col read+write: {col:.2} pJ (paper 8.04)");
    println!("\n== leakage ==");
    for cell in BitcellKind::ALL {
        let e = EnergyAnalysis::new(&ArrayConfig::paper_default(cell));
        println!(
            "{:8} leak={:.1} uW/array",
            cell.name(),
            e.leakage_power().uw()
        );
    }
    println!("\n== per-spike inference energy (zeros=64) ==");
    for cell in BitcellKind::ALL {
        let e = EnergyAnalysis::new(&ArrayConfig::paper_default(cell));
        println!(
            "{:8} E_spike={:.1} fJ",
            cell.name(),
            e.inference_read(64).fj()
        );
    }
}
