//! Quantile accuracy for the shared histogram: on deterministic
//! synthetic distributions (uniform, bimodal, heavy-tail), the histogram
//! p50/p95/p99 must land within one sub-bucket (~6 %, lower edge) of the
//! exact sorted-order quantile under the same rank convention.

use esam_obs::Histogram;

/// Exact sorted-order quantile with the histogram's rank convention
/// (`rank = ceil(q·n)`, clamped to at least 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the histogram estimate sits in the same bucket as the exact
/// value: a lower edge no more than one sub-bucket (1/16 of the value,
/// plus one for integer truncation) below it.
fn assert_within_one_bucket(label: &str, values: &[u64]) {
    let mut hist = Histogram::new();
    for &v in values {
        hist.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    for q in [0.50, 0.95, 0.99] {
        let exact = exact_quantile(&sorted, q);
        let estimate = hist.quantile(q);
        assert!(
            estimate <= exact,
            "{label} q={q}: estimate {estimate} above exact {exact}"
        );
        let tolerance = exact / 16 + 1;
        assert!(
            exact - estimate <= tolerance,
            "{label} q={q}: estimate {estimate} more than one sub-bucket below exact {exact}"
        );
    }
    assert_eq!(
        hist.quantile(1.0),
        *sorted.last().unwrap(),
        "{label}: max is exact"
    );
}

/// Deterministic splitmix64 — the same generator the fault plans use for
/// site hashing, reused here as a seedable value stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
fn uniform_distribution() {
    let mut state = 0x0B5u64;
    let values: Vec<u64> = (0..10_000)
        .map(|_| splitmix(&mut state) % 1_000_000)
        .collect();
    assert_within_one_bucket("uniform", &values);
}

#[test]
fn bimodal_distribution() {
    // Two narrow modes three decades apart — the shape of a latency
    // distribution with a fast path and a retry path.
    let mut state = 0xB1B0u64;
    let values: Vec<u64> = (0..10_000)
        .map(|i| {
            let jitter = splitmix(&mut state) % 64;
            if i % 10 < 9 {
                1_000 + jitter // fast mode, 90 %
            } else {
                1_000_000 + jitter * 512 // slow mode, 10 %
            }
        })
        .collect();
    assert_within_one_bucket("bimodal", &values);
}

#[test]
fn heavy_tail_distribution() {
    // Pareto-like: value ~ scale / u^(1/alpha) with alpha ≈ 1.16 —
    // spans five decades, p99 far from the median.
    let mut state = 0x7A11u64;
    let values: Vec<u64> = (0..10_000)
        .map(|_| {
            let u = (splitmix(&mut state) % 1_000_000) as f64 / 1_000_000.0 + 1e-6;
            (100.0 / u.powf(1.0 / 1.16)) as u64
        })
        .collect();
    assert_within_one_bucket("heavy-tail", &values);
}

#[test]
fn small_exact_range_has_zero_error() {
    // Values below 16 land in exact unit buckets: estimate == exact.
    let values: Vec<u64> = (0..1_000).map(|i| i % 16).collect();
    let mut hist = Histogram::new();
    for &v in &values {
        hist.record(v);
    }
    let mut sorted = values.clone();
    sorted.sort_unstable();
    for q in [0.50, 0.95, 0.99] {
        assert_eq!(hist.quantile(q), exact_quantile(&sorted, q));
    }
}
