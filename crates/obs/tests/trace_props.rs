//! Tracer properties: deterministic merge across threads (same seed +
//! same thread count ⇒ byte-identical cycle-domain trace), well-formed
//! span nesting across panics, and ring-overflow bookkeeping.

use std::panic::{catch_unwind, AssertUnwindSafe};

use esam_obs::{TimeDomain, Trace, TraceConfig, TrackTrace};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs `threads` worker threads, each recording a deterministic event
/// stream derived from `(seed, shard index)` into its own track, then
/// merges the tracks in completion order. Mirrors how the batch engine
/// shards frames: logical shards are fixed, so the merged cycle-domain
/// trace must not depend on scheduling.
fn traced_run(seed: u64, threads: usize, events_per_shard: usize) -> String {
    let config = TraceConfig::enabled(events_per_shard + 4);
    let handles: Vec<_> = (0..threads)
        .map(|shard| {
            let mut track = config
                .track(1, shard as u32, format!("shard {shard}"))
                .expect("tracing enabled");
            std::thread::spawn(move || {
                let mut state = seed ^ (shard as u64).wrapping_mul(0xA5A5_A5A5);
                for i in 0..events_per_shard {
                    let dur = splitmix(&mut state) % 500;
                    match splitmix(&mut state) % 3 {
                        0 => track.span("step", dur, [Some(("i", i as u64)), None]),
                        1 => {
                            track.begin("layer");
                            track.advance(dur);
                            track.end([Some(("i", i as u64)), None]);
                        }
                        _ => track.instant("spike", [Some(("i", i as u64)), None]),
                    }
                }
                track
            })
        })
        .collect();
    let mut trace = Trace::new();
    trace.name_process(1, "engine");
    for handle in handles {
        trace.push(handle.join().expect("worker"));
    }
    assert_eq!(trace.total_unmatched(), 0);
    trace.chrome_json(TimeDomain::Cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + same thread count ⇒ byte-identical cycle-domain trace,
    /// at every thread count.
    #[test]
    fn same_seed_same_threads_identical_trace(
        seed in 0u64..1_000,
        threads in 1usize..6,
        events in 1usize..40,
    ) {
        let a = traced_run(seed, threads, events);
        let b = traced_run(seed, threads, events);
        prop_assert_eq!(a, b);
    }

    /// Span nesting stays well-formed across panics: a worker that
    /// unwinds mid-span is recovered by `abandon_open`, after which every
    /// recorded exit matches an enter and the track keeps recording.
    #[test]
    fn nesting_is_wellformed_across_panics(
        depth in 1usize..8,
        panic_at in 0usize..8,
        survivors in 0usize..5,
    ) {
        let mut track = TrackTrace::new(1, 0, "supervised", 64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            for level in 0..depth {
                track.begin("stage");
                track.advance(10);
                if level == panic_at % depth {
                    panic!("injected worker fault");
                }
            }
        }));
        prop_assert!(result.is_err());
        let open = track.open_depth() as u64;
        prop_assert!(open > 0, "the unwound spans are still open");
        // Supervisor recovery: restore the invariant, then keep serving.
        track.abandon_open();
        track.instant("worker-restart", [None, None]);
        prop_assert_eq!(track.open_depth(), 0);
        prop_assert_eq!(track.unmatched(), open);
        for _ in 0..survivors {
            track.begin("stage");
            track.advance(5);
            prop_assert!(track.end([None, None]));
        }
        prop_assert_eq!(track.open_depth(), 0);
        prop_assert_eq!(track.unmatched(), open, "recovered spans all match");
        let mut trace = Trace::new();
        trace.push(track);
        prop_assert_eq!(trace.total_unmatched(), open);
    }

    /// Ring overflow: the track retains exactly `min(recorded, capacity)`
    /// events — the newest window — and counts every overwrite.
    #[test]
    fn ring_keeps_the_newest_window(
        capacity in 1usize..32,
        recorded in 0usize..100,
    ) {
        let mut track = TrackTrace::new(1, 0, "ring", capacity);
        for i in 0..recorded {
            track.instant("e", [Some(("i", i as u64)), None]);
        }
        prop_assert_eq!(track.len(), recorded.min(capacity));
        prop_assert_eq!(track.dropped(), recorded.saturating_sub(capacity) as u64);
        let kept: Vec<u64> = track.events().map(|e| e.args[0].unwrap().1).collect();
        let expect: Vec<u64> =
            (recorded.saturating_sub(capacity)..recorded).map(|i| i as u64).collect();
        prop_assert_eq!(kept, expect);
    }
}

/// Merging sub-traces (one per thread group) is equivalent to pushing
/// every track into one trace — the merge law at the `Trace` level.
#[test]
fn trace_merge_matches_flat_push() {
    let mk = |tid: u32| {
        let mut t = TrackTrace::new(1, tid, format!("t{tid}"), 16);
        t.span("work", u64::from(tid) * 10 + 1, [None, None]);
        t
    };
    let mut flat = Trace::new();
    for tid in 0..6 {
        flat.push(mk(tid));
    }
    let mut left = Trace::new();
    for tid in [4, 0, 2] {
        left.push(mk(tid));
    }
    let mut right = Trace::new();
    for tid in [5, 1, 3] {
        right.push(mk(tid));
    }
    left.merge(right);
    assert_eq!(
        left.chrome_json(TimeDomain::Cycles),
        flat.chrome_json(TimeDomain::Cycles)
    );
}
