//! Schema sanity for the Chrome trace exporter: the emitted JSON is
//! parsed with a minimal recursive-descent parser, every event is
//! checked for the fields the trace-event format requires (`ph`, `ts`,
//! `pid`, `tid`, …), and the parsed document is re-serialized and
//! re-parsed to prove the output round-trips — the offline stand-in for
//! loading the trace in Perfetto.

use esam_obs::{TimeDomain, Trace, TrackTrace};

/// A minimal JSON value — just enough structure to validate the trace.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn is_num(&self) -> bool {
        matches!(self, Json::Num(_))
    }

    fn serialize(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Json::Str(s) => format!("\"{}\"", esam_obs::json_escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::serialize).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", esam_obs::json_escape(k), v.serialize()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.bytes.get(self.at).expect("unexpected end of JSON")
    }

    fn eat(&mut self, expected: u8) {
        let got = self.peek();
        assert_eq!(
            got as char, expected as char,
            "expected {:?} at byte {}",
            expected as char, self.at
        );
        self.at += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Json {
        self.skip_ws();
        assert!(
            self.bytes[self.at..].starts_with(text.as_bytes()),
            "bad literal at byte {}",
            self.at
        );
        self.at += text.len();
        value
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("utf8 number");
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text}")))
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            let b = self.bytes[self.at];
            self.at += 1;
            match b {
                b'"' => return out,
                b'\\' => {
                    let esc = self.bytes[self.at];
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.at..self.at + 4]).unwrap();
                            self.at += 4;
                            let code = u32::from_str_radix(hex, 16).expect("hex escape");
                            out.push(char::from_u32(code).expect("scalar value"));
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.at - 1..]).expect("utf8");
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.at += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected , or ] found {:?}", other as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.at += 1;
            return Json::Obj(fields);
        }
        loop {
            let key = {
                self.skip_ws();
                self.string()
            };
            self.eat(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected , or }} found {:?}", other as char),
            }
        }
    }
}

fn parse(text: &str) -> Json {
    let mut parser = Parser::new(text);
    let value = parser.value();
    parser.skip_ws();
    assert_eq!(parser.at, parser.bytes.len(), "trailing JSON content");
    value
}

/// A representative trace: two processes, spans with args, instants,
/// metadata, names needing escaping.
fn sample_trace() -> Trace {
    let mut worker = TrackTrace::new(1, 0, "worker 0 \"greedy\"", 32);
    worker.span_at("queue-wait", 0, 40, [Some(("request", 1)), None]);
    worker.advance(40);
    worker.span("infer", 120, [Some(("frame", 1)), Some(("batch", 1))]);
    worker.instant("fulfil", [Some(("request", 1)), None]);
    worker.instant("worker-restart", [None, None]);
    let mut core = TrackTrace::new(2, 3, "core 3", 32);
    core.span("frame", 77, [Some(("t", 0)), None]);
    let mut trace = Trace::new();
    trace.name_process(1, "esam-serve");
    trace.name_process(2, "esam-mesh");
    trace.push(worker);
    trace.push(core);
    trace
}

fn validate_events(doc: &Json) -> usize {
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    for event in events {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event needs a ph");
        assert!(
            event.get("pid").is_some_and(Json::is_num),
            "every event needs a numeric pid: {event:?}"
        );
        assert!(
            event.get("tid").is_some_and(Json::is_num),
            "every event needs a numeric tid: {event:?}"
        );
        match ph {
            "X" => {
                assert!(event.get("ts").is_some_and(Json::is_num));
                assert!(event.get("dur").is_some_and(Json::is_num));
                assert!(event.get("name").is_some());
            }
            "i" => {
                assert!(event.get("ts").is_some_and(Json::is_num));
                assert_eq!(event.get("s").and_then(Json::as_str), Some("t"));
            }
            "M" => {
                let name = event.get("name").and_then(Json::as_str).unwrap();
                assert!(matches!(name, "process_name" | "thread_name"));
                assert!(event.get("args").and_then(|a| a.get("name")).is_some());
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    events.len()
}

#[test]
fn cycle_domain_trace_parses_validates_and_round_trips() {
    let text = sample_trace().chrome_json(TimeDomain::Cycles);
    let doc = parse(&text);
    let events = validate_events(&doc);
    // 2 process_name + 2 thread_name + 5 payload events.
    assert_eq!(events, 9);
    // Round-trip: serialize the parsed AST and parse again.
    let reparsed = parse(&doc.serialize());
    assert_eq!(
        doc, reparsed,
        "export survives a parse→serialize→parse loop"
    );
}

#[test]
fn wall_domain_trace_parses_and_validates_too() {
    let text = sample_trace().chrome_json(TimeDomain::Wall);
    let doc = parse(&text);
    validate_events(&doc);
}

#[test]
fn span_args_survive_the_round_trip() {
    let text = sample_trace().chrome_json(TimeDomain::Cycles);
    let doc = parse(&text);
    let Json::Arr(events) = doc.get("traceEvents").unwrap() else {
        unreachable!()
    };
    let infer = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("infer"))
        .expect("infer span present");
    assert_eq!(
        infer.get("args").and_then(|a| a.get("frame")),
        Some(&Json::Num(1.0))
    );
    assert_eq!(
        infer.get("args").and_then(|a| a.get("batch")),
        Some(&Json::Num(1.0))
    );
    assert_eq!(infer.get("ts"), Some(&Json::Num(40.0)));
    assert_eq!(infer.get("dur"), Some(&Json::Num(120.0)));
}
