//! The unified metrics registry: counters, gauges and histograms behind
//! one API, with deterministic iteration and two exporters.
//!
//! The registry is an aggregation-side structure, not a hot-path one:
//! hot loops keep recording into their existing plain-field tallies and
//! histograms, and a registry snapshot is assembled at report time (or
//! merged shard-by-shard, following the same exact u64 merge law —
//! counters fold through [`tally_add`], histograms
//! through their exact bucket merge, gauges take the maximum, so a merge
//! of N shard registries is independent of merge order).
//!
//! Keys iterate in sorted (BTreeMap) order, so both exporters emit
//! byte-identical text for equal contents.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::{json_escape, tally_add};

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count (merged by saturating addition).
    Counter(u64),
    /// Point-in-time level (merged by maximum — peak depth semantics).
    Gauge(i64),
    /// Value distribution (merged exactly, bucket by bucket).
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A name-keyed collection of [`Metric`]s with deterministic iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the counter `name` (creating it at 0). Re-using a
    /// name registered as a different kind is a bug: loud in debug
    /// builds, ignored in release.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => tally_add(c, value),
            other => debug_assert!(false, "{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the gauge `name` (creating it).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Gauge(value))
        {
            Metric::Gauge(g) => *g = value,
            other => debug_assert!(false, "{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records `value` into the histogram `name` (creating it).
    pub fn observe(&mut self, name: &str, value: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.record(value),
            other => debug_assert!(false, "{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Merges a whole histogram into the histogram `name` (creating it)
    /// — the bridge from the per-shard histograms the hot paths own.
    pub fn merge_histogram(&mut self, name: &str, histogram: &Histogram) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.merge(histogram),
            other => debug_assert!(false, "{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// The counter `name`, or 0 when absent (or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Sorted iteration over `(name, metric)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry in: counters saturating-add, gauges take
    /// the maximum, histograms merge exactly. Kind mismatches are loud in
    /// debug builds and keep the existing entry in release.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.metrics {
            match self.metrics.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(metric.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), metric) {
                        (Metric::Counter(mine), Metric::Counter(theirs)) => {
                            tally_add(mine, *theirs);
                        }
                        (Metric::Gauge(mine), Metric::Gauge(theirs)) => {
                            *mine = (*mine).max(*theirs);
                        }
                        (Metric::Histogram(mine), Metric::Histogram(theirs)) => {
                            mine.merge(theirs);
                        }
                        (mine, theirs) => debug_assert!(
                            false,
                            "{name}: cannot merge {} into {}",
                            theirs.kind(),
                            mine.kind()
                        ),
                    }
                }
            }
        }
    }

    /// Prometheus text exposition (format version 0.0.4). Histograms are
    /// exposed as summaries with p50/p95/p99 quantiles plus `_sum`,
    /// `_count` and `_max`. Hyphens and dots in names are mapped to
    /// underscores to satisfy the Prometheus grammar.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            let name = prom_name(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {g}\n"));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{label}\"}} {}\n",
                            h.quantile(q)
                        ));
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                    out.push_str(&format!("{name}_max {}\n", h.max()));
                }
            }
        }
        out
    }

    /// Hand-rolled JSON snapshot in the `repro --json` style: sorted
    /// keys, histograms as `{count, mean, p50, p95, p99, max}` objects.
    pub fn json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        let append = |dst: &mut String, item: String| {
            if !dst.is_empty() {
                dst.push(',');
            }
            dst.push_str(&item);
        };
        for (name, metric) in &self.metrics {
            let key = json_escape(name);
            match metric {
                Metric::Counter(c) => append(&mut counters, format!("\"{key}\":{c}")),
                Metric::Gauge(g) => append(&mut gauges, format!("\"{key}\":{g}")),
                Metric::Histogram(h) => append(
                    &mut histograms,
                    format!(
                        "\"{key}\":{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\
                         \"p99\":{},\"max\":{}}}",
                        h.count(),
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.max()
                    ),
                ),
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }
}

/// Maps a metric name onto the Prometheus identifier grammar.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.add_counter("serve_completed_total", 3);
        r.add_counter("serve_completed_total", 4);
        assert_eq!(r.counter("serve_completed_total"), 7);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut whole = MetricsRegistry::new();
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for i in 0..100u64 {
            whole.add_counter("events", 1);
            whole.observe("lat", i * 37);
            let shard = if i % 2 == 0 { &mut a } else { &mut b };
            shard.add_counter("events", 1);
            shard.observe("lat", i * 37);
        }
        whole.set_gauge("peak", 9);
        a.set_gauge("peak", 4);
        b.set_gauge("peak", 9);
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_is_order_independent() {
        let shard = |seed: u64| {
            let mut r = MetricsRegistry::new();
            r.add_counter("n", seed);
            r.observe("v", seed * 11);
            r.set_gauge("g", seed as i64);
            r
        };
        let mut ab = shard(1);
        ab.merge(&shard(2));
        let mut ba = shard(2);
        ba.merge(&shard(1));
        assert_eq!(ab, ba);
        assert_eq!(ab.json(), ba.json());
        assert_eq!(ab.prometheus(), ba.prometheus());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = MetricsRegistry::new();
        r.add_counter("frames_total", 5);
        r.set_gauge("queue-depth.peak", 3);
        for v in [10u64, 20, 30] {
            r.observe("latency_cycles", v);
        }
        let text = r.prometheus();
        assert!(text.contains("# TYPE frames_total counter\nframes_total 5\n"));
        assert!(text.contains("# TYPE queue_depth_peak gauge\nqueue_depth_peak 3\n"));
        assert!(text.contains("# TYPE latency_cycles summary\n"));
        assert!(text.contains("latency_cycles{quantile=\"0.5\"} 20\n"));
        assert!(text.contains("latency_cycles_count 3\n"));
        assert!(text.contains("latency_cycles_sum 60\n"));
    }

    #[test]
    fn json_snapshot_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.add_counter("zeta", 1);
        r.add_counter("alpha", 2);
        r.observe("h", 100);
        let json = r.json();
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "sorted keys");
        assert!(json.contains("\"histograms\":{\"h\":{\"count\":1"));
        assert_eq!(json, r.clone().json());
    }
}
