//! The shared mergeable histogram — promoted from the serve crate so
//! every layer (serve latency, mesh link occupancy, queue-depth series,
//! trace-derived stage breakdowns) records into the same structure.
//!
//! `esam-serve` re-exports this type as `LatencyHistogram`, so its public
//! API is unchanged; the bucket layout, quantile semantics and merge law
//! are exactly the ones the serve reports were built on.

use std::fmt;

/// A mergeable histogram of `u64` values (nanoseconds or cycles) with
/// ~6 % value resolution: 16 linear sub-buckets per power of two
/// (HDR-histogram shape), 976 buckets total, fixed 8 KiB footprint — no
/// per-record allocation, no unbounded memory in a long-lived service.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    max: u64,
}

const PRECISION_BITS: u32 = 4;
const SUBBUCKETS: usize = 1 << PRECISION_BITS; // 16
const BUCKETS: usize = SUBBUCKETS + (64 - PRECISION_BITS as usize) * SUBBUCKETS; // 976

fn bucket_index(value: u64) -> usize {
    if value < SUBBUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= PRECISION_BITS
    let sub = ((value >> (exp - PRECISION_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    SUBBUCKETS + (exp - PRECISION_BITS) as usize * SUBBUCKETS + sub
}

/// Lower edge of a bucket — the quantile estimate returned for any value
/// that landed in it (an under-estimate by at most one sub-bucket, ~6 %).
fn bucket_floor(index: usize) -> u64 {
    if index < SUBBUCKETS {
        return index as u64;
    }
    let exp = (index - SUBBUCKETS) / SUBBUCKETS;
    let sub = (index - SUBBUCKETS) % SUBBUCKETS;
    ((SUBBUCKETS + sub) as u64) << exp
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of the recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), resolved to its bucket's lower
    /// edge; 0 when empty. `quantile(1.0)` uses the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_floor(index).min(self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's recordings into this one (exact: bucket
    /// counts and sums are plain integer additions).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 7.5).abs() < 1e-12);
        assert_eq!(h.sum(), 120);
        assert!(!h.is_empty());
    }

    #[test]
    fn large_values_resolve_within_a_subbucket() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let p = h.quantile(0.99);
        assert!(p <= 1_000_000, "lower-edge estimate: {p}");
        assert!(
            p as f64 >= 1_000_000.0 / 1.07,
            "within one sub-bucket (~6%): {p}"
        );
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record(x % 10_000_000);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let values: Vec<u64> = (0..500).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge is exact down to the buckets");
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn bucket_floor_inverts_bucket_index_on_edges() {
        for value in [0u64, 1, 15, 16, 17, 31, 32, 1023, 1024, u64::MAX / 2] {
            let floor = bucket_floor(bucket_index(value));
            assert!(floor <= value);
            assert!(
                value - floor <= value / SUBBUCKETS as u64,
                "floor {floor} too far below {value}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }
}
