//! The deterministic dual-domain tracer.
//!
//! # Design
//!
//! * A **track** ([`TrackTrace`]) is one timeline in the final trace —
//!   one per serve worker, mesh core, mesh link or engine shard. Each
//!   track is owned by exactly one thread while recording (the
//!   workspace's shard-and-merge idiom: no shared mutable state, no
//!   locks, no sampling races).
//! * Storage is a **fixed-capacity ring buffer** allocated once at
//!   construction. Recording an event writes a `Copy` struct into the
//!   ring — no allocation, ever: event names and arg keys are
//!   `&'static str`, values are `u64`. When the ring is full, the oldest
//!   event is overwritten and `dropped` ticks, so a long-lived service
//!   keeps the most recent window at a fixed memory cost.
//! * Every event carries **both time domains**: modeled pipeline cycles
//!   (from the track's cycle cursor — deterministic, workload-invariant)
//!   and wall nanoseconds since the track's epoch (machine-dependent).
//!   Exporters pick a domain via [`TimeDomain`]; cycle-domain exports are
//!   byte-identical across runs.
//! * At finalize, tracks are pushed into a [`Trace`] which linearizes
//!   each ring and sorts tracks by stable `(pid, tid)` ids — the same
//!   exact merge law the tally counters follow, so a trace assembled from
//!   N worker tracks is independent of completion order.
//!
//! The disabled path is [`TraceScope::Off`]: instrumented code takes a
//! `&mut TraceScope` and every recording helper is a single enum match —
//! the same near-zero-cost shape as `FaultPlan::none` in the fault layer.

use std::time::Instant;

use crate::json_escape;

/// Which timestamp domain an exporter reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeDomain {
    /// Modeled pipeline cycles — deterministic; byte-identical exports
    /// across runs at a fixed seed and thread count.
    Cycles,
    /// Wall-clock nanoseconds since the track epoch — what this machine
    /// actually took; never byte-stable across runs.
    Wall,
}

/// Tracer on/off switch plus the per-track ring capacity. `Copy` so it
/// can ride inside the serve/mesh config structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    enabled: bool,
    capacity: usize,
}

impl TraceConfig {
    /// Tracing off — recording helpers reduce to a branch.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: 0,
        }
    }

    /// Tracing on, with `capacity` events retained per track (clamped to
    /// at least 1; the newest events win when the ring overflows).
    pub fn enabled(capacity: usize) -> Self {
        Self {
            enabled: true,
            capacity: capacity.max(1),
        }
    }

    /// Whether tracing is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Per-track ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Creates a track when enabled; `None` when disabled.
    pub fn track(&self, pid: u32, tid: u32, name: impl Into<String>) -> Option<TrackTrace> {
        self.enabled
            .then(|| TrackTrace::new(pid, tid, name, self.capacity))
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One `(key, value)` pair attached to an event. Keys are `&'static str`
/// and values `u64` so attaching args never allocates.
pub type EventArg = (&'static str, u64);

/// Event shape in the Chrome trace-event sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (`ph: "X"`): a named interval with a duration.
    Span,
    /// An instant (`ph: "i"`): a point marker (fault events, fulfils).
    Instant,
}

/// One recorded event, carrying both time domains. `Copy`, fixed-size —
/// this is what lives in the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (a track-local label such as `"infer"`).
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Cycle-domain timestamp (modeled pipeline cycles).
    pub cycles: u64,
    /// Cycle-domain duration (0 for instants).
    pub cycle_dur: u64,
    /// Wall-domain timestamp: nanoseconds since the track epoch.
    pub wall_ns: u64,
    /// Wall-domain duration in nanoseconds (0 when not measured).
    pub wall_dur_ns: u64,
    /// Up to two `(key, value)` args.
    pub args: [Option<EventArg>; 2],
}

/// No args — the common case.
pub const NO_ARGS: [Option<EventArg>; 2] = [None, None];

/// An open `begin`/`end` span on the track's stack.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    name: &'static str,
    cycles: u64,
    wall_ns: u64,
}

/// Maximum `begin` nesting depth per track (preallocated; deeper begins
/// are counted as unmatched rather than allocating).
const MAX_SPAN_DEPTH: usize = 32;

/// One thread-owned recording timeline: a fixed-capacity event ring, a
/// modeled-cycle cursor, and a bounded open-span stack.
#[derive(Debug, Clone)]
pub struct TrackTrace {
    pid: u32,
    tid: u32,
    name: String,
    epoch: Instant,
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    dropped: u64,
    cursor: u64,
    open: Vec<OpenSpan>,
    unmatched: u64,
}

impl TrackTrace {
    /// A new track. `pid` groups tracks into Perfetto processes (one per
    /// subsystem), `tid` orders tracks within a process, `name` labels
    /// the track, `capacity` bounds the ring (clamped to at least 1).
    /// The wall epoch is `Instant::now()`; use
    /// [`with_epoch`](Self::with_epoch) to share one epoch across tracks.
    pub fn new(pid: u32, tid: u32, name: impl Into<String>, capacity: usize) -> Self {
        Self::with_epoch(pid, tid, name, capacity, Instant::now())
    }

    /// A new track whose wall timestamps are relative to `epoch` (share
    /// one epoch across all tracks of a run so wall times line up).
    pub fn with_epoch(
        pid: u32,
        tid: u32,
        name: impl Into<String>,
        capacity: usize,
        epoch: Instant,
    ) -> Self {
        let capacity = capacity.max(1);
        Self {
            pid,
            tid,
            name: name.into(),
            epoch,
            capacity,
            events: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            cursor: 0,
            open: Vec::with_capacity(MAX_SPAN_DEPTH),
            unmatched: 0,
        }
    }

    /// Process id (subsystem group).
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Track id within the process.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Track label.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `end` calls (or abandoned opens) that had no matching `begin`.
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Current modeled-cycle cursor.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Open (`begin` without `end` yet) span depth.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Nanoseconds since the track epoch (saturated into `u64`).
    pub fn wall_elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Moves the cycle cursor to an absolute position.
    pub fn set_cursor(&mut self, cycles: u64) {
        self.cursor = cycles;
    }

    /// Advances the cycle cursor without recording anything (idle time,
    /// pipeline bubbles the caller accounts elsewhere).
    pub fn advance(&mut self, cycles: u64) {
        self.cursor = self.cursor.saturating_add(cycles);
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            // Ring full: overwrite the oldest event (newest window wins).
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records an instant at the current cursor.
    pub fn instant(&mut self, name: &'static str, args: [Option<EventArg>; 2]) {
        let wall_ns = self.wall_elapsed_ns();
        self.push(TraceEvent {
            name,
            kind: EventKind::Instant,
            cycles: self.cursor,
            cycle_dur: 0,
            wall_ns,
            wall_dur_ns: 0,
            args,
        });
    }

    /// Records a completed span at the cursor and advances the cursor by
    /// `cycle_dur` — the workhorse for sequential stage attribution.
    pub fn span(&mut self, name: &'static str, cycle_dur: u64, args: [Option<EventArg>; 2]) {
        let start = self.cursor;
        self.cursor = self.cursor.saturating_add(cycle_dur);
        self.span_at(name, start, cycle_dur, args);
    }

    /// Records a completed span at an explicit cycle position without
    /// moving the cursor (queue-wait intervals, link transfers).
    pub fn span_at(
        &mut self,
        name: &'static str,
        cycles: u64,
        cycle_dur: u64,
        args: [Option<EventArg>; 2],
    ) {
        let wall_ns = self.wall_elapsed_ns();
        self.push(TraceEvent {
            name,
            kind: EventKind::Span,
            cycles,
            cycle_dur,
            wall_ns,
            wall_dur_ns: 0,
            args,
        });
    }

    /// Records a completed span with explicit timestamps in both domains.
    #[allow(clippy::too_many_arguments)]
    pub fn span_walled(
        &mut self,
        name: &'static str,
        cycles: u64,
        cycle_dur: u64,
        wall_ns: u64,
        wall_dur_ns: u64,
        args: [Option<EventArg>; 2],
    ) {
        self.push(TraceEvent {
            name,
            kind: EventKind::Span,
            cycles,
            cycle_dur,
            wall_ns,
            wall_dur_ns,
            args,
        });
    }

    /// Opens a span at the current cursor. Paired by the next
    /// [`end`](Self::end); nesting beyond `MAX_SPAN_DEPTH` (32) is counted
    /// as unmatched instead of allocating.
    pub fn begin(&mut self, name: &'static str) {
        if self.open.len() == MAX_SPAN_DEPTH {
            self.unmatched += 1;
            return;
        }
        let wall_ns = self.wall_elapsed_ns();
        self.open.push(OpenSpan {
            name,
            cycles: self.cursor,
            wall_ns,
        });
    }

    /// Closes the innermost open span, emitting a completed span whose
    /// cycle duration is the cursor movement since the matching `begin`
    /// and whose wall duration is measured. Returns `false` (and counts
    /// the exit as unmatched) when no span is open.
    pub fn end(&mut self, args: [Option<EventArg>; 2]) -> bool {
        let Some(open) = self.open.pop() else {
            self.unmatched += 1;
            return false;
        };
        let wall_now = self.wall_elapsed_ns();
        self.push(TraceEvent {
            name: open.name,
            kind: EventKind::Span,
            cycles: open.cycles,
            cycle_dur: self.cursor.saturating_sub(open.cycles),
            wall_ns: open.wall_ns,
            wall_dur_ns: wall_now.saturating_sub(open.wall_ns),
            args,
        });
        true
    }

    /// Abandons all open spans — the panic/restart recovery hook. Each
    /// abandoned span is counted as unmatched and marked with an
    /// `"abandoned"` instant, so a supervisor that catches a worker
    /// unwind can restore the well-formedness invariant
    /// (`open_depth() == 0`) before reusing or finalizing the track.
    pub fn abandon_open(&mut self) {
        let depth = self.open.len() as u64;
        if depth > 0 {
            self.unmatched += depth;
            self.open.clear();
            self.instant("abandoned", [Some(("spans", depth)), None]);
        }
    }

    /// Retained events in recording order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.events.split_at(self.head);
        older.iter().chain(newer.iter())
    }
}

/// One finalized track inside a [`Trace`]: linearized events plus the
/// track's bookkeeping counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSection {
    /// Process id (subsystem group).
    pub pid: u32,
    /// Track id within the process.
    pub tid: u32,
    /// Track label (Perfetto thread name).
    pub name: String,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Unmatched span exits/abandons.
    pub unmatched: u64,
}

/// A merged, finalized trace: tracks sorted by `(pid, tid)` — the exact
/// merge law — plus optional process names for the exporter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    tracks: Vec<TrackSection>,
    processes: Vec<(u32, String)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a `pid` for the exporter (Perfetto process label).
    pub fn name_process(&mut self, pid: u32, name: impl Into<String>) {
        let name = name.into();
        match self.processes.binary_search_by(|(p, _)| p.cmp(&pid)) {
            Ok(i) => self.processes[i].1 = name,
            Err(i) => self.processes.insert(i, (pid, name)),
        }
    }

    /// Folds a finished track in, keeping tracks sorted by `(pid, tid)`.
    /// Insertion order does not matter: any completion order of worker
    /// threads produces the same trace.
    pub fn push(&mut self, track: TrackTrace) {
        let events: Vec<TraceEvent> = track.events().copied().collect();
        let section = TrackSection {
            pid: track.pid,
            tid: track.tid,
            name: track.name,
            events,
            dropped: track.dropped,
            unmatched: track.unmatched,
        };
        let at = self
            .tracks
            .partition_point(|t| (t.pid, t.tid) <= (section.pid, section.tid));
        self.tracks.insert(at, section);
    }

    /// Merges another trace in under the same sorted-track law.
    pub fn merge(&mut self, other: Trace) {
        for (pid, name) in other.processes {
            self.name_process(pid, name);
        }
        for section in other.tracks {
            let at = self
                .tracks
                .partition_point(|t| (t.pid, t.tid) <= (section.pid, section.tid));
            self.tracks.insert(at, section);
        }
    }

    /// The finalized tracks, sorted by `(pid, tid)`.
    pub fn tracks(&self) -> &[TrackSection] {
        &self.tracks
    }

    /// Total retained events across all tracks.
    pub fn total_events(&self) -> u64 {
        self.tracks.iter().map(|t| t.events.len() as u64).sum()
    }

    /// Total events lost to ring overflow across all tracks.
    pub fn total_dropped(&self) -> u64 {
        let mut total = 0;
        for track in &self.tracks {
            crate::tally_add(&mut total, track.dropped);
        }
        total
    }

    /// Total unmatched span exits across all tracks (0 ⇔ every recorded
    /// exit matched an enter).
    pub fn total_unmatched(&self) -> u64 {
        let mut total = 0;
        for track in &self.tracks {
            crate::tally_add(&mut total, track.unmatched);
        }
        total
    }

    /// Exports Chrome trace-event JSON (the format `chrome://tracing`
    /// and [Perfetto](https://ui.perfetto.dev) load). One Perfetto
    /// thread per track, `M` metadata naming processes and threads, `X`
    /// complete spans, `i` thread-scoped instants. In the
    /// [`TimeDomain::Cycles`] domain, `ts`/`dur` are modeled cycles
    /// (shown as microseconds — 1 µs ≙ 1 cycle) and the output is
    /// byte-identical across runs; in [`TimeDomain::Wall`] they are
    /// real microseconds with nanosecond decimals.
    pub fn chrome_json(&self, domain: TimeDomain) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&s);
        };
        for &(pid, ref name) in &self.processes {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(name)
                ),
                &mut out,
            );
        }
        for track in &self.tracks {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track.pid,
                    track.tid,
                    json_escape(&track.name)
                ),
                &mut out,
            );
            for event in &track.events {
                emit(chrome_event(track, event, domain), &mut out);
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Formats a wall-domain nanosecond stamp as fractional microseconds.
fn wall_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn chrome_event(track: &TrackSection, event: &TraceEvent, domain: TimeDomain) -> String {
    let (ts, dur) = match domain {
        TimeDomain::Cycles => (event.cycles.to_string(), event.cycle_dur.to_string()),
        TimeDomain::Wall => (wall_us(event.wall_ns), wall_us(event.wall_dur_ns)),
    };
    let mut args = String::new();
    for arg in event.args.iter().flatten() {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"{}\":{}", json_escape(arg.0), arg.1));
    }
    match event.kind {
        EventKind::Span => format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{ts},\"dur\":{dur},\
             \"args\":{{{args}}}}}",
            json_escape(event.name),
            track.pid,
            track.tid,
        ),
        EventKind::Instant => format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{ts},\
             \"args\":{{{args}}}}}",
            json_escape(event.name),
            track.pid,
            track.tid,
        ),
    }
}

/// The instrumented-code handle: either off (a single branch per call)
/// or actively recording into a borrowed track. Hot paths take a
/// `&mut TraceScope` so the disabled case stays allocation-free and
/// branch-cheap, like `FaultPlan::none`.
#[derive(Debug, Default)]
pub enum TraceScope<'a> {
    /// Tracing disabled — every helper is a no-op after one match.
    #[default]
    Off,
    /// Tracing into this track.
    On(&'a mut TrackTrace),
}

impl<'a> TraceScope<'a> {
    /// Scope over an optional track (`None` ⇒ off) — the bridge from
    /// config-held `Option<TrackTrace>` fields.
    pub fn over(track: Option<&'a mut TrackTrace>) -> Self {
        match track {
            Some(t) => TraceScope::On(t),
            None => TraceScope::Off,
        }
    }

    /// Whether the scope is actively recording.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, TraceScope::On(_))
    }

    /// Records an instant (no-op when off).
    #[inline]
    pub fn instant(&mut self, name: &'static str, args: [Option<EventArg>; 2]) {
        if let TraceScope::On(track) = self {
            track.instant(name, args);
        }
    }

    /// Records a cursor-advancing span (no-op when off).
    #[inline]
    pub fn span(&mut self, name: &'static str, cycle_dur: u64, args: [Option<EventArg>; 2]) {
        if let TraceScope::On(track) = self {
            track.span(name, cycle_dur, args);
        }
    }

    /// Advances the cycle cursor (no-op when off).
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        if let TraceScope::On(track) = self {
            track.advance(cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track() -> TrackTrace {
        TrackTrace::new(1, 0, "t", 8)
    }

    #[test]
    fn span_advances_the_cursor() {
        let mut t = track();
        t.span("a", 10, NO_ARGS);
        t.span("b", 5, NO_ARGS);
        assert_eq!(t.cursor(), 15);
        let events: Vec<_> = t.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].cycles, events[0].cycle_dur), (0, 10));
        assert_eq!((events[1].cycles, events[1].cycle_dur), (10, 5));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = TrackTrace::new(1, 0, "t", 3);
        for i in 0..5u64 {
            t.instant("e", [Some(("i", i)), None]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t.events().map(|e| e.args[0].unwrap().1).collect();
        assert_eq!(kept, vec![2, 3, 4], "newest window wins, oldest first");
    }

    #[test]
    fn begin_end_pairs_and_measures_cycles() {
        let mut t = track();
        t.begin("outer");
        t.advance(4);
        t.begin("inner");
        t.advance(6);
        assert_eq!(t.open_depth(), 2);
        assert!(t.end(NO_ARGS));
        assert!(t.end(NO_ARGS));
        assert_eq!(t.open_depth(), 0);
        assert_eq!(t.unmatched(), 0);
        let events: Vec<_> = t.events().collect();
        // Inner closes first.
        assert_eq!(events[0].name, "inner");
        assert_eq!((events[0].cycles, events[0].cycle_dur), (4, 6));
        assert_eq!(events[1].name, "outer");
        assert_eq!((events[1].cycles, events[1].cycle_dur), (0, 10));
    }

    #[test]
    fn unmatched_end_is_counted_not_recorded() {
        let mut t = track();
        assert!(!t.end(NO_ARGS));
        assert_eq!(t.unmatched(), 1);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn abandon_open_restores_wellformedness() {
        let mut t = track();
        t.begin("doomed");
        t.begin("also-doomed");
        t.abandon_open();
        assert_eq!(t.open_depth(), 0);
        assert_eq!(t.unmatched(), 2);
        let last = t.events().last().unwrap();
        assert_eq!(last.name, "abandoned");
        assert_eq!(last.args[0], Some(("spans", 2)));
    }

    #[test]
    fn trace_push_sorts_tracks_by_pid_tid() {
        let mut trace = Trace::new();
        trace.push(TrackTrace::new(2, 0, "late", 4));
        trace.push(TrackTrace::new(1, 1, "mid", 4));
        trace.push(TrackTrace::new(1, 0, "early", 4));
        let ids: Vec<_> = trace.tracks().iter().map(|t| (t.pid, t.tid)).collect();
        assert_eq!(ids, vec![(1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn merge_order_does_not_change_the_trace() {
        let mk = |pid, tid| {
            let mut t = TrackTrace::new(pid, tid, format!("{pid}.{tid}"), 4);
            t.span("s", u64::from(pid) + u64::from(tid), NO_ARGS);
            t
        };
        let mut a = Trace::new();
        a.push(mk(1, 0));
        a.push(mk(2, 1));
        let mut b = Trace::new();
        b.push(mk(2, 1));
        b.push(mk(1, 0));
        // Wall stamps differ between builds; the cycle-domain export is
        // the determinism claim and must be byte-identical.
        assert_eq!(
            a.chrome_json(TimeDomain::Cycles),
            b.chrome_json(TimeDomain::Cycles)
        );
    }

    #[test]
    fn cycle_domain_export_is_stable_and_wall_is_not_required_to_be() {
        let build = || {
            let mut t = TrackTrace::new(1, 0, "w", 8);
            t.span("infer", 100, [Some(("frame", 3)), None]);
            t.instant("fulfil", NO_ARGS);
            let mut trace = Trace::new();
            trace.name_process(1, "serve");
            trace.push(t);
            trace
        };
        let a = build().chrome_json(TimeDomain::Cycles);
        let b = build().chrome_json(TimeDomain::Cycles);
        assert_eq!(a, b, "cycle-domain export is byte-identical");
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"process_name\""));
    }

    #[test]
    fn scope_off_is_a_noop() {
        let mut scope = TraceScope::Off;
        scope.span("x", 5, NO_ARGS);
        scope.instant("y", NO_ARGS);
        scope.advance(3);
        assert!(!scope.is_on());
    }

    #[test]
    fn scope_on_records_into_the_borrowed_track() {
        let mut t = track();
        {
            let mut scope = TraceScope::On(&mut t);
            scope.span("x", 5, NO_ARGS);
            assert!(scope.is_on());
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.cursor(), 5);
    }

    #[test]
    fn disabled_config_creates_no_tracks() {
        assert!(TraceConfig::disabled().track(1, 0, "w").is_none());
        assert!(TraceConfig::enabled(16).track(1, 0, "w").is_some());
    }
}
