//! Observability layer for the ESAM workspace: deterministic dual-domain
//! tracing, a unified metrics registry, and exporters.
//!
//! Every crate in the workspace already *counts* — `BatchTally` in core,
//! `MeshTally`/`LinkStats` in mesh, `FaultTally` in fault, the latency
//! histograms in serve — but counters only say *how much*, never *where*.
//! This crate adds the missing attribution layer, under the same
//! discipline the counters obey:
//!
//! * **Dual time domains** ([`TimeDomain`]). Every trace event carries
//!   both a *wall-clock* timestamp (what the simulator-as-a-service
//!   actually took — machine-dependent) and a *modeled-cycle* timestamp
//!   (what the modeled silicon would take — a workload invariant). The
//!   cycle domain is what makes traces reproducible: exporting it yields
//!   byte-identical output across runs, machines and thread counts.
//! * **Zero-allocation recording** ([`TrackTrace`]). Each track owns a
//!   fixed-capacity ring buffer allocated once at construction; recording
//!   an event is a couple of stores into that ring (names are
//!   `&'static str`, args are plain `u64`s). When the ring is full the
//!   oldest events are overwritten and a `dropped` counter ticks — a
//!   long-lived service can never grow unbounded trace memory. Disabled
//!   tracing is a single branch ([`TraceScope::Off`]), mirroring
//!   `FaultPlan::none` in the fault layer.
//! * **Exact merge law** ([`Trace`]). Worker threads record into private
//!   tracks (the workspace's shard-and-merge idiom — no shared mutable
//!   state, no sampling); at finalize the tracks are merged and sorted by
//!   stable `(pid, tid)` ids, and all counters fold with [`tally_add`].
//!   The merged cycle-domain trace is identical at any thread count that
//!   produces the same logical schedule.
//! * **One metrics API** ([`MetricsRegistry`]). Counters, gauges and
//!   histograms behind a single registry with deterministic (sorted)
//!   iteration, Prometheus text exposition and hand-rolled JSON
//!   snapshots in the `repro --json` style.
//! * **Exporters**. [`Trace::chrome_json`] emits Chrome trace-event JSON
//!   loadable in Perfetto (one track per worker / mesh core / link, `X`
//!   spans, `i` instants, `M` thread-name metadata); the registry exports
//!   Prometheus text and JSON.
//!
//! The [`Histogram`] here is the serve crate's latency histogram,
//! promoted so mesh link/occupancy and queue-depth series can reuse it
//! (`esam-serve` re-exports it as `LatencyHistogram`, unchanged).
//!
//! # Example
//!
//! ```
//! use esam_obs::{TimeDomain, Trace, TraceConfig, TrackTrace};
//!
//! let config = TraceConfig::enabled(64);
//! let mut track = TrackTrace::new(1, 0, "worker 0", config.capacity());
//! track.span("infer", 120, [Some(("frame", 7)), None]);
//! track.instant("fulfil", [None, None]);
//!
//! let mut trace = Trace::new();
//! trace.push(track);
//! let json = trace.chrome_json(TimeDomain::Cycles);
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::Histogram;
pub use registry::{Metric, MetricsRegistry};
pub use trace::{
    EventArg, EventKind, TimeDomain, Trace, TraceConfig, TraceEvent, TraceScope, TrackSection,
    TrackTrace, NO_ARGS,
};

/// Adds `add` into the counter `dst` under the workspace tally merge law:
/// saturating in release builds (a pegged counter beats a wrapped one),
/// with a debug assertion so overflow is loud in development and test
/// builds. All tally `merge` impls (`BatchTally`, `MeshTally`,
/// `FaultTally`) and the [`MetricsRegistry`] fold counters through this.
#[inline]
pub fn tally_add(dst: &mut u64, add: u64) {
    debug_assert!(
        dst.checked_add(add).is_some(),
        "tally counter overflow: {dst} + {add}"
    );
    *dst = dst.saturating_add(add);
}

/// Escapes a string for embedding in a JSON string literal (the
/// workspace's exporters hand-roll JSON; this is the one shared piece).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_add_is_plain_addition_in_range() {
        let mut x = 5;
        tally_add(&mut x, 7);
        assert_eq!(x, 12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "tally counter overflow")]
    fn tally_add_overflow_is_loud_in_debug() {
        let mut x = u64::MAX - 1;
        tally_add(&mut x, 2);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn tally_add_saturates_in_release() {
        let mut x = u64::MAX - 1;
        tally_add(&mut x, 2);
        assert_eq!(x, u64::MAX);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
