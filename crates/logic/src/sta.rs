//! Static timing analysis (STA) over a combinational [`Netlist`].
//!
//! Computes per-net worst-case arrival times under the same linear delay
//! model as the event simulator and extracts the critical path. Because the
//! analysis maximizes over all input vectors, any settle time observed by
//! [`Simulator`](crate::Simulator) for a concrete vector is bounded by the
//! STA delay — a property the crate's test suite checks on random netlists.
//!
//! ```
//! use esam_logic::{GateKind, GateTiming, Netlist, TimingAnalysis};
//!
//! # fn main() -> Result<(), esam_logic::LogicError> {
//! let mut nl = Netlist::new();
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let ab = nl.add_cell(GateKind::And, &[a, b], "ab")?;
//! let y = nl.add_cell(GateKind::Not, &[ab], "y")?;
//! nl.mark_output(y)?;
//!
//! let sta = TimingAnalysis::run(&nl, &GateTiming::finfet_3nm())?;
//! assert!(sta.arrival(y) > sta.arrival(ab));
//! assert_eq!(sta.critical_path().endpoint(), y);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use esam_tech::units::Seconds;

use crate::error::LogicError;
use crate::gate::GateTiming;
use crate::netlist::{NetId, Netlist};

/// The worst-delay register-to-register (here: input-to-output) path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    delay: Seconds,
    nets: Vec<NetId>,
}

impl CriticalPath {
    /// Total path delay.
    pub fn delay(&self) -> Seconds {
        self.delay
    }

    /// Nets along the path, from the launching primary input to the
    /// endpoint.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// The path's endpoint net.
    ///
    /// # Panics
    ///
    /// Never panics: a critical path always has at least one net.
    pub fn endpoint(&self) -> NetId {
        *self.nets.last().expect("critical path is never empty")
    }

    /// Number of gate stages on the path.
    pub fn depth(&self) -> usize {
        self.nets.len().saturating_sub(1)
    }
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ps over {} stages", self.delay.ps(), self.depth())
    }
}

/// Result of one STA run.
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    arrival: Vec<Seconds>,
    critical: CriticalPath,
}

impl TimingAnalysis {
    /// Runs STA on `netlist` under `timing`.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::validate`] failures (floating nets, loops).
    pub fn run(netlist: &Netlist, timing: &GateTiming) -> Result<Self, LogicError> {
        netlist.validate()?;
        let order = netlist.topo_order()?;
        // Arrival bookkeeping runs on the same femtosecond grid as the
        // event simulator, making STA an exact upper bound on settle times.
        let mut arrival_fs = vec![0u64; netlist.net_count()];
        let mut pred: Vec<Option<NetId>> = vec![None; netlist.net_count()];
        for gate_id in order {
            let gate = netlist.gate(gate_id);
            let fanout = netlist.fanout(gate.output()).len();
            let delay = timing.delay_fs(gate.kind(), gate.inputs().len(), fanout);
            let (worst_in, worst_arrival) = gate
                .inputs()
                .iter()
                .map(|&n| (Some(n), arrival_fs[n.index()]))
                .max_by_key(|&(_, t)| t)
                .unwrap_or((None, 0));
            arrival_fs[gate.output().index()] = worst_arrival + delay;
            pred[gate.output().index()] = worst_in;
        }
        let arrival: Vec<Seconds> = arrival_fs
            .iter()
            .map(|&fs| Seconds::new(fs as f64 * 1e-15))
            .collect();
        let endpoint = (0..netlist.net_count())
            .map(NetId)
            .max_by_key(|n| arrival_fs[n.index()])
            .ok_or(LogicError::UnknownNet)?;
        let mut nets = vec![endpoint];
        let mut cursor = endpoint;
        while let Some(previous) = pred[cursor.index()] {
            nets.push(previous);
            cursor = previous;
        }
        nets.reverse();
        Ok(Self {
            critical: CriticalPath {
                delay: arrival[endpoint.index()],
                nets,
            },
            arrival,
        })
    }

    /// Worst-case arrival time of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the analyzed netlist.
    pub fn arrival(&self, net: NetId) -> Seconds {
        self.arrival[net.index()]
    }

    /// The critical path.
    pub fn critical_path(&self) -> &CriticalPath {
        &self.critical
    }

    /// Worst arrival over the primary outputs of `netlist` (the clock-period
    /// constraint for a register boundary placed on the outputs).
    pub fn worst_output_arrival(&self, netlist: &Netlist) -> Seconds {
        netlist
            .outputs()
            .iter()
            .map(|&n| self.arrival[n.index()])
            .fold(Seconds::ZERO, Seconds::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::level::Level;
    use crate::sim::Simulator;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new();
        let mut prev = nl.add_input("in");
        for i in 0..n {
            prev = nl
                .add_cell(GateKind::Not, &[prev], format!("n{i}"))
                .unwrap();
        }
        nl.mark_output(prev).unwrap();
        nl
    }

    #[test]
    fn chain_arrival_scales_linearly() {
        let timing = GateTiming::finfet_3nm();
        let short = TimingAnalysis::run(&chain(4), &timing).unwrap();
        let long = TimingAnalysis::run(&chain(16), &timing).unwrap();
        let ratio = long.critical_path().delay().value() / short.critical_path().delay().value();
        assert!((3.5..4.5).contains(&ratio), "expected ~4x, got {ratio}");
        assert_eq!(long.critical_path().depth(), 16);
    }

    #[test]
    fn critical_path_traces_the_deep_branch() {
        // A shallow AND next to a deep inverter chain: the path must run
        // through the chain.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let shallow = nl.add_cell(GateKind::And, &[a, b], "shallow").unwrap();
        let mut deep = a;
        for i in 0..6 {
            deep = nl
                .add_cell(GateKind::Not, &[deep], format!("d{i}"))
                .unwrap();
        }
        let y = nl.add_cell(GateKind::Or, &[shallow, deep], "y").unwrap();
        nl.mark_output(y).unwrap();

        let sta = TimingAnalysis::run(&nl, &GateTiming::finfet_3nm()).unwrap();
        assert_eq!(sta.critical_path().endpoint(), y);
        assert_eq!(sta.critical_path().depth(), 7); // 6 inverters + final OR
        assert!(sta.critical_path().nets().contains(&deep));
        assert!(!sta.critical_path().nets().contains(&shallow));
    }

    #[test]
    fn sta_bounds_event_simulation() {
        let nl = chain(32);
        let timing = GateTiming::finfet_3nm();
        let sta = TimingAnalysis::run(&nl, &timing).unwrap();
        let mut sim = Simulator::new(&nl, timing).unwrap();
        let (settle, _) = sim.settle(&[Level::High]).unwrap();
        assert!(
            settle <= sta.critical_path().delay() + Seconds::from_ps(0.01),
            "event sim {settle} exceeded STA bound {}",
            sta.critical_path().delay()
        );
    }

    #[test]
    fn inputs_arrive_at_zero() {
        let nl = chain(3);
        let sta = TimingAnalysis::run(&nl, &GateTiming::finfet_3nm()).unwrap();
        assert_eq!(sta.arrival(nl.inputs()[0]), Seconds::ZERO);
    }

    #[test]
    fn worst_output_arrival_ignores_internal_nets() {
        // Output is shallow; a deep internal cone hangs off to the side.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let out = nl.add_cell(GateKind::Buf, &[a], "out").unwrap();
        nl.mark_output(out).unwrap();
        let mut deep = a;
        for i in 0..10 {
            deep = nl
                .add_cell(GateKind::Not, &[deep], format!("d{i}"))
                .unwrap();
        }
        let sta = TimingAnalysis::run(&nl, &GateTiming::finfet_3nm()).unwrap();
        assert!(sta.worst_output_arrival(&nl) < sta.critical_path().delay());
        assert_eq!(sta.critical_path().endpoint(), deep);
    }

    #[test]
    fn invalid_netlists_are_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let floating = nl.add_net("floating");
        nl.add_cell(GateKind::And, &[a, floating], "y").unwrap();
        assert!(matches!(
            TimingAnalysis::run(&nl, &GateTiming::finfet_3nm()),
            Err(LogicError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn display_formats_ps_and_depth() {
        let sta = TimingAnalysis::run(&chain(4), &GateTiming::finfet_3nm()).unwrap();
        let text = sta.critical_path().to_string();
        assert!(text.contains("ps over 4 stages"), "{text}");
    }
}
