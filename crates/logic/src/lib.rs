//! Gate-level logic substrate for the ESAM reproduction.
//!
//! The DAC'24 ESAM paper synthesizes its arbiter and neuron logic with
//! Cadence Genus and reports structural results (critical paths, area
//! overheads). This crate provides the corresponding open substrate:
//!
//! * [`Netlist`] — validated combinational netlists over a small
//!   standard-cell library ([`GateKind`]);
//! * [`Netlist::evaluate`] — zero-delay levelized evaluation;
//! * [`Simulator`] — event-driven timed simulation with transport delays
//!   and deterministic femtosecond timestamps;
//! * [`TimingAnalysis`] — static timing analysis with critical-path
//!   extraction, an upper bound on every simulated settle time;
//! * [`VcdWriter`] / [`ascii_waveform`] — waveform export;
//! * [`gen`] — reusable generators (reduce trees, adders, popcount) used by
//!   the structural arbiter and neuron models in `esam-arbiter` /
//!   `esam-neuron`.
//!
//! # Examples
//!
//! Build a tiny circuit, time it, and simulate it:
//!
//! ```
//! use esam_logic::{GateKind, GateTiming, Level, Netlist, Simulator, TimingAnalysis};
//!
//! # fn main() -> Result<(), esam_logic::LogicError> {
//! let mut nl = Netlist::new();
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_cell(GateKind::Nand, &[a, b], "y")?;
//! nl.mark_output(y)?;
//!
//! let timing = GateTiming::finfet_3nm();
//! let sta = TimingAnalysis::run(&nl, &timing)?;
//!
//! let mut sim = Simulator::new(&nl, timing)?;
//! let (settle, outputs) = sim.settle(&[Level::High, Level::High])?;
//! assert_eq!(outputs, vec![Level::Low]);
//! assert!(settle <= sta.critical_path().delay());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;

mod error;
mod gate;
mod level;
mod netlist;
mod sim;
mod sta;
mod vcd;

pub use error::LogicError;
pub use gate::{GateArea, GateKind, GateTiming};
pub use level::Level;
pub use netlist::{Gate, GateId, NetId, Netlist};
pub use sim::{Change, Simulator};
pub use sta::{CriticalPath, TimingAnalysis};
pub use vcd::{ascii_waveform, VcdWriter};
