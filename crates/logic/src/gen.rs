//! Reusable netlist generators: buses, reduce trees, adders, popcount.
//!
//! These are the structural building blocks shared by the ESAM arbiter
//! (OR-reduce trees for group-request detection) and the neuron datapath
//! (popcount + ripple-carry accumulate). Each generator returns the nets it
//! created so callers can compose them freely.

use crate::error::LogicError;
use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};

/// An ordered group of single-bit nets; bit 0 first (LSB for numeric buses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    nets: Vec<NetId>,
}

impl Bus {
    /// Wraps an explicit net list (bit 0 first).
    pub fn from_nets(nets: Vec<NetId>) -> Self {
        Self { nets }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// `true` if the bus carries no bits.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Net of `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width()`.
    pub fn net(&self, bit: usize) -> NetId {
        self.nets[bit]
    }

    /// All nets, bit 0 first.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Interprets `levels` (full netlist state from
    /// [`Netlist::evaluate`](crate::Netlist::evaluate)) as an unsigned
    /// value, LSB first. Returns `None` if any bit is unknown.
    pub fn decode(&self, levels: &[crate::Level]) -> Option<u64> {
        let mut value = 0u64;
        for (bit, &net) in self.nets.iter().enumerate() {
            match levels[net.index()].to_bool() {
                Some(true) => value |= 1 << bit,
                Some(false) => {}
                None => return None,
            }
        }
        Some(value)
    }
}

/// Declares `width` primary inputs named `name[0]`..`name[width-1]`.
pub fn input_bus(nl: &mut Netlist, name: &str, width: usize) -> Bus {
    Bus {
        nets: (0..width)
            .map(|i| nl.add_input(format!("{name}[{i}]")))
            .collect(),
    }
}

/// Balanced binary reduce tree of `kind` (must be `And` or `Or`) over
/// `bits`; depth is `ceil(log2(n))`.
///
/// # Errors
///
/// Propagates netlist build errors; returns [`LogicError::ArityMismatch`]
/// when `bits` is empty.
pub fn reduce_tree(
    nl: &mut Netlist,
    kind: GateKind,
    bits: &[NetId],
    name: &str,
) -> Result<NetId, LogicError> {
    if bits.is_empty() {
        return Err(LogicError::ArityMismatch {
            kind,
            expected: None,
            got: 0,
        });
    }
    let mut layer: Vec<NetId> = bits.to_vec();
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (i, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(nl.add_cell(kind, pair, format!("{name}_l{level}_{i}"))?);
            } else {
                next.push(pair[0]); // odd wire rides up unchanged
            }
        }
        layer = next;
        level += 1;
    }
    Ok(layer[0])
}

/// OR-reduce: `1` when any bit of `bits` is set ("this group holds a
/// pending request", §3.3).
///
/// # Errors
///
/// Same as [`reduce_tree`].
pub fn or_reduce(nl: &mut Netlist, bits: &[NetId], name: &str) -> Result<NetId, LogicError> {
    reduce_tree(nl, GateKind::Or, bits, name)
}

/// AND-reduce over `bits`.
///
/// # Errors
///
/// Same as [`reduce_tree`].
pub fn and_reduce(nl: &mut Netlist, bits: &[NetId], name: &str) -> Result<NetId, LogicError> {
    reduce_tree(nl, GateKind::And, bits, name)
}

/// One full adder; returns `(sum, carry_out)`.
///
/// # Errors
///
/// Propagates netlist build errors.
pub fn full_adder(
    nl: &mut Netlist,
    a: NetId,
    b: NetId,
    carry_in: NetId,
    name: &str,
) -> Result<(NetId, NetId), LogicError> {
    let axb = nl.add_cell(GateKind::Xor, &[a, b], format!("{name}_axb"))?;
    let sum = nl.add_cell(GateKind::Xor, &[axb, carry_in], format!("{name}_sum"))?;
    let and_ab = nl.add_cell(GateKind::And, &[a, b], format!("{name}_ab"))?;
    let and_cx = nl.add_cell(GateKind::And, &[carry_in, axb], format!("{name}_cx"))?;
    let carry = nl.add_cell(GateKind::Or, &[and_ab, and_cx], format!("{name}_cout"))?;
    Ok((sum, carry))
}

/// Ripple-carry adder over equal-width buses; returns `(sum, carry_out)`.
///
/// # Errors
///
/// Propagates netlist build errors.
///
/// # Panics
///
/// Panics if `a.width() != b.width()` or either bus is empty — mismatched
/// datapaths are a construction bug, not a runtime condition.
pub fn ripple_carry_adder(
    nl: &mut Netlist,
    a: &Bus,
    b: &Bus,
    carry_in: NetId,
    name: &str,
) -> Result<(Bus, NetId), LogicError> {
    assert_eq!(a.width(), b.width(), "adder operand widths differ");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.width());
    for bit in 0..a.width() {
        let (s, c) = full_adder(nl, a.net(bit), b.net(bit), carry, &format!("{name}_b{bit}"))?;
        sum.push(s);
        carry = c;
    }
    Ok((Bus { nets: sum }, carry))
}

/// Bits needed to count `n` items (`floor(log2(n)) + 1`).
fn count_width(n: usize) -> usize {
    usize::BITS as usize - n.max(1).leading_zeros() as usize
}

/// Population count of `bits` as a binary bus of exactly
/// `floor(log2(n)) + 1` bits, built from a divide-and-conquer adder tree.
///
/// This is the neuron-side structure that sums the `p` valid bitline hits
/// of one cycle (§3.4) before the signed `V_mem` accumulate.
///
/// # Errors
///
/// Propagates netlist build errors; empty input yields a single constant-0
/// bit.
pub fn popcount(nl: &mut Netlist, bits: &[NetId], name: &str) -> Result<Bus, LogicError> {
    match bits.len() {
        0 => {
            let zero = nl.add_cell(GateKind::Const0, &[], format!("{name}_zero"))?;
            Ok(Bus { nets: vec![zero] })
        }
        1 => Ok(Bus {
            nets: vec![bits[0]],
        }),
        2 => {
            let sum = nl.add_cell(GateKind::Xor, &[bits[0], bits[1]], format!("{name}_s"))?;
            let carry = nl.add_cell(GateKind::And, &[bits[0], bits[1]], format!("{name}_c"))?;
            Ok(Bus {
                nets: vec![sum, carry],
            })
        }
        3 => {
            // A full adder is exactly a 3-bit counter: the third bit rides
            // in on the carry input.
            let (s, c) = full_adder(nl, bits[0], bits[1], bits[2], name)?;
            Ok(Bus { nets: vec![s, c] })
        }
        n => {
            let half = n / 2;
            let low = popcount(nl, &bits[..half], &format!("{name}_lo"))?;
            let high = popcount(nl, &bits[half..], &format!("{name}_hi"))?;
            let width = count_width(n);
            let low = zero_extend(nl, &low, width, &format!("{name}_lox"))?;
            let high = zero_extend(nl, &high, width, &format!("{name}_hix"))?;
            let cin = nl.add_cell(GateKind::Const0, &[], format!("{name}_cin"))?;
            let (sum, _overflow) = ripple_carry_adder(nl, &low, &high, cin, name)?;
            // The count of n bits always fits in `width` bits, so the final
            // carry is structurally zero and deliberately dropped.
            Ok(sum)
        }
    }
}

/// Pads `bus` with constant-0 bits up to `width`.
///
/// # Errors
///
/// Propagates netlist build errors.
///
/// # Panics
///
/// Panics if `width < bus.width()` — truncation is never intended here.
pub fn zero_extend(
    nl: &mut Netlist,
    bus: &Bus,
    width: usize,
    name: &str,
) -> Result<Bus, LogicError> {
    assert!(width >= bus.width(), "zero_extend cannot truncate");
    let mut nets = bus.nets.clone();
    for i in bus.width()..width {
        nets.push(nl.add_cell(GateKind::Const0, &[], format!("{name}_pad{i}"))?);
    }
    Ok(Bus { nets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;

    fn levels_for(value: u64, width: usize) -> Vec<Level> {
        (0..width)
            .map(|i| Level::from(value >> i & 1 == 1))
            .collect()
    }

    #[test]
    fn or_reduce_matches_any() {
        for width in 1..=9usize {
            let mut nl = Netlist::new();
            let bus = input_bus(&mut nl, "r", width);
            let any = or_reduce(&mut nl, bus.nets(), "any").unwrap();
            nl.mark_output(any).unwrap();
            for value in 0..(1u64 << width) {
                let levels = nl.evaluate(&levels_for(value, width)).unwrap();
                assert_eq!(
                    levels[any.index()],
                    Level::from(value != 0),
                    "width {width} value {value:b}"
                );
            }
        }
    }

    #[test]
    fn and_reduce_matches_all() {
        let mut nl = Netlist::new();
        let bus = input_bus(&mut nl, "r", 5);
        let all = and_reduce(&mut nl, bus.nets(), "all").unwrap();
        for value in 0..32u64 {
            let levels = nl.evaluate(&levels_for(value, 5)).unwrap();
            assert_eq!(levels[all.index()], Level::from(value == 31));
        }
    }

    #[test]
    fn reduce_tree_depth_is_logarithmic() {
        use crate::gate::GateTiming;
        use crate::sta::TimingAnalysis;
        let mut nl = Netlist::new();
        let bus = input_bus(&mut nl, "r", 64);
        let out = or_reduce(&mut nl, bus.nets(), "any").unwrap();
        nl.mark_output(out).unwrap();
        let sta = TimingAnalysis::run(&nl, &GateTiming::finfet_3nm()).unwrap();
        assert_eq!(
            sta.critical_path().depth(),
            6,
            "64 inputs need exactly 6 OR2 levels"
        );
    }

    #[test]
    fn empty_reduce_is_an_error() {
        let mut nl = Netlist::new();
        assert!(matches!(
            or_reduce(&mut nl, &[], "any"),
            Err(LogicError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn ripple_adder_is_exhaustively_correct_at_width_4() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let cin = nl.add_input("cin");
        let (sum, cout) = ripple_carry_adder(&mut nl, &a, &b, cin, "add").unwrap();
        for x in 0..16u64 {
            for y in 0..16u64 {
                for c in 0..2u64 {
                    let mut stim = levels_for(x, 4);
                    stim.extend(levels_for(y, 4));
                    stim.push(Level::from(c == 1));
                    let levels = nl.evaluate(&stim).unwrap();
                    let got = sum.decode(&levels).unwrap()
                        + (u64::from(levels[cout.index()] == Level::High) << 4);
                    assert_eq!(got, x + y + c, "{x} + {y} + {c}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn adder_rejects_mismatched_widths() {
        let mut nl = Netlist::new();
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 3);
        let cin = nl.add_input("cin");
        let _ = ripple_carry_adder(&mut nl, &a, &b, cin, "add");
    }

    #[test]
    fn popcount_is_exhaustively_correct_up_to_9_bits() {
        for width in 1..=9usize {
            let mut nl = Netlist::new();
            let bus = input_bus(&mut nl, "x", width);
            let count = popcount(&mut nl, bus.nets(), "pc").unwrap();
            assert_eq!(count.width(), count_width(width), "width {width}");
            for value in 0..(1u64 << width) {
                let levels = nl.evaluate(&levels_for(value, width)).unwrap();
                assert_eq!(
                    count.decode(&levels),
                    Some(u64::from(value.count_ones())),
                    "popcount({value:b}) at width {width}"
                );
            }
        }
    }

    #[test]
    fn popcount_of_nothing_is_zero() {
        let mut nl = Netlist::new();
        let count = popcount(&mut nl, &[], "pc").unwrap();
        let levels = nl.evaluate(&[]).unwrap();
        assert_eq!(count.decode(&levels), Some(0));
    }

    #[test]
    fn popcount_128_matches_on_samples() {
        // The neuron-relevant size: up to two 4-port arbiters per 256-wide
        // layer never exceeds 8, but the generator must scale to the full
        // row width for completeness.
        let mut nl = Netlist::new();
        let bus = input_bus(&mut nl, "x", 128);
        let count = popcount(&mut nl, bus.nets(), "pc").unwrap();
        assert_eq!(count.width(), 8);
        for seed in [0u64, 1, 0x5555_5555_5555_5555, u64::MAX] {
            let mut stim = levels_for(seed, 64);
            stim.extend(levels_for(seed.rotate_left(13), 64));
            let expected: u64 = stim.iter().filter(|&&l| l == Level::High).count() as u64;
            let levels = nl.evaluate(&stim).unwrap();
            assert_eq!(count.decode(&levels), Some(expected));
        }
    }

    #[test]
    fn decode_reports_unknown_bits() {
        let mut nl = Netlist::new();
        let bus = input_bus(&mut nl, "x", 2);
        let levels = vec![Level::High, Level::Unknown];
        assert_eq!(bus.decode(&levels), None);
        let levels = vec![Level::High, Level::Low];
        assert_eq!(bus.decode(&levels), Some(1));
    }

    #[test]
    fn zero_extend_pads_high_bits() {
        let mut nl = Netlist::new();
        let bus = input_bus(&mut nl, "x", 2);
        let wide = zero_extend(&mut nl, &bus, 4, "xx").unwrap();
        assert_eq!(wide.width(), 4);
        let levels = nl.evaluate(&[Level::High, Level::High]).unwrap();
        assert_eq!(wide.decode(&levels), Some(3));
    }
}
