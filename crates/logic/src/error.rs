//! Error type for netlist construction, evaluation and simulation.

use std::error::Error;
use std::fmt;

use crate::gate::GateKind;

/// Errors raised by the gate-level substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A gate was connected with the wrong number of inputs.
    ArityMismatch {
        /// The offending gate kind.
        kind: GateKind,
        /// Inputs the kind requires (`None` = any positive count).
        expected: Option<usize>,
        /// Inputs actually supplied.
        got: usize,
    },
    /// A second driver was connected to an already-driven net.
    MultipleDrivers {
        /// Name of the doubly-driven net.
        net: String,
    },
    /// A net is neither a primary input nor driven by any gate.
    UndrivenNet {
        /// Name of the floating net.
        net: String,
    },
    /// The netlist contains a combinational cycle.
    CombinationalLoop {
        /// Name of one net on the cycle.
        net: String,
    },
    /// A `NetId` from a different or newer netlist was used.
    UnknownNet,
    /// The stimulus vector length does not match the primary input count.
    StimulusWidth {
        /// Primary inputs in the netlist.
        expected: usize,
        /// Levels supplied.
        got: usize,
    },
    /// The event simulator exceeded its event budget without settling
    /// (oscillating feedback or an unreasonable stimulus rate).
    DidNotSettle {
        /// Events processed before giving up.
        events: usize,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::ArityMismatch {
                kind,
                expected,
                got,
            } => match expected {
                Some(n) => write!(f, "{kind:?} expects {n} inputs, got {got}"),
                None => write!(f, "{kind:?} expects at least one input, got {got}"),
            },
            LogicError::MultipleDrivers { net } => {
                write!(f, "net `{net}` already has a driver")
            }
            LogicError::UndrivenNet { net } => {
                write!(f, "net `{net}` has no driver and is not a primary input")
            }
            LogicError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            LogicError::UnknownNet => f.write_str("net id does not belong to this netlist"),
            LogicError::StimulusWidth { expected, got } => {
                write!(
                    f,
                    "stimulus has {got} levels but the netlist has {expected} inputs"
                )
            }
            LogicError::DidNotSettle { events } => {
                write!(f, "simulation did not settle after {events} events")
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = LogicError::MultipleDrivers { net: "g[3]".into() };
        assert_eq!(e.to_string(), "net `g[3]` already has a driver");
        let e = LogicError::ArityMismatch {
            kind: GateKind::Xor,
            expected: Some(2),
            got: 3,
        };
        assert!(e.to_string().contains("expects 2 inputs, got 3"));
        let e = LogicError::ArityMismatch {
            kind: GateKind::And,
            expected: None,
            got: 0,
        };
        assert!(e.to_string().contains("at least one"));
    }

    #[test]
    fn implements_error_and_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<LogicError>();
    }
}
