//! Gate-level netlists: construction, validation, and zero-delay evaluation.
//!
//! A [`Netlist`] is a directed graph of [`GateKind`] instances connected by
//! named nets. Construction is incremental and validated eagerly: every net
//! has at most one driver, fixed-arity kinds get exactly their arity, and
//! [`Netlist::topo_order`] rejects combinational loops.
//!
//! ```
//! use esam_logic::{GateKind, Level, Netlist};
//!
//! # fn main() -> Result<(), esam_logic::LogicError> {
//! let mut nl = Netlist::new();
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_cell(GateKind::Nand, &[a, b], "y")?;
//! nl.mark_output(y)?;
//!
//! let levels = nl.evaluate(&[Level::High, Level::High])?;
//! assert_eq!(levels[y.index()], Level::Low);
//! # Ok(())
//! # }
//! ```

use esam_tech::units::AreaUm2;

use crate::error::LogicError;
use crate::gate::{GateArea, GateKind};
use crate::level::Level;

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// Position of this net in netlist order (usable to index the level
    /// vector returned by [`Netlist::evaluate`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a gate instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) usize);

impl GateId {
    /// Position of this gate in netlist order.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Net {
    name: String,
    driver: Option<GateId>,
    is_input: bool,
    fanout: Vec<GateId>,
}

/// One gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The gate's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Input nets in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A combinational gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len());
        self.nets.push(Net {
            name: name.into(),
            driver: None,
            is_input: true,
            fanout: Vec::new(),
        });
        self.inputs.push(id);
        id
    }

    /// Declares an internal net with no driver yet.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len());
        self.nets.push(Net {
            name: name.into(),
            driver: None,
            is_input: false,
            fanout: Vec::new(),
        });
        id
    }

    /// Instantiates `kind` reading `inputs` and driving `output`.
    ///
    /// # Errors
    ///
    /// * [`LogicError::UnknownNet`] if any net id is out of range;
    /// * [`LogicError::ArityMismatch`] if `inputs.len()` violates the kind;
    /// * [`LogicError::MultipleDrivers`] if `output` is already driven or is
    ///   a primary input.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, LogicError> {
        for &net in inputs.iter().chain([&output]) {
            if net.0 >= self.nets.len() {
                return Err(LogicError::UnknownNet);
            }
        }
        match kind.arity() {
            Some(n) if inputs.len() != n => {
                return Err(LogicError::ArityMismatch {
                    kind,
                    expected: Some(n),
                    got: inputs.len(),
                })
            }
            None if inputs.is_empty() => {
                return Err(LogicError::ArityMismatch {
                    kind,
                    expected: None,
                    got: 0,
                })
            }
            _ => {}
        }
        let out_net = &self.nets[output.0];
        if out_net.driver.is_some() || out_net.is_input {
            return Err(LogicError::MultipleDrivers {
                net: out_net.name.clone(),
            });
        }
        let id = GateId(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        self.nets[output.0].driver = Some(id);
        for &input in inputs {
            self.nets[input.0].fanout.push(id);
        }
        Ok(id)
    }

    /// Convenience: creates a fresh net named `name` and drives it with a
    /// new `kind` instance reading `inputs`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::add_gate`].
    pub fn add_cell(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        name: impl Into<String>,
    ) -> Result<NetId, LogicError> {
        let output = self.add_net(name);
        self.add_gate(kind, inputs, output)?;
        Ok(output)
    }

    /// Marks `net` as a primary output (idempotent).
    ///
    /// # Errors
    ///
    /// [`LogicError::UnknownNet`] if `net` is out of range.
    pub fn mark_output(&mut self, net: NetId) -> Result<(), LogicError> {
        if net.0 >= self.nets.len() {
            return Err(LogicError::UnknownNet);
        }
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
        Ok(())
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Name of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.nets[net.0].name
    }

    /// Finds the first net named `name` (names are not required to be
    /// unique; generators keep theirs unique by construction).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets.iter().position(|n| n.name == name).map(NetId)
    }

    /// The gate instance `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// Iterates over all gate instances.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates.iter().enumerate().map(|(i, g)| (GateId(i), g))
    }

    /// Gates reading `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        &self.nets[net.0].fanout
    }

    /// Driver gate of `net` (`None` for primary inputs and floating nets).
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.nets[net.0].driver
    }

    /// Checks that every net is driven and the graph is acyclic.
    ///
    /// # Errors
    ///
    /// * [`LogicError::UndrivenNet`] for floating nets;
    /// * [`LogicError::CombinationalLoop`] if a cycle exists.
    pub fn validate(&self) -> Result<(), LogicError> {
        for net in &self.nets {
            if !net.is_input && net.driver.is_none() {
                return Err(LogicError::UndrivenNet {
                    net: net.name.clone(),
                });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Gates in topological (evaluation) order.
    ///
    /// # Errors
    ///
    /// [`LogicError::CombinationalLoop`] if the netlist is cyclic.
    pub fn topo_order(&self) -> Result<Vec<GateId>, LogicError> {
        let mut pending: Vec<usize> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|&&n| self.nets[n.0].driver.is_some())
                    .count()
            })
            .collect();
        let mut ready: Vec<GateId> = pending
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == 0)
            .map(|(i, _)| GateId(i))
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(gate) = ready.pop() {
            order.push(gate);
            let out = self.gates[gate.0].output;
            // The fanout list holds one entry per connected pin, so each
            // entry releases exactly one pending pin (a gate reading the
            // same net on two pins appears twice).
            for &reader in &self.nets[out.0].fanout {
                pending[reader.0] -= 1;
                if pending[reader.0] == 0 {
                    ready.push(reader);
                }
            }
        }
        if order.len() != self.gates.len() {
            let stuck = pending
                .iter()
                .position(|&p| p > 0)
                .map(|i| self.nets[self.gates[i].output.0].name.clone())
                .unwrap_or_default();
            return Err(LogicError::CombinationalLoop { net: stuck });
        }
        Ok(order)
    }

    /// Zero-delay levelized evaluation: applies `stimulus` to the primary
    /// inputs and returns the settled level of every net, indexed by
    /// [`NetId::index`]. Nets unreachable from any driver stay
    /// [`Level::Unknown`].
    ///
    /// # Errors
    ///
    /// * [`LogicError::StimulusWidth`] on input-count mismatch;
    /// * [`LogicError::CombinationalLoop`] if the netlist is cyclic.
    pub fn evaluate(&self, stimulus: &[Level]) -> Result<Vec<Level>, LogicError> {
        if stimulus.len() != self.inputs.len() {
            return Err(LogicError::StimulusWidth {
                expected: self.inputs.len(),
                got: stimulus.len(),
            });
        }
        let order = self.topo_order()?;
        let mut levels = vec![Level::Unknown; self.nets.len()];
        for (&net, &level) in self.inputs.iter().zip(stimulus) {
            levels[net.0] = level;
        }
        let mut scratch = Vec::new();
        for gate_id in order {
            let gate = &self.gates[gate_id.0];
            scratch.clear();
            scratch.extend(gate.inputs.iter().map(|&n| levels[n.0]));
            levels[gate.output.0] = gate.kind.eval(&scratch);
        }
        Ok(levels)
    }

    /// Total standard-cell area under `model`.
    pub fn area(&self, model: &GateArea) -> AreaUm2 {
        self.gates
            .iter()
            .map(|g| model.area(g.kind, g.inputs.len()))
            .fold(AreaUm2::ZERO, |acc, a| acc + a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> (Netlist, NetId, NetId, NetId, NetId) {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let sum = nl.add_cell(GateKind::Xor, &[a, b], "sum").unwrap();
        let carry = nl.add_cell(GateKind::And, &[a, b], "carry").unwrap();
        nl.mark_output(sum).unwrap();
        nl.mark_output(carry).unwrap();
        (nl, a, b, sum, carry)
    }

    #[test]
    fn half_adder_truth_table() {
        let (nl, _, _, sum, carry) = half_adder();
        for (a, b, s, c) in [
            (false, false, false, false),
            (true, false, true, false),
            (false, true, true, false),
            (true, true, false, true),
        ] {
            let levels = nl.evaluate(&[a.into(), b.into()]).unwrap();
            assert_eq!(levels[sum.index()], Level::from(s), "sum a={a} b={b}");
            assert_eq!(levels[carry.index()], Level::from(c), "carry a={a} b={b}");
        }
    }

    #[test]
    fn double_driving_is_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let y = nl.add_cell(GateKind::Not, &[a], "y").unwrap();
        assert_eq!(
            nl.add_gate(GateKind::Buf, &[a], y),
            Err(LogicError::MultipleDrivers { net: "y".into() })
        );
        // Driving a primary input is also double-driving.
        assert!(matches!(
            nl.add_gate(GateKind::Buf, &[y], a),
            Err(LogicError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn arity_is_validated_at_build_time() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let out = nl.add_net("out");
        assert!(matches!(
            nl.add_gate(GateKind::Xor, &[a], out),
            Err(LogicError::ArityMismatch { .. })
        ));
        assert!(matches!(
            nl.add_gate(GateKind::And, &[], out),
            Err(LogicError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn foreign_ids_are_rejected() {
        let mut nl = Netlist::new();
        let bogus = NetId(99);
        assert_eq!(
            nl.add_gate(GateKind::Buf, &[bogus], bogus),
            Err(LogicError::UnknownNet)
        );
        assert_eq!(nl.mark_output(bogus), Err(LogicError::UnknownNet));
    }

    #[test]
    fn undriven_net_fails_validation() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let floating = nl.add_net("floating");
        let _ = nl.add_cell(GateKind::And, &[a, floating], "y").unwrap();
        assert_eq!(
            nl.validate(),
            Err(LogicError::UndrivenNet {
                net: "floating".into()
            })
        );
    }

    #[test]
    fn combinational_loop_is_detected() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::And, &[a, y], x).unwrap();
        nl.add_gate(GateKind::Buf, &[x], y).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(LogicError::CombinationalLoop { .. })
        ));
        assert!(matches!(
            nl.evaluate(&[Level::High]),
            Err(LogicError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn same_net_on_two_pins_evaluates_once() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let y = nl.add_cell(GateKind::Xor, &[a, a], "y").unwrap();
        nl.mark_output(y).unwrap();
        nl.validate().unwrap();
        let levels = nl.evaluate(&[Level::High]).unwrap();
        assert_eq!(levels[y.index()], Level::Low); // a ^ a = 0
    }

    #[test]
    fn constants_need_no_inputs() {
        let mut nl = Netlist::new();
        let one = nl.add_cell(GateKind::Const1, &[], "one").unwrap();
        nl.mark_output(one).unwrap();
        let levels = nl.evaluate(&[]).unwrap();
        assert_eq!(levels[one.index()], Level::High);
    }

    #[test]
    fn stimulus_width_is_checked() {
        let (nl, ..) = half_adder();
        assert_eq!(
            nl.evaluate(&[Level::High]),
            Err(LogicError::StimulusWidth {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn mark_output_is_idempotent() {
        let (mut nl, _, _, sum, _) = half_adder();
        nl.mark_output(sum).unwrap();
        assert_eq!(nl.outputs().len(), 2);
    }

    #[test]
    fn area_sums_over_gates() {
        let (nl, ..) = half_adder();
        let model = GateArea::finfet_3nm();
        let expected = model.area(GateKind::Xor, 2) + model.area(GateKind::And, 2);
        assert!((nl.area(&model).value() - expected.value()).abs() < 1e-12);
    }
}
