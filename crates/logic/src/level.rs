//! Three-valued logic levels.
//!
//! Nets carry [`Level::Low`], [`Level::High`] or [`Level::Unknown`] (the
//! classic `X` of HDL simulators). `Unknown` models uninitialized state and
//! propagates pessimistically through gates: a gate output is `Unknown`
//! unless the known inputs alone force a controlled value (e.g. one `Low`
//! input forces an AND gate to `Low` regardless of the `X` inputs).

use std::fmt;
use std::ops::Not;

/// A three-valued logic level: `0`, `1` or `X`.
///
/// # Examples
///
/// ```
/// use esam_logic::Level;
///
/// assert_eq!(!Level::Low, Level::High);
/// assert_eq!(Level::Low.and(Level::Unknown), Level::Low); // controlled
/// assert_eq!(Level::High.and(Level::Unknown), Level::Unknown);
/// assert_eq!(Level::from(true), Level::High);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Logic `0`.
    Low,
    /// Logic `1`.
    High,
    /// Uninitialized / conflicting value (`X`). The default state of every
    /// net before the first assignment reaches it.
    #[default]
    Unknown,
}

impl Level {
    /// `true` if the level is a resolved `0` or `1`.
    pub fn is_known(self) -> bool {
        self != Level::Unknown
    }

    /// Converts to `bool`, treating `Unknown` as absent.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Level::Low => Some(false),
            Level::High => Some(true),
            Level::Unknown => None,
        }
    }

    /// Three-valued AND.
    pub fn and(self, other: Level) -> Level {
        match (self, other) {
            (Level::Low, _) | (_, Level::Low) => Level::Low,
            (Level::High, Level::High) => Level::High,
            _ => Level::Unknown,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: Level) -> Level {
        match (self, other) {
            (Level::High, _) | (_, Level::High) => Level::High,
            (Level::Low, Level::Low) => Level::Low,
            _ => Level::Unknown,
        }
    }

    /// Three-valued XOR (`Unknown` if either side is unknown).
    pub fn xor(self, other: Level) -> Level {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Level::from(a != b),
            _ => Level::Unknown,
        }
    }

    /// The VCD character for this level (`0`, `1` or `x`).
    pub fn vcd_char(self) -> char {
        match self {
            Level::Low => '0',
            Level::High => '1',
            Level::Unknown => 'x',
        }
    }
}

impl Not for Level {
    type Output = Level;

    fn not(self) -> Level {
        match self {
            Level::Low => Level::High,
            Level::High => Level::Low,
            Level::Unknown => Level::Unknown,
        }
    }
}

impl From<bool> for Level {
    fn from(value: bool) -> Self {
        if value {
            Level::High
        } else {
            Level::Low
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Low => "0",
            Level::High => "1",
            Level::Unknown => "x",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Level; 3] = [Level::Low, Level::High, Level::Unknown];

    #[test]
    fn and_truth_table() {
        assert_eq!(Level::High.and(Level::High), Level::High);
        assert_eq!(Level::High.and(Level::Low), Level::Low);
        // A controlling 0 beats X on either side.
        assert_eq!(Level::Low.and(Level::Unknown), Level::Low);
        assert_eq!(Level::Unknown.and(Level::Low), Level::Low);
        assert_eq!(Level::Unknown.and(Level::High), Level::Unknown);
        assert_eq!(Level::Unknown.and(Level::Unknown), Level::Unknown);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Level::Low.or(Level::Low), Level::Low);
        assert_eq!(Level::High.or(Level::Unknown), Level::High);
        assert_eq!(Level::Unknown.or(Level::High), Level::High);
        assert_eq!(Level::Low.or(Level::Unknown), Level::Unknown);
    }

    #[test]
    fn xor_is_strict_in_unknown() {
        assert_eq!(Level::High.xor(Level::Low), Level::High);
        assert_eq!(Level::High.xor(Level::High), Level::Low);
        for &l in &ALL {
            assert_eq!(l.xor(Level::Unknown), Level::Unknown);
            assert_eq!(Level::Unknown.xor(l), Level::Unknown);
        }
    }

    #[test]
    fn not_inverts_known_only() {
        assert_eq!(!Level::Low, Level::High);
        assert_eq!(!Level::High, Level::Low);
        assert_eq!(!Level::Unknown, Level::Unknown);
    }

    #[test]
    fn and_or_are_commutative_and_associative() {
        for &a in &ALL {
            for &b in &ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for &c in &ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn demorgan_holds_in_three_values() {
        for &a in &ALL {
            for &b in &ALL {
                assert_eq!(!(a.and(b)), (!a).or(!b));
                assert_eq!(!(a.or(b)), (!a).and(!b));
            }
        }
    }

    #[test]
    fn display_and_vcd() {
        assert_eq!(Level::Low.to_string(), "0");
        assert_eq!(Level::High.to_string(), "1");
        assert_eq!(Level::Unknown.to_string(), "x");
        assert_eq!(Level::Unknown.vcd_char(), 'x');
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Level::from(true).to_bool(), Some(true));
        assert_eq!(Level::from(false).to_bool(), Some(false));
        assert_eq!(Level::Unknown.to_bool(), None);
    }
}
