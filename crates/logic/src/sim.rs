//! Event-driven timed simulation of a [`Netlist`].
//!
//! The simulator uses transport-delay semantics: when a gate's inputs
//! change at time *t*, its freshly evaluated output is scheduled at
//! *t + delay(gate)*. Glitches therefore propagate exactly as they would
//! through a real combinational chain — which is the point: the settle time
//! of the 128-wide priority encoder measured here is an independent check
//! on the analytical critical-path model of `esam-arbiter`.
//!
//! Time is kept in integer femtoseconds so identical runs are bit-identical.
//!
//! ```
//! use esam_logic::{GateKind, GateTiming, Level, Netlist, Simulator};
//!
//! # fn main() -> Result<(), esam_logic::LogicError> {
//! let mut nl = Netlist::new();
//! let a = nl.add_input("a");
//! let y = nl.add_cell(GateKind::Not, &[a], "y")?;
//! nl.mark_output(y)?;
//!
//! let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm())?;
//! let (delay, outputs) = sim.settle(&[Level::High])?;
//! assert_eq!(outputs, vec![Level::Low]);
//! assert!(delay.ps() > 0.0);
//! # Ok(())
//! # }
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use esam_tech::units::Seconds;

use crate::error::LogicError;
use crate::gate::GateTiming;
use crate::level::Level;
use crate::netlist::{NetId, Netlist};

/// One femtosecond in seconds.
const FS: f64 = 1e-15;

/// A committed net transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Change {
    /// Simulation time of the transition, in femtoseconds.
    pub time_fs: u64,
    /// The net that changed.
    pub net: NetId,
    /// Its new level.
    pub level: Level,
}

impl Change {
    /// Transition time as [`Seconds`].
    pub fn time(&self) -> Seconds {
        Seconds::new(self.time_fs as f64 * FS)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_fs: u64,
    seq: u64,
    net: usize,
    level_tag: u8,
}

fn tag(level: Level) -> u8 {
    match level {
        Level::Low => 0,
        Level::High => 1,
        Level::Unknown => 2,
    }
}

fn untag(tag: u8) -> Level {
    match tag {
        0 => Level::Low,
        1 => Level::High,
        _ => Level::Unknown,
    }
}

/// Event-driven simulator over a borrowed [`Netlist`].
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    delays_fs: Vec<u64>,
    levels: Vec<Level>,
    queue: BinaryHeap<Reverse<Event>>,
    trace: Vec<Change>,
    now_fs: u64,
    seq: u64,
    max_events: usize,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `netlist` with per-gate delays from `timing`.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::validate`] failures (floating nets, loops).
    pub fn new(netlist: &'a Netlist, timing: GateTiming) -> Result<Self, LogicError> {
        netlist.validate()?;
        let delays_fs = netlist
            .gates()
            .map(|(_, gate)| {
                let fanout = netlist.fanout(gate.output()).len();
                timing.delay_fs(gate.kind(), gate.inputs().len(), fanout)
            })
            .collect();
        let mut sim = Self {
            netlist,
            delays_fs,
            levels: vec![Level::Unknown; netlist.net_count()],
            queue: BinaryHeap::new(),
            trace: Vec::new(),
            now_fs: 0,
            seq: 0,
            // Generous budget: every gate may glitch many times per
            // stimulus, but combinational logic cannot exceed
            // gates × depth transitions; scale with netlist size.
            max_events: 1000 * netlist.gate_count().max(64),
        };
        // Zero-input gates (constants) never see an input event, so their
        // outputs must be kicked off explicitly at t = 0.
        for (id, gate) in netlist.gates() {
            if gate.inputs().is_empty() {
                let level = gate.kind().eval(&[]);
                let at = sim.delays_fs[id.index()];
                sim.schedule(at, gate.output().index(), level);
            }
        }
        Ok(sim)
    }

    /// Current simulation time.
    pub fn now(&self) -> Seconds {
        Seconds::new(self.now_fs as f64 * FS)
    }

    /// Current level of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the simulated netlist.
    pub fn level(&self, net: NetId) -> Level {
        self.levels[net.index()]
    }

    /// Levels of the primary outputs, in declaration order.
    pub fn output_levels(&self) -> Vec<Level> {
        self.netlist
            .outputs()
            .iter()
            .map(|&n| self.levels[n.index()])
            .collect()
    }

    /// All committed transitions since construction, in time order.
    pub fn trace(&self) -> &[Change] {
        &self.trace
    }

    /// Moves the clock forward to `time` (no-op if already past it).
    pub fn advance_to(&mut self, time: Seconds) {
        let fs = (time.value() / FS).round() as u64;
        self.now_fs = self.now_fs.max(fs);
    }

    /// Schedules `level` on primary input `net` at the current time.
    ///
    /// # Errors
    ///
    /// [`LogicError::UnknownNet`] if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, level: Level) -> Result<(), LogicError> {
        if !self.netlist.inputs().contains(&net) {
            return Err(LogicError::UnknownNet);
        }
        self.schedule(self.now_fs, net.index(), level);
        Ok(())
    }

    /// Schedules all primary inputs at the current time.
    ///
    /// # Errors
    ///
    /// [`LogicError::StimulusWidth`] on input-count mismatch.
    pub fn set_inputs(&mut self, stimulus: &[Level]) -> Result<(), LogicError> {
        if stimulus.len() != self.netlist.inputs().len() {
            return Err(LogicError::StimulusWidth {
                expected: self.netlist.inputs().len(),
                got: stimulus.len(),
            });
        }
        let nets: Vec<usize> = self.netlist.inputs().iter().map(|n| n.index()).collect();
        for (net, &level) in nets.into_iter().zip(stimulus) {
            self.schedule(self.now_fs, net, level);
        }
        Ok(())
    }

    /// Processes events until the queue drains, returning the time of the
    /// last committed transition.
    ///
    /// # Errors
    ///
    /// [`LogicError::DidNotSettle`] if the event budget is exhausted.
    pub fn run_to_quiescence(&mut self) -> Result<Seconds, LogicError> {
        let mut events = 0usize;
        let mut last_change_fs = self.now_fs;
        while let Some(Reverse(event)) = self.queue.pop() {
            events += 1;
            if events > self.max_events {
                return Err(LogicError::DidNotSettle { events });
            }
            self.now_fs = self.now_fs.max(event.time_fs);
            let new = untag(event.level_tag);
            if self.levels[event.net] == new {
                continue;
            }
            self.levels[event.net] = new;
            self.trace.push(Change {
                time_fs: event.time_fs,
                net: NetId(event.net),
                level: new,
            });
            last_change_fs = last_change_fs.max(event.time_fs);
            let readers: Vec<_> = self.netlist.fanout(NetId(event.net)).to_vec();
            for gate_id in readers {
                let gate = self.netlist.gate(gate_id);
                let inputs: Vec<Level> = gate
                    .inputs()
                    .iter()
                    .map(|&n| self.levels[n.index()])
                    .collect();
                let out_level = gate.kind().eval(&inputs);
                let at = event.time_fs + self.delays_fs[gate_id.index()];
                self.schedule(at, gate.output().index(), out_level);
            }
        }
        self.now_fs = self.now_fs.max(last_change_fs);
        Ok(Seconds::new(last_change_fs as f64 * FS))
    }

    /// Applies `stimulus` at the current time and runs to quiescence.
    ///
    /// Returns the propagation delay (settle time minus stimulus time) and
    /// the primary output levels.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::set_inputs`] and [`Self::run_to_quiescence`]
    /// failures.
    pub fn settle(&mut self, stimulus: &[Level]) -> Result<(Seconds, Vec<Level>), LogicError> {
        let start_fs = self.now_fs;
        self.set_inputs(stimulus)?;
        let settled = self.run_to_quiescence()?;
        let delay_fs = ((settled.value() / FS).round() as u64).saturating_sub(start_fs);
        Ok((Seconds::new(delay_fs as f64 * FS), self.output_levels()))
    }

    fn schedule(&mut self, time_fs: u64, net: usize, level: Level) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time_fs,
            seq: self.seq,
            net,
            level_tag: tag(level),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new();
        let mut prev = nl.add_input("in");
        for i in 0..n {
            prev = nl
                .add_cell(GateKind::Not, &[prev], format!("n{i}"))
                .unwrap();
        }
        nl.mark_output(prev).unwrap();
        nl
    }

    #[test]
    fn inverter_chain_delay_scales_linearly() {
        let timing = GateTiming::finfet_3nm();
        let short = {
            let nl = chain(4);
            let mut sim = Simulator::new(&nl, timing).unwrap();
            sim.settle(&[Level::High]).unwrap().0
        };
        let long = {
            let nl = chain(16);
            let mut sim = Simulator::new(&nl, timing).unwrap();
            sim.settle(&[Level::High]).unwrap().0
        };
        let ratio = long.value() / short.value();
        assert!((3.5..4.5).contains(&ratio), "expected ~4x, got {ratio}");
    }

    #[test]
    fn chain_parity_is_respected() {
        let nl = chain(5);
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        let (_, out) = sim.settle(&[Level::High]).unwrap();
        assert_eq!(out, vec![Level::Low]);
        let (_, out) = sim.settle(&[Level::Low]).unwrap();
        assert_eq!(out, vec![Level::High]);
    }

    #[test]
    fn resettling_with_same_stimulus_is_instant() {
        let nl = chain(8);
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        sim.settle(&[Level::High]).unwrap();
        let (delay, _) = sim.settle(&[Level::High]).unwrap();
        assert_eq!(delay, Seconds::ZERO);
    }

    #[test]
    fn glitch_propagates_and_resolves() {
        // y = a XOR a' where a' is a delayed copy of a: a rising edge makes
        // y pulse high before settling low again. The trace must show the
        // glitch; the final level must be 0.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let a_slow = nl.add_cell(GateKind::Buf, &[a], "a_slow").unwrap();
        let y = nl.add_cell(GateKind::Xor, &[a, a_slow], "y").unwrap();
        nl.mark_output(y).unwrap();

        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        sim.settle(&[Level::Low]).unwrap();
        let trace_before = sim.trace().len();
        let (_, out) = sim.settle(&[Level::High]).unwrap();
        assert_eq!(out, vec![Level::Low]);
        let y_changes: Vec<_> = sim.trace()[trace_before..]
            .iter()
            .filter(|c| c.net == y)
            .collect();
        assert_eq!(y_changes.len(), 2, "expected a 0→1→0 glitch on y");
        assert_eq!(y_changes[0].level, Level::High);
        assert_eq!(y_changes[1].level, Level::Low);
    }

    #[test]
    fn event_sim_agrees_with_levelized_eval() {
        // Random-ish 3-input function built from mixed gates.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_cell(GateKind::Nand, &[a, b], "ab").unwrap();
        let bc = nl.add_cell(GateKind::Nor, &[b, c], "bc").unwrap();
        let y = nl.add_cell(GateKind::Xor, &[ab, bc], "y").unwrap();
        let z = nl.add_cell(GateKind::Mux2, &[a, y, bc], "z").unwrap();
        nl.mark_output(y).unwrap();
        nl.mark_output(z).unwrap();

        for bits in 0..8u8 {
            let stim: Vec<Level> = (0..3).map(|i| Level::from(bits >> i & 1 == 1)).collect();
            let levels = nl.evaluate(&stim).unwrap();
            let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
            let (_, out) = sim.settle(&stim).unwrap();
            assert_eq!(out[0], levels[y.index()], "y mismatch for {bits:03b}");
            assert_eq!(out[1], levels[z.index()], "z mismatch for {bits:03b}");
        }
    }

    #[test]
    fn set_input_rejects_non_inputs() {
        let nl = chain(2);
        let internal = nl.outputs()[0];
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        assert_eq!(
            sim.set_input(internal, Level::High),
            Err(LogicError::UnknownNet)
        );
    }

    #[test]
    fn advance_to_moves_time_forward_only() {
        let nl = chain(2);
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        sim.advance_to(Seconds::from_ps(100.0));
        assert!((sim.now().ps() - 100.0).abs() < 1e-9);
        sim.advance_to(Seconds::from_ps(50.0));
        assert!(
            (sim.now().ps() - 100.0).abs() < 1e-9,
            "time must not rewind"
        );
    }

    #[test]
    fn constants_propagate_without_input_events() {
        // Regression: zero-input gates used to stay X forever because no
        // input event ever triggered their evaluation.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let one = nl.add_cell(GateKind::Const1, &[], "one").unwrap();
        let y = nl.add_cell(GateKind::And, &[a, one], "y").unwrap();
        nl.mark_output(y).unwrap();
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        let (_, out) = sim.settle(&[Level::High]).unwrap();
        assert_eq!(out, vec![Level::High]);
        assert_eq!(sim.level(one), Level::High);
    }

    #[test]
    fn trace_is_time_ordered() {
        let nl = chain(12);
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        sim.settle(&[Level::High]).unwrap();
        sim.settle(&[Level::Low]).unwrap();
        let times: Vec<u64> = sim.trace().iter().map(|c| c.time_fs).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(!times.is_empty());
    }
}
