//! Gate primitives: kinds, evaluation, and the per-kind timing/area model.
//!
//! The cell library is deliberately small — the subset needed to build the
//! ESAM arbiter and neuron datapath structurally: inverters/buffers, n-ary
//! AND/OR/NAND/NOR, 2-input XOR/XNOR, an AND-NOT cell (the `R & !G` masking
//! primitive of Fig. 4), a 2:1 mux, and constants.
//!
//! Delays follow a standard-cell style linear model:
//! `delay = intrinsic + per_fanout · fanout`, with constants scaled to the
//! 3 nm FinFET operating point used throughout the reproduction
//! ([`GateTiming::finfet_3nm`]).

use esam_tech::units::{AreaUm2, Seconds};

use crate::level::Level;

/// The kind of a combinational gate.
///
/// N-ary kinds (`And`, `Or`, `Nand`, `Nor`) accept 1+ inputs; the fixed-arity
/// kinds are validated by [`Netlist::add_gate`](crate::Netlist::add_gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Constant `0` driver (no inputs).
    Const0,
    /// Constant `1` driver (no inputs).
    Const1,
    /// Buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// N-ary AND.
    And,
    /// N-ary OR.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// `a AND (NOT b)` — 2 inputs, `a` first. One AOI-style cell; the
    /// request-masking primitive `R' = R & !G` of the priority encoder.
    AndNot,
    /// 2:1 multiplexer — inputs `[sel, a, b]`, output `a` when `sel = 0`,
    /// `b` when `sel = 1`.
    Mux2,
}

impl GateKind {
    /// Required input count: `Some(n)` for fixed arity, `None` for n-ary
    /// kinds (which require at least one input).
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Const0 | GateKind::Const1 => Some(0),
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::Xor | GateKind::Xnor | GateKind::AndNot => Some(2),
            GateKind::Mux2 => Some(3),
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => None,
        }
    }

    /// Evaluates the gate over three-valued inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` violates [`Self::arity`]; the netlist
    /// builder guarantees this never happens for validated netlists.
    pub fn eval(self, inputs: &[Level]) -> Level {
        if let Some(n) = self.arity() {
            assert_eq!(
                inputs.len(),
                n,
                "{self:?} expects {n} inputs, got {}",
                inputs.len()
            );
        } else {
            assert!(!inputs.is_empty(), "{self:?} needs at least one input");
        }
        match self {
            GateKind::Const0 => Level::Low,
            GateKind::Const1 => Level::High,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().copied().fold(Level::High, Level::and),
            GateKind::Or => inputs.iter().copied().fold(Level::Low, Level::or),
            GateKind::Nand => !inputs.iter().copied().fold(Level::High, Level::and),
            GateKind::Nor => !inputs.iter().copied().fold(Level::Low, Level::or),
            GateKind::Xor => inputs[0].xor(inputs[1]),
            GateKind::Xnor => !inputs[0].xor(inputs[1]),
            GateKind::AndNot => inputs[0].and(!inputs[1]),
            GateKind::Mux2 => match inputs[0] {
                Level::Low => inputs[1],
                Level::High => inputs[2],
                Level::Unknown => {
                    // X on select resolves only when both data inputs agree.
                    if inputs[1] == inputs[2] {
                        inputs[1]
                    } else {
                        Level::Unknown
                    }
                }
            },
        }
    }
}

/// Standard-cell style linear delay model for the library.
///
/// # Examples
///
/// ```
/// use esam_logic::{GateKind, GateTiming};
///
/// let timing = GateTiming::finfet_3nm();
/// let d1 = timing.delay(GateKind::And, 2, 1);
/// let d2 = timing.delay(GateKind::And, 2, 8); // heavier fanout is slower
/// assert!(d2 > d1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTiming {
    /// Intrinsic delay of a minimum-size inverter (the FO1 base delay).
    pub inverter_intrinsic: Seconds,
    /// Extra delay per driven fanout (gate-cap load on the output net).
    pub per_fanout: Seconds,
    /// Extra delay per input beyond the second on n-ary gates (series
    /// stacks get slower).
    pub per_extra_input: Seconds,
}

impl GateTiming {
    /// The timing point used throughout the ESAM reproduction: 3 nm FinFET
    /// at VDD = 700 mV. Calibrated so that the 128-bit flat priority-encoder
    /// chain (one AND-NOT per bit) lands in the paper's >1100 ps band
    /// (§3.3) while short paths stay in the tens of picoseconds.
    pub fn finfet_3nm() -> Self {
        Self {
            inverter_intrinsic: Seconds::from_ps(4.2),
            per_fanout: Seconds::from_ps(1.0),
            per_extra_input: Seconds::from_ps(1.6),
        }
    }

    /// Propagation delay of one `kind` instance with `input_count` inputs
    /// driving `fanout` loads.
    pub fn delay(&self, kind: GateKind, input_count: usize, fanout: usize) -> Seconds {
        let base = self.inverter_intrinsic.value();
        let intrinsic = base * kind_complexity(kind);
        let stack = self.per_extra_input.value() * input_count.saturating_sub(2) as f64;
        let load = self.per_fanout.value() * fanout.max(1) as f64;
        Seconds::new(intrinsic + stack + load)
    }

    /// [`Self::delay`] quantized to integer femtoseconds (minimum 1 fs).
    ///
    /// Both the event simulator and the STA engine use this quantized
    /// value, so STA arrival times are an exact upper bound on simulated
    /// settle times — no float-rounding slack required.
    pub fn delay_fs(&self, kind: GateKind, input_count: usize, fanout: usize) -> u64 {
        (self.delay(kind, input_count, fanout).value() / 1e-15)
            .round()
            .max(1.0) as u64
    }
}

/// Relative intrinsic delay of each kind in inverter units.
fn kind_complexity(kind: GateKind) -> f64 {
    match kind {
        GateKind::Const0 | GateKind::Const1 => 0.0,
        GateKind::Buf => 1.6,
        GateKind::Not => 1.0,
        GateKind::Nand | GateKind::Nor => 1.25,
        GateKind::And | GateKind::Or => 1.9,
        GateKind::AndNot => 1.45,
        GateKind::Xor | GateKind::Xnor => 2.4,
        GateKind::Mux2 => 2.2,
    }
}

/// Standard-cell area model in NAND2-equivalent units, convertible to µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateArea {
    /// Area of one NAND2-equivalent cell.
    pub nand2_um2: AreaUm2,
}

impl GateArea {
    /// NAND2 footprint at the reproduction's 3 nm node. A 3 nm NAND2 is a
    /// handful of the 6T bitcell's footprint (logic cells carry routing
    /// overhead the bitcell avoids).
    pub fn finfet_3nm() -> Self {
        Self {
            nand2_um2: AreaUm2::new(esam_tech::calibration::paper::CELL_AREA_6T_UM2 * 4.0),
        }
    }

    /// Area of one `kind` instance with `input_count` inputs.
    pub fn area(&self, kind: GateKind, input_count: usize) -> AreaUm2 {
        let ge = match kind {
            GateKind::Const0 | GateKind::Const1 => 0.0,
            GateKind::Not => 0.67,
            GateKind::Buf => 1.0,
            GateKind::Nand | GateKind::Nor => 1.0,
            GateKind::And | GateKind::Or => 1.33,
            GateKind::AndNot => 1.33,
            GateKind::Xor | GateKind::Xnor => 2.33,
            GateKind::Mux2 => 2.33,
        };
        let stack = 0.5 * input_count.saturating_sub(2) as f64;
        self.nand2_um2 * (ge + stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(bits: &[u8]) -> Vec<Level> {
        bits.iter().map(|&b| Level::from(b != 0)).collect()
    }

    #[test]
    fn eval_known_truth_tables() {
        assert_eq!(GateKind::And.eval(&l(&[1, 1, 1])), Level::High);
        assert_eq!(GateKind::And.eval(&l(&[1, 0, 1])), Level::Low);
        assert_eq!(GateKind::Or.eval(&l(&[0, 0])), Level::Low);
        assert_eq!(GateKind::Or.eval(&l(&[0, 1])), Level::High);
        assert_eq!(GateKind::Nand.eval(&l(&[1, 1])), Level::Low);
        assert_eq!(GateKind::Nor.eval(&l(&[0, 0])), Level::High);
        assert_eq!(GateKind::Xor.eval(&l(&[1, 0])), Level::High);
        assert_eq!(GateKind::Xnor.eval(&l(&[1, 0])), Level::Low);
        assert_eq!(GateKind::Not.eval(&l(&[1])), Level::Low);
        assert_eq!(GateKind::Buf.eval(&l(&[1])), Level::High);
        assert_eq!(GateKind::Const0.eval(&[]), Level::Low);
        assert_eq!(GateKind::Const1.eval(&[]), Level::High);
    }

    #[test]
    fn andnot_masks() {
        assert_eq!(GateKind::AndNot.eval(&l(&[1, 0])), Level::High);
        assert_eq!(GateKind::AndNot.eval(&l(&[1, 1])), Level::Low);
        assert_eq!(GateKind::AndNot.eval(&l(&[0, 0])), Level::Low);
    }

    #[test]
    fn mux_selects() {
        assert_eq!(GateKind::Mux2.eval(&l(&[0, 1, 0])), Level::High);
        assert_eq!(GateKind::Mux2.eval(&l(&[1, 1, 0])), Level::Low);
        // X select with agreeing data still resolves.
        assert_eq!(
            GateKind::Mux2.eval(&[Level::Unknown, Level::High, Level::High]),
            Level::High
        );
        assert_eq!(
            GateKind::Mux2.eval(&[Level::Unknown, Level::High, Level::Low]),
            Level::Unknown
        );
    }

    #[test]
    fn controlling_values_dominate_unknown() {
        assert_eq!(
            GateKind::And.eval(&[Level::Low, Level::Unknown]),
            Level::Low
        );
        assert_eq!(
            GateKind::Or.eval(&[Level::High, Level::Unknown]),
            Level::High
        );
        assert_eq!(
            GateKind::Nand.eval(&[Level::Low, Level::Unknown]),
            Level::High
        );
        assert_eq!(
            GateKind::Nor.eval(&[Level::High, Level::Unknown]),
            Level::Low
        );
        assert_eq!(
            GateKind::And.eval(&[Level::High, Level::Unknown]),
            Level::Unknown
        );
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_is_enforced() {
        GateKind::Xor.eval(&l(&[1]));
    }

    #[test]
    fn delay_grows_with_fanout_and_inputs() {
        let t = GateTiming::finfet_3nm();
        assert!(t.delay(GateKind::And, 2, 4) > t.delay(GateKind::And, 2, 1));
        assert!(t.delay(GateKind::And, 6, 1) > t.delay(GateKind::And, 2, 1));
        assert!(t.delay(GateKind::Xor, 2, 1) > t.delay(GateKind::Not, 1, 1));
    }

    #[test]
    fn flat_chain_delay_is_calibrated_to_the_paper_band() {
        // One AND-NOT per bit in the 128-wide blocking chain (§3.3).
        let t = GateTiming::finfet_3nm();
        let per_bit = t.delay(GateKind::AndNot, 2, 2);
        let chain = per_bit.value() * 128.0;
        assert!(
            (1.0e-9..2.0e-9).contains(&chain),
            "128-bit chain fell out of the >1100 ps band: {chain:e}"
        );
    }

    #[test]
    fn area_model_is_positive_and_ordered() {
        let a = GateArea::finfet_3nm();
        assert!(a.area(GateKind::Not, 1) < a.area(GateKind::Nand, 2));
        assert!(a.area(GateKind::Nand, 2) < a.area(GateKind::Xor, 2));
        assert!(a.area(GateKind::And, 8) > a.area(GateKind::And, 2));
        assert!(a.area(GateKind::Const1, 0).value() == 0.0);
    }
}
