//! Waveform export: IEEE 1364 VCD dumping and ASCII waveform rendering.
//!
//! [`VcdWriter`] serializes a [`Simulator`](crate::Simulator) trace into a
//! Value Change Dump readable by GTKWave and friends; [`ascii_waveform`]
//! renders a handful of nets as text for terminal inspection. Output is
//! fully deterministic (no timestamps or host data), so golden-file tests
//! are stable.

use std::io::{self, Write};

use crate::netlist::{NetId, Netlist};
use crate::sim::Change;

/// Writer for IEEE 1364 Value Change Dump files.
///
/// # Examples
///
/// ```
/// use esam_logic::{GateKind, GateTiming, Level, Netlist, Simulator, VcdWriter};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new();
/// let a = nl.add_input("a");
/// let y = nl.add_cell(GateKind::Not, &[a], "y")?;
/// nl.mark_output(y)?;
///
/// let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm())?;
/// sim.settle(&[Level::High])?;
///
/// let mut vcd = Vec::new();
/// VcdWriter::new("esam").write(&nl, sim.trace(), &mut vcd)?;
/// let text = String::from_utf8(vcd)?;
/// assert!(text.contains("$timescale 1fs $end"));
/// assert!(text.contains("$var wire 1"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
}

impl VcdWriter {
    /// Creates a writer; `module` names the top VCD scope.
    pub fn new(module: impl Into<String>) -> Self {
        Self {
            module: module.into(),
        }
    }

    /// Writes the full VCD document for `trace` over `netlist` into `w`
    /// (a `&mut` reference works too, since `Write` is implemented for it).
    ///
    /// All nets are declared; initial values are dumped as `x` and the
    /// trace's transitions follow in time order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write<W: Write>(&self, netlist: &Netlist, trace: &[Change], mut w: W) -> io::Result<()> {
        writeln!(w, "$version esam-logic VCD dump $end")?;
        writeln!(w, "$timescale 1fs $end")?;
        writeln!(w, "$scope module {} $end", self.module)?;
        for index in 0..netlist.net_count() {
            let net = NetId(index);
            writeln!(
                w,
                "$var wire 1 {} {} $end",
                id_code(index),
                sanitize(netlist.net_name(net))
            )?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;
        writeln!(w, "$dumpvars")?;
        for index in 0..netlist.net_count() {
            writeln!(w, "x{}", id_code(index))?;
        }
        writeln!(w, "$end")?;
        let mut current_time = None;
        for change in trace {
            if current_time != Some(change.time_fs) {
                writeln!(w, "#{}", change.time_fs)?;
                current_time = Some(change.time_fs);
            }
            writeln!(
                w,
                "{}{}",
                change.level.vcd_char(),
                id_code(change.net.index())
            )?;
        }
        Ok(())
    }
}

/// VCD identifier code for net `index`: base-94 over the printable ASCII
/// range `!`..=`~`, shortest code first.
fn id_code(index: usize) -> String {
    const FIRST: u8 = b'!';
    const RADIX: usize = 94;
    let mut n = index;
    let mut code = String::new();
    loop {
        code.push((FIRST + (n % RADIX) as u8) as char);
        n /= RADIX;
        if n == 0 {
            break;
        }
        n -= 1; // bijective numeration: "!" then "!!" with no gaps
    }
    code
}

/// Replaces characters VCD identifiers cannot carry (spaces) with `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

/// Renders `nets` as an ASCII waveform table, one row per net and one
/// column per distinct transition time in `trace`.
///
/// Levels are drawn as `_` (low), `#` (high) and `.` (unknown). The header
/// row lists the column times in picoseconds.
///
/// # Examples
///
/// ```
/// use esam_logic::{ascii_waveform, GateKind, GateTiming, Level, Netlist, Simulator};
///
/// # fn main() -> Result<(), esam_logic::LogicError> {
/// let mut nl = Netlist::new();
/// let a = nl.add_input("a");
/// let y = nl.add_cell(GateKind::Not, &[a], "y")?;
/// let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm())?;
/// sim.settle(&[Level::High])?;
/// let wave = ascii_waveform(&nl, sim.trace(), &[a, y]);
/// assert!(wave.lines().count() >= 3); // header + two nets
/// # Ok(())
/// # }
/// ```
pub fn ascii_waveform(netlist: &Netlist, trace: &[Change], nets: &[NetId]) -> String {
    let mut times: Vec<u64> = trace.iter().map(|c| c.time_fs).collect();
    times.sort_unstable();
    times.dedup();

    let name_width = nets
        .iter()
        .map(|&n| netlist.net_name(n).len())
        .max()
        .unwrap_or(0)
        .max(4);

    let mut out = String::new();
    out.push_str(&format!("{:>name_width$} |", "t/ps"));
    for &t in &times {
        out.push_str(&format!(" {:>7.1}", t as f64 / 1000.0));
    }
    out.push('\n');

    for &net in nets {
        out.push_str(&format!("{:>name_width$} |", netlist.net_name(net)));
        let mut level = crate::Level::Unknown;
        for &t in &times {
            for change in trace.iter().filter(|c| c.time_fs == t && c.net == net) {
                level = change.level;
            }
            let glyph = match level {
                crate::Level::Low => "_______",
                crate::Level::High => "#######",
                crate::Level::Unknown => ".......",
            };
            out.push_str(&format!(" {glyph}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{GateKind, GateTiming};
    use crate::level::Level;
    use crate::sim::Simulator;

    fn tiny() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let y = nl.add_cell(GateKind::Not, &[a], "y").unwrap();
        nl.mark_output(y).unwrap();
        (nl, a, y)
    }

    #[test]
    fn id_codes_are_unique_and_short_first() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(id_code(i)), "duplicate id code at {i}");
        }
    }

    #[test]
    fn vcd_document_structure() {
        let (nl, _, _) = tiny();
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        sim.settle(&[Level::High]).unwrap();
        let mut buffer = Vec::new();
        VcdWriter::new("top")
            .write(&nl, sim.trace(), &mut buffer)
            .unwrap();
        let text = String::from_utf8(buffer).unwrap();

        assert!(text.starts_with("$version"));
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 1 \" y $end"));
        assert!(text.contains("$dumpvars\nx!\nx\"\n$end"));
        // The stimulus commits at t=0, then the inverter output follows.
        assert!(text.contains("#0\n1!"));
        assert!(text.contains("0\""));
    }

    #[test]
    fn vcd_is_deterministic() {
        let (nl, _, _) = tiny();
        let render = || {
            let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
            sim.settle(&[Level::High]).unwrap();
            sim.settle(&[Level::Low]).unwrap();
            let mut buffer = Vec::new();
            VcdWriter::new("top")
                .write(&nl, sim.trace(), &mut buffer)
                .unwrap();
            buffer
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn names_with_spaces_are_sanitized() {
        let mut nl = Netlist::new();
        let a = nl.add_input("spike request 3");
        let y = nl.add_cell(GateKind::Buf, &[a], "grant 3").unwrap();
        nl.mark_output(y).unwrap();
        let mut buffer = Vec::new();
        VcdWriter::new("top").write(&nl, &[], &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.contains("spike_request_3"));
        assert!(text.contains("grant_3"));
    }

    #[test]
    fn ascii_waveform_rows_and_levels() {
        let (nl, a, y) = tiny();
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).unwrap();
        sim.settle(&[Level::High]).unwrap();
        let wave = ascii_waveform(&nl, sim.trace(), &[a, y]);
        let lines: Vec<&str> = wave.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("t/ps"));
        assert!(
            lines[1].contains('#'),
            "input row should go high: {}",
            lines[1]
        );
        assert!(
            lines[2].contains('_'),
            "output row should go low: {}",
            lines[2]
        );
    }

    #[test]
    fn ascii_waveform_empty_trace() {
        let (nl, a, _) = tiny();
        let wave = ascii_waveform(&nl, &[], &[a]);
        assert!(wave.contains("t/ps"));
        assert!(wave.lines().count() == 2);
    }
}
