//! Property-based tests for the gate-level substrate.
//!
//! Invariants checked on randomly generated circuits and stimuli:
//!
//! * event-driven simulation and levelized evaluation agree on every net;
//! * STA bounds every observed settle time;
//! * adders and popcounts match integer arithmetic at random widths;
//! * VCD output is stable under re-simulation.

use esam_logic::gen::{input_bus, or_reduce, popcount, ripple_carry_adder};
use esam_logic::{GateKind, GateTiming, Level, Netlist, Simulator, TimingAnalysis};
use proptest::prelude::*;

/// Builds a random layered combinational netlist from a compact recipe.
///
/// `recipe` entries pick a gate kind and two source nets (by index modulo
/// the nets created so far), which yields arbitrary DAGs without cycles.
fn build_random(inputs: usize, recipe: &[(u8, usize, usize)]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nets: Vec<_> = (0..inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    for (step, &(kind_pick, a_pick, b_pick)) in recipe.iter().enumerate() {
        let a = nets[a_pick % nets.len()];
        let b = nets[b_pick % nets.len()];
        let name = format!("g{step}");
        let out = match kind_pick % 7 {
            0 => nl.add_cell(GateKind::And, &[a, b], name),
            1 => nl.add_cell(GateKind::Or, &[a, b], name),
            2 => nl.add_cell(GateKind::Nand, &[a, b], name),
            3 => nl.add_cell(GateKind::Nor, &[a, b], name),
            4 => nl.add_cell(GateKind::Xor, &[a, b], name),
            5 => nl.add_cell(GateKind::AndNot, &[a, b], name),
            _ => nl.add_cell(GateKind::Not, &[a], name),
        }
        .expect("recipe gates are always valid");
        nets.push(out);
    }
    let last = *nets.last().expect("at least the inputs exist");
    nl.mark_output(last).expect("output net exists");
    nl
}

fn stimulus(bits: u64, width: usize) -> Vec<Level> {
    (0..width)
        .map(|i| Level::from(bits >> (i % 64) & 1 == 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_sim_matches_levelized_eval(
        inputs in 1usize..6,
        recipe in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..40),
        bits in any::<u64>(),
    ) {
        let nl = build_random(inputs, &recipe);
        let stim = stimulus(bits, inputs);
        let levels = nl.evaluate(&stim).expect("evaluation succeeds");
        let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).expect("netlist is valid");
        let (_, outputs) = sim.settle(&stim).expect("simulation settles");
        let expected: Vec<Level> = nl.outputs().iter().map(|&n| levels[n.index()]).collect();
        prop_assert_eq!(outputs, expected);
    }

    #[test]
    fn sta_bounds_every_settle_time(
        inputs in 1usize..6,
        recipe in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..40),
        first in any::<u64>(),
        second in any::<u64>(),
    ) {
        let nl = build_random(inputs, &recipe);
        let timing = GateTiming::finfet_3nm();
        let sta = TimingAnalysis::run(&nl, &timing).expect("netlist is valid");
        let bound = sta.critical_path().delay();
        let mut sim = Simulator::new(&nl, timing).expect("netlist is valid");
        let (settle_a, _) = sim.settle(&stimulus(first, inputs)).expect("settles");
        let (settle_b, _) = sim.settle(&stimulus(second, inputs)).expect("settles");
        prop_assert!(settle_a.value() <= bound.value() + 1e-15,
            "first stimulus settled at {settle_a} past STA bound {bound}");
        prop_assert!(settle_b.value() <= bound.value() + 1e-15,
            "second stimulus settled at {settle_b} past STA bound {bound}");
    }

    #[test]
    fn adders_add(width in 1usize..=10, a in any::<u64>(), b in any::<u64>(), cin in any::<bool>()) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let (x, y) = (a & mask, b & mask);
        let mut nl = Netlist::new();
        let bus_a = input_bus(&mut nl, "a", width);
        let bus_b = input_bus(&mut nl, "b", width);
        let carry_in = nl.add_input("cin");
        let (sum, cout) = ripple_carry_adder(&mut nl, &bus_a, &bus_b, carry_in, "add")
            .expect("adder builds");
        let mut stim = stimulus(x, width);
        stim.extend(stimulus(y, width));
        stim.push(Level::from(cin));
        let levels = nl.evaluate(&stim).expect("evaluation succeeds");
        let got = sum.decode(&levels).expect("sum is known")
            + (u64::from(levels[cout.index()] == Level::High) << width);
        prop_assert_eq!(got, x + y + u64::from(cin));
    }

    #[test]
    fn popcount_counts(width in 1usize..=48, bits in any::<u64>()) {
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        let value = bits & mask;
        let mut nl = Netlist::new();
        let bus = input_bus(&mut nl, "x", width);
        let count = popcount(&mut nl, bus.nets(), "pc").expect("popcount builds");
        let levels = nl.evaluate(&stimulus(value, width)).expect("evaluation succeeds");
        prop_assert_eq!(count.decode(&levels), Some(u64::from(value.count_ones())));
    }

    #[test]
    fn or_reduce_is_any(width in 1usize..=64, bits in any::<u64>()) {
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        let value = bits & mask;
        let mut nl = Netlist::new();
        let bus = input_bus(&mut nl, "x", width);
        let any_bit = or_reduce(&mut nl, bus.nets(), "any").expect("reduce builds");
        let levels = nl.evaluate(&stimulus(value, width)).expect("evaluation succeeds");
        prop_assert_eq!(levels[any_bit.index()], Level::from(value != 0));
    }

    #[test]
    fn simulation_is_deterministic(
        inputs in 1usize..5,
        recipe in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..25),
        bits in any::<u64>(),
    ) {
        let nl = build_random(inputs, &recipe);
        let run = || {
            let mut sim = Simulator::new(&nl, GateTiming::finfet_3nm()).expect("valid");
            sim.settle(&stimulus(bits, inputs)).expect("settles");
            sim.trace().to_vec()
        };
        prop_assert_eq!(run(), run());
    }
}
