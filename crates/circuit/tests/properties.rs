//! Property-based tests for the transient solver.
//!
//! Physical invariants that must hold for any passive RC network:
//! passivity (voltages stay inside the initial/source envelope), monotone
//! relaxation, crossing-time monotonicity in R and C, and determinism.

use esam_circuit::{Circuit, RcLadder, Waveform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Source-free RC networks relax inside the envelope of their initial
    /// voltages: no node may overshoot the initial min/max.
    #[test]
    fn passivity_bounds_every_node(
        segments in 1usize..12,
        r_kohm in 0.5f64..50.0,
        c_ff in 1.0f64..50.0,
        v_init in 0.05f64..1.0,
    ) {
        let mut ckt = Circuit::new();
        let top = ckt.add_node("top");
        let ladder = RcLadder::build(
            &mut ckt, top, segments, r_kohm * 1e3, c_ff * 1e-15, "w",
        ).expect("ladder builds");
        for &node in ladder.nodes() {
            ckt.set_initial_voltage(node, v_init).expect("node exists");
        }
        ckt.add_resistor(ladder.output(), Circuit::GROUND, r_kohm * 1e3)
            .expect("nodes exist");
        let tau = r_kohm * 1e3 * c_ff * 1e-15;
        let result = ckt.transient(5.0 * tau, tau / 100.0).expect("solves");
        for &node in ladder.nodes() {
            let (lo, hi) = result.voltage_range(node);
            prop_assert!(lo >= -1e-9, "undershoot at {}: {lo}", ckt.node_name(node));
            prop_assert!(hi <= v_init + 1e-9, "overshoot at {}: {hi}", ckt.node_name(node));
        }
    }

    /// A single discharging capacitor falls monotonically.
    #[test]
    fn discharge_is_monotone(
        r_kohm in 0.5f64..100.0,
        c_ff in 1.0f64..100.0,
        v_init in 0.1f64..1.0,
    ) {
        let mut ckt = Circuit::new();
        let n = ckt.add_node("n");
        ckt.add_capacitor(n, Circuit::GROUND, c_ff * 1e-15).expect("valid");
        ckt.add_resistor(n, Circuit::GROUND, r_kohm * 1e3).expect("valid");
        ckt.set_initial_voltage(n, v_init).expect("valid");
        let tau = r_kohm * 1e3 * c_ff * 1e-15;
        let result = ckt.transient(4.0 * tau, tau / 50.0).expect("solves");
        let series: Vec<f64> = (0..result.len()).map(|k| result.voltage(n, k)).collect();
        prop_assert!(series.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    /// The 50 % discharge crossing scales linearly with both R and C
    /// (τ = RC), so doubling either doubles the crossing time.
    #[test]
    fn crossing_scales_with_tau(
        r_kohm in 1.0f64..20.0,
        c_ff in 2.0f64..20.0,
    ) {
        let t50 = |r: f64, c: f64| {
            let mut ckt = Circuit::new();
            let n = ckt.add_node("n");
            ckt.add_capacitor(n, Circuit::GROUND, c).expect("valid");
            ckt.add_resistor(n, Circuit::GROUND, r).expect("valid");
            ckt.set_initial_voltage(n, 0.5).expect("valid");
            let tau = r * c;
            ckt.transient(3.0 * tau, tau / 200.0)
                .expect("solves")
                .falling_crossing(n, 0.25)
                .expect("crosses half")
        };
        let base = t50(r_kohm * 1e3, c_ff * 1e-15);
        let double_r = t50(2.0 * r_kohm * 1e3, c_ff * 1e-15);
        let double_c = t50(r_kohm * 1e3, 2.0 * c_ff * 1e-15);
        prop_assert!((double_r / base - 2.0).abs() < 0.05, "R scaling {}", double_r / base);
        prop_assert!((double_c / base - 2.0).abs() < 0.05, "C scaling {}", double_c / base);
    }

    /// Charging a passive network from a DC source never pulls energy
    /// *out* of the source.
    #[test]
    fn source_energy_is_nonnegative(
        segments in 1usize..10,
        r_kohm in 0.5f64..20.0,
        c_ff in 1.0f64..20.0,
        vdd in 0.2f64..1.0,
    ) {
        let mut ckt = Circuit::new();
        let drive = ckt.add_node("drive");
        ckt.add_voltage_source(drive, Circuit::GROUND, Waveform::dc(vdd)).expect("valid");
        let ladder = RcLadder::build(&mut ckt, drive, segments, r_kohm * 1e3, c_ff * 1e-15, "w")
            .expect("ladder builds");
        let _ = ladder;
        let tau = r_kohm * 1e3 * c_ff * 1e-15;
        let result = ckt.transient(4.0 * tau, tau / 100.0).expect("solves");
        prop_assert!(result.source_energy(0) >= -1e-21);
    }

    /// Identical circuits and time axes produce bit-identical results.
    #[test]
    fn transient_is_deterministic(
        segments in 1usize..8,
        r_kohm in 0.5f64..20.0,
        c_ff in 1.0f64..20.0,
    ) {
        let run = || {
            let mut ckt = Circuit::new();
            let drive = ckt.add_node("drive");
            ckt.add_voltage_source(drive, Circuit::GROUND, Waveform::step(1e-12, 0.0, 0.7))
                .expect("valid");
            let ladder = RcLadder::build(
                &mut ckt, drive, segments, r_kohm * 1e3, c_ff * 1e-15, "w",
            ).expect("builds");
            let tau = (r_kohm * 1e3 * c_ff * 1e-15).max(1e-15);
            let result = ckt.transient(3.0 * tau, tau / 64.0).expect("solves");
            (0..result.len())
                .map(|k| result.voltage(ladder.output(), k))
                .collect::<Vec<f64>>()
        };
        prop_assert_eq!(run(), run());
    }
}
