//! Transient circuit solver for the ESAM reproduction.
//!
//! The paper's circuit numbers come from Cadence Spectre runs over
//! extracted parasitics (Table 1). This crate is the reproduction's
//! numerical stand-in: a small modified-nodal-analysis (MNA) engine with
//! backward-Euler integration over resistors, capacitors, independent
//! sources and time-scheduled switches, plus [`RcLadder`] builders for
//! distributed bitline/wordline models.
//!
//! It exists to *cross-check* the fast analytical models in `esam-tech` /
//! `esam-sram` (Elmore delays, `E = C·V·ΔV` energies): integration tests
//! build the same RC topologies both ways and assert the analytical
//! results land where the numerical ones do. It is not a general SPICE —
//! the element set is deliberately the minimum the ESAM studies need.
//!
//! # Examples
//!
//! Discharge a precharged bitline through an access transistor modeled as
//! a switched pulldown:
//!
//! ```
//! use esam_circuit::{Circuit, RcLadder, Waveform};
//!
//! # fn main() -> Result<(), esam_circuit::CircuitError> {
//! let mut ckt = Circuit::new();
//! let top = ckt.add_node("rbl_top");
//! let ladder = RcLadder::build(&mut ckt, top, 16, 38.4e3, 3.1e-15, "rbl")?;
//! for &node in ladder.nodes() {
//!     ckt.set_initial_voltage(node, 0.5)?; // V_prech = 500 mV
//! }
//! ckt.add_switch(ladder.output(), Circuit::GROUND, 8e3, 0.0, None)?;
//!
//! let result = ckt.transient(2e-9, 1e-12)?;
//! let sense_time = result.falling_crossing(top, 0.375); // 25 % swing
//! assert!(sense_time.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod error;
mod rc;
mod solve;
mod transient;
mod waveform;

pub use circuit::{Circuit, NodeId};
pub use error::CircuitError;
pub use rc::RcLadder;
pub use solve::LuFactors;
pub use transient::TransientResult;
pub use waveform::Waveform;
