//! Error type for circuit construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors raised by the circuit substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A `NodeId` from a different circuit was used.
    UnknownNode,
    /// An element value was non-positive, NaN or infinite.
    InvalidValue {
        /// What was being set (e.g. "resistance").
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The MNA matrix is singular (typically a node with no DC path to
    /// ground, or a loop of ideal voltage sources).
    SingularMatrix {
        /// Pivot index where elimination failed.
        pivot: usize,
    },
    /// The requested simulation window or step is not positive.
    BadTimeAxis {
        /// Requested stop time.
        stop: f64,
        /// Requested step.
        step: f64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode => f.write_str("node id does not belong to this circuit"),
            CircuitError::InvalidValue { quantity, value } => {
                write!(f, "invalid {quantity}: {value}")
            }
            CircuitError::SingularMatrix { pivot } => {
                write!(
                    f,
                    "singular MNA matrix at pivot {pivot} (floating node or source loop)"
                )
            }
            CircuitError::BadTimeAxis { stop, step } => {
                write!(f, "bad time axis: stop {stop} s, step {step} s")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = CircuitError::InvalidValue {
            quantity: "resistance",
            value: -3.0,
        };
        assert_eq!(e.to_string(), "invalid resistance: -3");
        assert!(CircuitError::SingularMatrix { pivot: 4 }
            .to_string()
            .contains("pivot 4"));
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CircuitError>();
    }
}
