//! Dense LU factorization with partial pivoting.
//!
//! MNA systems for the ESAM bitline/wordline studies stay small (a few
//! hundred unknowns), so a straightforward dense solver is both simpler
//! and faster than anything sparse at this scale.

use crate::error::CircuitError;

/// An LU-factorized square matrix, reusable across many right-hand sides
/// (the transient loop factorizes once per switch epoch and back-solves
/// every step).
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Combined L (below diagonal, unit diagonal implied) and U.
    lu: Vec<f64>,
    /// Row permutation applied during pivoting.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factorizes a row-major `n × n` matrix.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularMatrix`] if a pivot collapses below 1e-300
    /// (floating node or voltage-source loop).
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != n * n`.
    pub fn factorize(mut matrix: Vec<f64>, n: usize) -> Result<Self, CircuitError> {
        assert_eq!(matrix.len(), n * n, "matrix must be n × n");
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivoting: pick the largest magnitude in this column.
            let (pivot_row, pivot_value) = (col..n)
                .map(|r| (r, matrix[r * n + col].abs()))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite entries"))
                .expect("column range is non-empty");
            if pivot_value < 1e-300 {
                return Err(CircuitError::SingularMatrix { pivot: col });
            }
            if pivot_row != col {
                for k in 0..n {
                    matrix.swap(col * n + k, pivot_row * n + k);
                }
                perm.swap(col, pivot_row);
            }
            let pivot = matrix[col * n + col];
            for row in (col + 1)..n {
                let factor = matrix[row * n + col] / pivot;
                matrix[row * n + col] = factor;
                for k in (col + 1)..n {
                    matrix[row * n + k] -= factor * matrix[col * n + k];
                }
            }
        }
        Ok(Self {
            n,
            lu: matrix,
            perm,
        })
    }

    /// Solves `A x = b` for the factorized `A`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length must match matrix size");
        let n = self.n;
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for row in 1..n {
            let mut acc = x[row];
            for (col, &xc) in x.iter().enumerate().take(row) {
                acc -= self.lu[row * n + col] * xc;
            }
            x[row] = acc;
        }
        // Back substitution with U.
        for row in (0..n).rev() {
            let mut acc = x[row];
            for (col, &xc) in x.iter().enumerate().skip(row + 1) {
                acc -= self.lu[row * n + col] * xc;
            }
            x[row] = acc / self.lu[row * n + row];
        }
        x
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multiply(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        (0..n)
            .map(|r| (0..n).map(|c| a[r * n + c] * x[c]).sum())
            .collect()
    }

    #[test]
    fn solves_identity() {
        let lu = LuFactors::factorize(vec![1.0, 0.0, 0.0, 1.0], 2).unwrap();
        assert_eq!(lu.solve(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn solves_a_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let lu = LuFactors::factorize(vec![2.0, 1.0, 1.0, 3.0], 2).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero forces a row swap.
        let lu = LuFactors::factorize(vec![0.0, 1.0, 1.0, 0.0], 2).unwrap();
        let x = lu.solve(&[7.0, 9.0]);
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_on_random_system() {
        // Deterministic pseudo-random 12×12 system.
        let n = 12;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a: Vec<f64> = (0..n * n)
            .map(|i| rand() + if i % (n + 1) == 0 { 4.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..n).map(|_| rand()).collect();
        let lu = LuFactors::factorize(a.clone(), n).unwrap();
        let x = lu.solve(&b);
        let r = multiply(&a, &x, n);
        for (got, want) in r.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let result = LuFactors::factorize(vec![1.0, 2.0, 2.0, 4.0], 2);
        assert!(matches!(result, Err(CircuitError::SingularMatrix { .. })));
    }

    #[test]
    fn many_rhs_reuse_one_factorization() {
        let lu = LuFactors::factorize(vec![3.0, 1.0, 1.0, 2.0], 2).unwrap();
        for k in 0..10 {
            let b = vec![k as f64, 2.0 * k as f64];
            let x = lu.solve(&b);
            assert!((3.0 * x[0] + x[1] - b[0]).abs() < 1e-12);
            assert!((x[0] + 2.0 * x[1] - b[1]).abs() < 1e-12);
        }
    }
}
