//! Time-dependent source waveforms.

/// A source value as a function of time.
///
/// # Examples
///
/// ```
/// use esam_circuit::Waveform;
///
/// let step = Waveform::step(1e-9, 0.0, 0.7);
/// assert_eq!(step.value_at(0.0), 0.0);
/// assert_eq!(step.value_at(2e-9), 0.7);
///
/// let ramp = Waveform::pwl(vec![(0.0, 0.0), (1e-9, 0.5)]);
/// assert!((ramp.value_at(0.5e-9) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `before` until `at`, then `after`.
    Step {
        /// Switching time in seconds.
        at: f64,
        /// Value before the step.
        before: f64,
        /// Value after the step.
        after: f64,
    },
    /// Piecewise-linear interpolation through `(time, value)` points,
    /// clamped at both ends. Points must be sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Constant source.
    pub fn dc(value: f64) -> Self {
        Waveform::Dc(value)
    }

    /// Ideal step at `at` from `before` to `after`.
    pub fn step(at: f64, before: f64, after: f64) -> Self {
        Waveform::Step { at, before, after }
    }

    /// Piecewise-linear waveform through `points` (sorted by time).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or times are not non-decreasing.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL waveform needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "PWL times must be non-decreasing"
        );
        Waveform::Pwl(points)
    }

    /// Value at time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Step { at, before, after } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            Waveform::Pwl(points) => {
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = Waveform::dc(0.7);
        assert_eq!(w.value_at(0.0), 0.7);
        assert_eq!(w.value_at(1.0), 0.7);
    }

    #[test]
    fn step_switches_at_threshold() {
        let w = Waveform::step(5e-12, 0.5, 0.0);
        assert_eq!(w.value_at(4.9e-12), 0.5);
        assert_eq!(w.value_at(5e-12), 0.0);
        assert_eq!(w.value_at(1.0), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(1.0, 0.0), (3.0, 1.0)]);
        assert_eq!(w.value_at(0.0), 0.0); // clamp left
        assert!((w.value_at(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(9.0), 1.0); // clamp right
    }

    #[test]
    fn pwl_handles_vertical_segments() {
        let w = Waveform::pwl(vec![(1.0, 0.0), (1.0, 0.7), (2.0, 0.7)]);
        assert_eq!(w.value_at(1.5), 0.7);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn pwl_rejects_unsorted_points() {
        let _ = Waveform::pwl(vec![(2.0, 0.0), (1.0, 1.0)]);
    }
}
