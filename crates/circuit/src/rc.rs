//! RC-ladder builders for distributed wire models.
//!
//! SRAM bitlines and wordlines are distributed RC lines; the analytical
//! models in `esam-tech` reduce them to Elmore delays. These builders
//! produce the equivalent segmented π-ladder so the transient solver can
//! check those reductions numerically.

use crate::circuit::{Circuit, NodeId};
use crate::error::CircuitError;

/// A distributed wire realized as `segments` π-sections.
#[derive(Debug, Clone)]
pub struct RcLadder {
    nodes: Vec<NodeId>,
}

impl RcLadder {
    /// Builds a π-segment ladder from `input` with total resistance
    /// `r_total` and total capacitance `c_total`, split evenly over
    /// `segments` sections. Returns the ladder with its internal nodes;
    /// the far end is [`RcLadder::output`].
    ///
    /// Each π-section carries `R/n` in series with `C/2n` shunts at both
    /// ends (adjacent shunts merge, yielding the classic `C/n` internal
    /// loading).
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidValue`] for zero segments or non-positive
    /// R/C; [`CircuitError::UnknownNode`] for a foreign `input` node.
    pub fn build(
        circuit: &mut Circuit,
        input: NodeId,
        segments: usize,
        r_total: f64,
        c_total: f64,
        name: &str,
    ) -> Result<Self, CircuitError> {
        if segments == 0 {
            return Err(CircuitError::InvalidValue {
                quantity: "ladder segments",
                value: 0.0,
            });
        }
        let r_seg = r_total / segments as f64;
        let c_half = c_total / (2.0 * segments as f64);

        let mut nodes = vec![input];
        circuit.add_capacitor(input, Circuit::GROUND, c_half)?;
        let mut previous = input;
        for k in 0..segments {
            let next = circuit.add_node(format!("{name}[{k}]"));
            circuit.add_resistor(previous, next, r_seg)?;
            // End caps get C/2n; interior nodes receive C/2n from both
            // adjacent sections.
            let shunt = if k + 1 == segments {
                c_half
            } else {
                2.0 * c_half
            };
            circuit.add_capacitor(next, Circuit::GROUND, shunt)?;
            nodes.push(next);
            previous = next;
        }
        Ok(Self { nodes })
    }

    /// All ladder nodes from the driven end to the far end.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The far-end node.
    ///
    /// # Panics
    ///
    /// Never panics: a ladder always has at least two nodes.
    pub fn output(&self) -> NodeId {
        *self.nodes.last().expect("ladder has nodes")
    }

    /// Elmore delay from the driven end to the far end for this ladder
    /// topology (`Σ R_i · C_downstream,i`), the quantity the analytical
    /// wire model uses.
    pub fn elmore_delay(segments: usize, r_total: f64, c_total: f64) -> f64 {
        let n = segments as f64;
        let r_seg = r_total / n;
        let c_half = c_total / (2.0 * n);
        // Downstream of segment resistor k (0-based): interior caps plus
        // the far-end half cap.
        let mut delay = 0.0;
        for k in 0..segments {
            let interior = (segments - 1 - k) as f64 * 2.0 * c_half;
            delay += r_seg * (interior + c_half);
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn ladder_has_expected_node_count() {
        let mut ckt = Circuit::new();
        let driver = ckt.add_node("drv");
        let ladder = RcLadder::build(&mut ckt, driver, 8, 1e3, 10e-15, "bl").unwrap();
        assert_eq!(ladder.nodes().len(), 9);
        assert_eq!(ckt.node_name(ladder.output()), "bl[7]");
    }

    #[test]
    fn zero_segments_rejected() {
        let mut ckt = Circuit::new();
        let driver = ckt.add_node("drv");
        assert!(matches!(
            RcLadder::build(&mut ckt, driver, 0, 1e3, 1e-15, "bl"),
            Err(CircuitError::InvalidValue { .. })
        ));
    }

    #[test]
    fn elmore_converges_to_half_rc_for_distributed_lines() {
        // The classic result: a distributed RC line's Elmore delay is
        // R·C/2 in the many-segment limit.
        let rc = 1e3 * 10e-15;
        let coarse = RcLadder::elmore_delay(2, 1e3, 10e-15);
        let fine = RcLadder::elmore_delay(64, 1e3, 10e-15);
        assert!((fine - rc / 2.0).abs() < 0.02 * rc);
        assert!((coarse - rc / 2.0).abs() < 0.2 * rc);
    }

    #[test]
    fn transient_50_percent_delay_sits_below_elmore() {
        // Elmore over-estimates the 50 % step delay of an RC line (the
        // true distributed response crosses at ≈ 0.38·RC vs Elmore 0.5·RC),
        // so the ratio must land below 1 but in the same decade.
        let mut ckt = Circuit::new();
        let driver = ckt.add_node("drv");
        ckt.add_voltage_source(driver, Circuit::GROUND, Waveform::step(1e-12, 0.0, 1.0))
            .unwrap();
        let (r_total, c_total) = (2e3, 20e-15);
        let ladder = RcLadder::build(&mut ckt, driver, 24, r_total, c_total, "bl").unwrap();
        let elmore = RcLadder::elmore_delay(24, r_total, c_total);
        let result = ckt.transient(10.0 * elmore, elmore / 400.0).unwrap();
        let t50 = result
            .rising_crossing(ladder.output(), 0.5)
            .expect("charges")
            - 1e-12;
        let ratio = t50 / elmore;
        assert!(
            (0.5..1.0).contains(&ratio),
            "t50/elmore ratio {ratio} outside the distributed-line band"
        );
    }

    #[test]
    fn far_end_lags_near_end() {
        let mut ckt = Circuit::new();
        let driver = ckt.add_node("drv");
        ckt.add_voltage_source(driver, Circuit::GROUND, Waveform::step(0.0, 0.0, 0.7))
            .unwrap();
        let ladder = RcLadder::build(&mut ckt, driver, 8, 5e3, 8e-15, "wl").unwrap();
        let elmore = RcLadder::elmore_delay(8, 5e3, 8e-15);
        let result = ckt.transient(10.0 * elmore, elmore / 200.0).unwrap();
        let near = result
            .rising_crossing(ladder.nodes()[1], 0.35)
            .expect("charges");
        let far = result
            .rising_crossing(ladder.output(), 0.35)
            .expect("charges");
        assert!(far > near, "far end {far} must lag near end {near}");
    }
}
