//! Circuit graphs: nodes, passive elements, sources and switches.
//!
//! A [`Circuit`] is built incrementally, then handed to
//! [`Circuit::transient`](crate::Circuit::transient) for backward-Euler
//! integration. The element set is the minimum needed to model SRAM
//! bitline/wordline physics: resistors, capacitors, independent sources
//! and time-scheduled switches (the access transistor turning on).

use crate::error::CircuitError;
use crate::waveform::Waveform;

/// Identifier of a circuit node. [`Circuit::GROUND`] is node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Position in circuit order (ground = 0).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Resistor {
    pub a: usize,
    pub b: usize,
    pub ohms: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Capacitor {
    pub a: usize,
    pub b: usize,
    pub farads: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct VoltageSource {
    pub pos: usize,
    pub neg: usize,
    pub wave: Waveform,
}

#[derive(Debug, Clone)]
pub(crate) struct CurrentSource {
    /// Current flows out of `from` and into `to`.
    pub from: usize,
    pub to: usize,
    pub wave: Waveform,
}

/// A time-scheduled ideal-ish switch: open (conductance 0) before
/// `closes_at`, a resistor of `ron` ohms afterwards, optionally opening
/// again at `opens_at`.
#[derive(Debug, Clone)]
pub(crate) struct Switch {
    pub a: usize,
    pub b: usize,
    pub ron_ohms: f64,
    pub closes_at: f64,
    pub opens_at: Option<f64>,
}

impl Switch {
    /// `true` if the switch conducts at time `t`.
    pub(crate) fn is_closed(&self, t: f64) -> bool {
        t >= self.closes_at && self.opens_at.is_none_or(|open| t < open)
    }
}

/// A lumped-element circuit under construction.
///
/// # Examples
///
/// Precharge a 10 fF bitline to 500 mV, then discharge it through a 5 kΩ
/// pulldown closing at t = 0:
///
/// ```
/// use esam_circuit::{Circuit, Waveform};
///
/// # fn main() -> Result<(), esam_circuit::CircuitError> {
/// let mut ckt = Circuit::new();
/// let bl = ckt.add_node("bl");
/// ckt.add_capacitor(bl, Circuit::GROUND, 10e-15)?;
/// ckt.set_initial_voltage(bl, 0.5)?;
/// ckt.add_switch(bl, Circuit::GROUND, 5e3, 0.0, None)?;
///
/// let result = ckt.transient(2e-9, 1e-12)?;
/// let t50 = result.falling_crossing(bl, 0.25).expect("discharges");
/// // t50 ≈ RC·ln2 = 34.7 ps
/// assert!((t50 - 34.7e-12).abs() < 2e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) vsources: Vec<VoltageSource>,
    pub(crate) isources: Vec<CurrentSource>,
    pub(crate) switches: Vec<Switch>,
    pub(crate) initial: Vec<(usize, f64)>,
}

impl Circuit {
    /// The ground reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only ground.
    pub fn new() -> Self {
        Self {
            node_names: vec!["0".to_string()],
            ..Self::default()
        }
    }

    /// Adds a named node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.into());
        id
    }

    /// Number of nodes, including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    fn check(&self, node: NodeId) -> Result<usize, CircuitError> {
        if node.0 >= self.node_names.len() {
            return Err(CircuitError::UnknownNode);
        }
        Ok(node.0)
    }

    fn check_positive(quantity: &'static str, value: f64) -> Result<f64, CircuitError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(CircuitError::InvalidValue { quantity, value });
        }
        Ok(value)
    }

    /// Connects a resistor of `ohms` between `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] / [`CircuitError::InvalidValue`] on
    /// bad arguments.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<(), CircuitError> {
        let (a, b) = (self.check(a)?, self.check(b)?);
        let ohms = Self::check_positive("resistance", ohms)?;
        self.resistors.push(Resistor { a, b, ohms });
        Ok(())
    }

    /// Connects a capacitor of `farads` between `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] / [`CircuitError::InvalidValue`] on
    /// bad arguments.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<(), CircuitError> {
        let (a, b) = (self.check(a)?, self.check(b)?);
        let farads = Self::check_positive("capacitance", farads)?;
        self.capacitors.push(Capacitor { a, b, farads });
        Ok(())
    }

    /// Connects an ideal voltage source driving `pos` relative to `neg`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] on bad nodes.
    pub fn add_voltage_source(
        &mut self,
        pos: NodeId,
        neg: NodeId,
        wave: Waveform,
    ) -> Result<(), CircuitError> {
        let (pos, neg) = (self.check(pos)?, self.check(neg)?);
        self.vsources.push(VoltageSource { pos, neg, wave });
        Ok(())
    }

    /// Connects a current source pushing current out of `from` into `to`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] on bad nodes.
    pub fn add_current_source(
        &mut self,
        from: NodeId,
        to: NodeId,
        wave: Waveform,
    ) -> Result<(), CircuitError> {
        let (from, to) = (self.check(from)?, self.check(to)?);
        self.isources.push(CurrentSource { from, to, wave });
        Ok(())
    }

    /// Connects a switch of on-resistance `ron_ohms` that closes at
    /// `closes_at` seconds and optionally opens again at `opens_at`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] / [`CircuitError::InvalidValue`] on
    /// bad arguments.
    pub fn add_switch(
        &mut self,
        a: NodeId,
        b: NodeId,
        ron_ohms: f64,
        closes_at: f64,
        opens_at: Option<f64>,
    ) -> Result<(), CircuitError> {
        let (a, b) = (self.check(a)?, self.check(b)?);
        let ron_ohms = Self::check_positive("on-resistance", ron_ohms)?;
        if let Some(open) = opens_at {
            if open <= closes_at {
                return Err(CircuitError::InvalidValue {
                    quantity: "switch open time",
                    value: open,
                });
            }
        }
        self.switches.push(Switch {
            a,
            b,
            ron_ohms,
            closes_at,
            opens_at,
        });
        Ok(())
    }

    /// Sets the initial (t = 0) voltage of `node` — how bitlines start
    /// precharged.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownNode`] on bad nodes.
    pub fn set_initial_voltage(&mut self, node: NodeId, volts: f64) -> Result<(), CircuitError> {
        let node = self.check(node)?;
        self.initial.push((node, volts));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_named_and_counted() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.node_count(), 1);
        let bl = ckt.add_node("bl");
        assert_eq!(ckt.node_name(bl), "bl");
        assert_eq!(ckt.node_name(Circuit::GROUND), "0");
        assert_eq!(ckt.node_count(), 2);
    }

    #[test]
    fn invalid_values_are_rejected() {
        let mut ckt = Circuit::new();
        let n = ckt.add_node("n");
        assert!(matches!(
            ckt.add_resistor(n, Circuit::GROUND, 0.0),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            ckt.add_capacitor(n, Circuit::GROUND, -1e-15),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            ckt.add_resistor(n, Circuit::GROUND, f64::NAN),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            ckt.add_switch(n, Circuit::GROUND, 1e3, 5.0, Some(4.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
    }

    #[test]
    fn foreign_nodes_are_rejected() {
        let mut ckt = Circuit::new();
        let bogus = NodeId(42);
        assert_eq!(
            ckt.add_resistor(bogus, Circuit::GROUND, 1e3),
            Err(CircuitError::UnknownNode)
        );
        assert_eq!(
            ckt.set_initial_voltage(bogus, 0.5),
            Err(CircuitError::UnknownNode)
        );
    }

    #[test]
    fn switch_schedule() {
        let s = Switch {
            a: 0,
            b: 1,
            ron_ohms: 1e3,
            closes_at: 1e-9,
            opens_at: Some(3e-9),
        };
        assert!(!s.is_closed(0.5e-9));
        assert!(s.is_closed(1e-9));
        assert!(s.is_closed(2.9e-9));
        assert!(!s.is_closed(3e-9));
    }
}
