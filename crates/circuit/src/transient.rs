//! Backward-Euler transient analysis over the MNA formulation.
//!
//! Unknowns are the non-ground node voltages plus one branch current per
//! ideal voltage source. Each step solves
//!
//! ```text
//! (G(t) + C/h) · x_{k+1} = b(t_{k+1}) + (C/h) · x_k
//! ```
//!
//! `G` changes only when a switch opens or closes, so the LU factorization
//! is reused across every step of a switch epoch. Backward Euler is
//! A-stable — stiff bitline/driver time-constant ratios cannot blow up —
//! at the cost of mild numerical damping, which the tests budget for.

use crate::circuit::{Circuit, NodeId};
use crate::error::CircuitError;
use crate::solve::LuFactors;

/// Voltages (and source currents) sampled over a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `[step][node]`, ground included at index 0.
    voltages: Vec<Vec<f64>>,
    /// `[step][source]` instantaneous power delivered by each ideal
    /// voltage source (positive = pushing energy into the circuit).
    source_powers: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Sample times, starting at 0.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of samples (steps + 1).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run produced no samples (it never does; present for
    /// `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` at sample `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` or `node` is out of range.
    pub fn voltage(&self, node: NodeId, step: usize) -> f64 {
        self.voltages[step][node.index()]
    }

    /// Voltage of `node` at the final sample.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        self.voltages[self.voltages.len() - 1][node.index()]
    }

    /// Linearly interpolated voltage of `node` at time `t` (clamped to the
    /// simulated window).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn voltage_at(&self, node: NodeId, t: f64) -> f64 {
        let idx = node.index();
        if t <= self.times[0] {
            return self.voltages[0][idx];
        }
        for k in 1..self.times.len() {
            if t <= self.times[k] {
                let (t0, t1) = (self.times[k - 1], self.times[k]);
                let (v0, v1) = (self.voltages[k - 1][idx], self.voltages[k][idx]);
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
            }
        }
        self.final_voltage(node)
    }

    /// First time `node` falls through `threshold`, linearly interpolated.
    pub fn falling_crossing(&self, node: NodeId, threshold: f64) -> Option<f64> {
        self.crossing(node, threshold, |prev, next| {
            prev > threshold && next <= threshold
        })
    }

    /// First time `node` rises through `threshold`, linearly interpolated.
    pub fn rising_crossing(&self, node: NodeId, threshold: f64) -> Option<f64> {
        self.crossing(node, threshold, |prev, next| {
            prev < threshold && next >= threshold
        })
    }

    fn crossing(
        &self,
        node: NodeId,
        threshold: f64,
        hit: impl Fn(f64, f64) -> bool,
    ) -> Option<f64> {
        let idx = node.index();
        for k in 1..self.times.len() {
            let (v0, v1) = (self.voltages[k - 1][idx], self.voltages[k][idx]);
            if hit(v0, v1) {
                let (t0, t1) = (self.times[k - 1], self.times[k]);
                if (v1 - v0).abs() < 1e-30 {
                    return Some(t1);
                }
                return Some(t0 + (t1 - t0) * (threshold - v0) / (v1 - v0));
            }
        }
        None
    }

    /// Extremes of `node` over the run: `(min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn voltage_range(&self, node: NodeId) -> (f64, f64) {
        let idx = node.index();
        self.voltages
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), row| {
                (lo.min(row[idx]), hi.max(row[idx]))
            })
    }

    /// Energy delivered by voltage source `source` over the whole run,
    /// integrated as `Σ v·i·h` (positive when the source pushes energy
    /// into the circuit). This is the quantity the analytical
    /// `E = C·V_supply·ΔV` precharge model approximates.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn source_energy(&self, source: usize) -> f64 {
        let mut energy = 0.0;
        for k in 1..self.times.len() {
            let h = self.times[k] - self.times[k - 1];
            energy += self.source_powers[k][source] * h;
        }
        energy
    }

    fn push(&mut self, time: f64, voltages: Vec<f64>, powers: Vec<f64>) {
        self.times.push(time);
        self.voltages.push(voltages);
        self.source_powers.push(powers);
    }
}

impl Circuit {
    /// Runs a backward-Euler transient from `t = 0` to `stop` with a fixed
    /// `step`, both in seconds.
    ///
    /// Switch schedule times are honored on the step grid (a switch
    /// closing at 1.05 ns with a 0.1 ns step conducts from the 1.1 ns
    /// solve onwards).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BadTimeAxis`] for non-positive `stop`/`step`;
    /// * [`CircuitError::SingularMatrix`] for floating nodes (every node
    ///   needs a DC path to ground through resistors, switches or
    ///   sources — pure capacitor nodes get one from `C/h`, so in
    ///   practice this flags truly disconnected nodes).
    pub fn transient(&self, stop: f64, step: f64) -> Result<TransientResult, CircuitError> {
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(stop) || !positive(step) {
            return Err(CircuitError::BadTimeAxis { stop, step });
        }
        let nodes = self.node_count();
        let unknowns = (nodes - 1) + self.vsources.len();
        let steps = (stop / step).ceil() as usize;

        // Row/column index of a node in the reduced system (ground drops out).
        let ridx = |node: usize| -> Option<usize> { node.checked_sub(1) };

        // Capacitance stamps are time-invariant.
        let mut c_matrix = vec![0.0; unknowns * unknowns];
        for cap in &self.capacitors {
            let scaled = cap.farads;
            if let Some(i) = ridx(cap.a) {
                c_matrix[i * unknowns + i] += scaled;
            }
            if let Some(j) = ridx(cap.b) {
                c_matrix[j * unknowns + j] += scaled;
            }
            if let (Some(i), Some(j)) = (ridx(cap.a), ridx(cap.b)) {
                c_matrix[i * unknowns + j] -= scaled;
                c_matrix[j * unknowns + i] -= scaled;
            }
        }

        let assemble = |t: f64| -> Vec<f64> {
            let mut g = vec![0.0; unknowns * unknowns];
            let mut stamp_conductance = |a: usize, b: usize, siemens: f64| {
                if let Some(i) = ridx(a) {
                    g[i * unknowns + i] += siemens;
                }
                if let Some(j) = ridx(b) {
                    g[j * unknowns + j] += siemens;
                }
                if let (Some(i), Some(j)) = (ridx(a), ridx(b)) {
                    g[i * unknowns + j] -= siemens;
                    g[j * unknowns + i] -= siemens;
                }
            };
            for r in &self.resistors {
                stamp_conductance(r.a, r.b, 1.0 / r.ohms);
            }
            for s in &self.switches {
                if s.is_closed(t) {
                    stamp_conductance(s.a, s.b, 1.0 / s.ron_ohms);
                }
            }
            for (k, src) in self.vsources.iter().enumerate() {
                let row = (nodes - 1) + k;
                if let Some(i) = ridx(src.pos) {
                    g[row * unknowns + i] += 1.0;
                    g[i * unknowns + row] += 1.0;
                }
                if let Some(j) = ridx(src.neg) {
                    g[row * unknowns + j] -= 1.0;
                    g[j * unknowns + row] -= 1.0;
                }
            }
            g
        };

        // Initial state: user-provided node voltages, zero source currents.
        let mut x = vec![0.0; unknowns];
        for &(node, volts) in &self.initial {
            if let Some(i) = ridx(node) {
                x[i] = volts;
            }
        }

        let record = |x: &[f64]| -> (Vec<f64>, Vec<f64>) {
            let mut v = Vec::with_capacity(nodes);
            v.push(0.0);
            v.extend_from_slice(&x[..nodes - 1]);
            let powers = self
                .vsources
                .iter()
                .enumerate()
                .map(|(k, src)| {
                    // The MNA unknown is the branch current flowing from
                    // the `pos` node *into* the source, so the current the
                    // source pushes into the circuit is −i and the power
                    // it delivers is (v_pos − v_neg) · (−i).
                    let i = x[(nodes - 1) + k];
                    let vp = ridx(src.pos).map_or(0.0, |n| x[n]);
                    let vn = ridx(src.neg).map_or(0.0, |n| x[n]);
                    (vp - vn) * -i
                })
                .collect::<Vec<f64>>();
            (v, powers)
        };

        let mut result = TransientResult {
            times: Vec::with_capacity(steps + 1),
            voltages: Vec::with_capacity(steps + 1),
            source_powers: Vec::with_capacity(steps + 1),
        };
        {
            let (v, mut p) = record(&x);
            // Before the first solve the source current is undefined; report 0.
            p.fill(0.0);
            result.push(0.0, v, p);
        }

        let mut factors: Option<(Vec<bool>, LuFactors)> = None;
        for k in 1..=steps {
            let t = k as f64 * step;
            let switch_state: Vec<bool> = self.switches.iter().map(|s| s.is_closed(t)).collect();
            let refactor = match &factors {
                Some((state, _)) => *state != switch_state,
                None => true,
            };
            if refactor {
                let mut a = assemble(t);
                for i in 0..unknowns * unknowns {
                    a[i] += c_matrix[i] / step;
                }
                factors = Some((switch_state, LuFactors::factorize(a, unknowns)?));
            }
            let lu = &factors.as_ref().expect("factorized above").1;

            // rhs = b(t) + (C/h)·x_k
            let mut rhs = vec![0.0; unknowns];
            for src in &self.isources {
                let value = src.wave.value_at(t);
                if let Some(i) = ridx(src.from) {
                    rhs[i] -= value;
                }
                if let Some(j) = ridx(src.to) {
                    rhs[j] += value;
                }
            }
            for (s, src) in self.vsources.iter().enumerate() {
                rhs[(nodes - 1) + s] = src.wave.value_at(t);
            }
            for row in 0..unknowns {
                let mut acc = 0.0;
                for col in 0..unknowns {
                    acc += c_matrix[row * unknowns + col] * x[col];
                }
                rhs[row] += acc / step;
            }

            x = lu.solve(&rhs);
            let (v, i) = record(&x);
            result.push(t, v, i);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    /// RC charge through a resistor from an ideal source: the canonical
    /// first-order response v(t) = V·(1 − e^(−t/RC)).
    fn rc_charge() -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let drive = ckt.add_node("drive");
        let out = ckt.add_node("out");
        ckt.add_voltage_source(drive, Circuit::GROUND, Waveform::dc(1.0))
            .unwrap();
        ckt.add_resistor(drive, out, 1e3).unwrap();
        ckt.add_capacitor(out, Circuit::GROUND, 1e-12).unwrap();
        (ckt, out)
    }

    #[test]
    fn rc_step_response_matches_the_analytic_curve() {
        let (ckt, out) = rc_charge();
        let tau = 1e3 * 1e-12; // 1 ns
        let result = ckt.transient(5.0 * tau, tau / 500.0).unwrap();
        for factor in [0.5, 1.0, 2.0, 3.0] {
            let t = factor * tau;
            let want = 1.0 - (-factor).exp();
            let got = result.voltage_at(out, t);
            assert!(
                (got - want).abs() < 0.01,
                "v({factor}τ): got {got}, want {want}"
            );
        }
        assert!((result.final_voltage(out) - 1.0).abs() < 0.01);
    }

    #[test]
    fn rc_discharge_crosses_half_at_ln2_tau() {
        let mut ckt = Circuit::new();
        let bl = ckt.add_node("bl");
        ckt.add_capacitor(bl, Circuit::GROUND, 2e-15).unwrap();
        ckt.add_resistor(bl, Circuit::GROUND, 10e3).unwrap();
        ckt.set_initial_voltage(bl, 0.5).unwrap();
        let tau = 10e3 * 2e-15;
        let result = ckt.transient(5.0 * tau, tau / 500.0).unwrap();
        let t50 = result
            .falling_crossing(bl, 0.25)
            .expect("discharges through 250 mV");
        assert!(
            (t50 - tau * std::f64::consts::LN_2).abs() < 0.01 * tau,
            "t50 {t50} vs ln2·τ {}",
            tau * std::f64::consts::LN_2
        );
    }

    #[test]
    fn resistive_divider_settles_to_the_dc_solution() {
        let mut ckt = Circuit::new();
        let top = ckt.add_node("top");
        let mid = ckt.add_node("mid");
        ckt.add_voltage_source(top, Circuit::GROUND, Waveform::dc(0.9))
            .unwrap();
        ckt.add_resistor(top, mid, 2e3).unwrap();
        ckt.add_resistor(mid, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor(mid, Circuit::GROUND, 1e-15).unwrap();
        let result = ckt.transient(1e-9, 1e-12).unwrap();
        assert!((result.final_voltage(mid) - 0.3).abs() < 1e-3);
    }

    #[test]
    fn switch_delays_the_discharge() {
        let mut ckt = Circuit::new();
        let bl = ckt.add_node("bl");
        ckt.add_capacitor(bl, Circuit::GROUND, 10e-15).unwrap();
        ckt.set_initial_voltage(bl, 0.5).unwrap();
        ckt.add_switch(bl, Circuit::GROUND, 5e3, 1e-9, None)
            .unwrap();
        let result = ckt.transient(3e-9, 1e-12).unwrap();
        // Untouched before the switch closes...
        assert!((result.voltage_at(bl, 0.9e-9) - 0.5).abs() < 1e-6);
        // ...then discharging with τ = 50 ps.
        let t50 = result.falling_crossing(bl, 0.25).expect("discharges");
        let expected = 1e-9 + 5e3 * 10e-15 * std::f64::consts::LN_2;
        assert!((t50 - expected).abs() < 3e-12, "t50 {t50} vs {expected}");
    }

    #[test]
    fn reopening_switch_freezes_the_voltage() {
        let mut ckt = Circuit::new();
        let bl = ckt.add_node("bl");
        ckt.add_capacitor(bl, Circuit::GROUND, 10e-15).unwrap();
        ckt.set_initial_voltage(bl, 0.5).unwrap();
        ckt.add_switch(bl, Circuit::GROUND, 5e3, 0.0, Some(30e-12))
            .unwrap();
        let result = ckt.transient(1e-9, 0.5e-12).unwrap();
        let frozen = result.voltage_at(bl, 35e-12);
        assert!(
            frozen > 0.2 && frozen < 0.4,
            "partially discharged: {frozen}"
        );
        assert!((result.final_voltage(bl) - frozen).abs() < 1e-6);
    }

    #[test]
    fn source_energy_for_full_charge_is_c_v_squared() {
        // Charging C through R from 0 to V draws E = C·V² from the source
        // (half stored, half burned in R) — the identity behind the
        // analytical precharge-energy model.
        let (ckt, _) = rc_charge();
        let tau = 1e-9;
        let result = ckt.transient(12.0 * tau, tau / 200.0).unwrap();
        let energy = result.source_energy(0);
        let want = 1e-12 * 1.0 * 1.0;
        assert!(
            (energy - want).abs() < 0.02 * want,
            "source energy {energy} vs C·V² {want}"
        );
    }

    #[test]
    fn current_source_charges_linearly() {
        let mut ckt = Circuit::new();
        let n = ckt.add_node("n");
        ckt.add_capacitor(n, Circuit::GROUND, 1e-12).unwrap();
        // 1 µA into 1 pF → 1 V/µs → 1 mV/ns.
        ckt.add_current_source(Circuit::GROUND, n, Waveform::dc(1e-6))
            .unwrap();
        // Bleed resistor keeps the DC matrix non-singular without loading
        // the node noticeably over 10 ns.
        ckt.add_resistor(n, Circuit::GROUND, 1e12).unwrap();
        let result = ckt.transient(10e-9, 10e-12).unwrap();
        assert!((result.final_voltage(n) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn floating_node_is_reported_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.add_node("a");
        let b = ckt.add_node("b");
        // `b` has no connection at all; `a` at least sees a resistor.
        ckt.add_resistor(a, Circuit::GROUND, 1e3).unwrap();
        let _ = b;
        assert!(matches!(
            ckt.transient(1e-9, 1e-12),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn bad_time_axis_is_rejected() {
        let (ckt, _) = rc_charge();
        assert!(matches!(
            ckt.transient(-1.0, 1e-12),
            Err(CircuitError::BadTimeAxis { .. })
        ));
        assert!(matches!(
            ckt.transient(1e-9, 0.0),
            Err(CircuitError::BadTimeAxis { .. })
        ));
    }

    #[test]
    fn voltage_range_and_len() {
        let (ckt, out) = rc_charge();
        let result = ckt.transient(5e-9, 1e-11).unwrap();
        assert!(!result.is_empty());
        assert_eq!(result.len(), result.times().len());
        let (lo, hi) = result.voltage_range(out);
        assert!(lo >= 0.0 && hi <= 1.0 + 1e-9);
    }
}
