//! Stochastic STDP for 1-bit synapses (on-chip learning rule).
//!
//! The paper's online-learning evaluation (§4.4.1) measures the *memory
//! access cost* of updating one post-synaptic neuron's weight column; the
//! rule it references is the authors' stochastic STDP for 1-bit synapses
//! \[16\]: when a learning condition arises at a post-synaptic neuron, each
//! synapse is probabilistically potentiated (bit → 1) if its pre-synaptic
//! neuron was active, or depressed (bit → 0) otherwise. Stochasticity keeps
//! 1-bit weights from thrashing: only a random fraction of eligible synapses
//! flips per event.
//!
//! A supervised teacher wrapper is included for the digit-adaptation
//! experiments: potentiate toward a neuron that should have fired, depress
//! one that fired spuriously.

use esam_bits::BitVec;
use rand::{Rng, RngExt};

/// Direction of a column update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TeacherSignal {
    /// The neuron should have fired but did not: strengthen active inputs.
    ShouldFire,
    /// The neuron fired but should not have: weaken active inputs.
    ShouldNotFire,
}

/// Stochastic 1-bit STDP rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StdpRule {
    p_potentiation: f64,
    p_depression: f64,
}

impl StdpRule {
    /// Creates a rule with the given flip probabilities.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `[0, 1]`.
    pub fn new(p_potentiation: f64, p_depression: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_potentiation) && (0.0..=1.0).contains(&p_depression),
            "probabilities must be in [0, 1]"
        );
        Self {
            p_potentiation,
            p_depression,
        }
    }

    /// Defaults from the stochastic-STDP literature: potentiate eagerly,
    /// depress conservatively.
    pub fn paper_default() -> Self {
        Self::new(0.25, 0.10)
    }

    /// Potentiation probability.
    pub fn p_potentiation(&self) -> f64 {
        self.p_potentiation
    }

    /// Depression probability.
    pub fn p_depression(&self) -> f64 {
        self.p_depression
    }

    /// Computes the updated weight column for one post-synaptic neuron.
    ///
    /// `column` is the current 1-bit weight column (one bit per pre-synaptic
    /// neuron), `pre_spikes` the input frame that triggered learning.
    /// Returns the new column and the number of flipped bits. The caller is
    /// responsible for the transposed read/write that realizes the update in
    /// SRAM (`esam-core`'s learning engine counts those accesses).
    ///
    /// # Panics
    ///
    /// Panics if the column and spike-frame widths differ.
    pub fn update_column<R: Rng + ?Sized>(
        &self,
        column: &BitVec,
        pre_spikes: &BitVec,
        signal: TeacherSignal,
        rng: &mut R,
    ) -> (BitVec, usize) {
        assert_eq!(
            column.len(),
            pre_spikes.len(),
            "weight column and spike frame must have the same width"
        );
        let mut updated = column.clone();
        let mut flips = 0;
        for i in 0..column.len() {
            let pre_active = pre_spikes.get(i);
            let bit = column.get(i);
            let (target, probability) = match signal {
                // Strengthen the synapses that could make the neuron fire:
                // active inputs toward 1, inactive toward 0 (they pull −1).
                TeacherSignal::ShouldFire => {
                    if pre_active {
                        (true, self.p_potentiation)
                    } else {
                        (false, self.p_depression)
                    }
                }
                // Weaken the evidence that made it fire: active inputs
                // toward 0; inactive inputs toward 1 (more −1 drive).
                TeacherSignal::ShouldNotFire => {
                    if pre_active {
                        (false, self.p_potentiation)
                    } else {
                        (true, self.p_depression)
                    }
                }
            };
            if bit != target && rng.random_bool(probability) {
                updated.set(i, target);
                flips += 1;
            }
        }
        (updated, flips)
    }
}

impl Default for StdpRule {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Derives the per-output-neuron teacher signals implied by a `label` and
/// the observed output spike frame.
///
/// The supervision rule is the one the digit-adaptation experiments use:
/// the labelled neuron should have fired — if it stayed silent it gets a
/// [`TeacherSignal::ShouldFire`] — and every *other* neuron that fired did
/// so spuriously and gets a [`TeacherSignal::ShouldNotFire`]. A correct,
/// unambiguous frame (only the labelled neuron fired) yields no signals at
/// all, which is what makes teacher-driven learning self-terminating.
///
/// The order is deterministic: the labelled neuron first (when silent),
/// then spurious neurons in ascending index order — callers that spend RNG
/// per update rely on this for reproducibility.
///
/// # Panics
///
/// Panics when `label` is not a valid index into `observed`.
pub fn derive_teacher_signals(observed: &BitVec, label: usize) -> Vec<(usize, TeacherSignal)> {
    assert!(
        label < observed.len(),
        "label {label} out of range for a {}-neuron output frame",
        observed.len()
    );
    let mut signals = Vec::new();
    if !observed.get(label) {
        signals.push((label, TeacherSignal::ShouldFire));
    }
    for neuron in observed.iter_ones() {
        if neuron != label {
            signals.push((neuron, TeacherSignal::ShouldNotFire));
        }
    }
    signals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn potentiation_moves_active_bits_toward_one() {
        let rule = StdpRule::new(1.0, 0.0); // deterministic potentiation
        let column = BitVec::new(8);
        let pre = BitVec::from_indices(8, &[1, 3, 5]);
        let (updated, flips) =
            rule.update_column(&column, &pre, TeacherSignal::ShouldFire, &mut rng(1));
        assert_eq!(updated.iter_ones().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(flips, 3);
    }

    #[test]
    fn depression_moves_active_bits_toward_zero() {
        let rule = StdpRule::new(1.0, 0.0);
        let mut column = BitVec::new(8);
        column.set_all();
        let pre = BitVec::from_indices(8, &[0, 7]);
        let (updated, flips) =
            rule.update_column(&column, &pre, TeacherSignal::ShouldNotFire, &mut rng(2));
        assert!(!updated.get(0) && !updated.get(7));
        assert_eq!(updated.count_ones(), 6);
        assert_eq!(flips, 2);
    }

    #[test]
    fn zero_probability_changes_nothing() {
        let rule = StdpRule::new(0.0, 0.0);
        let column = BitVec::from_indices(16, &[2, 4]);
        let pre = BitVec::from_indices(16, &[2, 3]);
        let (updated, flips) =
            rule.update_column(&column, &pre, TeacherSignal::ShouldFire, &mut rng(3));
        assert_eq!(updated, column);
        assert_eq!(flips, 0);
    }

    #[test]
    fn stochasticity_flips_a_fraction() {
        let rule = StdpRule::new(0.5, 0.0);
        let column = BitVec::new(1000);
        let mut pre = BitVec::new(1000);
        pre.set_all();
        let (updated, flips) =
            rule.update_column(&column, &pre, TeacherSignal::ShouldFire, &mut rng(4));
        assert_eq!(updated.count_ones(), flips);
        assert!(
            (300..700).contains(&flips),
            "~half of 1000 eligible bits should flip, got {flips}"
        );
    }

    #[test]
    fn update_is_deterministic_per_seed() {
        let rule = StdpRule::paper_default();
        let column = BitVec::from_indices(64, &[1, 2, 3]);
        let pre = BitVec::from_indices(64, &[3, 4, 5]);
        let a = rule.update_column(&column, &pre, TeacherSignal::ShouldFire, &mut rng(9));
        let b = rule.update_column(&column, &pre, TeacherSignal::ShouldFire, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn already_correct_bits_do_not_count_as_flips() {
        let rule = StdpRule::new(1.0, 1.0);
        // Bit 0 is already 1 with an active input (target 1); bits 1–3 are
        // already 0 with inactive inputs (target 0): nothing changes.
        let column = BitVec::from_indices(4, &[0]);
        let pre = BitVec::from_indices(4, &[0]);
        let (updated, flips) =
            rule.update_column(&column, &pre, TeacherSignal::ShouldFire, &mut rng(5));
        assert_eq!(updated, column);
        assert_eq!(flips, 0);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn width_mismatch_panics() {
        StdpRule::paper_default().update_column(
            &BitVec::new(4),
            &BitVec::new(5),
            TeacherSignal::ShouldFire,
            &mut rng(1),
        );
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn bad_probability_panics() {
        StdpRule::new(1.5, 0.0);
    }

    #[test]
    fn teacher_signals_for_a_correct_frame_are_empty() {
        let observed = BitVec::from_indices(10, &[3]);
        assert!(derive_teacher_signals(&observed, 3).is_empty());
    }

    #[test]
    fn teacher_signals_potentiate_the_silent_label() {
        let observed = BitVec::new(10);
        assert_eq!(
            derive_teacher_signals(&observed, 4),
            vec![(4, TeacherSignal::ShouldFire)]
        );
    }

    #[test]
    fn teacher_signals_depress_spurious_spikes_in_order() {
        let observed = BitVec::from_indices(10, &[1, 4, 8]);
        assert_eq!(
            derive_teacher_signals(&observed, 4),
            vec![
                (1, TeacherSignal::ShouldNotFire),
                (8, TeacherSignal::ShouldNotFire),
            ]
        );
    }

    #[test]
    fn teacher_signals_combine_both_directions_label_first() {
        let observed = BitVec::from_indices(10, &[0, 9]);
        assert_eq!(
            derive_teacher_signals(&observed, 5),
            vec![
                (5, TeacherSignal::ShouldFire),
                (0, TeacherSignal::ShouldNotFire),
                (9, TeacherSignal::ShouldNotFire),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn teacher_signals_reject_bad_label() {
        derive_teacher_signals(&BitVec::new(10), 10);
    }
}
