//! Synthetic handwritten-digit dataset (MNIST substitute).
//!
//! The paper evaluates a 768:256:256:256:10 Binary-SNN on MNIST (§4.4.2).
//! MNIST itself is not available in this offline environment, so this module
//! generates a deterministic synthetic equivalent with the same tensor
//! contract: 28×28 binary images, 10 classes, and the paper's exact
//! preprocessing — a 2×2 pixel block removed from every corner to shrink 784
//! pixels to 768 (= 6×128 SRAM inputs).
//!
//! Each sample is a digit glyph randomly shifted, sheared, thickened and
//! corrupted with per-pixel noise, seeded through ChaCha8 so every run of
//! every experiment sees the same data. The substitution is documented in
//! `DESIGN.md`; accuracy on this set is a *shape* check against the paper's
//! 97.64 %, not a number match.

use esam_bits::BitVec;
use rand::seq::SliceRandom;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::NnError;

/// Image side length before cropping.
pub const IMAGE_SIDE: usize = 28;
/// Pixels per raw image.
pub const RAW_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Pixels after the §4.4.2 corner crop (6 × 128 = 768).
pub const CROPPED_PIXELS: usize = 768;
/// Number of digit classes.
pub const CLASSES: usize = 10;

const GLYPH_W: usize = 8;
const GLYPH_H: usize = 12;

/// 8×12 seed glyphs for the ten digits ('#' = ink).
const GLYPHS: [[&str; GLYPH_H]; CLASSES] = [
    [
        "..####..", ".#....#.", "#......#", "#......#", "#......#", "#......#", "#......#",
        "#......#", "#......#", "#......#", ".#....#.", "..####..",
    ],
    [
        "...##...", "..###...", ".#.##...", "...##...", "...##...", "...##...", "...##...",
        "...##...", "...##...", "...##...", "...##...", ".######.",
    ],
    [
        ".#####..", "#.....#.", "#.....#.", "......#.", ".....#..", "....#...", "...#....",
        "..#.....", ".#......", "#.......", "#......#", "########",
    ],
    [
        ".#####..", "#.....#.", "......#.", "......#.", "......#.", "..####..", "......#.",
        "......#.", "......#.", "......#.", "#.....#.", ".#####..",
    ],
    [
        "....##..", "...#.#..", "..#..#..", ".#...#..", "#....#..", "#....#..", "########",
        ".....#..", ".....#..", ".....#..", ".....#..", ".....#..",
    ],
    [
        "#######.", "#.......", "#.......", "#.......", "######..", "......#.", ".......#",
        ".......#", ".......#", ".......#", "#.....#.", ".#####..",
    ],
    [
        "..####..", ".#......", "#.......", "#.......", "######..", "#.....#.", "#......#",
        "#......#", "#......#", "#......#", ".#....#.", "..####..",
    ],
    [
        "########", "#......#", ".......#", "......#.", "......#.", ".....#..", ".....#..",
        "....#...", "....#...", "...#....", "...#....", "...#....",
    ],
    [
        "..####..", ".#....#.", "#......#", "#......#", ".#....#.", "..####..", ".#....#.",
        "#......#", "#......#", "#......#", ".#....#.", "..####..",
    ],
    [
        "..####..", ".#....#.", "#......#", "#......#", "#......#", ".#.....#", "..#####.",
        ".......#", ".......#", ".......#", "......#.", "..####..",
    ],
];

/// Generation parameters for the synthetic set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitsConfig {
    /// Training samples.
    pub train_count: usize,
    /// Held-out test samples.
    pub test_count: usize,
    /// Per-pixel flip probability after rendering.
    pub noise: f64,
    /// Maximum |shift| in pixels applied to the glyph placement.
    pub max_shift: i32,
    /// Probability that a sample is stroke-thickened (dilated).
    pub dilate_probability: f64,
    /// Maximum shear (slant) in pixels across the glyph height.
    pub max_shear: i32,
    /// RNG seed — the entire dataset is a pure function of this value.
    pub seed: u64,
}

impl Default for DigitsConfig {
    fn default() -> Self {
        Self {
            train_count: 4000,
            test_count: 1000,
            noise: 0.02,
            max_shift: 2,
            dilate_probability: 0.3,
            max_shear: 2,
            seed: 7,
        }
    }
}

/// One split (train or test) of the dataset: cropped 768-pixel binary images.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    images: Vec<Vec<f32>>,
    labels: Vec<u8>,
}

impl Split {
    /// Assembles a split from parallel image/label vectors (used by the
    /// IDX loader and tests).
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length.
    pub fn from_parts(images: Vec<Vec<f32>>, labels: Vec<u8>) -> Self {
        assert_eq!(images.len(), labels.len(), "images and labels must pair up");
        Self { images, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `i`-th image as 768 `{0.0, 1.0}` values.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> &[f32] {
        &self.images[i]
    }

    /// The `i`-th label (0–9).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// The `i`-th image as an input spike frame for the SNN.
    pub fn spikes(&self, i: usize) -> BitVec {
        self.images[i].iter().map(|&p| p > 0.5).collect()
    }

    /// Iterator over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], u8)> + '_ {
        self.images
            .iter()
            .map(|v| v.as_slice())
            .zip(self.labels.iter().copied())
    }

    /// Streams the split as `(spike frame, label)` samples in a
    /// deterministically shuffled order — the sample source online-learning
    /// sessions consume.
    ///
    /// The visit order is a pure function of `seed` (Fisher–Yates through
    /// ChaCha8), so two streams with the same seed replay the same epoch
    /// bit-for-bit; different seeds give independent epoch orderings. Every
    /// sample appears exactly once per stream.
    pub fn stream(&self, seed: u64) -> SampleStream<'_> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        SampleStream {
            split: self,
            order,
            cursor: 0,
        }
    }
}

/// A deterministic streaming source of `(spike frame, label)` samples over
/// one [`Split`] — see [`Split::stream`].
#[derive(Debug, Clone)]
pub struct SampleStream<'a> {
    split: &'a Split,
    order: Vec<usize>,
    cursor: usize,
}

impl SampleStream<'_> {
    /// Samples not yet yielded.
    pub fn remaining(&self) -> usize {
        self.order.len() - self.cursor
    }
}

impl Iterator for SampleStream<'_> {
    type Item = (BitVec, u8);

    fn next(&mut self) -> Option<Self::Item> {
        let &index = self.order.get(self.cursor)?;
        self.cursor += 1;
        Some((self.split.spikes(index), self.split.label(index)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for SampleStream<'_> {}

/// The full synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Training split.
    pub train: Split,
    /// Test split.
    pub test: Split,
}

impl Dataset {
    /// Generates the dataset for `config` (fully deterministic per seed).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyDataset`] when either split has zero samples.
    pub fn generate(config: &DigitsConfig) -> Result<Self, NnError> {
        if config.train_count == 0 || config.test_count == 0 {
            return Err(NnError::EmptyDataset);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let train = render_split(config, config.train_count, &mut rng);
        let test = render_split(config, config.test_count, &mut rng);
        Ok(Self { train, test })
    }
}

fn render_split(config: &DigitsConfig, count: usize, rng: &mut ChaCha8Rng) -> Split {
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        // Balanced classes: round-robin with shuffled phase.
        let digit = ((i + rng.random_range(0..CLASSES)) % CLASSES) as u8;
        images.push(corner_crop(&render_digit(digit, config, rng)));
        labels.push(digit);
    }
    Split { images, labels }
}

/// Renders one 28×28 binary digit image.
fn render_digit(digit: u8, config: &DigitsConfig, rng: &mut ChaCha8Rng) -> Vec<f32> {
    let glyph = &GLYPHS[digit as usize];
    let mut canvas = vec![false; RAW_PIXELS];

    // Base placement: glyph scaled 2× (16×24), centred with room to shift.
    let base_x = (IMAGE_SIDE - 2 * GLYPH_W) as i32 / 2;
    let base_y = (IMAGE_SIDE - 2 * GLYPH_H) as i32 / 2;
    let shift_x = rng.random_range(-config.max_shift..=config.max_shift);
    let shift_y = rng.random_range(-config.max_shift..=config.max_shift);
    let shear = rng.random_range(-config.max_shear..=config.max_shear);

    for (gy, row) in glyph.iter().enumerate() {
        for (gx, ch) in row.bytes().enumerate() {
            if ch != b'#' {
                continue;
            }
            // 2×2 block per glyph pixel, sheared horizontally with height.
            let row_shear = shear * (gy as i32 - GLYPH_H as i32 / 2) / (GLYPH_H as i32 / 2);
            for dy in 0..2i32 {
                for dx in 0..2i32 {
                    let x = base_x + shift_x + row_shear + 2 * gx as i32 + dx;
                    let y = base_y + shift_y + 2 * gy as i32 + dy;
                    if (0..IMAGE_SIDE as i32).contains(&x) && (0..IMAGE_SIDE as i32).contains(&y) {
                        canvas[y as usize * IMAGE_SIDE + x as usize] = true;
                    }
                }
            }
        }
    }

    if rng.random_bool(config.dilate_probability) {
        canvas = dilate(&canvas);
    }

    canvas
        .iter()
        .map(|&ink| {
            let flipped = if config.noise > 0.0 {
                rng.random_bool(config.noise)
            } else {
                false
            };
            if ink != flipped {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// 4-neighbour morphological dilation (stroke thickening).
fn dilate(canvas: &[bool]) -> Vec<bool> {
    let mut out = canvas.to_vec();
    for y in 0..IMAGE_SIDE {
        for x in 0..IMAGE_SIDE {
            if canvas[y * IMAGE_SIDE + x] {
                if x > 0 {
                    out[y * IMAGE_SIDE + x - 1] = true;
                }
                if x + 1 < IMAGE_SIDE {
                    out[y * IMAGE_SIDE + x + 1] = true;
                }
                if y > 0 {
                    out[(y - 1) * IMAGE_SIDE + x] = true;
                }
                if y + 1 < IMAGE_SIDE {
                    out[(y + 1) * IMAGE_SIDE + x] = true;
                }
            }
        }
    }
    out
}

/// The paper's preprocessing: removes a 2×2 pixel block from every corner of
/// a 28×28 image, shrinking 784 pixels to exactly 768 = 6×128 (§4.4.2).
///
/// # Panics
///
/// Panics if the input is not 784 pixels.
pub fn corner_crop(image: &[f32]) -> Vec<f32> {
    assert_eq!(image.len(), RAW_PIXELS, "corner crop expects a 28x28 image");
    let corner = |x: usize, y: usize| -> bool {
        let near_left = x < 2;
        let near_right = x >= IMAGE_SIDE - 2;
        let near_top = y < 2;
        let near_bottom = y >= IMAGE_SIDE - 2;
        (near_left || near_right) && (near_top || near_bottom)
    };
    let mut out = Vec::with_capacity(CROPPED_PIXELS);
    for y in 0..IMAGE_SIDE {
        for x in 0..IMAGE_SIDE {
            if !corner(x, y) {
                out.push(image[y * IMAGE_SIDE + x]);
            }
        }
    }
    debug_assert_eq!(out.len(), CROPPED_PIXELS);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_well_formed() {
        for (digit, glyph) in GLYPHS.iter().enumerate() {
            for (row_index, row) in glyph.iter().enumerate() {
                assert_eq!(
                    row.len(),
                    GLYPH_W,
                    "digit {digit} row {row_index} has wrong width"
                );
            }
            let ink: usize = glyph
                .iter()
                .map(|r| r.bytes().filter(|&b| b == b'#').count())
                .sum();
            assert!(ink >= 12, "digit {digit} glyph too sparse ({ink} pixels)");
        }
    }

    #[test]
    fn corner_crop_is_768_and_removes_corners() {
        let mut image = vec![0.0f32; RAW_PIXELS];
        // Mark the 16 corner pixels.
        for &y in &[0usize, 1, 26, 27] {
            for &x in &[0usize, 1, 26, 27] {
                image[y * IMAGE_SIDE + x] = 1.0;
            }
        }
        let cropped = corner_crop(&image);
        assert_eq!(cropped.len(), CROPPED_PIXELS);
        assert!(
            cropped.iter().all(|&p| p == 0.0),
            "corner pixels must be gone"
        );
    }

    #[test]
    fn corner_crop_keeps_interior() {
        let mut image = vec![0.0f32; RAW_PIXELS];
        image[14 * IMAGE_SIDE + 14] = 1.0;
        let cropped = corner_crop(&image);
        assert_eq!(cropped.iter().filter(|&&p| p == 1.0).count(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = DigitsConfig {
            train_count: 20,
            test_count: 10,
            ..DigitsConfig::default()
        };
        let a = Dataset::generate(&config).unwrap();
        let b = Dataset::generate(&config).unwrap();
        assert_eq!(a, b);
        let c = Dataset::generate(&DigitsConfig { seed: 8, ..config }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn images_are_binary_and_cropped() {
        let config = DigitsConfig {
            train_count: 30,
            test_count: 10,
            ..DigitsConfig::default()
        };
        let data = Dataset::generate(&config).unwrap();
        assert_eq!(data.train.len(), 30);
        assert_eq!(data.test.len(), 10);
        for (image, label) in data.train.iter() {
            assert_eq!(image.len(), CROPPED_PIXELS);
            assert!(image.iter().all(|&p| p == 0.0 || p == 1.0));
            assert!(label < 10);
        }
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let config = DigitsConfig {
            train_count: 1000,
            test_count: 10,
            ..DigitsConfig::default()
        };
        let data = Dataset::generate(&config).unwrap();
        let mut counts = [0usize; CLASSES];
        for (_, label) in data.train.iter() {
            counts[label as usize] += 1;
        }
        for (digit, &count) in counts.iter().enumerate() {
            assert!(
                (60..=140).contains(&count),
                "digit {digit} appears {count} times in 1000 samples"
            );
        }
    }

    #[test]
    fn digits_have_distinct_shapes() {
        // Noise-free renders of different digits must differ substantially.
        let config = DigitsConfig {
            train_count: 1,
            test_count: 1,
            noise: 0.0,
            max_shift: 0,
            dilate_probability: 0.0,
            max_shear: 0,
            seed: 1,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let renders: Vec<Vec<f32>> = (0..10)
            .map(|d| render_digit(d, &config, &mut rng))
            .collect();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let diff: usize = renders[a]
                    .iter()
                    .zip(&renders[b])
                    .filter(|(x, y)| x != y)
                    .count();
                assert!(diff > 20, "digits {a} and {b} differ by only {diff} pixels");
            }
        }
    }

    #[test]
    fn spikes_match_images() {
        let config = DigitsConfig {
            train_count: 5,
            test_count: 5,
            ..DigitsConfig::default()
        };
        let data = Dataset::generate(&config).unwrap();
        let spikes = data.test.spikes(0);
        assert_eq!(spikes.len(), CROPPED_PIXELS);
        assert_eq!(
            spikes.count_ones(),
            data.test.image(0).iter().filter(|&&p| p > 0.5).count()
        );
    }

    #[test]
    fn stream_visits_every_sample_once_deterministically() {
        let config = DigitsConfig {
            train_count: 40,
            test_count: 5,
            ..DigitsConfig::default()
        };
        let data = Dataset::generate(&config).unwrap();
        let a: Vec<(BitVec, u8)> = data.train.stream(3).collect();
        let b: Vec<(BitVec, u8)> = data.train.stream(3).collect();
        assert_eq!(a, b, "same seed must replay the same epoch");
        assert_eq!(a.len(), 40);
        // Every sample appears exactly once: label multiset matches the split.
        let mut streamed: Vec<u8> = a.iter().map(|(_, l)| *l).collect();
        let mut direct: Vec<u8> = (0..data.train.len()).map(|i| data.train.label(i)).collect();
        streamed.sort_unstable();
        direct.sort_unstable();
        assert_eq!(streamed, direct);
        // A different seed reorders (40 samples make a collision vanishingly
        // unlikely with distinct shuffles).
        let c: Vec<(BitVec, u8)> = data.train.stream(4).collect();
        assert_ne!(a, c, "different seeds must reorder the epoch");
        let mut stream = data.train.stream(0);
        assert_eq!(stream.len(), 40);
        stream.next();
        assert_eq!(stream.remaining(), 39);
    }

    #[test]
    fn empty_split_rejected() {
        let config = DigitsConfig {
            train_count: 0,
            test_count: 1,
            ..DigitsConfig::default()
        };
        assert!(matches!(
            Dataset::generate(&config),
            Err(NnError::EmptyDataset)
        ));
    }
}
