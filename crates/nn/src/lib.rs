//! Neural-network substrate for the ESAM reproduction: BNN training,
//! synthetic digits, BNN→SNN conversion and stochastic STDP.
//!
//! The paper's system evaluation (§4.4.2) trains a 768:256:256:256:10
//! Binary Neural Network offline, converts it to a Binary-SNN with
//! per-neuron thresholds following Kim et al. \[15\], and runs it on the CIM
//! hardware. This crate rebuilds that software stack from scratch:
//!
//! * [`dataset`] — a deterministic synthetic digit set standing in for
//!   MNIST (which is unavailable offline), with the paper's exact 784→768
//!   corner-crop preprocessing;
//! * [`bnn`] + [`train`] — XNOR-free BNN (binary `{0,1}` activations, `±1`
//!   weights, real biases) trained with a straight-through estimator;
//! * [`convert`] — lossless mapping onto SRAM bits and integer thresholds,
//!   bit-exact with the BNN by construction;
//! * [`stdp`] — the stochastic 1-bit STDP rule (ref \[16\]) that the online
//!   learning engine applies through the transposed port, plus the teacher
//!   derivation ([`derive_teacher_signals`]) mapping a label and an observed
//!   output spike frame to per-neuron update directions;
//! * [`eval`] — accuracy and confusion-matrix utilities, including the
//!   [`RunningAccuracy`] accumulator behind learning curves.
//!
//! Online-learning sessions consume samples through [`Split::stream`], a
//! deterministically shuffled `(spike frame, label)` iterator.
//!
//! # Examples
//!
//! Train a small BNN and convert it:
//!
//! ```
//! use esam_nn::bnn::BnnNetwork;
//! use esam_nn::convert::SnnModel;
//! use esam_nn::dataset::{Dataset, DigitsConfig};
//! use esam_nn::train::{TrainConfig, Trainer};
//!
//! let data = Dataset::generate(&DigitsConfig {
//!     train_count: 300, test_count: 50, ..DigitsConfig::default()
//! })?;
//! let mut net = BnnNetwork::new(&[768, 32, 10], 42)?;
//! Trainer::new(TrainConfig { epochs: 3, ..TrainConfig::default() })
//!     .train(&mut net, &data.train)?;
//! let snn = SnnModel::from_bnn(&net)?;
//! assert_eq!(snn.topology(), vec![768, 32, 10]);
//! # Ok::<(), esam_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnn;
pub mod convert;
pub mod dataset;
pub mod error;
pub mod eval;
pub mod idx;
pub mod matrix;
pub mod stdp;
pub mod train;

pub use bnn::{BnnLayer, BnnNetwork, ForwardTrace};
pub use convert::{SnnLayer, SnnModel, SnnTrace};
pub use dataset::{
    corner_crop, Dataset, DigitsConfig, SampleStream, Split, CLASSES, CROPPED_PIXELS,
};
pub use error::NnError;
pub use eval::{evaluate_bnn, evaluate_snn, ConfusionMatrix, RunningAccuracy};
pub use idx::{load_mnist_dir, read_idx, write_idx, MNIST_FILES};
pub use stdp::{derive_teacher_signals, StdpRule, TeacherSignal};
pub use train::{TrainConfig, TrainReport, Trainer};
