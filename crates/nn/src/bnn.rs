//! The Binary Neural Network the paper trains offline (§4.4.2).
//!
//! Following the XNOR-free formulation of Kim et al. \[15\], the network uses
//! binary `{0, 1}` *activations* and binary `{−1, +1}` *weights* with
//! real-valued per-neuron biases:
//!
//! ```text
//! z_j = Σ_i sign(w_ji) · x_i + b_j      x_i ∈ {0, 1}
//! h_j = step(z_j ≥ 0)                   (hidden layers)
//! ```
//!
//! Because inputs are `{0, 1}`, the MAC degenerates to an *accumulation over
//! firing inputs only* — exactly what the CIM-P hardware computes when a
//! spike activates a wordline. Latent real weights are kept for training
//! (straight-through estimator, see [`train`](crate::train)); inference
//! always uses the binarized view.

use rand::{Rng, RngExt};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::NnError;
use crate::matrix::Matrix;

/// Binarizes a latent weight: `sign(w)` with `sign(0) = +1`.
#[inline]
pub fn binarize(w: f32) -> f32 {
    if w >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Binary step activation on `{0, 1}`.
#[inline]
pub fn step(z: f32) -> f32 {
    if z >= 0.0 {
        1.0
    } else {
        0.0
    }
}

/// One fully-connected binary layer (`outputs × inputs`).
#[derive(Debug, Clone, PartialEq)]
pub struct BnnLayer {
    latent: Matrix,
    bias: Vec<f32>,
}

impl BnnLayer {
    /// Creates a layer with latent weights drawn uniformly from `[−1, 1]`
    /// and zero biases.
    pub fn new_random<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "layer dimensions must be non-zero"
        );
        Self {
            latent: Matrix::from_fn(outputs, inputs, |_, _| rng.random_range(-1.0f32..1.0)),
            bias: vec![0.0; outputs],
        }
    }

    /// Fan-in of the layer.
    pub fn inputs(&self) -> usize {
        self.latent.cols()
    }

    /// Fan-out of the layer.
    pub fn outputs(&self) -> usize {
        self.latent.rows()
    }

    /// Binarized weight from input `i` to output `o` (±1).
    #[inline]
    pub fn binary_weight(&self, o: usize, i: usize) -> f32 {
        binarize(self.latent.get(o, i))
    }

    /// Latent (real) weights — exposed for the trainer.
    pub fn latent(&self) -> &Matrix {
        &self.latent
    }

    /// Mutable latent weights — exposed for the trainer.
    pub fn latent_mut(&mut self) -> &mut Matrix {
        &mut self.latent
    }

    /// Per-neuron biases.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable per-neuron biases — exposed for the trainer.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Pre-activations `z = sign(W)·x + b` for a `{0, 1}` input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != inputs()`.
    pub fn pre_activations(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.inputs(), "input width mismatch");
        let mut z = self.bias.clone();
        for (o, z_o) in z.iter_mut().enumerate() {
            let row = self.latent.row(o);
            let mut acc = 0.0f32;
            for (i, &xi) in x.iter().enumerate() {
                if xi != 0.0 {
                    acc += binarize(row[i]) * xi;
                }
            }
            *z_o += acc;
        }
        z
    }
}

/// Trace of one forward pass, kept for backpropagation.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardTrace {
    /// `activations[0]` is the input; `activations[l]` the output of layer
    /// `l−1`. The last entry holds the raw logits (no step applied).
    pub activations: Vec<Vec<f32>>,
    /// Pre-activations per layer.
    pub pre_activations: Vec<Vec<f32>>,
}

impl ForwardTrace {
    /// Output-layer logits.
    pub fn logits(&self) -> &[f32] {
        self.activations
            .last()
            .expect("trace holds at least the input")
    }

    /// Argmax class prediction (lowest index wins ties).
    pub fn prediction(&self) -> usize {
        argmax(self.logits())
    }
}

/// Returns the index of the largest value (first on ties).
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of an empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// A feed-forward binary network (e.g. the paper's 768:256:256:256:10).
#[derive(Debug, Clone, PartialEq)]
pub struct BnnNetwork {
    layers: Vec<BnnLayer>,
}

impl BnnNetwork {
    /// Creates a randomly-initialized network with the given layer sizes
    /// (`sizes[0]` is the input width).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] when fewer than two sizes are given.
    ///
    /// # Examples
    ///
    /// ```
    /// use esam_nn::bnn::BnnNetwork;
    /// let net = BnnNetwork::new(&[768, 256, 256, 256, 10], 42)?;
    /// assert_eq!(net.topology(), vec![768, 256, 256, 256, 10]);
    /// # Ok::<(), esam_nn::NnError>(())
    /// ```
    pub fn new(sizes: &[usize], seed: u64) -> Result<Self, NnError> {
        if sizes.len() < 2 {
            return Err(NnError::EmptyNetwork);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| BnnLayer::new_random(w[0], w[1], &mut rng))
            .collect();
        Ok(Self { layers })
    }

    /// The layer stack.
    pub fn layers(&self) -> &[BnnLayer] {
        &self.layers
    }

    /// Mutable layer stack — exposed for the trainer.
    pub fn layers_mut(&mut self) -> &mut [BnnLayer] {
        &mut self.layers
    }

    /// Layer sizes including the input width.
    pub fn topology(&self) -> Vec<usize> {
        let mut sizes = vec![self.layers[0].inputs()];
        sizes.extend(self.layers.iter().map(|l| l.outputs()));
        sizes
    }

    /// Input width.
    pub fn input_width(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Number of classes (output width).
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("non-empty network").outputs()
    }

    /// Full forward pass with intermediate values (for training and for
    /// SNN-equivalence checks).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong input width.
    pub fn forward_trace(&self, x: &[f32]) -> Result<ForwardTrace, NnError> {
        if x.len() != self.input_width() {
            return Err(NnError::DimensionMismatch {
                expected: self.input_width(),
                got: x.len(),
            });
        }
        let mut activations = vec![x.to_vec()];
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        for (index, layer) in self.layers.iter().enumerate() {
            let z = layer.pre_activations(activations.last().expect("non-empty"));
            let is_output = index + 1 == self.layers.len();
            let h = if is_output {
                z.clone() // raw logits
            } else {
                z.iter().map(|&v| step(v)).collect()
            };
            pre_activations.push(z);
            activations.push(h);
        }
        Ok(ForwardTrace {
            activations,
            pre_activations,
        })
    }

    /// Classifies one input (argmax over logits).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong input width.
    pub fn classify(&self, x: &[f32]) -> Result<usize, NnError> {
        Ok(self.forward_trace(x)?.prediction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarize_and_step_conventions() {
        assert_eq!(binarize(0.0), 1.0, "sign(0) = +1 by convention");
        assert_eq!(binarize(-0.3), -1.0);
        assert_eq!(step(0.0), 1.0, "step(0) = 1 matches V_mem ≥ V_th");
        assert_eq!(step(-0.1), 0.0);
    }

    #[test]
    fn topology_and_shapes() {
        let net = BnnNetwork::new(&[12, 8, 4], 1).unwrap();
        assert_eq!(net.topology(), vec![12, 8, 4]);
        assert_eq!(net.input_width(), 12);
        assert_eq!(net.output_width(), 4);
        assert_eq!(net.layers().len(), 2);
    }

    #[test]
    fn forward_trace_shapes() {
        let net = BnnNetwork::new(&[6, 5, 3], 2).unwrap();
        let trace = net.forward_trace(&[1.0, 0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(trace.activations.len(), 3);
        assert_eq!(trace.activations[1].len(), 5);
        assert_eq!(trace.logits().len(), 3);
        // Hidden activations are binary.
        assert!(trace.activations[1].iter().all(|&h| h == 0.0 || h == 1.0));
    }

    #[test]
    fn pre_activation_math() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = BnnLayer::new_random(3, 1, &mut rng);
        // Force known weights: +1, −1, +1 and bias 0.5.
        *layer.latent_mut().get_mut(0, 0) = 0.9;
        *layer.latent_mut().get_mut(0, 1) = -0.2;
        *layer.latent_mut().get_mut(0, 2) = 0.1;
        layer.bias_mut()[0] = 0.5;
        // x = (1, 1, 0): z = 1 − 1 + 0 + 0.5.
        let z = layer.pre_activations(&[1.0, 1.0, 0.0]);
        assert!((z[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn only_firing_inputs_contribute() {
        // x = 0 inputs contribute nothing regardless of weight sign —
        // the XNOR-free property the hardware depends on.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let layer = BnnLayer::new_random(10, 4, &mut rng);
        let z_silent = layer.pre_activations(&[0.0; 10]);
        assert_eq!(z_silent, layer.bias().to_vec());
    }

    #[test]
    fn classify_is_deterministic() {
        let net = BnnNetwork::new(&[8, 6, 3], 5).unwrap();
        let x = [1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0];
        assert_eq!(net.classify(&x).unwrap(), net.classify(&x).unwrap());
    }

    #[test]
    fn wrong_width_is_an_error() {
        let net = BnnNetwork::new(&[8, 4], 1).unwrap();
        assert!(matches!(
            net.classify(&[0.0; 7]),
            Err(NnError::DimensionMismatch {
                expected: 8,
                got: 7
            })
        ));
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            BnnNetwork::new(&[10], 0),
            Err(NnError::EmptyNetwork)
        ));
    }

    #[test]
    fn argmax_ties_take_lowest_index() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
