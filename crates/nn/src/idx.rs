//! IDX file support: load real MNIST when the files are available.
//!
//! The paper evaluates on MNIST (§4.4.2); this reproduction ships a
//! synthetic digit generator because the dataset cannot be bundled. When
//! the four standard IDX files *are* present (e.g. downloaded separately),
//! [`load_mnist_dir`] swaps them in transparently: images are binarized at
//! the conventional 0.5 threshold and corner-cropped 784 → 768 exactly as
//! §4.4.2 prescribes, producing the same [`Dataset`] shape the rest of the
//! pipeline consumes.
//!
//! The format is the classic LeCun IDX layout: a magic number (`0x00` ×2,
//! type byte, dimension count), big-endian `u32` dimension sizes, then raw
//! data. Only `u8` payloads (type `0x08`) are needed here.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::dataset::{corner_crop, Dataset, Split, CLASSES, RAW_PIXELS};
use crate::error::NnError;

/// Magic type byte for unsigned 8-bit IDX payloads.
const IDX_U8: u8 = 0x08;

/// Reads an IDX file of `u8` payload from `reader` (a `&mut` reference
/// works too, since `Read` is implemented for it).
///
/// Returns the dimension sizes and the flat payload.
///
/// # Errors
///
/// [`NnError::IdxFormat`] for malformed headers or truncated payloads,
/// wrapping I/O errors as their display text.
pub fn read_idx<R: Read>(mut reader: R) -> Result<(Vec<usize>, Vec<u8>), NnError> {
    let io_err = |e: io::Error| NnError::IdxFormat(e.to_string());
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic).map_err(io_err)?;
    if magic[0] != 0 || magic[1] != 0 {
        return Err(NnError::IdxFormat(format!(
            "bad magic prefix {:02x}{:02x}",
            magic[0], magic[1]
        )));
    }
    if magic[2] != IDX_U8 {
        return Err(NnError::IdxFormat(format!(
            "unsupported payload type 0x{:02x} (only u8/0x08 is supported)",
            magic[2]
        )));
    }
    let rank = magic[3] as usize;
    if rank == 0 || rank > 4 {
        return Err(NnError::IdxFormat(format!("unsupported rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let mut b = [0u8; 4];
        reader.read_exact(&mut b).map_err(io_err)?;
        dims.push(u32::from_be_bytes(b) as usize);
    }
    let total: usize = dims.iter().product();
    let mut payload = vec![0u8; total];
    reader.read_exact(&mut payload).map_err(io_err)?;
    Ok((dims, payload))
}

/// Writes a `u8` IDX file (used by the round-trip tests and for exporting
/// the synthetic set in a standard format).
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Panics
///
/// Panics if `payload.len()` does not equal the product of `dims`.
pub fn write_idx<W: Write>(mut writer: W, dims: &[usize], payload: &[u8]) -> io::Result<()> {
    let total: usize = dims.iter().product();
    assert_eq!(payload.len(), total, "payload does not match dimensions");
    assert!(
        (1..=4).contains(&dims.len()),
        "IDX rank must be 1..=4, got {}",
        dims.len()
    );
    writer.write_all(&[0, 0, IDX_U8, dims.len() as u8])?;
    for &d in dims {
        writer.write_all(&(d as u32).to_be_bytes())?;
    }
    writer.write_all(payload)
}

/// Decodes one IDX image/label pair into a [`Split`]: binarize at 127.5,
/// corner-crop to 768 pixels.
fn split_from_idx(
    image_dims: &[usize],
    images: &[u8],
    label_dims: &[usize],
    labels: &[u8],
) -> Result<Split, NnError> {
    if image_dims.len() != 3 || image_dims[1] * image_dims[2] != RAW_PIXELS {
        return Err(NnError::IdxFormat(format!(
            "expected N×28×28 images, got dims {image_dims:?}"
        )));
    }
    if label_dims.len() != 1 || label_dims[0] != image_dims[0] {
        return Err(NnError::IdxFormat(format!(
            "label count {label_dims:?} does not match image count {}",
            image_dims[0]
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l as usize >= CLASSES) {
        return Err(NnError::IdxFormat(format!("label {bad} out of 0..=9")));
    }
    let mut cropped = Vec::with_capacity(image_dims[0]);
    for chunk in images.chunks_exact(RAW_PIXELS) {
        let full: Vec<f32> = chunk
            .iter()
            .map(|&p| if f32::from(p) > 127.5 { 1.0 } else { 0.0 })
            .collect();
        cropped.push(corner_crop(&full));
    }
    Ok(Split::from_parts(cropped, labels.to_vec()))
}

/// The four standard MNIST file names looked up by [`load_mnist_dir`].
pub const MNIST_FILES: [&str; 4] = [
    "train-images-idx3-ubyte",
    "train-labels-idx1-ubyte",
    "t10k-images-idx3-ubyte",
    "t10k-labels-idx1-ubyte",
];

/// Loads real MNIST from `dir` if all four IDX files are present.
///
/// Returns `Ok(None)` when any file is missing — callers fall back to the
/// synthetic generator, keeping offline builds fully functional.
///
/// # Errors
///
/// [`NnError::IdxFormat`] when files exist but are malformed.
pub fn load_mnist_dir(dir: impl AsRef<Path>) -> Result<Option<Dataset>, NnError> {
    let dir = dir.as_ref();
    let paths: Vec<_> = MNIST_FILES.iter().map(|f| dir.join(f)).collect();
    if !paths.iter().all(|p| p.is_file()) {
        return Ok(None);
    }
    let read = |path: &Path| -> Result<(Vec<usize>, Vec<u8>), NnError> {
        let file = File::open(path).map_err(|e| NnError::IdxFormat(e.to_string()))?;
        read_idx(file)
    };
    let (train_img_dims, train_imgs) = read(&paths[0])?;
    let (train_lbl_dims, train_lbls) = read(&paths[1])?;
    let (test_img_dims, test_imgs) = read(&paths[2])?;
    let (test_lbl_dims, test_lbls) = read(&paths[3])?;
    Ok(Some(Dataset {
        train: split_from_idx(&train_img_dims, &train_imgs, &train_lbl_dims, &train_lbls)?,
        test: split_from_idx(&test_img_dims, &test_imgs, &test_lbl_dims, &test_lbls)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_mnist(n: usize) -> (Vec<u8>, Vec<u8>) {
        // Deterministic images: diagonal-ish stripes, label = i mod 10.
        let mut images = Vec::with_capacity(n * RAW_PIXELS);
        for i in 0..n {
            for p in 0..RAW_PIXELS {
                images.push(if (p + i) % 7 == 0 { 200 } else { 10 });
            }
        }
        let labels: Vec<u8> = (0..n).map(|i| (i % 10) as u8).collect();
        (images, labels)
    }

    #[test]
    fn idx_round_trips() {
        let dims = [3usize, 28, 28];
        let payload: Vec<u8> = (0..3 * RAW_PIXELS).map(|i| (i % 251) as u8).collect();
        let mut buffer = Vec::new();
        write_idx(&mut buffer, &dims, &payload).unwrap();
        let (got_dims, got_payload) = read_idx(buffer.as_slice()).unwrap();
        assert_eq!(got_dims, dims);
        assert_eq!(got_payload, payload);
    }

    #[test]
    fn bad_magic_and_type_are_rejected() {
        assert!(matches!(
            read_idx(&[1u8, 0, IDX_U8, 1][..]),
            Err(NnError::IdxFormat(_))
        ));
        assert!(matches!(
            read_idx(&[0u8, 0, 0x0D, 1][..]), // f32 payload
            Err(NnError::IdxFormat(_))
        ));
        // Truncated payload.
        let mut buffer = Vec::new();
        write_idx(&mut buffer, &[4], &[1, 2, 3, 4]).unwrap();
        buffer.truncate(buffer.len() - 2);
        assert!(matches!(
            read_idx(buffer.as_slice()),
            Err(NnError::IdxFormat(_))
        ));
    }

    #[test]
    fn loads_a_directory_of_idx_files() {
        let dir = std::env::temp_dir().join(format!("esam_idx_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (train_imgs, train_lbls) = fake_mnist(20);
        let (test_imgs, test_lbls) = fake_mnist(10);
        let write = |name: &str, dims: &[usize], data: &[u8]| {
            let mut f = File::create(dir.join(name)).unwrap();
            write_idx(&mut f, dims, data).unwrap();
        };
        write(MNIST_FILES[0], &[20, 28, 28], &train_imgs);
        write(MNIST_FILES[1], &[20], &train_lbls);
        write(MNIST_FILES[2], &[10, 28, 28], &test_imgs);
        write(MNIST_FILES[3], &[10], &test_lbls);

        let dataset = load_mnist_dir(&dir).unwrap().expect("all files present");
        assert_eq!(dataset.train.len(), 20);
        assert_eq!(dataset.test.len(), 10);
        assert_eq!(dataset.train.image(0).len(), crate::dataset::CROPPED_PIXELS);
        assert_eq!(dataset.train.label(3), 3);
        // Binarization: every pixel is exactly 0.0 or 1.0.
        assert!(dataset.train.image(0).iter().all(|&p| p == 0.0 || p == 1.0));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_fall_back_to_none() {
        let dir = std::env::temp_dir().join("esam_idx_definitely_missing");
        assert!(load_mnist_dir(&dir).unwrap().is_none());
    }

    #[test]
    fn mismatched_labels_are_rejected() {
        let (imgs, _) = fake_mnist(4);
        let result = split_from_idx(&[4, 28, 28], &imgs, &[3], &[0, 1, 2]);
        assert!(matches!(result, Err(NnError::IdxFormat(_))));
        let result = split_from_idx(&[4, 28, 28], &imgs, &[4], &[0, 1, 2, 77]);
        assert!(matches!(result, Err(NnError::IdxFormat(_))));
    }
}
