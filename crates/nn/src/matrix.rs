//! Minimal dense matrix for BNN training.
//!
//! Training the paper's 768:256:256:256:10 network needs nothing beyond
//! row-major storage, matrix–vector products against *binarized* weights and
//! rank-1 gradient accumulation, so that is all this module provides. No
//! external linear-algebra dependency is justified for this workload.

use std::fmt;

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use esam_nn::matrix::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        &mut self.data[row * self.cols + col]
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Flat view of the underlying storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(3, 4);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        *m.get_mut(2, 3) = 7.5;
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0, 7.5]);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn map_inplace() {
        let mut m = Matrix::from_fn(2, 2, |_, _| 2.0);
        m.map_inplace(|v| v * 3.0);
        assert!(m.as_slice().iter().all(|&v| v == 6.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }
}
