//! Accuracy evaluation utilities.

use esam_bits::BitVec;

use crate::bnn::BnnNetwork;
use crate::convert::SnnModel;
use crate::dataset::Split;
use crate::error::NnError;

/// A 10-class confusion matrix (`rows` = true label, `cols` = prediction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty `classes × classes` matrix.
    pub fn new(classes: usize) -> Self {
        Self {
            counts: vec![vec![0; classes]; classes],
        }
    }

    /// Records one (truth, prediction) observation.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range labels.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        self.counts[truth][prediction] += 1;
    }

    /// Count at (truth, prediction).
    pub fn count(&self, truth: usize, prediction: usize) -> usize {
        self.counts[truth][prediction]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Total recorded observations.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }
}

/// Streaming accuracy accumulator for online-learning curves.
///
/// Counts are plain `u64` sums, so accumulators from disjoint sample shards
/// [`merge`](Self::merge) exactly — the same integer-merge law the batch
/// engine relies on for inference counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunningAccuracy {
    seen: u64,
    correct: u64,
}

impl RunningAccuracy {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, correct: bool) {
        self.seen += 1;
        self.correct += u64::from(correct);
    }

    /// Samples observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Accuracy over everything observed (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        self.correct as f64 / self.seen as f64
    }

    /// Adds another shard's counts into this one (exact).
    pub fn merge(&mut self, other: &RunningAccuracy) {
        self.seen += other.seen;
        self.correct += other.correct;
    }
}

/// Evaluates the BNN on a dataset split.
///
/// # Errors
///
/// Propagates dimension mismatches from [`BnnNetwork::classify`].
pub fn evaluate_bnn(net: &BnnNetwork, split: &Split) -> Result<ConfusionMatrix, NnError> {
    let mut matrix = ConfusionMatrix::new(net.output_width());
    for (image, label) in split.iter() {
        matrix.record(label as usize, net.classify(image)?);
    }
    Ok(matrix)
}

/// Evaluates the converted SNN (golden functional model) on a split.
///
/// # Errors
///
/// Propagates dimension mismatches from [`SnnModel::classify`].
pub fn evaluate_snn(model: &SnnModel, split: &Split) -> Result<ConfusionMatrix, NnError> {
    let classes = model.topology().last().copied().unwrap_or(0);
    let mut matrix = ConfusionMatrix::new(classes);
    for i in 0..split.len() {
        let spikes: BitVec = split.spikes(i);
        matrix.record(split.label(i) as usize, model.classify(&spikes)?);
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DigitsConfig};

    #[test]
    fn confusion_matrix_accounting() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 1);
        m.record(2, 2);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.total(), 3);
        assert!((m.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new(2).accuracy(), 0.0);
    }

    #[test]
    fn running_accuracy_counts_and_merges_exactly() {
        let mut a = RunningAccuracy::new();
        a.record(true);
        a.record(false);
        a.record(true);
        assert_eq!(a.seen(), 3);
        assert_eq!(a.correct(), 2);
        assert!((a.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        let mut b = RunningAccuracy::new();
        b.record(false);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.seen(), 4);
        assert_eq!(merged.correct(), 2);
        assert_eq!(RunningAccuracy::default().accuracy(), 0.0);
    }

    #[test]
    fn bnn_and_snn_agree_on_accuracy() {
        let data = Dataset::generate(&DigitsConfig {
            train_count: 10,
            test_count: 40,
            ..DigitsConfig::default()
        })
        .unwrap();
        let net = BnnNetwork::new(&[768, 24, 10], 9).unwrap();
        let model = SnnModel::from_bnn(&net).unwrap();
        let bnn_eval = evaluate_bnn(&net, &data.test).unwrap();
        let snn_eval = evaluate_snn(&model, &data.test).unwrap();
        assert_eq!(bnn_eval.accuracy(), snn_eval.accuracy());
        assert_eq!(bnn_eval.total(), 40);
    }
}
