//! BNN → Binary-SNN conversion (§4.4.2, ref \[15\]).
//!
//! The trained BNN maps onto the ESAM hardware as follows:
//!
//! * binary weights `±1` become SRAM bits (`+1 → 1`, `−1 → 0`) — the bitline
//!   decode at the neuron turns them back into `±1` (§3.4);
//! * per-neuron biases become integer firing thresholds. With `{0,1}`
//!   activations, `z_j = S_j + b_j` where `S_j` is the ±1 accumulation over
//!   *firing* inputs only; since `S_j` is an integer,
//!   `z_j ≥ 0 ⇔ S_j ≥ ⌈−b_j⌉`, so `V_th,j = ⌈−b_j⌉` makes the SNN
//!   *bit-exact* with the BNN;
//! * the output layer is read out as membrane potentials: adding back the
//!   real-valued biases reproduces the logits, and argmax matches the BNN
//!   prediction exactly.

use esam_bits::{BitMatrix, BitVec};

use crate::bnn::{argmax, BnnNetwork};
use crate::error::NnError;

/// One converted layer: synapse bits plus integer thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnLayer {
    bits: BitMatrix,
    thresholds: Vec<i32>,
}

impl SnnLayer {
    /// Synapse bits: `bits[pre][post]` — rows are pre-synaptic neurons
    /// (SRAM wordlines), columns post-synaptic neurons (SRAM bitlines),
    /// matching Fig. 1(b).
    pub fn bits(&self) -> &BitMatrix {
        &self.bits
    }

    /// Integer firing thresholds per post-synaptic neuron.
    pub fn thresholds(&self) -> &[i32] {
        &self.thresholds
    }

    /// Fan-in (pre-synaptic width).
    pub fn inputs(&self) -> usize {
        self.bits.rows()
    }

    /// Fan-out (post-synaptic width).
    pub fn outputs(&self) -> usize {
        self.bits.cols()
    }
}

/// The converted Binary-SNN model, ready to be loaded into ESAM tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnModel {
    layers: Vec<SnnLayer>,
    output_bias: Vec<f32>,
}

/// Reference (golden) result of one SNN forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnTrace {
    /// Spike frames per layer (`spikes[0]` is the input frame).
    pub spikes: Vec<BitVec>,
    /// Output-layer membrane potentials.
    pub membranes: Vec<i32>,
    /// Logits reconstructed as `membrane + bias`.
    pub logits: Vec<f32>,
}

impl SnnTrace {
    /// Argmax class prediction.
    pub fn prediction(&self) -> usize {
        argmax(&self.logits)
    }
}

impl SnnModel {
    /// Converts a trained BNN.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] if the BNN has no layers.
    pub fn from_bnn(net: &BnnNetwork) -> Result<Self, NnError> {
        if net.layers().is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let layers = net
            .layers()
            .iter()
            .map(|layer| {
                let bits = BitMatrix::from_fn(layer.inputs(), layer.outputs(), |pre, post| {
                    layer.binary_weight(post, pre) > 0.0
                });
                let thresholds = layer
                    .bias()
                    .iter()
                    .map(|&b| (-f64::from(b)).ceil() as i32)
                    .collect();
                SnnLayer { bits, thresholds }
            })
            .collect();
        Ok(Self {
            layers,
            output_bias: net
                .layers()
                .last()
                .expect("non-empty network")
                .bias()
                .to_vec(),
        })
    }

    /// The converted layers.
    pub fn layers(&self) -> &[SnnLayer] {
        &self.layers
    }

    /// Output-layer biases used by the readout.
    pub fn output_bias(&self) -> &[f32] {
        &self.output_bias
    }

    /// Layer widths including the input.
    pub fn topology(&self) -> Vec<usize> {
        let mut sizes = vec![self.layers[0].inputs()];
        sizes.extend(self.layers.iter().map(|l| l.outputs()));
        sizes
    }

    /// Checks that every threshold fits a `bits`-bit signed register
    /// (the neuron's `t`-bit `V_th` register, §3.4).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ThresholdOverflow`] for the first offender.
    pub fn check_threshold_registers(&self, bits: u8) -> Result<(), NnError> {
        let max = (1i32 << (bits - 1)) - 1;
        let min = -(1i32 << (bits - 1));
        for layer in &self.layers {
            for &t in layer.thresholds() {
                if t > max || t < min {
                    return Err(NnError::ThresholdOverflow { threshold: t, bits });
                }
            }
        }
        Ok(())
    }

    /// Golden functional forward pass: integer ±1 accumulation over firing
    /// inputs, threshold compare per hidden layer, membrane readout at the
    /// output. The hardware simulator is tested bit-exact against this.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong input width.
    pub fn forward(&self, input: &BitVec) -> Result<SnnTrace, NnError> {
        if input.len() != self.layers[0].inputs() {
            return Err(NnError::DimensionMismatch {
                expected: self.layers[0].inputs(),
                got: input.len(),
            });
        }
        let mut spikes = vec![input.clone()];
        let mut membranes = Vec::new();
        for (index, layer) in self.layers.iter().enumerate() {
            let current = spikes.last().expect("at least the input frame");
            let mut sums = vec![0i32; layer.outputs()];
            for pre in current.iter_ones() {
                for (post, sum) in sums.iter_mut().enumerate() {
                    *sum += if layer.bits.get(pre, post) { 1 } else { -1 };
                }
            }
            let is_output = index + 1 == self.layers.len();
            if is_output {
                membranes = sums;
            } else {
                let mut fired = BitVec::new(layer.outputs());
                for (post, &sum) in sums.iter().enumerate() {
                    if sum >= layer.thresholds[post] {
                        fired.set(post, true);
                    }
                }
                spikes.push(fired);
            }
        }
        let logits: Vec<f32> = membranes
            .iter()
            .zip(&self.output_bias)
            .map(|(&m, &b)| m as f32 + b)
            .collect();
        Ok(SnnTrace {
            spikes,
            membranes,
            logits,
        })
    }

    /// Classifies one input spike frame.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] for a wrong input width.
    pub fn classify(&self, input: &BitVec) -> Result<usize, NnError> {
        Ok(self.forward(input)?.prediction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_input(width: usize, seed: u64) -> BitVec {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..width).map(|_| rng.random_bool(0.3)).collect()
    }

    #[test]
    fn conversion_preserves_shapes() {
        let net = BnnNetwork::new(&[20, 12, 5], 1).unwrap();
        let model = SnnModel::from_bnn(&net).unwrap();
        assert_eq!(model.topology(), vec![20, 12, 5]);
        assert_eq!(model.layers()[0].inputs(), 20);
        assert_eq!(model.layers()[0].outputs(), 12);
        assert_eq!(model.output_bias().len(), 5);
    }

    #[test]
    fn weight_bit_mapping() {
        let net = BnnNetwork::new(&[4, 2], 2).unwrap();
        let model = SnnModel::from_bnn(&net).unwrap();
        for pre in 0..4 {
            for post in 0..2 {
                let expected = net.layers()[0].binary_weight(post, pre) > 0.0;
                assert_eq!(model.layers()[0].bits().get(pre, post), expected);
            }
        }
    }

    #[test]
    fn snn_is_bit_exact_with_bnn() {
        // The central conversion property (ref [15]): identical predictions
        // and identical hidden activations for every input.
        let net = BnnNetwork::new(&[30, 16, 12, 4], 7).unwrap();
        let model = SnnModel::from_bnn(&net).unwrap();
        for seed in 0..40 {
            let input = random_input(30, seed);
            let x: Vec<f32> = input.to_bools().iter().map(|&b| f32::from(b)).collect();
            let bnn = net.forward_trace(&x).unwrap();
            let snn = model.forward(&input).unwrap();
            // Hidden layers match bit-for-bit.
            for (l, frame) in snn.spikes.iter().skip(1).enumerate() {
                let bnn_hidden: Vec<bool> =
                    bnn.activations[l + 1].iter().map(|&h| h == 1.0).collect();
                assert_eq!(
                    frame.to_bools(),
                    bnn_hidden,
                    "layer {l} diverged (seed {seed})"
                );
            }
            // Logits match up to f32 rounding; predictions exactly.
            for (a, b) in snn.logits.iter().zip(bnn.logits()) {
                assert!((a - b).abs() < 1e-4, "logit mismatch {a} vs {b}");
            }
            assert_eq!(snn.prediction(), bnn.prediction(), "seed {seed}");
        }
    }

    #[test]
    fn threshold_is_ceil_of_negated_bias() {
        let mut net = BnnNetwork::new(&[4, 3], 3).unwrap();
        net.layers_mut()[0]
            .bias_mut()
            .copy_from_slice(&[0.4, -1.7, 2.0]);
        let model = SnnModel::from_bnn(&net).unwrap();
        assert_eq!(model.layers()[0].thresholds(), &[0, 2, -2]);
    }

    #[test]
    fn threshold_register_check() {
        let mut net = BnnNetwork::new(&[4, 2], 4).unwrap();
        net.layers_mut()[0].bias_mut()[0] = -3000.0;
        let model = SnnModel::from_bnn(&net).unwrap();
        assert!(model.check_threshold_registers(16).is_ok());
        assert!(matches!(
            model.check_threshold_registers(12),
            Err(NnError::ThresholdOverflow { .. })
        ));
    }

    #[test]
    fn wrong_input_width() {
        let net = BnnNetwork::new(&[8, 4], 5).unwrap();
        let model = SnnModel::from_bnn(&net).unwrap();
        assert!(matches!(
            model.classify(&BitVec::new(9)),
            Err(NnError::DimensionMismatch { .. })
        ));
    }
}
