//! Error type for the neural-network substrate.

use std::fmt;

/// Errors produced by dataset generation, training and conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A dataset split was requested with zero samples.
    EmptyDataset,
    /// Input width does not match the layer/network.
    DimensionMismatch {
        /// Expected width.
        expected: usize,
        /// Received width.
        got: usize,
    },
    /// A network must have at least one layer.
    EmptyNetwork,
    /// A converted threshold does not fit the neuron's register width.
    ThresholdOverflow {
        /// The overflowing threshold value.
        threshold: i32,
        /// Register bit width it must fit.
        bits: u8,
    },
    /// An IDX (MNIST) file is malformed or unreadable.
    IdxFormat(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::EmptyDataset => write!(f, "dataset splits must contain at least one sample"),
            NnError::DimensionMismatch { expected, got } => {
                write!(f, "input width mismatch: expected {expected}, got {got}")
            }
            NnError::EmptyNetwork => write!(f, "network must contain at least one layer"),
            NnError::ThresholdOverflow { threshold, bits } => write!(
                f,
                "converted threshold {threshold} does not fit a {bits}-bit register"
            ),
            NnError::IdxFormat(msg) => write!(f, "malformed IDX file: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(NnError::EmptyDataset.to_string().contains("at least one"));
        let e = NnError::DimensionMismatch {
            expected: 768,
            got: 784,
        };
        assert!(e.to_string().contains("768"));
        let e = NnError::ThresholdOverflow {
            threshold: 5000,
            bits: 12,
        };
        assert!(e.to_string().contains("5000"));
        let e = NnError::IdxFormat("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }
}
