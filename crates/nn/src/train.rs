//! Straight-through-estimator training of the BNN.
//!
//! The forward pass uses binarized weights and hard step activations; the
//! backward pass substitutes a triangular surrogate derivative for the step
//! and flows gradients onto the *latent* real weights, which are clipped to
//! `[−1, 1]` after every update (the standard BNN recipe). Softmax
//! cross-entropy is applied to the real-valued output logits.
//!
//! The surrogate window scales with `√fan-in`: pre-activation magnitudes of
//! a binary layer grow with the root of the number of active inputs, so a
//! fixed window would starve wide layers of gradient.

use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::bnn::{binarize, BnnNetwork};
use crate::dataset::Split;
use crate::error::NnError;
use crate::matrix::Matrix;

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for the latent weights.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f32,
    /// Scale of the surrogate-gradient window relative to `√fan-in`.
    pub surrogate_scale: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 16,
            learning_rate: 0.15,
            momentum: 0.9,
            lr_decay: 0.9,
            surrogate_scale: 0.5,
            seed: 11,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch (fraction).
    pub accuracy: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Accuracy of the final epoch.
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.accuracy)
    }
}

/// STE trainer for [`BnnNetwork`].
///
/// # Examples
///
/// ```
/// use esam_nn::dataset::{Dataset, DigitsConfig};
/// use esam_nn::bnn::BnnNetwork;
/// use esam_nn::train::{TrainConfig, Trainer};
///
/// let data = Dataset::generate(&DigitsConfig {
///     train_count: 200, test_count: 50, ..DigitsConfig::default()
/// })?;
/// let mut net = BnnNetwork::new(&[768, 32, 10], 1)?;
/// let report = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() })
///     .train(&mut net, &data.train)?;
/// assert_eq!(report.epochs.len(), 2);
/// # Ok::<(), esam_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `split`, mutating it in place.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyDataset`] for an empty split and
    /// [`NnError::DimensionMismatch`] when images do not match the network's
    /// input width.
    pub fn train(&self, net: &mut BnnNetwork, split: &Split) -> Result<TrainReport, NnError> {
        if split.is_empty() {
            return Err(NnError::EmptyDataset);
        }
        if split.image(0).len() != net.input_width() {
            return Err(NnError::DimensionMismatch {
                expected: net.input_width(),
                got: split.image(0).len(),
            });
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let layer_count = net.layers().len();
        let mut weight_velocity: Vec<Matrix> = net
            .layers()
            .iter()
            .map(|l| Matrix::zeros(l.outputs(), l.inputs()))
            .collect();
        let mut bias_velocity: Vec<Vec<f32>> = net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.outputs()])
            .collect();
        let surrogate_windows: Vec<f32> = net
            .layers()
            .iter()
            .map(|l| (l.inputs() as f32).sqrt() * self.config.surrogate_scale)
            .collect();

        let mut order: Vec<usize> = (0..split.len()).collect();
        let mut lr = self.config.learning_rate;
        let mut epochs = Vec::with_capacity(self.config.epochs);

        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut correct = 0usize;

            for batch in order.chunks(self.config.batch_size) {
                let mut weight_grads: Vec<Matrix> = net
                    .layers()
                    .iter()
                    .map(|l| Matrix::zeros(l.outputs(), l.inputs()))
                    .collect();
                let mut bias_grads: Vec<Vec<f32>> = net
                    .layers()
                    .iter()
                    .map(|l| vec![0.0; l.outputs()])
                    .collect();

                for &sample in batch {
                    let x = split.image(sample);
                    let label = split.label(sample) as usize;
                    let trace = net.forward_trace(x)?;
                    let probabilities = softmax(trace.logits());
                    epoch_loss += -f64::from(probabilities[label].max(1e-12).ln());
                    if trace.prediction() == label {
                        correct += 1;
                    }

                    // Output-layer delta: softmax − one-hot.
                    let mut delta: Vec<f32> = probabilities;
                    delta[label] -= 1.0;

                    // Backward through the stack.
                    for l in (0..layer_count).rev() {
                        let inputs = &trace.activations[l];
                        // Accumulate gradients for layer l.
                        for (o, &d_o) in delta.iter().enumerate() {
                            if d_o == 0.0 {
                                continue;
                            }
                            bias_grads[l][o] += d_o;
                            let grad_row = weight_grads[l].row_mut(o);
                            for (i, &x_i) in inputs.iter().enumerate() {
                                if x_i != 0.0 {
                                    grad_row[i] += d_o * x_i;
                                }
                            }
                        }
                        // Propagate to the previous layer (skip at input).
                        if l > 0 {
                            let layer = &net.layers()[l];
                            let width = layer.inputs();
                            let mut prev_delta = vec![0.0f32; width];
                            for (o, &d_o) in delta.iter().enumerate() {
                                if d_o == 0.0 {
                                    continue;
                                }
                                let row = layer.latent().row(o);
                                for (i, prev) in prev_delta.iter_mut().enumerate() {
                                    *prev += d_o * binarize(row[i]);
                                }
                            }
                            // Surrogate derivative of the step at layer l−1.
                            let window = surrogate_windows[l - 1];
                            for (i, prev) in prev_delta.iter_mut().enumerate() {
                                let z = trace.pre_activations[l - 1][i];
                                *prev *= triangular_surrogate(z, window);
                            }
                            delta = prev_delta;
                        }
                    }
                }

                // SGD with momentum on latent weights and biases.
                let scale = lr / batch.len() as f32;
                for l in 0..layer_count {
                    let layer = &mut net.layers_mut()[l];
                    let velocity = &mut weight_velocity[l];
                    for o in 0..layer.outputs() {
                        let grad_row = weight_grads[l].row(o).to_vec();
                        let velocity_row = velocity.row_mut(o);
                        let latent_row = layer.latent_mut().row_mut(o);
                        for i in 0..latent_row.len() {
                            velocity_row[i] =
                                self.config.momentum * velocity_row[i] - scale * grad_row[i];
                            latent_row[i] = (latent_row[i] + velocity_row[i]).clamp(-1.0, 1.0);
                        }
                    }
                    for (o, bias) in layer.bias_mut().iter_mut().enumerate() {
                        bias_velocity[l][o] =
                            self.config.momentum * bias_velocity[l][o] - scale * bias_grads[l][o];
                        *bias += bias_velocity[l][o];
                    }
                }
            }

            epochs.push(EpochStats {
                loss: (epoch_loss / split.len() as f64) as f32,
                accuracy: correct as f64 / split.len() as f64,
            });
            lr *= self.config.lr_decay;
        }

        Ok(TrainReport { epochs })
    }
}

/// Numerically-stable softmax.
fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Triangular surrogate for the step derivative: peak `1/window` at `z = 0`,
/// zero outside `|z| ≥ window`.
fn triangular_surrogate(z: f32, window: f32) -> f32 {
    let t = 1.0 - (z / window).abs();
    if t > 0.0 {
        t / window
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DigitsConfig};

    fn small_data(train: usize, test: usize) -> Dataset {
        Dataset::generate(&DigitsConfig {
            train_count: train,
            test_count: test,
            noise: 0.01,
            ..DigitsConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge logits.
        let p = softmax(&[1000.0, 999.0]);
        assert!(p[0].is_finite() && p[0] > p[1]);
    }

    #[test]
    fn surrogate_shape() {
        assert!(triangular_surrogate(0.0, 4.0) > triangular_surrogate(2.0, 4.0));
        assert_eq!(triangular_surrogate(5.0, 4.0), 0.0);
        assert_eq!(triangular_surrogate(-5.0, 4.0), 0.0);
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let data = small_data(400, 100);
        let mut net = BnnNetwork::new(&[768, 48, 10], 3).unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        })
        .train(&mut net, &data.train)
        .unwrap();
        let first = &report.epochs[0];
        let last = report.epochs.last().unwrap();
        assert!(
            last.loss < first.loss,
            "loss should fall: {} → {}",
            first.loss,
            last.loss
        );
        assert!(
            report.final_accuracy() > 0.5,
            "train accuracy {} too low for an easy synthetic set",
            report.final_accuracy()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_data(100, 10);
        let config = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let mut a = BnnNetwork::new(&[768, 16, 10], 5).unwrap();
        let mut b = BnnNetwork::new(&[768, 16, 10], 5).unwrap();
        let ra = Trainer::new(config).train(&mut a, &data.train).unwrap();
        let rb = Trainer::new(config).train(&mut b, &data.train).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn latent_weights_stay_clipped() {
        let data = small_data(100, 10);
        let mut net = BnnNetwork::new(&[768, 16, 10], 5).unwrap();
        Trainer::new(TrainConfig {
            epochs: 2,
            learning_rate: 0.5,
            ..TrainConfig::default()
        })
        .train(&mut net, &data.train)
        .unwrap();
        for layer in net.layers() {
            assert!(layer
                .latent()
                .as_slice()
                .iter()
                .all(|w| (-1.0..=1.0).contains(w)));
        }
    }

    #[test]
    fn dimension_mismatch_detected() {
        let data = small_data(10, 10);
        let mut net = BnnNetwork::new(&[100, 16, 10], 5).unwrap();
        assert!(matches!(
            Trainer::new(TrainConfig::default()).train(&mut net, &data.train),
            Err(NnError::DimensionMismatch { .. })
        ));
    }
}
