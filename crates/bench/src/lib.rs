//! Experiment harness: regenerates every table and figure of the ESAM paper.
//!
//! Each artifact of the paper's evaluation section has a module under
//! [`experiments`] that computes it from the workspace's models — nothing is
//! hard-coded except the paper's own quoted values, printed alongside for
//! comparison. The `repro` binary drives them:
//!
//! ```text
//! cargo run --release -p esam-bench --bin repro -- all
//! cargo run --release -p esam-bench --bin repro -- fig7 table2
//! cargo run --release -p esam-bench --bin repro -- --quick fig8
//! ```
//!
//! | id | artifact |
//! |----|----------|
//! | `area` | §4.2 cell areas |
//! | `fig6` | transposed-port write/read time & energy |
//! | `fig7` | access time/energy vs ports × V_prech |
//! | `table2` | pipeline stage durations |
//! | `arbiter` | §3.3 flat vs tree arbiter |
//! | `nbl` | §4.1 array-size validity rule |
//! | `learning` | §4.4.1 online-learning cost |
//! | `learning_curve` | §4.4 streaming STDP session: accuracy recovery + training cost |
//! | `fig8` | system sweep + headline gains |
//! | `hot_path` | simulator hot-path throughput: frames/sec per cell kind (`--json` for machines) |
//! | `batch` | simulator batch-scaling: frames/sec vs worker threads |
//! | `mesh` | multi-core mesh scaling: pipeline-parallel throughput vs core count (`--json` for machines) |
//! | `serve` | concurrent serving: closed/open-loop latency SLOs + admission behaviour (`--json` for machines) |
//! | `faults` | fault injection: accuracy vs bit-flip rate, serving under worker deaths, mesh under packet loss (`--json` for machines) |
//! | `integrity` | SECDED self-checking: protection curves vs flip rate with the oracle restore disabled, mesh CRC/retransmit sweep (`--json` for machines) |
//! | `observe` | deterministic end-to-end trace (Perfetto-loadable) + metrics snapshot with a bottleneck breakdown (`--json` for machines) |
//! | `table3` | SOTA comparison |
//! | `accuracy` | §4.4.2 classification accuracy |
//! | `sta` | §3.3 gate-level STA cross-check (structural arbiter) |
//! | `transient` | MNA transient cross-check of the bitline models |
//! | `addertree` | intro baseline: adder-tree CIM vs CIM-P sparsity sweep |
//! | `corners` | Table 3 note: DVFS/HVT corner projection |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod error;
pub mod experiments;
mod table;

pub use context::{ExperimentContext, Fidelity};
pub use error::BenchError;
pub use table::Table;

/// Experiment ids that need no trained network (circuit-level artifacts
/// plus the synthetic-workload `hot_path`, `serve`, `mesh` and `faults`
/// simulator benchmarks).
pub const CIRCUIT_EXPERIMENTS: [&str; 16] = [
    "area",
    "fig6",
    "fig7",
    "table2",
    "arbiter",
    "nbl",
    "sta",
    "transient",
    "addertree",
    "corners",
    "hot_path",
    "serve",
    "mesh",
    "faults",
    "integrity",
    "observe",
];

/// Experiment ids that need the trained network (system-level artifacts).
/// `learning_curve` is system-level too but trains *online* from an
/// untrained readout, so it builds no offline-trained context.
pub const SYSTEM_EXPERIMENTS: [&str; 6] = [
    "learning",
    "learning_curve",
    "fig8",
    "table3",
    "accuracy",
    "batch",
];

/// Runs a list of experiments, printing each table to stdout.
///
/// `samples` bounds the number of test images used by the system-level
/// experiments (and scales the request counts of the `serve` experiment);
/// `threads` caps the worker sweep of the `batch` experiment and the
/// worker pool of the `serve` experiment (0 = this machine's available
/// parallelism); `json` switches experiments that support machine-readable
/// output (`hot_path`, `serve`, `mesh`, `faults`, `observe`) from a table
/// to one JSON object per experiment. The shared
/// [`ExperimentContext`] (dataset + trained model) is built lazily, only
/// when a system experiment is requested.
///
/// # Errors
///
/// Returns [`BenchError::UnknownExperiment`] for an unrecognized id, or any
/// propagated model error.
pub fn run_experiments(
    ids: &[String],
    fidelity: Fidelity,
    samples: usize,
    threads: usize,
    json: bool,
) -> Result<(), BenchError> {
    let expanded: Vec<String> = if ids.iter().any(|id| id == "all") {
        CIRCUIT_EXPERIMENTS
            .iter()
            .chain(SYSTEM_EXPERIMENTS.iter())
            .map(|s| s.to_string())
            .collect()
    } else {
        ids.to_vec()
    };

    // Validate ids before doing any expensive work.
    for id in &expanded {
        let known =
            CIRCUIT_EXPERIMENTS.contains(&id.as_str()) || SYSTEM_EXPERIMENTS.contains(&id.as_str());
        if !known {
            return Err(BenchError::UnknownExperiment(id.clone()));
        }
    }

    let needs_context = expanded
        .iter()
        .any(|id| ["fig8", "table3", "accuracy", "batch"].contains(&id.as_str()));
    let context = if needs_context {
        eprintln!(
            "[repro] preparing dataset + training the 768:256:256:256:10 BNN ({fidelity:?}) …"
        );
        Some(ExperimentContext::prepare(fidelity)?)
    } else {
        None
    };
    // fig8 results are reused by table3.
    let mut fig8_cache: Option<experiments::fig8::Fig8Results> = None;
    let mut accuracy_cache: Option<experiments::accuracy::AccuracyNumbers> = None;

    for id in &expanded {
        match id.as_str() {
            "area" => println!("{}", experiments::area::area_table()),
            "fig6" => println!("{}", experiments::fig6::fig6_table()?),
            "fig7" => println!("{}", experiments::fig7::fig7_table()?),
            "table2" => println!("{}", experiments::table2::table2_table()?),
            "arbiter" => {
                println!("{}", experiments::arbiter::arbiter_table()?);
                println!("{}", experiments::arbiter::arbiter_scaling_table()?);
            }
            "nbl" => println!("{}", experiments::nbl::nbl_table()),
            "hot_path" => {
                let results = experiments::hot_path::hot_path_results(samples)?;
                if json {
                    println!("{}", experiments::hot_path::hot_path_json(&results));
                } else {
                    println!("{}", experiments::hot_path::hot_path_table(&results));
                }
            }
            "serve" => {
                let results = experiments::serve::serve_results(samples, threads)?;
                if json {
                    println!("{}", experiments::serve::serve_json(&results));
                } else {
                    println!("{}", experiments::serve::serve_table(&results));
                }
            }
            "mesh" => {
                let results = experiments::mesh::mesh_results(samples)?;
                if json {
                    println!("{}", experiments::mesh::mesh_json(&results));
                } else {
                    println!("{}", experiments::mesh::mesh_table(&results));
                }
            }
            "faults" => {
                let results = experiments::faults::faults_results(samples, threads)?;
                if json {
                    println!("{}", experiments::faults::faults_json(&results));
                } else {
                    println!("{}", experiments::faults::faults_flip_table(&results));
                    println!("{}", experiments::faults::faults_serve_table(&results));
                    println!("{}", experiments::faults::faults_mesh_table(&results));
                }
            }
            "integrity" => {
                let results = experiments::integrity::integrity_results(samples)?;
                if json {
                    println!("{}", experiments::integrity::integrity_json(&results));
                } else {
                    println!(
                        "{}",
                        experiments::integrity::integrity_protection_table(&results)
                    );
                    println!("{}", experiments::integrity::integrity_mesh_table(&results));
                }
            }
            "observe" => {
                let results = experiments::observe::observe_results(samples)?;
                if json {
                    println!("{}", experiments::observe::observe_json(&results));
                    // The one wall-clock figure stays off stdout so the
                    // JSON snapshot is byte-for-byte reproducible.
                    eprintln!(
                        "[observe] no-op tracer overhead on the inference hot path: {:+.2}% over {} frames (acceptance < 2%)",
                        results.overhead_pct, results.overhead_frames
                    );
                } else {
                    println!("{}", experiments::observe::observe_table(&results));
                }
                if let Ok(dir) = std::env::var("ESAM_OBSERVE_DIR") {
                    match experiments::observe::write_artifacts(
                        &results,
                        std::path::Path::new(&dir),
                    ) {
                        Ok(()) => eprintln!(
                            "[observe] wrote {dir}/trace.json (Perfetto), {dir}/metrics.prom, {dir}/metrics.json"
                        ),
                        Err(e) => eprintln!("[observe] artifact write failed: {e}"),
                    }
                }
            }
            "sta" => println!("{}", experiments::sta::sta_table()?),
            "transient" => println!("{}", experiments::transient::transient_table()?),
            "addertree" => println!("{}", experiments::addertree::addertree_table()?),
            "corners" => println!("{}", experiments::corners::corners_table()),
            "learning" => println!("{}", experiments::learning::learning_table()?),
            "learning_curve" => {
                let results = experiments::learning_curve::learning_curve_results(samples)?;
                println!(
                    "{}",
                    experiments::learning_curve::learning_curve_table(&results)
                );
            }
            "batch" => {
                let context = context.as_ref().expect("context prepared above");
                let results = experiments::batch::batch_results(context, samples, threads)?;
                println!("{}", experiments::batch::batch_table(&results));
            }
            "fig8" => {
                let context = context.as_ref().expect("context prepared above");
                if fig8_cache.is_none() {
                    fig8_cache = Some(experiments::fig8::fig8_results(context, samples)?);
                }
                let results = fig8_cache.as_ref().expect("just populated");
                println!("{}", experiments::fig8::fig8_table(results));
                println!("{}", experiments::fig8::headline_table(results));
            }
            "table3" => {
                let context = context.as_ref().expect("context prepared above");
                if fig8_cache.is_none() {
                    fig8_cache = Some(experiments::fig8::fig8_results(context, samples)?);
                }
                if accuracy_cache.is_none() {
                    accuracy_cache =
                        Some(experiments::accuracy::accuracy_numbers(context, samples)?);
                }
                let results = fig8_cache.as_ref().expect("just populated");
                let accuracy = accuracy_cache.as_ref().expect("just populated");
                println!(
                    "{}",
                    experiments::table3::table3_table(
                        results.four_port(),
                        accuracy.hardware * 100.0
                    )
                );
            }
            "accuracy" => {
                let context = context.as_ref().expect("context prepared above");
                if accuracy_cache.is_none() {
                    accuracy_cache =
                        Some(experiments::accuracy::accuracy_numbers(context, samples)?);
                }
                println!(
                    "{}",
                    experiments::accuracy::accuracy_table(
                        accuracy_cache.as_ref().expect("just populated")
                    )
                );
            }
            _ => unreachable!("validated above"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected_before_training() {
        let err =
            run_experiments(&["bogus".to_string()], Fidelity::Quick, 5, 0, false).unwrap_err();
        assert!(matches!(err, BenchError::UnknownExperiment(_)));
    }

    #[test]
    fn circuit_experiments_run_without_context() {
        for id in CIRCUIT_EXPERIMENTS {
            run_experiments(&[id.to_string()], Fidelity::Quick, 5, 0, false)
                .unwrap_or_else(|e| panic!("{id} failed: {e}"));
        }
    }

    #[test]
    fn hot_path_runs_in_json_mode() {
        run_experiments(&["hot_path".to_string()], Fidelity::Quick, 2, 0, true)
            .expect("hot_path --json");
    }

    #[test]
    fn observe_runs_in_json_mode() {
        run_experiments(&["observe".to_string()], Fidelity::Quick, 4, 0, true)
            .expect("observe --json");
    }
}
