//! Shared experiment context: the trained network and dataset.
//!
//! The system-level experiments (Fig. 8, Table 3, accuracy) all need the
//! same expensive artifact — a BNN trained on the synthetic digit set and
//! converted to a binary SNN. [`ExperimentContext`] builds it once;
//! [`Fidelity::Quick`] trims the training budget for benches and smoke runs
//! while keeping the paper's exact topology.

use esam_bits::BitVec;
use esam_nn::{BnnNetwork, Dataset, DigitsConfig, SnnModel, TrainConfig, TrainReport, Trainer};
use esam_tech::calibration::paper;

use crate::BenchError;

/// How much training budget to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Full budget (the EXPERIMENTS.md numbers): ~4k samples, 12 epochs.
    #[default]
    Full,
    /// Reduced budget for benches/tests: ~1.2k samples, 5 epochs.
    Quick,
}

/// Trained model + dataset shared across system-level experiments.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    dataset: Dataset,
    network: BnnNetwork,
    model: SnnModel,
    train_report: TrainReport,
    fidelity: Fidelity,
}

impl ExperimentContext {
    /// Builds the context: generate data, train the 768:256:256:256:10 BNN,
    /// convert to an SNN.
    ///
    /// # Errors
    ///
    /// Propagates dataset/training/conversion errors.
    pub fn prepare(fidelity: Fidelity) -> Result<Self, BenchError> {
        let digits = match fidelity {
            Fidelity::Full => DigitsConfig::default(),
            Fidelity::Quick => DigitsConfig {
                train_count: 1200,
                test_count: 400,
                ..DigitsConfig::default()
            },
        };
        let train = match fidelity {
            Fidelity::Full => TrainConfig::default(),
            Fidelity::Quick => TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        };
        let dataset = Dataset::generate(&digits)?;
        let mut network = BnnNetwork::new(&paper::NETWORK_TOPOLOGY, 42)?;
        let train_report = Trainer::new(train).train(&mut network, &dataset.train)?;
        let model = SnnModel::from_bnn(&network)?;
        Ok(Self {
            dataset,
            network,
            model,
            train_report,
            fidelity,
        })
    }

    /// The synthetic digit dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The trained BNN.
    pub fn network(&self) -> &BnnNetwork {
        &self.network
    }

    /// The converted binary-SNN model.
    pub fn model(&self) -> &SnnModel {
        &self.model
    }

    /// Training statistics.
    pub fn train_report(&self) -> &TrainReport {
        &self.train_report
    }

    /// Fidelity used.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// The first `n` test images as spike frames (all of them when `n` is
    /// larger than the split).
    pub fn test_frames(&self, n: usize) -> Vec<BitVec> {
        let count = n.min(self.dataset.test.len());
        (0..count).map(|i| self.dataset.test.spikes(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_trains_usably() {
        let context = ExperimentContext::prepare(Fidelity::Quick).unwrap();
        assert_eq!(context.model().topology(), paper::NETWORK_TOPOLOGY.to_vec());
        assert!(
            context.train_report().final_accuracy() > 0.8,
            "quick training reached only {}",
            context.train_report().final_accuracy()
        );
        assert_eq!(context.test_frames(5).len(), 5);
        assert_eq!(context.test_frames(10_000).len(), 400);
    }
}
