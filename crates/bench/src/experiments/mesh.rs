//! Mesh-scaling experiment: pipeline-parallel throughput vs core count.
//!
//! Measures the `esam-mesh` multi-core model on two synthetic workloads —
//! a *deep* cascade (many similar layers, the layer-pipelining sweet
//! spot) and a *wide* one (few layers, so extra cores force column
//! splits) — at 1/2/4/8 cores. Two domains are reported side by side:
//!
//! * **modeled** — the cycle-domain figures the mesh exists for:
//!   steady-state throughput is one frame per `mesh_bottleneck_cycles`
//!   (the slowest core occupancy or link, per frame), so the modeled
//!   speedup over one core is machine-independent and reproducible to
//!   the cycle. This is where pipeline-parallel scaling must show up —
//!   on the deep workload, ≥ 2x at 4 cores (pinned by a test below).
//! * **simulator wall-clock** — frames/s of the threaded simulation
//!   itself. Scaling here additionally needs physical cores, so on a
//!   starved machine the modeled column is the trustworthy one.
//!
//! Every point also re-checks the crate's core contract: mesh outputs
//! must be bit-identical to looping the plain single-core
//! [`EsamSystem::infer`] over the same frames, at every core count.
//!
//! The workload is synthetic and deterministic (seed-initialized BNNs,
//! fixed stride-pattern frames): no dataset, no training, reproducible
//! to the spike — `repro mesh --json` emits the figures machine-readable
//! for snapshot diffing.

use std::time::{Duration, Instant};

use esam_bits::BitVec;
use esam_core::{EsamSystem, SystemConfig};
use esam_mesh::{MeshConfig, MeshSystem};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;

use crate::{BenchError, Table};

/// Core counts swept per workload.
const CORE_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One measured (workload, core count) point.
#[derive(Debug, Clone)]
pub struct MeshPoint {
    /// Cores the plan actually used (the partitioner may clamp).
    pub cores: usize,
    /// Average per-frame mesh bottleneck in cycles: the slowest pipeline
    /// station (core occupancy or link serialization) — steady-state
    /// modeled throughput is one frame per this many cycles.
    pub modeled_cycles_per_frame: f64,
    /// Modeled pipeline-parallel throughput, inferences per second.
    pub modeled_frames_per_s: f64,
    /// Modeled throughput relative to this workload's one-core point.
    pub modeled_speedup: f64,
    /// Average per-frame critical-path interconnect cycles.
    pub noc_cycles_per_frame: f64,
    /// Wall-clock time of the threaded simulation for the whole batch.
    pub wall: Duration,
    /// Simulated frames per wall-clock second (needs physical cores to
    /// scale; the modeled columns do not).
    pub sim_frames_per_s: f64,
    /// Whether mesh outputs matched the plain single-core system exactly.
    pub identical: bool,
}

/// One synthetic workload's sweep.
#[derive(Debug, Clone)]
pub struct MeshWorkload {
    /// Short name: `"deep"` or `"wide"`.
    pub name: &'static str,
    /// Layer topology of the synthetic network.
    pub topology: Vec<usize>,
    /// Frames measured per point.
    pub frames: usize,
    /// One point per swept core count, ascending.
    pub points: Vec<MeshPoint>,
}

/// Results of the mesh-scaling sweep.
#[derive(Debug, Clone)]
pub struct MeshResults {
    /// The swept workloads: deep, then wide.
    pub workloads: Vec<MeshWorkload>,
}

impl MeshResults {
    /// The named workload's sweep, if present.
    pub fn workload(&self, name: &str) -> Option<&MeshWorkload> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

/// Deterministic ~20 %-density input frames (fixed stride pattern, no
/// RNG dependency — same idiom as the `hot_path` experiment).
fn synthetic_frames(width: usize, count: usize) -> Vec<BitVec> {
    (0..count)
        .map(|f| {
            let mut frame = BitVec::new(width);
            for k in 0..width / 5 {
                frame.set((f * 131 + k * 17 + (f * k) % 13) % width, true);
            }
            frame
        })
        .collect()
}

/// Runs one workload's core sweep: `samples` frames per point, outputs
/// cross-checked against the plain single-core system.
fn sweep_workload(
    name: &'static str,
    topology: &[usize],
    samples: usize,
) -> Result<MeshWorkload, BenchError> {
    let net = BnnNetwork::new(topology, 0x3E54)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), topology).build()?;
    let frames = synthetic_frames(topology[0], samples);

    let mut plain = EsamSystem::from_model(&model, &config)?;
    let expected: Vec<_> = frames
        .iter()
        .map(|f| plain.infer(f))
        .collect::<Result<_, _>>()?;

    let mut points = Vec::new();
    let mut one_core_throughput = None;
    for cores in CORE_SWEEP {
        let mut mesh = MeshSystem::from_model(&model, &config, &MeshConfig::with_cores(cores))?;
        let start = Instant::now();
        let results = mesh.run(&frames)?;
        let wall = start.elapsed();
        let metrics = mesh.finalize_metrics()?;
        let baseline = *one_core_throughput.get_or_insert(metrics.mesh_throughput_inf_s);
        points.push(MeshPoint {
            cores: metrics.cores,
            modeled_cycles_per_frame: metrics.mesh_bottleneck_cycles,
            modeled_frames_per_s: metrics.mesh_throughput_inf_s,
            modeled_speedup: metrics.mesh_throughput_inf_s / baseline,
            noc_cycles_per_frame: metrics.noc_latency_cycles,
            wall,
            sim_frames_per_s: frames.len() as f64 / wall.as_secs_f64(),
            identical: results == expected,
        });
    }
    Ok(MeshWorkload {
        name,
        topology: topology.to_vec(),
        frames: frames.len(),
        points,
    })
}

/// Runs the sweep: `samples` frames through both synthetic workloads at
/// every swept core count.
///
/// # Errors
///
/// Propagates model-construction and inference errors.
pub fn mesh_results(samples: usize) -> Result<MeshResults, BenchError> {
    let samples = samples.max(1);
    Ok(MeshResults {
        workloads: vec![
            // Deep: five similar 256-wide layers — one per pipeline stage
            // at 4 cores, the layer-pipelining sweet spot.
            sweep_workload("deep", &[256, 256, 256, 256, 256, 10], samples)?,
            // Wide: one 1024-wide hidden layer dominates, so extra cores
            // must column-split it to help at all.
            sweep_workload("wide", &[768, 1024, 10], samples)?,
        ],
    })
}

/// Renders the scaling table.
pub fn mesh_table(results: &MeshResults) -> Table {
    let mut table = Table::new(
        "Mesh scaling — pipeline-parallel inference vs core count (4-port system)",
        &[
            "workload",
            "cores",
            "modeled cycles/inf",
            "modeled frames/s",
            "speedup",
            "noc cycles/inf",
            "wall [ms]",
            "sim frames/s",
            "outputs",
        ],
    );
    for workload in &results.workloads {
        for point in &workload.points {
            table.row_owned(vec![
                format!("{} {:?}", workload.name, workload.topology),
                point.cores.to_string(),
                format!("{:.1}", point.modeled_cycles_per_frame),
                format!("{:.0}", point.modeled_frames_per_s),
                format!("{:.2}x", point.modeled_speedup),
                format!("{:.1}", point.noc_cycles_per_frame),
                format!("{:.1}", point.wall.as_secs_f64() * 1e3),
                format!("{:.0}", point.sim_frames_per_s),
                if point.identical {
                    "bit-identical"
                } else {
                    "MISMATCH"
                }
                .into(),
            ]);
        }
    }
    table.note("modeled columns are cycle-domain (machine-independent): throughput = clock / max(core occupancy, link cycles), interconnect charged as hops + AER serialization; sim frames/s is simulator wall-clock and needs physical cores to scale");
    table
}

/// Renders the results as one machine-readable JSON object (hand-rolled:
/// the workspace is offline and serde is not vendored).
pub fn mesh_json(results: &MeshResults) -> String {
    let workloads: Vec<String> = results
        .workloads
        .iter()
        .map(|w| {
            let points: Vec<String> = w
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"cores\":{},\"modeled_cycles_per_frame\":{:.3},\"modeled_frames_per_s\":{:.1},\"modeled_speedup\":{:.4},\"noc_cycles_per_frame\":{:.3},\"wall_ms\":{:.3},\"sim_frames_per_s\":{:.1},\"identical\":{}}}",
                        p.cores,
                        p.modeled_cycles_per_frame,
                        p.modeled_frames_per_s,
                        p.modeled_speedup,
                        p.noc_cycles_per_frame,
                        p.wall.as_secs_f64() * 1e3,
                        p.sim_frames_per_s,
                        p.identical
                    )
                })
                .collect();
            let topology: Vec<String> = w.topology.iter().map(|n| n.to_string()).collect();
            format!(
                "{{\"name\":\"{}\",\"topology\":[{}],\"frames\":{},\"points\":[{}]}}",
                w.name,
                topology.join(","),
                w.frames,
                points.join(",")
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"mesh\",\"workloads\":[{}]}}",
        workloads.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_workloads_at_every_core_count() {
        let results = mesh_results(6).unwrap();
        assert_eq!(results.workloads.len(), 2);
        for workload in &results.workloads {
            assert_eq!(workload.frames, 6);
            assert_eq!(workload.points.len(), CORE_SWEEP.len());
            for point in &workload.points {
                assert!(point.identical, "{} @ {} cores", workload.name, point.cores);
                assert!(point.modeled_frames_per_s > 0.0);
            }
            assert_eq!(workload.points[0].cores, 1);
            assert_eq!(workload.points[0].modeled_speedup, 1.0);
            assert_eq!(workload.points[0].noc_cycles_per_frame, 0.0);
        }
        assert_eq!(mesh_table(&results).row_count(), 2 * CORE_SWEEP.len());
    }

    #[test]
    fn deep_workload_scales_at_least_2x_at_4_cores() {
        // The PR's acceptance bar, pinned: pipeline-parallel throughput on
        // a ≥4-layer cascade must reach ≥ 2x one core at 4 cores in the
        // modeled cycle domain.
        let results = mesh_results(8).unwrap();
        let deep = results.workload("deep").unwrap();
        let at4 = deep.points.iter().find(|p| p.cores == 4).unwrap();
        assert!(
            at4.modeled_speedup >= 2.0,
            "deep 4-core modeled speedup {:.2}x < 2x",
            at4.modeled_speedup
        );
    }

    #[test]
    fn modeled_speedup_never_degrades_with_more_cores() {
        let results = mesh_results(4).unwrap();
        for workload in &results.workloads {
            for pair in workload.points.windows(2) {
                assert!(
                    pair[1].modeled_speedup >= pair[0].modeled_speedup * 0.999,
                    "{}: speedup fell from {:.2}x to {:.2}x",
                    workload.name,
                    pair[0].modeled_speedup,
                    pair[1].modeled_speedup
                );
            }
        }
    }

    #[test]
    fn json_is_well_formed_enough_to_parse_by_eye_and_machine() {
        let results = mesh_results(2).unwrap();
        let json = mesh_json(&results);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"experiment\":\"mesh\""));
        assert!(json.contains("\"name\":\"deep\"") && json.contains("\"name\":\"wide\""));
        assert_eq!(json.matches("\"cores\"").count(), 2 * CORE_SWEEP.len());
        assert!(!json.contains("\"identical\":false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
