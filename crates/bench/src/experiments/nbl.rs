//! §4.1 / ref \[19\] reproduction: the NBL write-assist rule that limits
//! arrays to 128×128.

use esam_sram::BitcellKind;
use esam_tech::nbl::NblModel;

use crate::Table;

/// Reproduces the array-size validity study: required `V_WD` per cell type
/// and bitline length, with the −400 mV yield limit.
pub fn nbl_table() -> Table {
    let mut table = Table::new(
        "§4.1 — NBL write assist: required V_WD [mV] vs cells per write bitline",
        &[
            "cell",
            "64 cells",
            "128 cells",
            "192 cells",
            "256 cells",
            "max valid",
        ],
    );
    let nbl = NblModel::paper_default();
    for cell in BitcellKind::ALL {
        let mult = cell.area_multiplier();
        let mut cells_row = vec![cell.name().to_string()];
        for n in [64usize, 128, 192, 256] {
            cells_row.push(match nbl.required_assist(n, mult) {
                Ok(v) => format!("{:.0}", v.mv()),
                Err(_) => "invalid".to_string(),
            });
        }
        cells_row.push(nbl.max_valid_cells(mult).to_string());
        table.row_owned(cells_row);
    }
    table.note("entries marked 'invalid' need V_WD below the −400 mV yield limit; this is what restricts ESAM arrays to ≤128 rows and columns (§4.1)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_reproduces_the_128_limit() {
        let t = nbl_table();
        assert_eq!(t.row_count(), 5);
        for row in 0..5 {
            // 128 cells valid for all types…
            assert_ne!(t.cell(row, 2), Some("invalid"), "row {row}");
            // …256 cells valid for none.
            assert_eq!(t.cell(row, 4), Some("invalid"), "row {row}");
            // 128 is within every cell's valid range.
            let max: usize = t.cell(row, 5).unwrap().parse().unwrap();
            assert!(max >= 128);
        }
    }
}
