//! §4.2 cell-area reproduction: absolute areas and multipliers of the
//! bitcell family, plus the rejected fifth port.

use esam_sram::BitcellKind;
use esam_tech::calibration::paper;

use crate::Table;

/// Reproduces the §4.2 cell-area figures.
pub fn area_table() -> Table {
    let mut table = Table::new(
        "§4.2 — Bitcell areas (IMEC 3nm FinFET)",
        &[
            "cell",
            "area [µm²]",
            "multiplier",
            "paper multiplier",
            "transistors",
        ],
    );
    for cell in BitcellKind::ALL {
        table.row_owned(vec![
            cell.name().to_string(),
            format!("{:.5}", cell.area().value()),
            format!("{:.3}x", cell.area_multiplier()),
            format!(
                "{:.3}x",
                paper::CELL_AREA_MULTIPLIERS[cell.read_ports_index()]
            ),
            cell.transistor_count().to_string(),
        ]);
    }
    table.note(&format!(
        "a 5th read port would cost +{:.1}% of the 6T area (total {:.3}x) and is rejected (§4.2)",
        paper::FIFTH_PORT_EXTRA_AREA_FRACTION * 100.0,
        BitcellKind::fifth_port_area_multiplier(),
    ));
    table.note(&format!(
        "6T anchor: {} µm² from [20]; all areas derive from it",
        paper::CELL_AREA_6T_UM2
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_values() {
        let t = area_table();
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.cell(0, 0), Some("1RW"));
        // Model multiplier equals the paper multiplier by construction.
        for row in 0..5 {
            assert_eq!(t.cell(row, 2), t.cell(row, 3));
        }
        assert_eq!(t.cell(4, 4), Some("11"));
    }
}
