//! §3.3 reproduction: flat vs tree arbiter critical path and area.

use esam_arbiter::{EncoderStructure, MultiPortArbiter, RoundRobinArbiter};
use esam_tech::calibration::paper;

use crate::{BenchError, Table};

/// Reproduces the §3.3 arbiter numbers: the 128-wide 4-port flat arbiter
/// exceeds 1100 ps; the tree version closes below 800 ps at 8 % extra area.
pub fn arbiter_table() -> Result<Table, BenchError> {
    let mut table = Table::new(
        "§3.3 — Arbiter structure comparison (128-wide, 4-port)",
        &[
            "structure",
            "critical path [ps]",
            "area [µm²]",
            "stage time [ns]",
        ],
    );
    let flat = MultiPortArbiter::new(128, 4, EncoderStructure::Flat)
        .map_err(esam_core::CoreError::from)?;
    let tree = MultiPortArbiter::paper_default();
    for (name, arbiter) in [("flat", &flat), ("tree (base 16)", &tree)] {
        table.row_owned(vec![
            name.to_string(),
            format!("{:.0}", arbiter.critical_path().ps()),
            format!("{:.1}", arbiter.area().value()),
            format!("{:.2}", arbiter.stage_time().ns()),
        ]);
    }
    // Ablation beyond the paper: rotating priority for fairness.
    let round_robin = RoundRobinArbiter::new(128, 4, EncoderStructure::Tree { base_width: 16 })
        .map_err(esam_core::CoreError::from)?;
    table.row_owned(vec![
        "round-robin (ablation)".to_string(),
        format!("{:.0}", round_robin.critical_path().ps()),
        format!("{:.1}", round_robin.area().value()),
        format!("{:.2}", round_robin.stage_time().ns()),
    ]);
    let overhead = tree.area() / flat.area() - 1.0;
    table.note(&format!(
        "tree area overhead: {:.1}% (paper: {:.1}%); paper bounds: flat >{} ps, tree <{} ps",
        overhead * 100.0,
        paper::ARBITER_TREE_AREA_OVERHEAD * 100.0,
        paper::ARBITER_FLAT_CRITICAL_PS,
        paper::ARBITER_TREE_CRITICAL_PS,
    ));
    table.note("round-robin is not in the paper: it removes the fixed-priority starvation of high-index rows for a ~6% path and ~2% area premium");
    Ok(table)
}

/// Critical-path scaling across request widths, demonstrating why the tree
/// is needed for arrays of ≥128 rows (§3.3).
pub fn arbiter_scaling_table() -> Result<Table, BenchError> {
    let mut table = Table::new(
        "§3.3 — Critical path vs request width (4-port)",
        &["width", "flat [ps]", "tree/base16 [ps]"],
    );
    for width in [32usize, 64, 128, 256, 512] {
        let flat = MultiPortArbiter::new(width, 4, EncoderStructure::Flat)
            .map_err(esam_core::CoreError::from)?;
        let tree = MultiPortArbiter::new(width, 4, EncoderStructure::Tree { base_width: 16 })
            .map_err(esam_core::CoreError::from)?;
        table.row_owned(vec![
            width.to_string(),
            format!("{:.0}", flat.critical_path().ps()),
            format!("{:.0}", tree.critical_path().ps()),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bounds_hold() {
        let t = arbiter_table().unwrap();
        let flat: f64 = t.cell(0, 1).unwrap().parse().unwrap();
        let tree: f64 = t.cell(1, 1).unwrap().parse().unwrap();
        assert!(flat > paper::ARBITER_FLAT_CRITICAL_PS);
        assert!(tree < paper::ARBITER_TREE_CRITICAL_PS);
    }

    #[test]
    fn scaling_table_grows_with_width() {
        let t = arbiter_scaling_table().unwrap();
        assert_eq!(t.row_count(), 5);
        let flat32: f64 = t.cell(0, 1).unwrap().parse().unwrap();
        let flat512: f64 = t.cell(4, 1).unwrap().parse().unwrap();
        assert!(
            flat512 > 8.0 * flat32,
            "flat path scales ~linearly with width"
        );
        let tree512: f64 = t.cell(4, 2).unwrap().parse().unwrap();
        assert!(tree512 < flat512 / 2.0, "tree flattens the scaling");
    }
}
