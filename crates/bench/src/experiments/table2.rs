//! Table 2 reproduction: pipeline stage durations and the resulting clock
//! period for every cell design.

use esam_core::{PipelineTiming, SystemConfig};
use esam_sram::BitcellKind;
use esam_tech::calibration::paper;

use crate::{BenchError, Table};

/// Reproduces Table 2: Arbiter stage vs SRAM-read + Neuron stage (with
/// slack), and the clock period as their maximum.
pub fn table2_table() -> Result<Table, BenchError> {
    let mut table = Table::new(
        "Table 2 — Pipeline stage durations (incl. slack)",
        &[
            "cell",
            "arbiter [ns]",
            "paper arbiter [ns]",
            "sram+neuron [ns]",
            "paper sram+neuron [ns]",
            "clock [ns]",
        ],
    );
    for (index, cell) in BitcellKind::ALL.iter().enumerate() {
        let timing = PipelineTiming::analyze(&SystemConfig::paper_default(*cell))?;
        table.row_owned(vec![
            cell.name().to_string(),
            format!("{:.2}", timing.arbiter_stage.ns()),
            format!("{:.2}", paper::TABLE2_ARBITER_NS[index]),
            format!("{:.2}", timing.sram_neuron_stage.ns()),
            format!("{:.2}", paper::TABLE2_SRAM_NEURON_NS[index]),
            format!("{:.2}", timing.clock_period().ns()),
        ]);
    }
    table.note("the arbiter stage does not scale with ports (same 128-wide 4-port block in every design); with ≥2 added ports the SRAM+Neuron stage becomes the clock bottleneck");
    table.note("the paper's ±0.03 ns arbiter jitter and the 1RW+3R dip are synthesis noise and are not modeled");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_track_the_paper() {
        let t = table2_table().unwrap();
        assert_eq!(t.row_count(), 5);
        for row in 0..5 {
            let ours: f64 = t.cell(row, 3).unwrap().parse().unwrap();
            let theirs: f64 = t.cell(row, 4).unwrap().parse().unwrap();
            assert!(
                (ours - theirs).abs() / theirs < 0.15,
                "row {row}: {ours} vs {theirs}"
            );
        }
    }
}
