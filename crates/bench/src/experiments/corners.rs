//! DVFS / Vt-flavor corner projection (Table 3's closing note).
//!
//! *"For applications that have lower throughput demands, a lower VDD,
//! lower clock frequency, and HVT transistors can be utilized to
//! significantly reduce power consumption, while maintaining similar
//! energy/Inference."* This experiment projects the paper-anchored 4R
//! system (810 MHz, 44 MInf/s, 29 mW) across operating corners using the
//! alpha-power DVFS model.

use esam_tech::calibration::paper;
use esam_tech::dvfs::OperatingPoint;
use esam_tech::finfet::VtFlavor;
use esam_tech::units::{Hertz, Volts};

use crate::Table;

/// Leakage share of total power at the nominal corner, from the system
/// model's dynamic/leakage split (≈8 % of 29 mW).
const NOMINAL_LEAKAGE_FRACTION: f64 = 0.08;

/// The corners swept: the paper point plus three energy-oriented options.
pub fn corner_set() -> Vec<(&'static str, OperatingPoint)> {
    vec![
        ("nominal 700 mV SVT", OperatingPoint::nominal()),
        (
            "600 mV SVT",
            OperatingPoint::new(Volts::from_mv(600.0), VtFlavor::Svt),
        ),
        (
            "500 mV SVT",
            OperatingPoint::new(Volts::from_mv(500.0), VtFlavor::Svt),
        ),
        (
            "500 mV HVT (paper's eco option)",
            OperatingPoint::new(Volts::from_mv(500.0), VtFlavor::Hvt),
        ),
    ]
}

/// Builds the corner-projection table.
pub fn corners_table() -> Table {
    let mut table = Table::new(
        "Table 3 note — DVFS/HVT corner projection of the 4R system",
        &[
            "corner",
            "clock [MHz]",
            "throughput [MInf/s]",
            "power [mW]",
            "energy/Inf [pJ]",
        ],
    );
    let nominal = OperatingPoint::nominal();
    let base_clock = Hertz::from_mhz(paper::SYSTEM_CLOCK_MHZ);
    let base_throughput = paper::SYSTEM_THROUGHPUT_INF_S;
    let base_power_mw = paper::SYSTEM_POWER_MW;
    let base_dynamic = base_power_mw * (1.0 - NOMINAL_LEAKAGE_FRACTION);
    let base_leak = base_power_mw * NOMINAL_LEAKAGE_FRACTION;

    for (name, corner) in corner_set() {
        let f = corner.frequency_scale(&nominal);
        let clock = corner.max_clock(&nominal, base_clock);
        let throughput = base_throughput * f;
        let dynamic = base_dynamic * corner.dynamic_power_scale(&nominal);
        let leak = base_leak * corner.leakage_power_scale(&nominal);
        let power = dynamic + leak;
        // pJ/Inf = mW / MInf/s × 1000; leakage is amortized over the
        // (slower) inference stream.
        let energy_pj = power / (throughput / 1e6) * 1000.0;
        table.row_owned(vec![
            name.to_string(),
            format!("{:.0}", clock.mhz()),
            format!("{:.1}", throughput / 1e6),
            format!("{:.2}", power),
            format!("{:.0}", energy_pj),
        ]);
    }
    table.note(&format!(
        "anchored on Table 3: {} MHz, {:.0} MInf/s, {} mW, {} pJ/Inf; leakage share {:.0}%",
        paper::SYSTEM_CLOCK_MHZ,
        paper::SYSTEM_THROUGHPUT_INF_S / 1e6,
        paper::SYSTEM_POWER_MW,
        paper::SYSTEM_ENERGY_PER_INF_PJ,
        NOMINAL_LEAKAGE_FRACTION * 100.0,
    ));
    table.note("the eco corner trades ~2.5× clock for ~4-5× lower power at slightly *better* energy/Inf — exactly the paper's stated escape hatch");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eco_corner_cuts_power_but_keeps_energy_per_inf() {
        let table = corners_table();
        assert_eq!(table.row_count(), 4);
        let power = |r: usize| -> f64 { table.cell(r, 3).unwrap().parse().unwrap() };
        let energy = |r: usize| -> f64 { table.cell(r, 4).unwrap().parse().unwrap() };
        // Power falls monotonically down the corner list.
        for r in 1..4 {
            assert!(power(r) < power(r - 1), "power must fall at row {r}");
        }
        // The eco corner: ≥4× power cut, energy/Inf within ±50 % of nominal.
        assert!(power(3) < power(0) / 4.0, "eco power {}", power(3));
        let ratio = energy(3) / energy(0);
        assert!((0.4..1.5).contains(&ratio), "energy/Inf drifted: {ratio}");
    }

    #[test]
    fn nominal_row_reproduces_the_paper_anchor() {
        let table = corners_table();
        let clock: f64 = table.cell(0, 1).unwrap().parse().unwrap();
        let throughput: f64 = table.cell(0, 2).unwrap().parse().unwrap();
        let power: f64 = table.cell(0, 3).unwrap().parse().unwrap();
        assert!((clock - 810.0).abs() < 1.0);
        assert!((throughput - 44.0).abs() < 0.5);
        assert!((power - 29.0).abs() < 0.1);
    }
}
