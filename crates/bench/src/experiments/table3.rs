//! Table 3 reproduction: comparison with state-of-the-art small-scale SNN
//! accelerators.

use esam_core::baselines::{sota_entries, this_work_descriptor};
use esam_core::{SystemConfig, SystemMetrics};
use esam_sram::BitcellKind;
use esam_tech::calibration::paper;

use crate::Table;

/// Renders Table 3: the three literature columns (quoted) next to the
/// measured "This Work" column and the paper's own "This Work" values.
pub fn table3_table(four_port: &SystemMetrics, accuracy_percent: f64) -> Table {
    let mut table = Table::new(
        "Table 3 — Comparison with state-of-the-art small-scale SNN accelerators",
        &[
            "quantity",
            "[6]",
            "[9]",
            "[10]",
            "this work (measured)",
            "this work (paper)",
        ],
    );
    let sota = sota_entries();
    let config = SystemConfig::paper_default(BitcellKind::multiport(4).expect("4 ports"));
    let descriptor = this_work_descriptor(&config);

    let fmt_opt = |v: Option<u8>| v.map_or("-".to_string(), |b| b.to_string());
    table.row_owned(vec![
        "technology [nm]".into(),
        format!("{:.0}", sota[0].technology_nm),
        format!("{:.0}", sota[1].technology_nm),
        format!("{:.0}", sota[2].technology_nm),
        descriptor.technology_nm.to_string(),
        "3".into(),
    ]);
    table.row_owned(vec![
        "neurons".into(),
        sota[0].neurons.to_string(),
        sota[1].neurons.to_string(),
        sota[2].neurons.to_string(),
        descriptor.neurons.to_string(),
        paper::SYSTEM_NEURON_COUNT.to_string(),
    ]);
    table.row_owned(vec![
        "synapses".into(),
        sota[0].synapses.to_string(),
        sota[1].synapses.to_string(),
        sota[2].synapses.to_string(),
        descriptor.synapses.to_string(),
        paper::SYSTEM_SYNAPSE_COUNT.to_string(),
    ]);
    table.row_owned(vec![
        "activation bits".into(),
        fmt_opt(sota[0].activation_bits),
        fmt_opt(sota[1].activation_bits),
        fmt_opt(sota[2].activation_bits),
        descriptor.activation_bits.to_string(),
        "1".into(),
    ]);
    table.row_owned(vec![
        "weight bits".into(),
        sota[0].weight_bits.to_string(),
        sota[1].weight_bits.to_string(),
        sota[2].weight_bits.to_string(),
        descriptor.weight_bits.to_string(),
        "1".into(),
    ]);
    table.row_owned(vec![
        "transposable".into(),
        yes_no(sota[0].transposable),
        yes_no(sota[1].transposable),
        yes_no(sota[2].transposable),
        yes_no(descriptor.transposable),
        "yes".into(),
    ]);
    table.row_owned(vec![
        "clock".into(),
        "70 kHz".into(),
        "506 MHz".into(),
        "100 MHz".into(),
        format!("{:.0} MHz", four_port.clock.mhz()),
        format!("{:.0} MHz", paper::SYSTEM_CLOCK_MHZ),
    ]);
    table.row_owned(vec![
        "power".into(),
        "305 nW".into(),
        "196 mW*".into(),
        "53 mW".into(),
        format!("{:.1} mW", four_port.total_power().mw()),
        format!("{:.0} mW", paper::SYSTEM_POWER_MW),
    ]);
    table.row_owned(vec![
        "accuracy [%]".into(),
        format!("{:.1}", sota[0].accuracy_percent),
        format!("{:.1}", sota[1].accuracy_percent),
        format!("{:.1}", sota[2].accuracy_percent),
        format!("{accuracy_percent:.1}**"),
        format!("{:.1}", paper::MNIST_ACCURACY_PERCENT),
    ]);
    table.row_owned(vec![
        "throughput [inf/s]".into(),
        "2".into(),
        "6250".into(),
        "20".into(),
        format!("{:.1}M", four_port.throughput_minf_s()),
        "44M".into(),
    ]);
    table.row_owned(vec![
        "energy/inf".into(),
        "195 nJ".into(),
        "1000 nJ".into(),
        "-".into(),
        format!("{:.0} pJ", four_port.energy_per_inf.pj()),
        format!("{:.0} pJ", paper::SYSTEM_ENERGY_PER_INF_PJ),
    ]);
    table.note("* inferred by the paper from SOP/s/mm², area and pJ/SOP");
    table.note("** on the synthetic digit set (MNIST is unavailable offline; see DESIGN.md)");
    table
}

fn yes_no(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esam_tech::units::{AreaUm2, Hertz, Joules, Seconds, Watts};

    #[test]
    fn table_renders_all_rows() {
        let metrics = SystemMetrics {
            clock: Hertz::from_mhz(766.0),
            bottleneck_cycles: 16.1,
            throughput_inf_s: 47.6e6,
            latency: Seconds::from_ns(90.0),
            energy_per_inf: Joules::from_pj(605.0),
            dynamic_power: Watts::from_mw(28.8),
            leakage_power: Watts::from_mw(2.1),
            area: AreaUm2::new(17_657.0),
            learning: None,
        };
        let t = table3_table(&metrics, 97.8);
        assert_eq!(t.row_count(), 11);
        assert_eq!(t.cell(1, 4), Some("778"));
        assert_eq!(t.cell(2, 5), Some("330240"));
    }
}
