//! One module per reproduced table/figure. See `DESIGN.md` §3 for the
//! experiment index.

pub mod accuracy;
pub mod addertree;
pub mod arbiter;
pub mod area;
pub mod batch;
pub mod corners;
pub mod faults;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod hot_path;
pub mod integrity;
pub mod learning;
pub mod learning_curve;
pub mod mesh;
pub mod nbl;
pub mod observe;
pub mod serve;
pub mod sta;
pub mod table2;
pub mod table3;
pub mod transient;
