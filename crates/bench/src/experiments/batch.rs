//! Batch-scaling experiment: simulator frames/sec vs worker threads.
//!
//! Unlike the other experiments this measures the *simulator* itself, not
//! the modeled silicon: the paper's Fig. 8 / Table 3 numbers come from a
//! spike-by-spike simulation whose sequential walk limits how fast large
//! batches can be evaluated. The [`esam_core::BatchEngine`] shards a batch
//! across worker pipelines and merges counters exactly, so this experiment
//! reports wall-clock scaling *and* cross-checks that every thread count
//! reproduces the sequential [`SystemMetrics`] bit-for-bit.

use std::time::{Duration, Instant};

use esam_core::{BatchConfig, BatchEngine, EsamSystem, SystemConfig, SystemMetrics};
use esam_sram::BitcellKind;

use crate::context::ExperimentContext;
use crate::{BenchError, Table};

/// One measured thread count.
#[derive(Debug, Clone)]
pub struct BatchScalingPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Simulated frames per wall-clock second.
    pub sim_frames_per_s: f64,
    /// Whether the merged metrics equal the sequential reference exactly.
    pub identical: bool,
}

/// Results of the scaling sweep.
#[derive(Debug, Clone)]
pub struct BatchScalingResults {
    /// Batch size measured.
    pub frames: usize,
    /// One-time worker-pool construction cost. The sweep reuses a single
    /// [`BatchEngine`] resized per point
    /// ([`BatchEngine::set_threads`]), so this setup is paid once and
    /// stays *out* of every point's wall-clock measurement instead of
    /// being re-paid (and silently re-measured) at each thread count.
    pub engine_setup: Duration,
    /// Sequential reference wall-clock time.
    pub sequential_wall: Duration,
    /// The (thread-count independent) system metrics.
    pub metrics: SystemMetrics,
    /// One point per measured thread count, ascending.
    pub points: Vec<BatchScalingPoint>,
}

impl BatchScalingResults {
    /// Speedup of the fastest measured point over the sequential walk.
    pub fn best_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(|p| self.sequential_wall.as_secs_f64() / p.wall.as_secs_f64())
            .fold(0.0, f64::max)
    }
}

/// Thread counts to sweep: powers of two up to `max_threads` (at least
/// 1, 2, 4 so the sweep shape is comparable across machines).
fn thread_sweep(max_threads: usize) -> Vec<usize> {
    let cap = max_threads.max(4);
    let mut threads = Vec::new();
    let mut t = 1;
    while t <= cap {
        threads.push(t);
        t *= 2;
    }
    threads
}

/// Runs the sweep on the paper-default 4-port system with the trained
/// model, `samples` test frames, sweeping worker counts up to
/// `max_threads` (0 = this machine's available parallelism).
pub fn batch_results(
    context: &ExperimentContext,
    samples: usize,
    max_threads: usize,
) -> Result<BatchScalingResults, BenchError> {
    let max_threads = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        max_threads
    };
    let frames = context.test_frames(samples);
    let config = SystemConfig::paper_default(BitcellKind::multiport(4).unwrap());
    let mut system = EsamSystem::from_model(context.model(), &config)?;

    let start = Instant::now();
    let metrics = system.measure_batch(&frames)?;
    let sequential_wall = start.elapsed();

    // One engine for the whole sweep: the worker-pool clone cost is paid
    // here once, and each point only resizes the pool — so the timed
    // region below is purely `measure`, not construction.
    let setup_start = Instant::now();
    let mut engine = BatchEngine::new(&system, &BatchConfig::sequential());
    let engine_setup = setup_start.elapsed();

    let mut points = Vec::new();
    for threads in thread_sweep(max_threads) {
        engine.set_threads(threads);
        let start = Instant::now();
        let parallel = engine.measure(&frames)?;
        let wall = start.elapsed();
        points.push(BatchScalingPoint {
            threads,
            wall,
            sim_frames_per_s: frames.len() as f64 / wall.as_secs_f64(),
            identical: parallel == metrics,
        });
    }
    Ok(BatchScalingResults {
        frames: frames.len(),
        engine_setup,
        sequential_wall,
        metrics,
        points,
    })
}

/// Renders the scaling table.
pub fn batch_table(results: &BatchScalingResults) -> Table {
    let mut table = Table::new(
        "Batch scaling — simulator frames/sec vs worker threads (4-port system)",
        &[
            "threads",
            "wall [ms]",
            "speedup",
            "frames/s",
            "metrics match",
        ],
    );
    table.row_owned(vec![
        "seq".into(),
        format!("{:.1}", results.sequential_wall.as_secs_f64() * 1e3),
        "1.00x".into(),
        format!(
            "{:.0}",
            results.frames as f64 / results.sequential_wall.as_secs_f64()
        ),
        "reference".into(),
    ]);
    for point in &results.points {
        table.row_owned(vec![
            point.threads.to_string(),
            format!("{:.1}", point.wall.as_secs_f64() * 1e3),
            format!(
                "{:.2}x",
                results.sequential_wall.as_secs_f64() / point.wall.as_secs_f64()
            ),
            format!("{:.0}", point.sim_frames_per_s),
            if point.identical {
                "bit-identical"
            } else {
                "MISMATCH"
            }
            .into(),
        ]);
    }
    table.note(&format!(
        "merge law: worker counters are u64 sums, merged then finalized once — metrics are bit-identical at every thread count; speedup needs physical cores. one engine reused across the sweep: {:.1} us of pool setup paid once, outside every timed point",
        results.engine_setup.as_secs_f64() * 1e6
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn sweep_shape() {
        assert_eq!(thread_sweep(1), vec![1, 2, 4]);
        assert_eq!(thread_sweep(4), vec![1, 2, 4]);
        assert_eq!(thread_sweep(9), vec![1, 2, 4, 8]);
    }

    #[test]
    fn every_thread_count_is_bit_identical() {
        let context = ExperimentContext::prepare(Fidelity::Quick).unwrap();
        let results = batch_results(&context, 24, 4).unwrap();
        assert_eq!(results.frames, 24);
        assert_eq!(results.points.len(), 3);
        for point in &results.points {
            assert!(point.identical, "{} threads diverged", point.threads);
        }
        assert_eq!(batch_table(&results).row_count(), 4);
    }
}
