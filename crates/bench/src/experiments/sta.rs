//! Gate-level STA cross-check of the §3.3 arbiter claims.
//!
//! The `arbiter` experiment reports the *fitted* behavioral timing model.
//! This experiment regenerates the same numbers structurally: the Fig. 4
//! subblock chain and tree are emitted as real netlists
//! ([`esam_arbiter::StructuralArbiter`]), timed by static timing analysis
//! over a standard-cell delay model, and exercised by event-driven
//! simulation — three independent routes to the flat >1100 ps vs
//! tree <800 ps result.

use esam_arbiter::{EncoderStructure, MultiPortArbiter, StructuralArbiter};
use esam_bits::BitVec;
use esam_logic::{GateTiming, Level, Simulator};
use esam_tech::calibration::paper;

use crate::{BenchError, Table};

/// Builds the STA cross-check table for the 128-wide 4-port arbiter.
///
/// # Errors
///
/// Propagates construction/simulation failures from the structural models.
pub fn sta_table() -> Result<Table, BenchError> {
    let timing = GateTiming::finfet_3nm();
    let mut table = Table::new(
        "§3.3 structural cross-check — gate-level arbiter (128-wide, 4-port)",
        &[
            "structure",
            "gates",
            "STA path [ps]",
            "event-sim settle [ps]",
            "fitted model [ps]",
        ],
    );

    // A dense request pattern exercises the deep end of the chain.
    let requests = BitVec::from_indices(128, &[0, 31, 63, 64, 95, 126, 127]);

    for (name, structure) in [
        ("flat", EncoderStructure::Flat),
        ("tree (base 16)", EncoderStructure::Tree { base_width: 16 }),
    ] {
        let structural =
            StructuralArbiter::new(128, 4, structure).map_err(esam_core::CoreError::from)?;
        let behavioral =
            MultiPortArbiter::new(128, 4, structure).map_err(esam_core::CoreError::from)?;
        let sta = structural.sta_critical_path(&timing)?;
        let stimulus: Vec<Level> = requests
            .to_bools()
            .iter()
            .map(|&b| Level::from(b))
            .collect();
        let mut sim = Simulator::new(structural.netlist(), timing)?;
        let (settle, _) = sim.settle(&stimulus)?;
        table.row_owned(vec![
            name.to_string(),
            structural.gate_count().to_string(),
            format!("{:.0}", sta.ps()),
            format!("{:.0}", settle.ps()),
            format!("{:.0}", behavioral.critical_path().ps()),
        ]);
    }
    table.note(&format!(
        "paper bounds: flat >{} ps, tree <{} ps; STA bounds every event-sim settle by construction",
        paper::ARBITER_FLAT_CRITICAL_PS,
        paper::ARBITER_TREE_CRITICAL_PS,
    ));
    table.note("functional equivalence of structural vs behavioral grants is asserted by the esam-arbiter property suite");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reproduces_the_paper_ordering() {
        let table = sta_table().unwrap();
        assert_eq!(table.row_count(), 2);
        let flat_sta: f64 = table.cell(0, 2).unwrap().parse().unwrap();
        let tree_sta: f64 = table.cell(1, 2).unwrap().parse().unwrap();
        assert!(flat_sta > 1000.0, "flat STA {flat_sta}");
        assert!(tree_sta < 800.0, "tree STA {tree_sta}");
        // Event-sim settle is bounded by STA for both rows.
        for row in 0..2 {
            let sta: f64 = table.cell(row, 2).unwrap().parse().unwrap();
            let settle: f64 = table.cell(row, 3).unwrap().parse().unwrap();
            assert!(settle <= sta, "row {row}: settle {settle} > STA {sta}");
        }
    }
}
