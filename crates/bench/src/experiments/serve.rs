//! Serving experiment: latency/throughput of the `esam-serve` micro-batching
//! service under closed-loop and open-loop load.
//!
//! Like `hot_path` and `batch`, this measures the *simulator as a system*,
//! not the modeled silicon: the paper-default 768:256:256:256:10 cascade
//! (untrained, seed-initialized — no dataset, no training) is put behind
//! the concurrent service and driven by the deterministic load generator.
//! Three questions, three measurements:
//!
//! 1. **Tax of serving** — closed-loop throughput vs the offline
//!    `BatchEngine` on the same frames and worker count. The acceptance
//!    bar is ≥ 80 %: queue + tickets + micro-batching must not eat the
//!    parallel speedup.
//! 2. **Latency under load** — p50/p95/p99 wall latency plus the modeled
//!    cycle-domain latency (a workload invariant: it must not move when
//!    only the serving layer changes).
//! 3. **Overload behaviour** — open-loop Poisson arrivals at under / at /
//!    over capacity against a bounded queue with `Reject` admission: the
//!    over-capacity point must shed load (nonzero rejects) instead of
//!    growing an unbounded queue.
//!
//! `repro serve --json` emits one machine-readable object per run for
//! cross-PR comparison, mirroring the `hot_path --json` snapshot.

use std::time::{Duration, Instant};

use esam_core::{BatchConfig, BatchEngine, EsamSystem, SystemConfig};
use esam_nn::{BnnNetwork, SnnModel};
use esam_serve::{AdmissionPolicy, BatchPolicy, EsamService, LoadGenerator, LoadMode, ServeConfig};
use esam_sram::BitcellKind;

use crate::{BenchError, Table};

/// One open-loop offered-load point.
#[derive(Debug, Clone)]
pub struct OpenLoopPoint {
    /// Load label: "under", "at" or "over" (relative to measured capacity).
    pub label: &'static str,
    /// Offered arrival rate (requests/s).
    pub offered_rps: f64,
    /// Completions per second actually achieved.
    pub achieved_rps: f64,
    /// Requests offered.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests dropped by backpressure.
    pub dropped: u64,
    /// Rejected / offered.
    pub reject_rate: f64,
    /// Wall-latency quantiles.
    pub p50: Duration,
    /// 95th percentile wall latency.
    pub p95: Duration,
    /// 99th percentile wall latency.
    pub p99: Duration,
    /// Highest queue depth observed.
    pub peak_queue_depth: usize,
}

/// The closed-loop (capacity) measurement.
#[derive(Debug, Clone)]
pub struct ClosedLoopPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests completed.
    pub requests: u64,
    /// Sustained completions per second.
    pub throughput_rps: f64,
    /// Closed-loop throughput / offline batch throughput.
    pub fraction_of_offline: f64,
    /// Wall-latency quantiles.
    pub p50: Duration,
    /// 95th percentile wall latency.
    pub p95: Duration,
    /// 99th percentile wall latency.
    pub p99: Duration,
    /// Median modeled cascade cycles per request.
    pub cycles_p50: u64,
    /// 99th-percentile modeled cascade cycles per request.
    pub cycles_p99: u64,
    /// Modeled dynamic energy per request (pJ).
    pub energy_per_request_pj: f64,
    /// Mean micro-batch size dispatched to the workers.
    pub mean_batch_size: f64,
}

/// Results of the serving experiment.
#[derive(Debug, Clone)]
pub struct ServeResults {
    /// Worker pipelines (and offline engine threads).
    pub workers: usize,
    /// Queue capacity of the open-loop (overload) points.
    pub queue_capacity: usize,
    /// Offline `BatchEngine` wall throughput on the same frames/workers.
    pub offline_frames_per_s: f64,
    /// The closed-loop capacity point.
    pub closed: ClosedLoopPoint,
    /// Open-loop points: under, at and over capacity.
    pub open: Vec<OpenLoopPoint>,
}

/// Runs the serving experiment: `samples` scales the request counts,
/// `max_threads` caps the worker pool (0 = available parallelism).
///
/// # Errors
///
/// Propagates model-construction and batch-measurement errors.
pub fn serve_results(samples: usize, max_threads: usize) -> Result<ServeResults, BenchError> {
    let workers = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        max_threads
    };
    let topology = [768usize, 256, 256, 256, 10];
    let net = BnnNetwork::new(&topology, 0xE5A)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &topology).build()?;
    let system = EsamSystem::from_model(&model, &config)?;

    let generator = LoadGenerator::synthetic(topology[0], 64, 0xE5A);
    let requests = (samples.max(1) * 8).max(64 * workers);

    // 1. Offline reference: the BatchEngine on the identical workload.
    let offered: Vec<_> = (0..requests).map(|i| generator.frame(i).clone()).collect();
    let mut engine = BatchEngine::new(&system, &BatchConfig::with_threads(workers));
    let start = Instant::now();
    engine.measure(&offered)?;
    let offline_wall = start.elapsed();
    let offline_frames_per_s = requests as f64 / offline_wall.as_secs_f64();

    // 2. Closed loop: capacity + best-case latency through the service.
    let clients = workers * 2;
    let service = EsamService::start(
        &system,
        ServeConfig::with_workers(workers)
            .queue_capacity(4 * clients.max(8))
            .admission(AdmissionPolicy::Block)
            .batch(BatchPolicy::greedy(8)),
    );
    let load = generator.run(&service, LoadMode::ClosedLoop { clients }, requests);
    let report = service.shutdown();
    let closed = ClosedLoopPoint {
        clients,
        requests: load.completed,
        throughput_rps: report.throughput_rps,
        fraction_of_offline: report.throughput_rps / offline_frames_per_s,
        p50: report.wall.p50,
        p95: report.wall.p95,
        p99: report.wall.p99,
        cycles_p50: report.cycles.p50,
        cycles_p99: report.cycles.p99,
        energy_per_request_pj: report.energy_per_request.map_or(0.0, |e| e.pj()),
        mean_batch_size: report.mean_batch_size,
    };

    // 3. Open loop at under / at / over capacity, bounded queue + Reject.
    let capacity_rps = closed.throughput_rps;
    let queue_capacity = 64;
    let mut open = Vec::new();
    for (label, factor) in [("under", 0.5), ("at", 0.9), ("over", 1.6)] {
        let rate = capacity_rps * factor;
        let service = EsamService::start(
            &system,
            ServeConfig::with_workers(workers)
                .queue_capacity(queue_capacity)
                .admission(AdmissionPolicy::Reject)
                .batch(BatchPolicy::greedy(8)),
        );
        let load = generator.run(&service, LoadMode::OpenLoop { rate_rps: rate }, requests);
        let report = service.shutdown();
        open.push(OpenLoopPoint {
            label,
            offered_rps: rate,
            achieved_rps: load.achieved_rps,
            offered: load.offered,
            completed: load.completed,
            rejected: load.rejected,
            dropped: load.dropped,
            reject_rate: load.reject_rate(),
            p50: report.wall.p50,
            p95: report.wall.p95,
            p99: report.wall.p99,
            peak_queue_depth: report.peak_queue_depth,
        });
    }

    Ok(ServeResults {
        workers,
        queue_capacity,
        offline_frames_per_s,
        closed,
        open,
    })
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Renders the human-readable tables.
pub fn serve_table(results: &ServeResults) -> Table {
    let mut table = Table::new(
        "Serving — esam-serve micro-batching service, paper-default 4-port system",
        &[
            "scenario",
            "offered [req/s]",
            "achieved [req/s]",
            "p50 [µs]",
            "p95 [µs]",
            "p99 [µs]",
            "rejected",
            "note",
        ],
    );
    table.row_owned(vec![
        "offline batch".into(),
        "-".into(),
        format!("{:.0}", results.offline_frames_per_s),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{} engine threads (reference)", results.workers),
    ]);
    let c = &results.closed;
    table.row_owned(vec![
        "closed loop".into(),
        "self-limited".into(),
        format!("{:.0}", c.throughput_rps),
        format!("{:.1}", us(c.p50)),
        format!("{:.1}", us(c.p95)),
        format!("{:.1}", us(c.p99)),
        "0".into(),
        format!(
            "{} clients, {:.0}% of offline, batch {:.2}, cycles p50/p99 {}/{}",
            c.clients,
            100.0 * c.fraction_of_offline,
            c.mean_batch_size,
            c.cycles_p50,
            c.cycles_p99
        ),
    ]);
    for p in &results.open {
        table.row_owned(vec![
            format!("open {}", p.label),
            format!("{:.0}", p.offered_rps),
            format!("{:.0}", p.achieved_rps),
            format!("{:.1}", us(p.p50)),
            format!("{:.1}", us(p.p95)),
            format!("{:.1}", us(p.p99)),
            format!("{} ({:.1}%)", p.rejected, 100.0 * p.reject_rate),
            format!("peak queue {}", p.peak_queue_depth),
        ]);
    }
    table.note("closed loop measures sustainable capacity; open-loop rates are fractions of it against a bounded queue with Reject admission — over capacity the service sheds load instead of queueing unboundedly");
    table.note("wall latency includes queueing + batching; modeled cycle-domain latency is a workload invariant (it must not move when only the serving layer changes)");
    table
}

/// Renders the results as one machine-readable JSON object (hand-rolled:
/// the workspace is offline and serde is not vendored).
pub fn serve_json(results: &ServeResults) -> String {
    let c = &results.closed;
    let open: Vec<String> = results
        .open
        .iter()
        .map(|p| {
            format!(
                "{{\"load\":\"{}\",\"offered_rps\":{:.1},\"achieved_rps\":{:.1},\"offered\":{},\"completed\":{},\"rejected\":{},\"dropped\":{},\"reject_rate\":{:.4},\"p50_us\":{:.2},\"p95_us\":{:.2},\"p99_us\":{:.2},\"peak_queue_depth\":{}}}",
                p.label,
                p.offered_rps,
                p.achieved_rps,
                p.offered,
                p.completed,
                p.rejected,
                p.dropped,
                p.reject_rate,
                us(p.p50),
                us(p.p95),
                us(p.p99),
                p.peak_queue_depth
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"serve\",\"workers\":{},\"queue_capacity\":{},\"offline_frames_per_s\":{:.1},\"closed_loop\":{{\"clients\":{},\"requests\":{},\"throughput_rps\":{:.1},\"fraction_of_offline\":{:.4},\"p50_us\":{:.2},\"p95_us\":{:.2},\"p99_us\":{:.2},\"cycles_p50\":{},\"cycles_p99\":{},\"energy_per_request_pj\":{:.2},\"mean_batch_size\":{:.3}}},\"open_loop\":[{}]}}",
        results.workers,
        results.queue_capacity,
        results.offline_frames_per_s,
        c.clients,
        c.requests,
        c.throughput_rps,
        c.fraction_of_offline,
        us(c.p50),
        us(c.p95),
        us(c.p99),
        c.cycles_p50,
        c.cycles_p99,
        c.energy_per_request_pj,
        c.mean_batch_size,
        open.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runs_and_covers_the_load_axis() {
        // Small but real: the shape must hold even at smoke scale.
        let results = serve_results(8, 2).unwrap();
        assert_eq!(results.workers, 2);
        assert!(results.offline_frames_per_s > 0.0);
        assert!(results.closed.throughput_rps > 0.0);
        assert!(results.closed.requests > 0);
        assert!(results.closed.p99 >= results.closed.p50);
        assert!(results.closed.cycles_p99 >= results.closed.cycles_p50);
        assert!(results.closed.cycles_p50 > 0, "finite modeled latency");
        assert!(results.closed.energy_per_request_pj > 0.0);
        assert_eq!(results.open.len(), 3);
        let over = results.open.last().unwrap();
        assert_eq!(over.label, "over");
        assert!(
            over.offered_rps > results.open[0].offered_rps,
            "load axis ascends"
        );
        // Conservation at every point.
        for p in &results.open {
            assert_eq!(
                p.completed + p.rejected + p.dropped,
                p.offered,
                "{}",
                p.label
            );
        }
        let table = serve_table(&results);
        assert_eq!(table.row_count(), 5);
    }

    #[test]
    fn json_is_structurally_sound() {
        let results = serve_results(4, 2).unwrap();
        let json = serve_json(&results);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"experiment\":\"serve\""));
        assert!(json.contains("\"closed_loop\""));
        assert!(json.contains("\"open_loop\""));
        assert_eq!(json.matches("\"load\"").count(), 3);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
