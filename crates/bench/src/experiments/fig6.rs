//! Fig. 6 reproduction: Write/Read times and energies via the Transposed
//! (Read/Write) port for every cell type.

use esam_sram::{ArrayConfig, BitcellKind, EnergyAnalysis, TimingAnalysis};

use crate::{BenchError, Table};

/// Reproduces Fig. 6: per-cell transposed-port characterization on the
/// paper's 128×128 array at 700 mV with NBL assist and ±3σ worst case.
pub fn fig6_table() -> Result<Table, BenchError> {
    let mut table = Table::new(
        "Fig. 6 — Transposed-port Write/Read time & energy per cell",
        &[
            "cell",
            "write time [ps]",
            "read time [ps]",
            "write energy [fJ]",
            "read energy [fJ]",
            "V_WD [mV]",
        ],
    );
    for cell in BitcellKind::ALL {
        let config = ArrayConfig::paper_default(cell);
        let timing = TimingAnalysis::new(&config);
        let energy = EnergyAnalysis::new(&config);
        let write = timing.rw_write()?;
        let read = timing.rw_read();
        table.row_owned(vec![
            cell.name().to_string(),
            format!("{:.0}", write.total().ps()),
            format!("{:.0}", read.total().ps()),
            format!("{:.1}", energy.rw_write_per_cell()?.fj()),
            format!("{:.1}", energy.rw_read_per_cell().fj()),
            format!("{:.0}", config.write_assist()?.mv()),
        ]);
    }
    table.note("paper shape: monotone increase with ports; a jump from 1RW to 1RW+1R (narrowed WL); write affected more than read (deeper V_WD)");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_holds() {
        let t = fig6_table().unwrap();
        assert_eq!(t.row_count(), 5);
        // Monotone columns 1..=4 down the family.
        for col in 1..=4 {
            let mut prev = f64::NEG_INFINITY;
            for row in 0..5 {
                let v: f64 = t.cell(row, col).unwrap().parse().unwrap();
                assert!(v > prev, "column {col} must grow down the family");
                prev = v;
            }
        }
        // V_WD deepens (more negative) down the family.
        let mut prev = f64::INFINITY;
        for row in 0..5 {
            let v: f64 = t.cell(row, 5).unwrap().parse().unwrap();
            assert!(v < prev);
            prev = v;
        }
    }
}
