//! §4.4.1 reproduction: online-learning access cost, transposed vs row-wise.

use esam_bits::BitVec;
use esam_core::{OnlineLearningEngine, PipelineTiming, SystemConfig, Tile};
use esam_nn::{StdpRule, TeacherSignal};
use esam_sram::BitcellKind;
use esam_tech::calibration::paper;

use crate::{BenchError, Table};

/// Measured cost of one full-column weight update (read + write) on a
/// 128×128 array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningNumbers {
    /// Cycles for the row-wise 6T baseline.
    pub rowwise_cycles: u64,
    /// Latency of the row-wise baseline (ns).
    pub rowwise_ns: f64,
    /// Energy of the row-wise baseline (pJ).
    pub rowwise_pj: f64,
    /// Cycles through the transposed port (4-port cell).
    pub transposed_cycles: u64,
    /// Latency through the transposed port (ns).
    pub transposed_ns: f64,
    /// Energy through the transposed port (pJ).
    pub transposed_pj: f64,
}

impl LearningNumbers {
    /// Time gain of the transposed port (paper: 26.0×).
    pub fn time_gain(&self) -> f64 {
        self.rowwise_ns / self.transposed_ns
    }

    /// Energy gain of the transposed port (paper: 19.5×).
    pub fn energy_gain(&self) -> f64 {
        self.rowwise_pj / self.transposed_pj
    }
}

/// Runs the §4.4.1 experiment: update one post-synaptic neuron's weight
/// column on a 128×128 array, on the 6T baseline and on the 4-port cell.
pub fn learning_numbers() -> Result<LearningNumbers, BenchError> {
    let pre = BitVec::from_indices(128, &[3, 40, 77, 101]);
    let run = |cell: BitcellKind| -> Result<(u64, f64, f64), BenchError> {
        let config = SystemConfig::builder(cell, &[128, 128, 10]).build()?;
        let clock = PipelineTiming::analyze(&config)?.clock_period();
        let mut tile = Tile::new(128, 128, &config)?;
        let mut engine = OnlineLearningEngine::new(StdpRule::paper_default(), 9);
        let cost = engine.teach(&mut tile, clock, &pre, 0, TeacherSignal::ShouldFire)?;
        Ok((cost.cycles, cost.latency.ns(), cost.energy.pj()))
    };
    let (rowwise_cycles, rowwise_ns, rowwise_pj) = run(BitcellKind::Std6T)?;
    let (transposed_cycles, transposed_ns, transposed_pj) =
        run(BitcellKind::multiport(4).expect("4 ports"))?;
    Ok(LearningNumbers {
        rowwise_cycles,
        rowwise_ns,
        rowwise_pj,
        transposed_cycles,
        transposed_ns,
        transposed_pj,
    })
}

/// Renders the §4.4.1 comparison against the paper's quoted values.
pub fn learning_table() -> Result<Table, BenchError> {
    let n = learning_numbers()?;
    let mut table = Table::new(
        "§4.4.1 — Online-learning column update: transposed vs row-wise",
        &[
            "quantity",
            "row-wise (6T)",
            "transposed (1RW+4R)",
            "gain",
            "paper gain",
        ],
    );
    table.row_owned(vec![
        "cycles".into(),
        format!(
            "{} (paper {})",
            n.rowwise_cycles,
            paper::LEARN_ROWWISE_CYCLES
        ),
        format!(
            "{} (paper {})",
            n.transposed_cycles,
            paper::LEARN_TRANSPOSED_CYCLES
        ),
        format!(
            "{:.1}x",
            n.rowwise_cycles as f64 / n.transposed_cycles as f64
        ),
        "32.0x".into(),
    ]);
    table.row_owned(vec![
        "latency [ns]".into(),
        format!("{:.1} (paper {})", n.rowwise_ns, paper::LEARN_ROWWISE_NS),
        format!(
            "{:.1} (paper {:.1})",
            n.transposed_ns,
            paper::LEARN_ROWWISE_NS / paper::LEARN_TIME_GAIN
        ),
        format!("{:.1}x", n.time_gain()),
        format!("{:.1}x", paper::LEARN_TIME_GAIN),
    ]);
    table.row_owned(vec![
        "energy [pJ]".into(),
        format!("{:.1} (paper {})", n.rowwise_pj, paper::LEARN_ROWWISE_PJ),
        format!(
            "{:.2} (paper {:.2})",
            n.transposed_pj,
            paper::LEARN_ROWWISE_PJ / paper::LEARN_ENERGY_GAIN
        ),
        format!("{:.1}x", n.energy_gain()),
        format!("{:.1}x", paper::LEARN_ENERGY_GAIN),
    ]);
    table.note("the paper prints the transposed energy as '8.04 ns'; 157 pJ / 19.5 = 8.05 confirms the unit is pJ");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_counts_are_exact() {
        let n = learning_numbers().unwrap();
        assert_eq!(n.rowwise_cycles, 256);
        assert_eq!(n.transposed_cycles, 8);
    }

    #[test]
    fn gains_are_in_the_paper_class() {
        let n = learning_numbers().unwrap();
        assert!(
            (n.time_gain() - paper::LEARN_TIME_GAIN).abs() / paper::LEARN_TIME_GAIN < 0.25,
            "time gain {:.1}",
            n.time_gain()
        );
        assert!(
            n.energy_gain() > 10.0 && n.energy_gain() < 40.0,
            "energy gain {:.1}",
            n.energy_gain()
        );
        // Latencies in the paper's class.
        assert!((n.rowwise_ns - paper::LEARN_ROWWISE_NS).abs() / paper::LEARN_ROWWISE_NS < 0.1);
    }
}
