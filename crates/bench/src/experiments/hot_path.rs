//! Hot-path throughput experiment: simulator frames/sec on the
//! word-parallel inference datapath.
//!
//! Unlike the modeled-silicon experiments this measures the *simulator*
//! itself: how many spike frames per wall-clock second the inference walk
//! serves on the paper's 768:256:256:256:10 system, per cell kind — once
//! through the sequential `EsamSystem::infer` loop and once through the
//! batch-major bit-sliced `infer_block` kernel (64 frames per machine
//! word). The numbers are the perf trajectory future PRs compare against
//! (`repro hot_path --json` emits them machine-readable), so regressions
//! in the bits/sram/neuron/core hot path show up as a dropped frames/s
//! figure rather than an anecdote. Because the two modes are bit-identical
//! by contract, their modeled invariants (cycles/frame, spikes-in) must
//! agree exactly — the experiment asserts nothing, but the snapshot diff
//! would catch a split.
//!
//! The workload is synthetic and deterministic — an untrained
//! seed-initialized BNN and fixed ~20 %-density frames — so the figure
//! needs no dataset, trains nothing, and is reproducible to the spike.

use std::time::{Duration, Instant};

use esam_bits::BitVec;
use esam_core::{EsamSystem, SystemConfig};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;

use crate::{BenchError, Table};

/// Measured hot-path throughput of one (cell kind, datapath mode) pair.
#[derive(Debug, Clone)]
pub struct HotPathPoint {
    /// The cell kind simulated.
    pub cell: BitcellKind,
    /// Datapath mode: `"sequential"` (frame-at-a-time `infer`) or
    /// `"bitsliced"` (batch-major 64-lane `infer_block`).
    pub mode: &'static str,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Simulated frames per wall-clock second.
    pub frames_per_s: f64,
    /// Average bottleneck-tile clock cycles per frame (a *modeled*
    /// quantity: constant across software optimizations, so a shift here
    /// flags a functional change, not a perf one).
    pub cycles_per_frame: f64,
    /// Total spikes injected across the batch (workload fingerprint).
    pub spikes_in: u64,
}

/// Results of the hot-path sweep.
#[derive(Debug, Clone)]
pub struct HotPathResults {
    /// Frames measured per cell kind.
    pub frames: usize,
    /// Two points per cell kind: sequential, then bitsliced.
    pub points: Vec<HotPathPoint>,
}

impl HotPathResults {
    /// Bit-sliced over sequential frames/s for `cell` (`None` if either
    /// point is missing).
    pub fn speedup(&self, cell: BitcellKind) -> Option<f64> {
        let rate = |mode: &str| {
            self.points
                .iter()
                .find(|p| p.cell == cell && p.mode == mode)
                .map(|p| p.frames_per_s)
        };
        Some(rate("bitsliced")? / rate("sequential")?)
    }
}

/// Deterministic ~20 %-density input frames (no RNG dependency: a fixed
/// multiplicative stride pattern).
fn synthetic_frames(width: usize, count: usize) -> Vec<BitVec> {
    (0..count)
        .map(|f| {
            let mut frame = BitVec::new(width);
            for k in 0..width / 5 {
                frame.set((f * 131 + k * 17 + (f * k) % 13) % width, true);
            }
            frame
        })
        .collect()
}

/// Runs the sweep: `samples` frames through the paper-default system on
/// each cell kind, through both datapath modes.
///
/// # Errors
///
/// Propagates model-construction and inference errors.
pub fn hot_path_results(samples: usize) -> Result<HotPathResults, BenchError> {
    let samples = samples.max(1);
    let topology = [768usize, 256, 256, 256, 10];
    let net = BnnNetwork::new(&topology, 0xE5A)?;
    let model = SnnModel::from_bnn(&net)?;
    let frames = synthetic_frames(topology[0], samples);
    let mut points = Vec::new();
    for cell in BitcellKind::ALL {
        let config = SystemConfig::builder(cell, &topology).build()?;
        let mut system = EsamSystem::from_model(&model, &config)?;
        for mode in ["sequential", "bitsliced"] {
            let start = Instant::now();
            let metrics = match mode {
                "sequential" => system.measure_batch(&frames)?,
                _ => system.measure_batch_bitsliced(&frames)?,
            };
            let wall = start.elapsed();
            let spikes_in = system.tiles().iter().map(|t| t.stats().spikes_in).sum();
            points.push(HotPathPoint {
                cell,
                mode,
                wall,
                frames_per_s: frames.len() as f64 / wall.as_secs_f64(),
                cycles_per_frame: metrics.bottleneck_cycles,
                spikes_in,
            });
        }
    }
    Ok(HotPathResults {
        frames: frames.len(),
        points,
    })
}

/// Renders the throughput table.
pub fn hot_path_table(results: &HotPathResults) -> Table {
    let mut table = Table::new(
        "Hot path — simulator frames/sec, sequential vs bit-sliced inference (768:256:256:256:10)",
        &[
            "cell",
            "mode",
            "wall [ms]",
            "frames/s",
            "cycles/frame",
            "spikes in",
        ],
    );
    for point in &results.points {
        table.row_owned(vec![
            point.cell.to_string(),
            point.mode.to_string(),
            format!("{:.1}", point.wall.as_secs_f64() * 1e3),
            format!("{:.0}", point.frames_per_s),
            format!("{:.1}", point.cycles_per_frame),
            point.spikes_in.to_string(),
        ]);
    }
    table.note("simulator wall-clock, not modeled silicon: cycles/frame and spikes-in are invariants that must agree across modes and must not move when only the software gets faster");
    table
}

/// Renders the results as one machine-readable JSON object (hand-rolled:
/// the workspace is offline and serde is not vendored).
pub fn hot_path_json(results: &HotPathResults) -> String {
    let points: Vec<String> = results
        .points
        .iter()
        .map(|p| {
            format!(
                "{{\"cell\":\"{}\",\"mode\":\"{}\",\"wall_ms\":{:.3},\"frames_per_s\":{:.1},\"cycles_per_frame\":{:.3},\"spikes_in\":{}}}",
                p.cell, p.mode, p.wall.as_secs_f64() * 1e3, p.frames_per_s, p.cycles_per_frame, p.spikes_in
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"hot_path\",\"frames\":{},\"points\":[{}]}}",
        results.frames,
        points.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_reports_every_cell_in_both_modes() {
        let results = hot_path_results(8).unwrap();
        assert_eq!(results.frames, 8);
        assert_eq!(results.points.len(), 2 * BitcellKind::ALL.len());
        for point in &results.points {
            assert!(point.frames_per_s > 0.0);
            assert!(point.cycles_per_frame >= 2.0);
            assert!(point.spikes_in > 0);
        }
        assert_eq!(
            hot_path_table(&results).row_count(),
            2 * BitcellKind::ALL.len()
        );
    }

    #[test]
    fn modes_agree_on_the_modeled_invariants() {
        // Bit-identity in miniature: the bit-sliced sweep must reproduce
        // the sequential sweep's modeled cycles/frame and spike totals for
        // every cell — only the wall clock may differ.
        // 65 = one full 64-lane block plus a ragged single-lane tail.
        let results = hot_path_results(65).unwrap();
        for cell in BitcellKind::ALL {
            let by_mode = |mode: &str| {
                results
                    .points
                    .iter()
                    .find(|p| p.cell == cell && p.mode == mode)
                    .unwrap()
            };
            let seq = by_mode("sequential");
            let bs = by_mode("bitsliced");
            assert_eq!(seq.cycles_per_frame, bs.cycles_per_frame, "{cell}");
            assert_eq!(seq.spikes_in, bs.spikes_in, "{cell}");
            assert!(results.speedup(cell).unwrap() > 0.0, "{cell}");
        }
    }

    #[test]
    fn json_is_well_formed_enough_to_parse_by_eye_and_machine() {
        let results = hot_path_results(2).unwrap();
        let json = hot_path_json(&results);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"experiment\":\"hot_path\""));
        assert!(json.contains("\"frames\":2"));
        assert_eq!(json.matches("\"cell\"").count(), 2 * BitcellKind::ALL.len());
        assert_eq!(
            json.matches("\"mode\":\"bitsliced\"").count(),
            BitcellKind::ALL.len()
        );
        // Balanced braces: a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn synthetic_frames_are_deterministic_and_sparse() {
        let a = synthetic_frames(768, 4);
        let b = synthetic_frames(768, 4);
        assert_eq!(a, b);
        for frame in &a {
            let density = frame.count_ones() as f64 / 768.0;
            assert!(density > 0.05 && density < 0.35, "density {density}");
        }
    }
}
