//! Fig. 8 reproduction: system-level power / throughput / energy / area for
//! the five cell options, plus the headline 3.1× / 2.2× gains.

use esam_core::{EsamSystem, SystemConfig, SystemMetrics};
use esam_sram::BitcellKind;
use esam_tech::calibration::paper;

use crate::context::ExperimentContext;
use crate::{BenchError, Table};

/// Metrics of all five systems, Fig. 8 order.
#[derive(Debug, Clone)]
pub struct Fig8Results {
    /// One entry per cell kind ([`BitcellKind::ALL`] order).
    pub metrics: Vec<SystemMetrics>,
}

impl Fig8Results {
    /// Metrics of the single-port baseline.
    pub fn single_port(&self) -> &SystemMetrics {
        &self.metrics[0]
    }

    /// Metrics of the 4-port flagship.
    pub fn four_port(&self) -> &SystemMetrics {
        &self.metrics[4]
    }

    /// Headline speedup: throughput(4R) / throughput(1RW) (paper: 3.1×).
    pub fn speedup(&self) -> f64 {
        self.four_port().throughput_inf_s / self.single_port().throughput_inf_s
    }

    /// Headline energy-efficiency gain: E/inf(1RW) / E/inf(4R) (paper: 2.2×).
    pub fn energy_gain(&self) -> f64 {
        self.single_port().energy_per_inf / self.four_port().energy_per_inf
    }

    /// Area ratio 4R / 1RW (paper: 2.4×).
    pub fn area_ratio(&self) -> f64 {
        self.four_port().area / self.single_port().area
    }
}

/// Runs the Fig. 8 sweep: the trained 768:256:256:256:10 binary-SNN on all
/// five cell options, `samples` test images each.
pub fn fig8_results(
    context: &ExperimentContext,
    samples: usize,
) -> Result<Fig8Results, BenchError> {
    let frames = context.test_frames(samples);
    let mut metrics = Vec::with_capacity(BitcellKind::ALL.len());
    for cell in BitcellKind::ALL {
        let config = SystemConfig::paper_default(cell);
        let mut system = EsamSystem::from_model(context.model(), &config)?;
        metrics.push(system.measure_batch(&frames)?);
    }
    Ok(Fig8Results { metrics })
}

/// Renders the Fig. 8 table.
pub fn fig8_table(results: &Fig8Results) -> Table {
    let mut table = Table::new(
        "Fig. 8 — System-level comparison across cell options",
        &[
            "cell",
            "clock [MHz]",
            "throughput [MInf/s]",
            "energy/inf [pJ]",
            "power [mW]",
            "area [µm²]",
        ],
    );
    for (cell, m) in BitcellKind::ALL.iter().zip(&results.metrics) {
        table.row_owned(vec![
            cell.name().to_string(),
            format!("{:.0}", m.clock.mhz()),
            format!("{:.2}", m.throughput_minf_s()),
            format!("{:.0}", m.energy_per_inf.pj()),
            format!("{:.2}", m.total_power().mw()),
            format!("{:.0}", m.area.value()),
        ]);
    }
    table.note("paper shape: energy/inf falls with every added port; throughput dips at +1R then rises; 1RW power sits above +1R and +2R; area reaches ~2.4x at +4R");
    table
}

/// Renders the headline-gains table (abstract / §4.4.2 / Table 3).
pub fn headline_table(results: &Fig8Results) -> Table {
    let mut table = Table::new(
        "Headline — 1RW+4R system vs single-port baseline",
        &["quantity", "measured", "paper"],
    );
    let m4 = results.four_port();
    table.row_owned(vec![
        "speedup (throughput)".into(),
        format!("{:.2}x", results.speedup()),
        format!("{:.1}x", paper::HEADLINE_SPEEDUP),
    ]);
    table.row_owned(vec![
        "energy-efficiency gain".into(),
        format!("{:.2}x", results.energy_gain()),
        format!("{:.1}x", paper::HEADLINE_ENERGY_GAIN),
    ]);
    table.row_owned(vec![
        "throughput".into(),
        format!("{:.1} MInf/s", m4.throughput_minf_s()),
        format!("{:.0} MInf/s", paper::SYSTEM_THROUGHPUT_INF_S / 1e6),
    ]);
    table.row_owned(vec![
        "energy/inference".into(),
        format!("{:.0} pJ", m4.energy_per_inf.pj()),
        format!("{:.0} pJ", paper::SYSTEM_ENERGY_PER_INF_PJ),
    ]);
    table.row_owned(vec![
        "power".into(),
        format!("{:.1} mW", m4.total_power().mw()),
        format!("{:.0} mW", paper::SYSTEM_POWER_MW),
    ]);
    table.row_owned(vec![
        "clock".into(),
        format!("{:.0} MHz", m4.clock.mhz()),
        format!("{:.0} MHz", paper::SYSTEM_CLOCK_MHZ),
    ]);
    table.row_owned(vec![
        "area ratio 4R/1RW".into(),
        format!("{:.2}x", results.area_ratio()),
        format!("{:.1}x", paper::SYSTEM_AREA_RATIO_4R),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn fig8_shapes_hold_on_quick_context() {
        let context = ExperimentContext::prepare(Fidelity::Quick).unwrap();
        let results = fig8_results(&context, 60).unwrap();
        let m = &results.metrics;

        // Energy/inf strictly decreases with every added port.
        for pair in m.windows(2) {
            assert!(
                pair[1].energy_per_inf < pair[0].energy_per_inf,
                "energy/inf must fall with added ports"
            );
        }
        // Throughput dips slightly at +1R, then rises.
        assert!(m[1].throughput_inf_s < m[0].throughput_inf_s);
        assert!(m[2].throughput_inf_s > m[1].throughput_inf_s);
        assert!(m[4].throughput_inf_s > m[3].throughput_inf_s);
        // 1RW power above +1R and +2R, then increasing with ports.
        assert!(m[0].total_power() > m[1].total_power());
        assert!(m[0].total_power() > m[2].total_power());
        assert!(m[4].total_power() > m[3].total_power());
        // Headline gains in the paper's class.
        assert!(
            results.speedup() > 2.5 && results.speedup() < 3.7,
            "speedup {:.2}",
            results.speedup()
        );
        assert!(
            results.energy_gain() > 1.9 && results.energy_gain() < 2.6,
            "energy gain {:.2}",
            results.energy_gain()
        );
        assert!((results.area_ratio() - paper::SYSTEM_AREA_RATIO_4R).abs() < 0.2);

        // Table renders all rows.
        assert_eq!(fig8_table(&results).row_count(), 5);
        assert_eq!(headline_table(&results).row_count(), 7);
    }
}
