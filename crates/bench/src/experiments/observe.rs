//! Observability experiment: one deterministic end-to-end trace across the
//! serving, mesh and block-engine pipelines, with a time-in-stage
//! bottleneck breakdown and a unified metrics snapshot.
//!
//! Three deterministic workloads run back to back, each recording into the
//! `esam-obs` tracer:
//!
//! 1. **Serve** — a single-worker, batch-of-1 [`EsamService`] fed through
//!    [`EsamService::submit_at`] with a modeled-cycle arrival plan (one
//!    request every half mean service time, so a queue builds and the
//!    `queue-wait` percentiles are non-trivial). The worker runs with
//!    SECDED integrity checking on under a light transient-flip plan, so
//!    the snapshot carries live corrected/uncorrectable/quarantine
//!    series. It records queue-wait → infer (tiled by per-layer spans)
//!    → fulfil.
//! 2. **Mesh** — a 3-core sequential pipeline walked through
//!    [`MeshSystem::run_traced`] under a light packet-corruption plan:
//!    per-core `frame` occupancy and `bubble` spans, per-link `hop` +
//!    `serialize` spans, and `packet-corrupt` instants whose CRC-verify
//!    and retransmit counters land in the metrics snapshot.
//! 3. **Block engine** — the batch-major bit-sliced kernel through
//!    [`esam_core::EsamSystem::infer_block_scoped`], attributing
//!    `layer-block` spans per 64-lane block.
//!
//! The three traces merge into one Chrome trace-event JSON (processes
//! `esam-core` / `esam-serve` / `esam-mesh`) loadable in
//! [Perfetto](https://ui.perfetto.dev); every stage span feeds a
//! [`Histogram`] whose p50/p95/p99 make the bottleneck table. All of it is
//! in the modeled-cycle domain, so `repro observe --json` is **byte-for-byte
//! reproducible** at a fixed seed — the one wall-clock figure (the no-op
//! tracer overhead on the inference hot path, acceptance bar < 2 %) is
//! reported on the table/stderr side and deliberately kept out of the JSON
//! snapshot.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

use esam_bits::BitVec;
use esam_core::{CoreError, EsamSystem, SystemConfig, TraceScope, TrackTrace};
use esam_mesh::{Execution, MeshConfig, MeshSystem, PayloadMode, MESH_TRACE_PID};
use esam_nn::{BnnNetwork, SnnModel};
use esam_obs::{
    json_escape, EventKind, Histogram, MetricsRegistry, TimeDomain, Trace, TraceConfig,
};
use esam_serve::{
    BatchPolicy, EsamService, FaultConfig, FaultPlan, IntegrityMode, ServeConfig, ServeError,
    SERVE_TRACE_PID,
};
use esam_sram::BitcellKind;

use crate::{BenchError, Table};

/// Perfetto process id for the block-engine track (serve is 1, mesh is 2).
const CORE_TRACE_PID: u32 = 0;

/// Per-track ring capacity — comfortably above the event counts of the
/// default workloads, so nothing is dropped and the export is complete.
const TRACE_CAPACITY: usize = 8192;

/// Frames timed per round of the no-op overhead measurement.
const OVERHEAD_FRAMES: usize = 48;

/// One stage's cycle-duration distribution in the bottleneck table.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Stage key, `subsystem/stage` (e.g. `serve/queue-wait`).
    pub name: String,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Median span duration in modeled cycles.
    pub p50: u64,
    /// 95th-percentile span duration in modeled cycles.
    pub p95: u64,
    /// 99th-percentile span duration in modeled cycles.
    pub p99: u64,
    /// Longest span in modeled cycles.
    pub max: u64,
    /// Summed cycles across all spans of this stage.
    pub total_cycles: u64,
}

/// Results of the observability experiment.
#[derive(Debug, Clone)]
pub struct ObserveResults {
    /// Requests served through the traced single-worker service.
    pub requests: usize,
    /// Frames walked through the traced 3-core mesh.
    pub mesh_frames: usize,
    /// Events retained across the merged trace.
    pub trace_events: u64,
    /// Events lost to ring overflow (0 at the default capacity).
    pub trace_dropped: u64,
    /// Unmatched span exits across the merged trace (0 ⇔ well-formed).
    pub trace_unmatched: u64,
    /// Per-stage cycle distributions, sorted by stage key.
    pub stages: Vec<StageSummary>,
    /// The stage with the most total cycles (composite `serve/infer`
    /// excluded — its layers already account for it).
    pub bottleneck: String,
    /// The unified metrics snapshot (counters, gauges, stage histograms).
    pub registry: MetricsRegistry,
    /// The merged cycle-domain Chrome trace-event JSON (Perfetto-loadable).
    pub trace_json: String,
    /// No-op tracer overhead on the inference hot path, percent
    /// (`infer_scoped(Off)` vs `infer`, best-of-3 wall time). The one
    /// machine-dependent figure; excluded from [`observe_json`].
    pub overhead_pct: f64,
    /// Frames per timing round of the overhead measurement.
    pub overhead_frames: usize,
}

fn serve_err(e: ServeError) -> BenchError {
    BenchError::Core(CoreError::InvalidConfig(format!("serve: {e}")))
}

/// Deterministic sparse input frames (three strided spikes per frame).
fn synthetic_frames(width: usize, count: usize) -> Vec<BitVec> {
    (0..count)
        .map(|f| {
            BitVec::from_indices(
                width,
                &[(f * 13) % width, (f * 29 + 7) % width, (f * 53 + 1) % width],
            )
        })
        .collect()
}

/// Best-of-3 wall time of `infer` vs `infer_scoped(TraceScope::Off)` over
/// the same frames, as a percentage overhead (can be slightly negative —
/// it is noise around zero).
fn noop_overhead_pct(system: &EsamSystem, frames: &[BitVec]) -> Result<f64, BenchError> {
    let mut plain = system.clone();
    let mut scoped = system.clone();
    for frame in frames {
        plain.infer(frame)?;
        scoped.infer_scoped(frame, &mut TraceScope::Off)?;
    }
    let mut best_plain = f64::INFINITY;
    let mut best_scoped = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for frame in frames {
            plain.infer(frame)?;
        }
        best_plain = best_plain.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for frame in frames {
            scoped.infer_scoped(frame, &mut TraceScope::Off)?;
        }
        best_scoped = best_scoped.min(start.elapsed().as_secs_f64());
    }
    Ok((best_scoped / best_plain - 1.0) * 100.0)
}

/// Runs the experiment: `samples` scales the serve request count (≥ 4) and
/// the mesh frame count (clamped to 4..=64).
///
/// # Errors
///
/// Propagates model-construction, inference and serving errors.
pub fn observe_results(samples: usize) -> Result<ObserveResults, BenchError> {
    let requests = samples.max(4);
    let mesh_frames = samples.clamp(4, 64);

    // --- Serve: single worker, batch of 1, modeled arrival plan. ---
    let topology = [128usize, 64, 10];
    let net = BnnNetwork::new(&topology, 0x0B5)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &topology).build()?;
    let system = EsamSystem::from_model(&model, &config)?;
    let batch = synthetic_frames(topology[0], requests);

    // Arrival plan: one request every half mean service time, so the
    // modeled queue builds deterministically and queue-wait spreads.
    let mut reference = system.clone();
    let mut total_cycles = 0u64;
    for frame in &batch {
        total_cycles += reference.infer(frame)?.total_cycles();
    }
    let gap = (total_cycles / requests as u64) / 2;

    // A light transient-flip plan with integrity checking on: the worker
    // self-corrects (responses stay exact for single-bit rows) and the
    // corrected/uncorrectable/quarantine series in the snapshot are live.
    let service = EsamService::start(
        &system,
        ServeConfig::with_workers(1)
            .queue_capacity(requests)
            .batch(BatchPolicy::new(1, Duration::ZERO))
            .faults(FaultPlan::seeded(
                0x0B5,
                FaultConfig::none().with_weight_flip_rate(5e-4),
            ))
            .integrity(IntegrityMode::Correct)
            .trace(TraceConfig::enabled(TRACE_CAPACITY)),
    );
    let tickets: Vec<_> = batch
        .iter()
        .enumerate()
        .map(|(i, frame)| service.submit_at(frame.clone(), i as u64 * gap))
        .collect::<Result<_, _>>()
        .map_err(serve_err)?;
    for ticket in tickets {
        ticket.wait().map_err(serve_err)?;
    }
    let report = service.shutdown();

    // --- Block engine: the bit-sliced kernel with layer-block spans. ---
    let mut block_track = TrackTrace::new(CORE_TRACE_PID, 0, "block engine", TRACE_CAPACITY);
    let mut block_system = system.clone();
    block_system.infer_block_scoped(&batch, &mut TraceScope::On(&mut block_track))?;

    // --- Mesh: 3-core sequential pipeline with the traced timeline. ---
    let mesh_topology = [128usize, 64, 32, 10];
    let mesh_net = BnnNetwork::new(&mesh_topology, 0x0B5E)?;
    let mesh_model = SnnModel::from_bnn(&mesh_net)?;
    let mesh_sys_config =
        SystemConfig::builder(BitcellKind::multiport(2).unwrap(), &mesh_topology).build()?;
    let mesh_config = MeshConfig::with_cores(3)
        .execution(Execution::Sequential)
        .payload(PayloadMode::Frames)
        // Light in-flight corruption: the CRC verify + NACK/retransmit
        // series are live and the timeline carries `packet-corrupt`
        // instants, while results stay exact.
        .faults(FaultPlan::seeded(
            0x0B5E,
            FaultConfig::none().with_packet_corrupt_rate(0.08),
        ));
    let mut mesh = MeshSystem::from_model(&mesh_model, &mesh_sys_config, &mesh_config)?;
    let mesh_batch = synthetic_frames(mesh_topology[0], mesh_frames);
    let (_, mesh_trace) = mesh.run_traced(&mesh_batch, TRACE_CAPACITY)?;
    let mesh_tally = *mesh.tally();

    // --- Merge the three subsystem traces under the sorted-track law. ---
    let serve_counters = (report.admitted, report.completed, report.batches);
    let serve_integrity = report.integrity;
    let serve_quarantines = report.quarantines;
    let mut trace = Trace::new();
    trace.name_process(CORE_TRACE_PID, "esam-core");
    trace.push(block_track);
    trace.merge(report.trace);
    trace.merge(mesh_trace);

    // --- Stage histograms from the merged spans. ---
    let mut stage_hists: BTreeMap<String, Histogram> = BTreeMap::new();
    for track in trace.tracks() {
        for event in &track.events {
            if event.kind != EventKind::Span {
                continue;
            }
            let arg0 = event.args[0].map_or(0, |(_, v)| v);
            let key = match (track.pid, event.name) {
                (SERVE_TRACE_PID, "queue-wait") => "serve/queue-wait".to_string(),
                (SERVE_TRACE_PID, "infer") => "serve/infer".to_string(),
                (SERVE_TRACE_PID, "layer") => format!("serve/layer {arg0}"),
                (CORE_TRACE_PID, "layer-block") => format!("core/layer-block {arg0}"),
                (MESH_TRACE_PID, "frame") => "mesh/occupancy".to_string(),
                (MESH_TRACE_PID, "bubble") => "mesh/bubble".to_string(),
                (MESH_TRACE_PID, "hop") => "mesh/hop".to_string(),
                (MESH_TRACE_PID, "serialize") => "mesh/serialize".to_string(),
                _ => continue,
            };
            stage_hists.entry(key).or_default().record(event.cycle_dur);
        }
    }
    let stages: Vec<StageSummary> = stage_hists
        .iter()
        .map(|(name, h)| StageSummary {
            name: name.clone(),
            count: h.count(),
            p50: h.quantile(0.5),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max(),
            total_cycles: u64::try_from(h.sum()).unwrap_or(u64::MAX),
        })
        .collect();
    // `serve/infer` is the sum of its layer spans — excluding it keeps the
    // bottleneck pick among non-overlapping stages.
    let bottleneck = stages
        .iter()
        .filter(|s| s.name != "serve/infer")
        .max_by_key(|s| s.total_cycles)
        .map(|s| s.name.clone())
        .unwrap_or_default();

    // --- The unified metrics snapshot. ---
    let mut registry = MetricsRegistry::new();
    registry.add_counter("serve_requests_admitted_total", serve_counters.0);
    registry.add_counter("serve_requests_completed_total", serve_counters.1);
    registry.add_counter("serve_batches_total", serve_counters.2);
    registry.add_counter("mesh_frames_total", mesh_batch.len() as u64);
    registry.add_counter("mesh_packets_dropped_total", mesh_tally.packets_dropped);
    registry.add_counter("mesh_packets_corrupted_total", mesh_tally.packets_corrupted);
    registry.add_counter("mesh_retransmits_total", mesh_tally.retransmits);
    registry.add_counter(
        "serve_integrity_checked_reads_total",
        serve_integrity.checked_reads,
    );
    registry.add_counter("serve_integrity_corrected_total", serve_integrity.corrected);
    registry.add_counter(
        "serve_integrity_uncorrectable_total",
        serve_integrity.uncorrectable(),
    );
    registry.add_counter("serve_integrity_silent_total", serve_integrity.silent);
    registry.add_counter("serve_quarantines_total", serve_quarantines);
    registry.add_counter("trace_events_total", trace.total_events());
    registry.add_counter("trace_dropped_total", trace.total_dropped());
    registry.add_counter("trace_unmatched_total", trace.total_unmatched());
    // No wall-racy series here (e.g. the observed peak queue depth
    // depends on how fast the worker drains vs. the submitter) — every
    // value in the snapshot must be a modeled/counted invariant.
    registry.set_gauge("serve_workers", 1);
    registry.set_gauge("mesh_cores", 3);
    for (stage, metric) in [
        ("serve/queue-wait", "serve_queue_wait_cycles"),
        ("serve/infer", "serve_infer_cycles"),
        ("mesh/occupancy", "mesh_occupancy_cycles"),
        ("mesh/bubble", "mesh_bubble_cycles"),
    ] {
        if let Some(h) = stage_hists.get(stage) {
            registry.merge_histogram(metric, h);
        }
    }

    let overhead_pct = noop_overhead_pct(&system, &synthetic_frames(topology[0], OVERHEAD_FRAMES))?;

    Ok(ObserveResults {
        requests,
        mesh_frames,
        trace_events: trace.total_events(),
        trace_dropped: trace.total_dropped(),
        trace_unmatched: trace.total_unmatched(),
        stages,
        bottleneck,
        registry,
        trace_json: trace.chrome_json(TimeDomain::Cycles),
        overhead_pct,
        overhead_frames: OVERHEAD_FRAMES,
    })
}

/// Renders the bottleneck breakdown table.
pub fn observe_table(results: &ObserveResults) -> Table {
    let mut table = Table::new(
        "Observe — time-in-stage breakdown (modeled cycles) across serve, mesh and block engine",
        &["stage", "count", "p50", "p95", "p99", "max", "total cycles"],
    );
    for stage in &results.stages {
        table.row_owned(vec![
            stage.name.clone(),
            stage.count.to_string(),
            stage.p50.to_string(),
            stage.p95.to_string(),
            stage.p99.to_string(),
            stage.max.to_string(),
            stage.total_cycles.to_string(),
        ]);
    }
    table.note(&format!(
        "bottleneck stage: {} ({} requests served, {} mesh frames, {} trace events, {} dropped)",
        results.bottleneck,
        results.requests,
        results.mesh_frames,
        results.trace_events,
        results.trace_dropped
    ));
    table.note(&format!(
        "no-op tracer overhead on the inference hot path: {:+.2}% over {} frames (best-of-3 wall time; acceptance < 2%)",
        results.overhead_pct, results.overhead_frames
    ));
    table.note(
        "load the trace in Perfetto: `ESAM_OBSERVE_DIR=out repro observe` writes out/trace.json — open https://ui.perfetto.dev and drag it in (1 µs ≙ 1 modeled cycle)",
    );
    table
}

/// Renders the results as one machine-readable JSON object. Everything in
/// it is modeled-cycle-domain and therefore byte-for-byte reproducible at
/// a fixed seed; the wall-clock overhead figure is deliberately excluded
/// (it lives in the table / stderr output).
pub fn observe_json(results: &ObserveResults) -> String {
    let stages: Vec<String> = results
        .stages
        .iter()
        .map(|s| {
            format!(
                "{{\"stage\":\"{}\",\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"total_cycles\":{}}}",
                json_escape(&s.name),
                s.count,
                s.p50,
                s.p95,
                s.p99,
                s.max,
                s.total_cycles
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"observe\",\"requests\":{},\"mesh_frames\":{},\"trace_events\":{},\
         \"trace_dropped\":{},\"trace_unmatched\":{},\"bottleneck\":\"{}\",\"stages\":[{}],\
         \"metrics\":{},\"trace\":{}}}",
        results.requests,
        results.mesh_frames,
        results.trace_events,
        results.trace_dropped,
        results.trace_unmatched,
        json_escape(&results.bottleneck),
        stages.join(","),
        results.registry.json(),
        results.trace_json.trim_end()
    )
}

/// Writes the Perfetto trace and both metrics snapshots into `dir`
/// (created if absent): `trace.json`, `metrics.prom`, `metrics.json`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifacts(results: &ObserveResults, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("trace.json"), &results.trace_json)?;
    std::fs::write(dir.join("metrics.prom"), results.registry.prometheus())?;
    std::fs::write(dir.join("metrics.json"), results.registry.json())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_json_is_byte_for_byte_reproducible() {
        let a = observe_results(10).unwrap();
        let b = observe_results(10).unwrap();
        assert_eq!(
            observe_json(&a),
            observe_json(&b),
            "the snapshot is cycle-domain only and must not wobble"
        );
        assert_eq!(a.trace_json, b.trace_json);
    }

    #[test]
    fn trace_covers_all_three_subsystems() {
        let results = observe_results(8).unwrap();
        for marker in [
            "esam-serve",
            "esam-mesh",
            "esam-core",
            "queue-wait",
            "bubble",
            "layer-block",
            "serialize",
        ] {
            assert!(results.trace_json.contains(marker), "missing {marker}");
        }
        assert_eq!(results.trace_dropped, 0, "capacity fits the workload");
        assert_eq!(results.trace_unmatched, 0, "every span is well-formed");
        assert!(!results.bottleneck.is_empty());
        let names: Vec<&str> = results.stages.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "serve/queue-wait",
            "serve/infer",
            "mesh/occupancy",
            "mesh/bubble",
        ] {
            assert!(names.contains(&stage), "missing stage {stage}");
        }
        assert_eq!(observe_table(&results).row_count(), results.stages.len());
    }

    #[test]
    fn json_embeds_trace_and_metrics_as_real_objects() {
        let results = observe_results(5).unwrap();
        let json = observe_json(&results);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"experiment\":\"observe\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"counters\""));
        assert!(!json.contains("overhead"), "wall figures stay out");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn registry_snapshot_carries_the_core_series() {
        let results = observe_results(6).unwrap();
        assert_eq!(
            results.registry.counter("serve_requests_completed_total"),
            6
        );
        assert_eq!(results.registry.counter("serve_requests_admitted_total"), 6);
        assert_eq!(results.registry.counter("mesh_frames_total"), 6);
        assert!(
            results
                .registry
                .counter("serve_integrity_checked_reads_total")
                > 0,
            "the worker serves with SECDED checking on"
        );
        assert!(
            results.registry.counter("mesh_packets_corrupted_total") > 0,
            "the corruption plan fires at this rate"
        );
        assert_eq!(
            results.registry.counter("mesh_packets_corrupted_total"),
            results.registry.counter("mesh_retransmits_total"),
            "every flagged packet is retransmitted within budget here"
        );
        assert_eq!(results.registry.counter("serve_integrity_silent_total"), 0);
        assert_eq!(
            results.registry.counter("trace_events_total"),
            results.trace_events
        );
        let prom = results.registry.prometheus();
        assert!(prom.contains("# TYPE serve_queue_wait_cycles summary"));
        assert!(prom.contains("serve_infer_cycles_count 6"));
    }

    #[test]
    fn artifacts_round_trip_to_disk() {
        let results = observe_results(4).unwrap();
        let dir = std::env::temp_dir().join("esam-observe-test");
        write_artifacts(&results, &dir).unwrap();
        let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        assert_eq!(trace, results.trace_json);
        assert!(std::fs::read_to_string(dir.join("metrics.prom"))
            .unwrap()
            .contains("# TYPE"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
