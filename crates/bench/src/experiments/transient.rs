//! Numerical (MNA) cross-check of the analytical bitline timing/energy
//! models — the reproduction's stand-in for the paper's Spectre runs.
//!
//! For every cell option the table shows the analytical precharge and
//! develop times next to the transient solver's threshold crossings over
//! the same parasitics, plus the precharge energy identity
//! `E = C·V·ΔV` against the integrated source power.

use esam_circuit::{Circuit, Waveform};
use esam_sram::{ArrayConfig, BitcellKind, LineKind, TimingAnalysis};
use esam_tech::units::charge_energy;

use crate::{BenchError, Table};

/// Builds the transient cross-check table across 1R..4R cells.
///
/// # Errors
///
/// Propagates solver failures (singular matrices would indicate a model
/// bug).
pub fn transient_table() -> Result<Table, BenchError> {
    let mut table = Table::new(
        "Spectre-substitute cross-check — analytical models vs MNA transient (128×128)",
        &[
            "cell",
            "precharge model [ps]",
            "precharge transient [ps]",
            "develop model [ps]",
            "develop transient [ps]",
            "E_prech model [fJ]",
            "E_prech transient [fJ]",
        ],
    );
    for ports in 1..=4u8 {
        let config = ArrayConfig::paper_default(BitcellKind::MultiPort { read_ports: ports });
        let timing = TimingAnalysis::new(&config);
        let rbl = config.geometry().line(LineKind::InferenceBitline);
        let c = rbl.total_capacitance();
        let rail = config.vprech();
        let share = timing.rbl_precharge_pitch_share();
        let r = timing.precharge_resistance(rail, share);

        // Precharge: R from the rail into the bitline capacitance.
        let analytic_prech = timing.precharge_time(c, rail, share);
        let mut ckt = Circuit::new();
        let supply = ckt.add_node("vprech");
        let bl = ckt.add_node("rbl");
        ckt.add_voltage_source(supply, Circuit::GROUND, Waveform::dc(rail.v()))?;
        ckt.add_resistor(supply, bl, r.value())?;
        ckt.add_capacitor(bl, Circuit::GROUND, c.value())?;
        let tau = r.value() * c.value();
        let run = ckt.transient(10.0 * tau, tau / 300.0)?;
        let transient_prech = run
            .rising_crossing(bl, 0.9 * rail.v())
            .expect("precharge reaches 90 %");

        // Develop: the worst-case cell current discharging the bitline by
        // the sense swing.
        let i_cell = timing.cell_read_current();
        let swing = 0.25 * rail.v();
        let analytic_dev = c.value() * swing / i_cell.value();
        let mut ckt = Circuit::new();
        let bl = ckt.add_node("rbl");
        ckt.add_capacitor(bl, Circuit::GROUND, c.value())?;
        ckt.set_initial_voltage(bl, rail.v())?;
        ckt.add_current_source(bl, Circuit::GROUND, Waveform::dc(i_cell.value()))?;
        ckt.add_resistor(bl, Circuit::GROUND, 1e12)?;
        let run = ckt.transient(4.0 * analytic_dev, analytic_dev / 300.0)?;
        let transient_dev = run
            .falling_crossing(bl, rail.v() - swing)
            .expect("bitline develops");

        // Precharge restore energy: C·V_rail·ΔV vs integrated source power.
        let restore = 0.5 * rail.v();
        let analytic_e = charge_energy(c, rail, rail * 0.5);
        let mut ckt = Circuit::new();
        let supply = ckt.add_node("vprech");
        let bl = ckt.add_node("rbl");
        ckt.add_voltage_source(supply, Circuit::GROUND, Waveform::dc(rail.v()))?;
        ckt.add_resistor(supply, bl, r.value())?;
        ckt.add_capacitor(bl, Circuit::GROUND, c.value())?;
        ckt.set_initial_voltage(bl, rail.v() - restore)?;
        let run = ckt.transient(15.0 * tau, tau / 300.0)?;
        let transient_e = run.source_energy(0);

        table.row_owned(vec![
            format!("1RW+{ports}R"),
            format!("{:.1}", analytic_prech.ps()),
            format!("{:.1}", transient_prech * 1e12),
            format!("{:.1}", analytic_dev * 1e12),
            format!("{:.1}", transient_dev * 1e12),
            format!("{:.2}", analytic_e.fj()),
            format!("{:.2}", transient_e * 1e15),
        ]);
    }
    table.note("model vs transient: precharge within the 2.2τ-vs-ln(10)τ band, develop exact (constant-current), energy within integration error");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_track_the_transient_solver() {
        let table = transient_table().unwrap();
        assert_eq!(table.row_count(), 4);
        for row in 0..4 {
            let m_prech: f64 = table.cell(row, 1).unwrap().parse().unwrap();
            let t_prech: f64 = table.cell(row, 2).unwrap().parse().unwrap();
            assert!(
                (m_prech / t_prech - 1.0).abs() < 0.12,
                "row {row}: precharge {m_prech} vs {t_prech}"
            );
            let m_dev: f64 = table.cell(row, 3).unwrap().parse().unwrap();
            let t_dev: f64 = table.cell(row, 4).unwrap().parse().unwrap();
            assert!(
                (m_dev / t_dev - 1.0).abs() < 0.03,
                "row {row}: develop {m_dev} vs {t_dev}"
            );
            let m_e: f64 = table.cell(row, 5).unwrap().parse().unwrap();
            let t_e: f64 = table.cell(row, 6).unwrap().parse().unwrap();
            assert!(
                (m_e / t_e - 1.0).abs() < 0.05,
                "row {row}: energy {m_e} vs {t_e}"
            );
        }
    }

    #[test]
    fn times_grow_with_ports() {
        let table = transient_table().unwrap();
        let col =
            |row: usize, col: usize| -> f64 { table.cell(row, col).unwrap().parse().unwrap() };
        for row in 1..4 {
            assert!(
                col(row, 2) >= col(row - 1, 2),
                "transient precharge must grow with ports"
            );
        }
    }
}
