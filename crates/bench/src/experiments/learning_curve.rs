//! System-level online learning (§4.4): streaming STDP sessions that close
//! the loop the paper costs per column — infer, derive teacher signals,
//! update the output tile — and recover accuracy on the synthetic digit
//! split, starting from an *untrained* readout.
//!
//! Both cells are taught with the same rule and seed, so their weight
//! trajectories (and therefore their accuracies) are **bit-identical**; the
//! experiment demonstrates the paper's functional/cost split by showing the
//! same learning curve at a sharply different training cost (32× cycles,
//! ~26× time; the energy gain depends on the readout's array geometry —
//! see the table notes).

use esam_core::{EsamSystem, LearningCurve, OnlineSession, SystemConfig, SystemMetrics};
use esam_nn::{BnnNetwork, Dataset, DigitsConfig, SnnModel, Split, StdpRule, CLASSES};
use esam_sram::BitcellKind;

use crate::{BenchError, Table};

/// Held-out digits used for the before/after accuracy evaluation.
const TEST_SAMPLES: usize = 200;

/// Seed of the dataset, the untrained readout and the STDP stream.
const SEED: u64 = 7;

/// The teacher-driven stochastic rule the sessions apply.
fn rule() -> StdpRule {
    StdpRule::new(0.4, 0.02)
}

/// One cell's training run.
#[derive(Debug, Clone)]
pub struct CellCurve {
    /// The bitcell under test.
    pub cell: BitcellKind,
    /// Held-out accuracy of the untrained readout.
    pub baseline_accuracy: f64,
    /// Held-out accuracy after the online-learning session.
    pub trained_accuracy: f64,
    /// Accuracy-over-samples curve recorded during the session.
    pub curve: LearningCurve,
    /// Session metrics; `learning` carries the total training cost.
    pub metrics: SystemMetrics,
}

/// The full experiment: the same streaming session on multiport and 6T.
#[derive(Debug, Clone)]
pub struct LearningCurveResults {
    /// Training-stream length.
    pub samples: usize,
    /// The 4-port transposable cell's run.
    pub multiport: CellCurve,
    /// The 6T baseline's run.
    pub baseline6t: CellCurve,
}

impl LearningCurveResults {
    /// Training-time gain of the transposed port (paper's §4.4.1 class).
    pub fn time_gain(&self) -> f64 {
        let multi = self.multiport.metrics.learning.expect("learning ran");
        let single = self.baseline6t.metrics.learning.expect("learning ran");
        single.cost.latency / multi.cost.latency
    }

    /// Training-energy gain of the transposed port.
    pub fn energy_gain(&self) -> f64 {
        let multi = self.multiport.metrics.learning.expect("learning ran");
        let single = self.baseline6t.metrics.learning.expect("learning ran");
        single.cost.energy / multi.cost.energy
    }
}

fn accuracy(system: &mut EsamSystem, split: &Split, samples: usize) -> Result<f64, BenchError> {
    let count = samples.min(split.len());
    let mut correct = 0usize;
    for i in 0..count {
        if system.infer(&split.spikes(i))?.prediction == split.label(i) as usize {
            correct += 1;
        }
    }
    Ok(correct as f64 / count as f64)
}

fn run_cell(cell: BitcellKind, data: &Dataset, samples: usize) -> Result<CellCurve, BenchError> {
    let net = BnnNetwork::new(&[esam_nn::CROPPED_PIXELS, CLASSES], SEED)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(cell, &[esam_nn::CROPPED_PIXELS, CLASSES]).build()?;
    let mut system = EsamSystem::from_model(&model, &config)?;

    let baseline_accuracy = accuracy(&mut system, &data.test, TEST_SAMPLES)?;
    // ~10 curve points regardless of the stream length.
    let interval = (samples as u64 / 10).max(1);
    let mut session = OnlineSession::with_curve_interval(&mut system, rule(), SEED, interval);
    session.run_stream(data.train.stream(SEED))?;
    let metrics = session.finalize_metrics()?;
    let curve = session.curve().clone();
    let trained_accuracy = accuracy(&mut system, &data.test, TEST_SAMPLES)?;
    Ok(CellCurve {
        cell,
        baseline_accuracy,
        trained_accuracy,
        curve,
        metrics,
    })
}

/// Runs the experiment: stream `samples` labelled digits through an online
/// session on an untrained 768:10 readout, once per cell.
///
/// # Errors
///
/// Propagates dataset/model/simulation errors.
pub fn learning_curve_results(samples: usize) -> Result<LearningCurveResults, BenchError> {
    let samples = samples.max(10);
    let data = Dataset::generate(&DigitsConfig {
        train_count: samples,
        test_count: TEST_SAMPLES,
        seed: SEED,
        ..DigitsConfig::default()
    })?;
    Ok(LearningCurveResults {
        samples,
        multiport: run_cell(BitcellKind::multiport(4).expect("4 ports"), &data, samples)?,
        baseline6t: run_cell(BitcellKind::Std6T, &data, samples)?,
    })
}

/// Renders the learning curve and the multiport-vs-6T training cost.
pub fn learning_curve_table(results: &LearningCurveResults) -> Table {
    let mut table = Table::new(
        "§4.4 — Online-learning session: accuracy recovery and training cost",
        &["quantity", "multiport (1RW+4R)", "6T baseline", "gain"],
    );
    let multi = &results.multiport;
    let single = &results.baseline6t;
    table.row_owned(vec![
        "untrained accuracy [%]".into(),
        format!("{:.1}", 100.0 * multi.baseline_accuracy),
        format!("{:.1}", 100.0 * single.baseline_accuracy),
        "-".into(),
    ]);
    for (a, b) in multi.curve.points().iter().zip(single.curve.points()) {
        table.row_owned(vec![
            format!("online accuracy @ {} samples [%]", a.samples),
            format!("{:.1}", 100.0 * a.accuracy()),
            format!("{:.1}", 100.0 * b.accuracy()),
            "-".into(),
        ]);
    }
    table.row_owned(vec![
        "held-out accuracy after [%]".into(),
        format!("{:.1}", 100.0 * multi.trained_accuracy),
        format!("{:.1}", 100.0 * single.trained_accuracy),
        "-".into(),
    ]);
    let ml = multi.metrics.learning.expect("learning ran");
    let sl = single.metrics.learning.expect("learning ran");
    table.row_owned(vec![
        "column updates".into(),
        format!("{}", ml.updates),
        format!("{}", sl.updates),
        "-".into(),
    ]);
    table.row_owned(vec![
        "training cycles".into(),
        format!("{}", ml.cost.cycles),
        format!("{}", sl.cost.cycles),
        format!("{:.1}x", sl.cost.cycles as f64 / ml.cost.cycles as f64),
    ]);
    table.row_owned(vec![
        "training latency".into(),
        format!("{:.2}", ml.cost.latency),
        format!("{:.2}", sl.cost.latency),
        format!("{:.1}x (paper 26.0x)", results.time_gain()),
    ]);
    table.row_owned(vec![
        "training energy".into(),
        format!("{:.2}", ml.cost.energy),
        format!("{:.2}", sl.cost.energy),
        format!("{:.1}x (paper 19.5x)", results.energy_gain()),
    ]);
    table.note(
        "same rule + seed on both cells: the weight trajectories (and accuracies) are \
         bit-identical; only the per-update access cost differs (§4.4.1)",
    );
    table.note(
        "the paper's 19.5x energy gain is quoted per 128x128 array; the 10-class readout's \
         narrow 768x10 edge blocks dilute it (row-wise rows are only 10 cells wide) — the \
         `learning` experiment reproduces the 128x128 figure",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> LearningCurveResults {
        learning_curve_results(160).expect("experiment runs")
    }

    #[test]
    fn online_learning_beats_the_untrained_baseline() {
        let r = results();
        assert!(
            r.multiport.trained_accuracy > r.multiport.baseline_accuracy,
            "accuracy must recover: {:.3} -> {:.3}",
            r.multiport.baseline_accuracy,
            r.multiport.trained_accuracy
        );
        // An untrained 10-class readout is near chance (~10%); the taught
        // one must be far above it (1-bit template learning on the noisy
        // 768:10 readout plateaus around 45-50%).
        assert!(
            r.multiport.trained_accuracy > 0.30,
            "trained accuracy {:.3} should be far above chance",
            r.multiport.trained_accuracy
        );
        assert!(
            r.multiport.trained_accuracy > r.multiport.baseline_accuracy + 0.15,
            "recovery must be substantial: {:.3} -> {:.3}",
            r.multiport.baseline_accuracy,
            r.multiport.trained_accuracy
        );
    }

    #[test]
    fn both_cells_learn_the_same_function() {
        let r = results();
        assert_eq!(
            r.multiport.baseline_accuracy, r.baseline6t.baseline_accuracy,
            "identical untrained readouts"
        );
        assert_eq!(
            r.multiport.trained_accuracy, r.baseline6t.trained_accuracy,
            "same rule + seed must give the same trained function"
        );
        assert_eq!(r.multiport.curve, r.baseline6t.curve);
    }

    #[test]
    fn multiport_training_is_strictly_cheaper() {
        let r = results();
        let multi = r.multiport.metrics.learning.expect("learning ran");
        let single = r.baseline6t.metrics.learning.expect("learning ran");
        assert_eq!(multi.updates, single.updates);
        assert!(multi.cost.cycles < single.cost.cycles);
        assert!(multi.cost.latency < single.cost.latency);
        assert!(multi.cost.energy < single.cost.energy);
        // §4.4.1's gain classes: 32x cycles, ~26x time. The energy gain is
        // geometry-dependent (see the table note): the narrow 768x10 edge
        // blocks land well below the 128x128 figure but stay decisively in
        // multiport's favour.
        assert_eq!(
            single.cost.cycles / multi.cost.cycles,
            32,
            "2x128 row-wise vs 2x4 transposed per 128-row block"
        );
        assert!(
            r.time_gain() > 19.0 && r.time_gain() < 33.0,
            "time gain {:.1}",
            r.time_gain()
        );
        assert!(
            r.energy_gain() > 4.0 && r.energy_gain() < 40.0,
            "energy gain {:.1}",
            r.energy_gain()
        );
    }

    #[test]
    fn table_renders_curve_and_costs() {
        let table = learning_curve_table(&results());
        assert!(table.row_count() > 8);
        let text = table.to_string();
        assert!(text.contains("online accuracy"));
        assert!(text.contains("training energy"));
    }
}
