//! §4.4.2 accuracy reproduction: BNN → converted SNN → hardware simulation,
//! all three evaluated on the held-out synthetic test set.

use esam_core::{EsamSystem, SystemConfig};
use esam_nn::{evaluate_bnn, evaluate_snn};
use esam_sram::BitcellKind;
use esam_tech::calibration::paper;

use crate::context::ExperimentContext;
use crate::{BenchError, Table};

/// Accuracy of each evaluation stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyNumbers {
    /// Trained BNN on the test split.
    pub bnn: f64,
    /// Converted SNN golden model.
    pub snn: f64,
    /// Hardware (spike-by-spike) simulation on the 4-port system.
    pub hardware: f64,
    /// Test samples evaluated.
    pub samples: usize,
}

/// Evaluates all three stages on up to `samples` test images.
pub fn accuracy_numbers(
    context: &ExperimentContext,
    samples: usize,
) -> Result<AccuracyNumbers, BenchError> {
    let test = &context.dataset().test;
    let bnn = evaluate_bnn(context.network(), test)?.accuracy();
    let snn = evaluate_snn(context.model(), test)?.accuracy();

    let config = SystemConfig::paper_default(BitcellKind::multiport(4).expect("4 ports"));
    let mut system = EsamSystem::from_model(context.model(), &config)?;
    let count = samples.min(test.len());
    let mut correct = 0usize;
    for i in 0..count {
        let result = system.infer(&test.spikes(i))?;
        if result.prediction == test.label(i) as usize {
            correct += 1;
        }
    }
    Ok(AccuracyNumbers {
        bnn,
        snn,
        hardware: correct as f64 / count as f64,
        samples: count,
    })
}

/// Renders the accuracy comparison.
pub fn accuracy_table(numbers: &AccuracyNumbers) -> Table {
    let mut table = Table::new(
        "§4.4.2 — Classification accuracy (synthetic digits; MNIST substitute)",
        &["stage", "accuracy [%]"],
    );
    table.row_owned(vec![
        "trained BNN".into(),
        format!("{:.2}", numbers.bnn * 100.0),
    ]);
    table.row_owned(vec![
        "converted Binary-SNN (golden)".into(),
        format!("{:.2}", numbers.snn * 100.0),
    ]);
    table.row_owned(vec![
        format!("ESAM hardware sim (1RW+4R, {} samples)", numbers.samples),
        format!("{:.2}", numbers.hardware * 100.0),
    ]);
    table.note(&format!(
        "paper reports {:.2}% on MNIST; the synthetic substitute checks the *pipeline* (train→convert→hardware, all lossless), not the absolute number",
        paper::MNIST_ACCURACY_PERCENT
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn conversion_and_hardware_are_lossless() {
        let context = ExperimentContext::prepare(Fidelity::Quick).unwrap();
        let numbers = accuracy_numbers(&context, 120).unwrap();
        // BNN → SNN conversion is bit-exact: identical accuracy.
        assert!((numbers.bnn - numbers.snn).abs() < 1e-12);
        assert!(
            numbers.bnn > 0.72,
            "quick-trained accuracy {:.3}",
            numbers.bnn
        );
        // Hardware simulation matches the golden model on its subset.
        let test = &context.dataset().test;
        let mut golden_correct = 0usize;
        for i in 0..numbers.samples {
            if context.model().classify(&test.spikes(i)).unwrap() == test.label(i) as usize {
                golden_correct += 1;
            }
        }
        let golden = golden_correct as f64 / numbers.samples as f64;
        assert!((numbers.hardware - golden).abs() < 1e-12);
        assert_eq!(accuracy_table(&numbers).row_count(), 3);
    }
}
