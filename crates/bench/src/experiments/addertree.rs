//! Adder-tree vs CIM-P design-space sweep (the introduction's framing).
//!
//! The paper motivates CIM-P by contrast with adder-tree digital CIM
//! (its refs [2–5]): trees buy row-parallelism with "considerable
//! hardware overhead" and burn energy independent of sparsity, while
//! CIM-P "efficiently leverages the sparsity of SNNs". This experiment
//! quantifies both halves of that argument on a 128×128 binary array.

use esam_core::{energy_crossover, sparsity_sweep, AdderTreeMacro};
use esam_sram::{ArrayConfig, BitcellKind, SramMacro};

use crate::{BenchError, Table};

/// Spike densities swept (fractions of rows firing per timestep).
pub const DENSITIES: [f64; 6] = [0.01, 0.02, 0.05, 0.10, 0.25, 0.50];

/// Builds the sparsity-sweep comparison table.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn addertree_table() -> Result<Table, BenchError> {
    let mut table = Table::new(
        "Intro baseline — adder-tree CIM vs CIM-P (128×128, 4 ports, binary weights)",
        &[
            "spike density",
            "CIM-P cycles",
            "tree cycles",
            "CIM-P energy [pJ]",
            "tree energy [pJ]",
            "energy winner",
        ],
    );
    let points = sparsity_sweep(128, 128, 4, &DENSITIES)?;
    for point in &points {
        let winner = if point.cim_energy <= point.tree_energy {
            "CIM-P"
        } else {
            "adder tree"
        };
        table.row_owned(vec![
            format!("{:.0}%", point.spike_density * 100.0),
            point.cim_cycles.to_string(),
            point.tree_cycles.to_string(),
            format!("{:.3}", point.cim_energy.pj()),
            format!("{:.3}", point.tree_energy.pj()),
            winner.to_string(),
        ]);
    }

    let tree = AdderTreeMacro::new(128, 128)?;
    let cim = SramMacro::new(ArrayConfig::paper_default(BitcellKind::MultiPort {
        read_ports: 4,
    }));
    let crossover = energy_crossover(128, 128, 4)?;
    table.note(&format!(
        "area: fully column-parallel adder tree {:.0} µm² ({:.1}× plain array; refs [2-5] time-multiplex to trade this down) vs CIM-P 4R macro {:.0} µm²; {} gates/column tree",
        tree.area().value(),
        tree.area_overhead_vs_sram(),
        cim.area().total().value(),
        tree.tree_gates(),
    ));
    table.note(&format!(
        "energy crossover at ≈{:.1}% spike density — typical SNN layers run well below it, which is the intro's argument for CIM-P",
        crossover * 100.0
    ));
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_rows_favor_cim_p_and_dense_rows_do_not() {
        let table = addertree_table().unwrap();
        assert_eq!(table.row_count(), DENSITIES.len());
        assert_eq!(table.cell(0, 5), Some("CIM-P"));
        // CIM-P energy grows with density; tree energy is flat.
        let cim: Vec<f64> = (0..table.row_count())
            .map(|r| table.cell(r, 3).unwrap().parse().unwrap())
            .collect();
        assert!(cim.windows(2).all(|w| w[0] <= w[1]));
        let tree: Vec<f64> = (0..table.row_count())
            .map(|r| table.cell(r, 4).unwrap().parse().unwrap())
            .collect();
        assert!((tree[0] - tree[tree.len() - 1]).abs() < 1e-9);
    }
}
