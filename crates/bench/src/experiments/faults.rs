//! Fault-injection experiment: accuracy and latency under deterministic
//! faults across all three fault domains.
//!
//! Everything here runs against the same seeded, untrained networks as
//! `hot_path`/`mesh` — no dataset, no training, reproducible to the bit
//! (every fault site is a pure function of the plan seed). Three sweeps:
//!
//! 1. **SRAM bit flips** — transient weight-bit and membrane-word upsets
//!    at ≥ 4 rates on both the 6T and 4-port cells, via
//!    [`EsamSystem::infer_checked`] in [`IntegrityMode::Detect`]: reads
//!    are delivered raw (the accuracy curve is identical to the old
//!    `infer_faulted` sweep) while the SECDED syndrome path *counts*
//!    what struck — the corrected / uncorrectable / silent columns.
//!    "Accuracy" is agreement with the unfaulted baseline's predictions
//!    on the same frames; fault sites are nested across rates by
//!    construction (same seed, higher threshold), so the degradation
//!    curve is monotone.
//! 2. **Serving under worker deaths** — a closed-loop run against
//!    `esam-serve` with a nonzero worker-panic rate: the supervisor must
//!    restart workers and retry the doomed requests so that *zero*
//!    tickets are lost, at a measurable p99-latency cost.
//! 3. **Mesh under packet loss** — a drop-rate sweep on the multi-core
//!    mesh: lost frames are recovered (results stay exact) while the
//!    modeled cycle cost inflates with the re-transmissions.
//!
//! `repro faults --json` emits the whole thing as one machine-readable
//! object for snapshot diffing, like `hot_path`/`serve`/`mesh`.

use std::sync::Once;
use std::time::Duration;

use esam_core::{EsamSystem, IntegrityMode, SystemConfig};
use esam_fault::{FaultConfig, FaultPlan};
use esam_mesh::{MeshConfig, MeshSystem};
use esam_nn::{BnnNetwork, SnnModel};
use esam_serve::{AdmissionPolicy, BatchPolicy, EsamService, LoadGenerator, LoadMode, ServeConfig};
use esam_sram::BitcellKind;

use crate::{BenchError, Table};

/// Swept transient bit-flip rates (per weight bit / membrane word, per
/// frame). Nested fault sites make the agreement curve monotone in this.
pub const FLIP_RATES: [f64; 5] = [0.0, 2e-3, 1e-2, 5e-2, 2e-1];

/// Swept mesh packet-drop rates (per link hand-off).
pub const DROP_RATES: [f64; 4] = [0.0, 0.02, 0.08, 0.2];

/// Plan seed shared by every sweep (reproducibility is the point).
const SEED: u64 = 0xFA17;

/// One bit-flip-rate point on one cell.
#[derive(Debug, Clone)]
pub struct FlipPoint {
    /// Transient flip rate (weight bits and membrane words alike).
    pub rate: f64,
    /// Fraction of frames whose faulted prediction matched the unfaulted
    /// baseline.
    pub agreement: f64,
    /// Weight bits actually flipped across the run.
    pub weight_flips: u64,
    /// Membrane words actually upset across the run.
    pub membrane_flips: u64,
    /// Single-bit rows the SECDED syndrome check observed (delivered raw
    /// in `Detect` mode — correction is the `integrity` experiment).
    pub corrected: u64,
    /// Detected-uncorrectable reads plus scrub reloads.
    pub uncorrectable: u64,
    /// Corruption the golden audit caught slipping past the syndrome
    /// path (≥ 3-bit rows aliasing to a benign verdict).
    pub silent: u64,
}

/// One cell's accuracy-degradation curve.
#[derive(Debug, Clone)]
pub struct FlipCurve {
    /// Cell label: `"6T"` or `"multiport-4"`.
    pub cell: &'static str,
    /// Frames evaluated per rate point.
    pub frames: usize,
    /// One point per entry of [`FLIP_RATES`], ascending.
    pub points: Vec<FlipPoint>,
}

/// The supervised-serving measurement under injected worker panics.
#[derive(Debug, Clone)]
pub struct ServeFaultSummary {
    /// Worker pipelines.
    pub workers: usize,
    /// Injected per-(request, attempt) panic probability.
    pub panic_rate: f64,
    /// Requests offered by the closed-loop generator.
    pub offered: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Tickets lost (offered − completed − rejected − dropped); the
    /// supervisor's contract is that this is zero.
    pub lost: u64,
    /// Worker threads restarted after an injected panic.
    pub worker_restarts: u64,
    /// Requests re-enqueued after their worker died.
    pub retries: u64,
    /// Median wall latency.
    pub p50: Duration,
    /// 99th-percentile wall latency (the cost of the restarts).
    pub p99: Duration,
}

/// One mesh drop-rate point.
#[derive(Debug, Clone)]
pub struct MeshFaultPoint {
    /// Injected per-link-hand-off drop probability.
    pub drop_rate: f64,
    /// Link hand-offs vetoed by the plan.
    pub packets_dropped: u64,
    /// Frames re-run on the fault-exempt recovery pass.
    pub frames_recovered: u64,
    /// Modeled pipeline bottleneck, cycles per frame. Recovery replays
    /// lost frames at their clean cost, so this is *invariant* across the
    /// sweep — drops degrade traffic, not steady-state throughput.
    pub cycles_per_frame: f64,
    /// Total link busy cycles (hop + serialization, summed over every
    /// inter-core link) — this is what re-transmissions inflate.
    pub link_busy_cycles: u64,
    /// `link_busy_cycles` relative to the zero-rate point.
    pub link_inflation: f64,
    /// Whether the recovered batch matched the plain single-core system
    /// bit for bit.
    pub exact: bool,
}

/// Results of the fault-injection experiment.
#[derive(Debug, Clone)]
pub struct FaultsResults {
    /// Bit-flip curves: 6T, then multiport-4.
    pub curves: Vec<FlipCurve>,
    /// The supervised-serving point.
    pub serve: ServeFaultSummary,
    /// Mesh drop sweep, one point per entry of [`DROP_RATES`].
    pub mesh: Vec<MeshFaultPoint>,
    /// Frames per mesh point.
    pub mesh_frames: usize,
}

/// Injected panics are this experiment's happy path — silence their
/// default-hook backtraces (once per process) while leaving every other
/// panic's report intact.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info.payload().downcast_ref::<String>().is_some_and(|m| {
                m.starts_with("injected worker fault") || m.starts_with("injected core fault")
            });
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Deterministic ~20 %-density input frames (same stride idiom as the
/// `mesh` experiment).
fn synthetic_frames(width: usize, count: usize) -> Vec<esam_bits::BitVec> {
    (0..count)
        .map(|f| {
            let mut frame = esam_bits::BitVec::new(width);
            for k in 0..width / 5 {
                frame.set((f * 131 + k * 17 + (f * k) % 13) % width, true);
            }
            frame
        })
        .collect()
}

/// Sweeps [`FLIP_RATES`] on one cell: agreement of the faulted prediction
/// with the unfaulted baseline, frame by frame.
fn flip_curve(
    cell: BitcellKind,
    label: &'static str,
    topology: &[usize],
    samples: usize,
) -> Result<FlipCurve, BenchError> {
    let net = BnnNetwork::new(topology, 0x3E54)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(cell, topology).build()?;
    let frames = synthetic_frames(topology[0], (samples.max(1) * 4).max(20));
    let mut system = EsamSystem::from_model(&model, &config)?;
    let baseline: Vec<usize> = frames
        .iter()
        .map(|f| system.infer(f).map(|r| r.prediction))
        .collect::<Result<_, _>>()?;
    // Detect mode rides the sweep for free: reads are delivered raw (the
    // agreement curve is unchanged) while the syndrome path counts the
    // corrected / uncorrectable / silent verdicts per rate.
    system.set_integrity_mode(IntegrityMode::Detect);

    let mut points = Vec::new();
    for rate in FLIP_RATES {
        let plan = FaultPlan::seeded(
            SEED,
            FaultConfig::none()
                .with_weight_flip_rate(rate)
                .with_membrane_flip_rate(rate),
        );
        system.set_fault_plan(plan)?;
        system.reset_stats();
        let mut agree = 0usize;
        for (id, frame) in frames.iter().enumerate() {
            let result = system.infer_checked(frame, id as u64)?;
            if result.prediction == baseline[id] {
                agree += 1;
            }
        }
        let tally = *system.fault_tally();
        let integrity = system.integrity_tally();
        points.push(FlipPoint {
            rate,
            agreement: agree as f64 / frames.len() as f64,
            weight_flips: tally.weight_flips,
            membrane_flips: tally.membrane_flips,
            corrected: integrity.corrected,
            uncorrectable: integrity.uncorrectable(),
            silent: integrity.silent,
        });
    }
    Ok(FlipCurve {
        cell: label,
        frames: frames.len(),
        points,
    })
}

/// Closed-loop serving run with supervised workers dying at `panic_rate`.
fn serve_under_panics(samples: usize, max_threads: usize) -> Result<ServeFaultSummary, BenchError> {
    quiet_injected_panics();
    let workers = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    } else {
        max_threads
    };
    let topology = [128usize, 64, 10];
    let net = BnnNetwork::new(&topology, 0xE5A)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &topology).build()?;
    let system = EsamSystem::from_model(&model, &config)?;

    let panic_rate = 0.05;
    let requests = (samples.max(1) * 8).max(64);
    let generator = LoadGenerator::synthetic(topology[0], 16, 0xE5A);
    let service = EsamService::start(
        &system,
        ServeConfig::with_workers(workers)
            .queue_capacity(4 * workers.max(8))
            .admission(AdmissionPolicy::Block)
            .batch(BatchPolicy::greedy(8))
            .faults(FaultPlan::seeded(
                SEED,
                FaultConfig::none().with_worker_panic_rate(panic_rate),
            ))
            .max_retries(4),
    );
    let load = generator.run(
        &service,
        LoadMode::ClosedLoop {
            clients: workers * 2,
        },
        requests,
    );
    let report = service.shutdown();
    Ok(ServeFaultSummary {
        workers,
        panic_rate,
        offered: load.offered,
        completed: load.completed,
        lost: load
            .offered
            .saturating_sub(load.completed + load.rejected + load.dropped),
        worker_restarts: report.worker_restarts,
        retries: report.retries,
        p50: report.wall.p50,
        p99: report.wall.p99,
    })
}

/// Sweeps [`DROP_RATES`] on a 3-core mesh: drops recover to exact results
/// while the modeled cycle cost inflates.
fn mesh_under_drops(samples: usize) -> Result<(Vec<MeshFaultPoint>, usize), BenchError> {
    let topology = [128usize, 64, 32, 10];
    let net = BnnNetwork::new(&topology, 0x3E54)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &topology).build()?;
    let frames = synthetic_frames(topology[0], (samples.max(1) * 4).max(20));
    let mut plain = EsamSystem::from_model(&model, &config)?;
    let expected: Vec<_> = frames
        .iter()
        .map(|f| plain.infer(f))
        .collect::<Result<_, _>>()?;

    let mut points: Vec<MeshFaultPoint> = Vec::new();
    let mut clean_busy = None;
    for rate in DROP_RATES {
        let plan = FaultPlan::seeded(SEED, FaultConfig::none().with_drop_rate(rate));
        let mesh_config = MeshConfig::with_cores(3).faults(plan);
        let mut mesh = MeshSystem::from_model(&model, &config, &mesh_config)?;
        let results = mesh.run(&frames)?;
        let tally = *mesh.tally();
        let metrics = mesh.finalize_metrics()?;
        let busy: u64 = metrics.links.iter().map(|l| l.busy_cycles).sum();
        let baseline = *clean_busy.get_or_insert(busy);
        points.push(MeshFaultPoint {
            drop_rate: rate,
            packets_dropped: tally.packets_dropped,
            frames_recovered: tally.frames_recovered,
            cycles_per_frame: metrics.mesh_bottleneck_cycles,
            link_busy_cycles: busy,
            link_inflation: busy as f64 / baseline as f64,
            exact: results == expected,
        });
    }
    Ok((points, frames.len()))
}

/// Runs all three fault sweeps. `samples` scales frame/request counts;
/// `max_threads` caps the serving worker pool (0 = available parallelism,
/// clamped to 4).
///
/// # Errors
///
/// Propagates model-construction and inference errors.
pub fn faults_results(samples: usize, max_threads: usize) -> Result<FaultsResults, BenchError> {
    let topology = [128usize, 64, 32, 10];
    let curves = vec![
        flip_curve(BitcellKind::Std6T, "6T", &topology, samples)?,
        flip_curve(
            BitcellKind::multiport(4).unwrap(),
            "multiport-4",
            &topology,
            samples,
        )?,
    ];
    let serve = serve_under_panics(samples, max_threads)?;
    let (mesh, mesh_frames) = mesh_under_drops(samples)?;
    Ok(FaultsResults {
        curves,
        serve,
        mesh,
        mesh_frames,
    })
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Renders the SRAM bit-flip degradation curves.
pub fn faults_flip_table(results: &FaultsResults) -> Table {
    let mut table = Table::new(
        "Faults — accuracy under transient SRAM bit flips (agreement with unfaulted baseline)",
        &[
            "cell",
            "flip rate",
            "agreement",
            "weight flips",
            "membrane upsets",
            "corrected",
            "uncorrectable",
            "silent",
        ],
    );
    for curve in &results.curves {
        for point in &curve.points {
            table.row_owned(vec![
                curve.cell.into(),
                format!("{:.0e}", point.rate),
                format!("{:.1}%", 100.0 * point.agreement),
                point.weight_flips.to_string(),
                point.membrane_flips.to_string(),
                point.corrected.to_string(),
                point.uncorrectable.to_string(),
                point.silent.to_string(),
            ]);
        }
    }
    table.note("fault sites are nested across rates (same seed, higher threshold), so each curve degrades monotonically by construction; rate 0 is bit-identical to the baseline");
    table.note("the last three columns are SECDED Detect-mode verdicts (counted, not repaired — see `repro integrity` for the correction curves): single-bit rows, detected-uncorrectable reads + scrub reloads, and audit-caught aliasing");
    table
}

/// Renders the supervised-serving point.
pub fn faults_serve_table(results: &FaultsResults) -> Table {
    let s = &results.serve;
    let mut table = Table::new(
        "Faults — closed-loop serving with supervised worker deaths",
        &[
            "workers",
            "panic rate",
            "offered",
            "completed",
            "lost",
            "restarts",
            "retries",
            "p50 [µs]",
            "p99 [µs]",
        ],
    );
    table.row_owned(vec![
        s.workers.to_string(),
        format!("{:.0e}", s.panic_rate),
        s.offered.to_string(),
        s.completed.to_string(),
        s.lost.to_string(),
        s.worker_restarts.to_string(),
        s.retries.to_string(),
        format!("{:.1}", us(s.p50)),
        format!("{:.1}", us(s.p99)),
    ]);
    table.note("every injected panic kills a worker thread mid-batch; the supervisor restarts it and re-enqueues the doomed requests — the contract is zero lost tickets, paid for in tail latency");
    table
}

/// Renders the mesh drop sweep.
pub fn faults_mesh_table(results: &FaultsResults) -> Table {
    let mut table = Table::new(
        "Faults — 3-core mesh under packet loss (lost frames recovered, results exact)",
        &[
            "drop rate",
            "dropped",
            "recovered",
            "cycles/frame",
            "link busy",
            "traffic",
            "outputs",
        ],
    );
    for point in &results.mesh {
        table.row_owned(vec![
            format!("{:.0e}", point.drop_rate),
            point.packets_dropped.to_string(),
            point.frames_recovered.to_string(),
            format!("{:.1}", point.cycles_per_frame),
            point.link_busy_cycles.to_string(),
            format!("{:.2}x", point.link_inflation),
            if point.exact {
                "bit-identical"
            } else {
                "MISMATCH"
            }
            .into(),
        ]);
    }
    table.note("a dropped hand-off dooms that frame at that core; it rides the pipeline as a lockstep marker and is re-run on a fault-exempt recovery pass that re-charges links and tiles — accuracy and the per-frame bottleneck are preserved, link traffic inflates with the re-transmissions");
    table
}

/// Renders the results as one machine-readable JSON object (hand-rolled:
/// the workspace is offline and serde is not vendored).
pub fn faults_json(results: &FaultsResults) -> String {
    let curves: Vec<String> = results
        .curves
        .iter()
        .map(|c| {
            let points: Vec<String> = c
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"rate\":{:e},\"agreement\":{:.4},\"weight_flips\":{},\"membrane_flips\":{},\"corrected\":{},\"uncorrectable\":{},\"silent\":{}}}",
                        p.rate, p.agreement, p.weight_flips, p.membrane_flips, p.corrected, p.uncorrectable, p.silent
                    )
                })
                .collect();
            format!(
                "{{\"cell\":\"{}\",\"frames\":{},\"points\":[{}]}}",
                c.cell,
                c.frames,
                points.join(",")
            )
        })
        .collect();
    let s = &results.serve;
    let mesh: Vec<String> = results
        .mesh
        .iter()
        .map(|p| {
            format!(
                "{{\"drop_rate\":{:e},\"packets_dropped\":{},\"frames_recovered\":{},\"cycles_per_frame\":{:.3},\"link_busy_cycles\":{},\"link_inflation\":{:.4},\"exact\":{}}}",
                p.drop_rate,
                p.packets_dropped,
                p.frames_recovered,
                p.cycles_per_frame,
                p.link_busy_cycles,
                p.link_inflation,
                p.exact
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"faults\",\"bit_flip_curves\":[{}],\"serve\":{{\"workers\":{},\"panic_rate\":{:e},\"offered\":{},\"completed\":{},\"lost\":{},\"worker_restarts\":{},\"retries\":{},\"p50_us\":{:.2},\"p99_us\":{:.2}}},\"mesh_frames\":{},\"mesh\":[{}]}}",
        curves.join(","),
        s.workers,
        s.panic_rate,
        s.offered,
        s.completed,
        s.lost,
        s.worker_restarts,
        s.retries,
        us(s.p50),
        us(s.p99),
        results.mesh_frames,
        mesh.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_curves_are_monotone_and_anchored_at_the_baseline() {
        let results = faults_results(8, 2).unwrap();
        assert_eq!(results.curves.len(), 2);
        for curve in &results.curves {
            assert_eq!(curve.points.len(), FLIP_RATES.len());
            let first = &curve.points[0];
            assert_eq!(
                first.agreement, 1.0,
                "{}: rate 0 is the baseline",
                curve.cell
            );
            assert_eq!(first.weight_flips + first.membrane_flips, 0);
            assert_eq!(
                first.corrected + first.uncorrectable + first.silent,
                0,
                "{}: no integrity events without upsets",
                curve.cell
            );
            for pair in curve.points.windows(2) {
                assert!(
                    pair[1].agreement <= pair[0].agreement,
                    "{}: agreement rose from {:.3} to {:.3} as the rate grew",
                    curve.cell,
                    pair[0].agreement,
                    pair[1].agreement
                );
                assert!(
                    pair[1].weight_flips >= pair[0].weight_flips,
                    "{}: nested sites can only add flips",
                    curve.cell
                );
            }
            let last = curve.points.last().unwrap();
            assert!(
                last.agreement < 1.0,
                "{}: the top rate must actually degrade",
                curve.cell
            );
            assert!(last.weight_flips > 0);
            assert!(
                last.corrected + last.uncorrectable > 0,
                "{}: the Detect-mode syndrome path saw the upsets",
                curve.cell
            );
        }
    }

    #[test]
    fn supervised_serving_loses_nothing_under_worker_deaths() {
        let results = serve_under_panics(8, 2).unwrap();
        assert_eq!(results.lost, 0, "zero lost tickets");
        assert_eq!(results.completed, results.offered);
        assert!(results.worker_restarts > 0, "panics actually fired");
        assert!(results.p99 >= results.p50);
    }

    #[test]
    fn mesh_drops_recover_exactly_and_inflate_cycles() {
        let (points, frames) = mesh_under_drops(8).unwrap();
        assert_eq!(points.len(), DROP_RATES.len());
        assert!(frames >= 20);
        assert_eq!(points[0].packets_dropped, 0);
        assert_eq!(points[0].link_inflation, 1.0);
        for point in &points {
            assert!(point.exact, "drop rate {:.0e}", point.drop_rate);
            assert_eq!(
                point.cycles_per_frame, points[0].cycles_per_frame,
                "recovery replays lost frames at clean cost: the modeled bottleneck is invariant"
            );
        }
        let last = points.last().unwrap();
        assert!(last.packets_dropped > 0, "drops fired at the top rate");
        assert!(last.frames_recovered > 0);
        assert!(
            last.link_inflation > 1.0,
            "re-transmissions cost link cycles"
        );
        for pair in points.windows(2) {
            assert!(
                pair[1].packets_dropped >= pair[0].packets_dropped,
                "nested sites can only add drops"
            );
        }
    }

    #[test]
    fn json_is_structurally_sound() {
        let results = faults_results(2, 2).unwrap();
        let json = faults_json(&results);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"experiment\":\"faults\""));
        assert!(json.contains("\"cell\":\"6T\"") && json.contains("\"cell\":\"multiport-4\""));
        assert_eq!(json.matches("\"rate\"").count(), 2 * FLIP_RATES.len());
        assert!(json.contains("\"lost\":0"));
        assert_eq!(json.matches("\"drop_rate\"").count(), DROP_RATES.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let tables = [
            faults_flip_table(&results),
            faults_serve_table(&results),
            faults_mesh_table(&results),
        ];
        assert_eq!(tables[0].row_count(), 2 * FLIP_RATES.len());
        assert_eq!(tables[1].row_count(), 1);
        assert_eq!(tables[2].row_count(), DROP_RATES.len());
    }
}
