//! Fig. 7 reproduction: average access energy and time per port count for
//! different precharge rails (128×128 arrays, full port utilization).

use esam_sram::{ArrayConfig, BitcellKind, EnergyAnalysis, TimingAnalysis};
use esam_tech::units::Volts;

use crate::{BenchError, Table};

/// Precharge rails swept by the figure (mV).
pub const RAILS_MV: [f64; 4] = [700.0, 600.0, 500.0, 400.0];

/// Reproduces Fig. 7. "Total access time is calculated as the sum of the
/// precharge time and the Read time" (§4.2); with `p` ports fully utilized,
/// the average per access divides by `p`. Energy assumes the typical ~50 %
/// zero-bits per read row.
pub fn fig7_table() -> Result<Table, BenchError> {
    let mut table = Table::new(
        "Fig. 7 — Avg access time/energy vs ports and V_prech (128×128, full utilization)",
        &[
            "V_prech [mV]",
            "ports",
            "access time/port [ps]",
            "access energy/port [fJ]",
        ],
    );
    for &rail in &RAILS_MV {
        for ports in 1..=4u8 {
            let cell = BitcellKind::multiport(ports).expect("1..=4 ports");
            let config = ArrayConfig::builder(128, 128, cell)
                .vprech(Volts::from_mv(rail))
                .build()?;
            let timing = TimingAnalysis::new(&config).inference_read();
            let energy = EnergyAnalysis::new(&config).inference_read(64);
            table.row_owned(vec![
                format!("{rail:.0}"),
                ports.to_string(),
                format!("{:.0}", timing.total().ps() / ports as f64),
                format!("{:.1}", energy.fj()),
            ]);
        }
    }
    table.note("paper: V_prech 700→500 mV saves ≥43% energy at ≤19% slower access; 400 mV helps 1–2-port cells but hurts 3–4-port cells");
    Ok(table)
}

/// Key Fig. 7 scalars for assertions and EXPERIMENTS.md: energy saving of
/// 500 mV vs 700 mV and of 400 mV vs 500 mV for a given port count.
pub fn fig7_savings(ports: u8) -> Result<(f64, f64), BenchError> {
    let energy_at = |mv: f64| -> Result<f64, BenchError> {
        let cell = BitcellKind::multiport(ports).expect("1..=4 ports");
        let config = ArrayConfig::builder(128, 128, cell)
            .vprech(Volts::from_mv(mv))
            .build()?;
        Ok(EnergyAnalysis::new(&config).inference_read(64).fj())
    };
    let e700 = energy_at(700.0)?;
    let e500 = energy_at(500.0)?;
    let e400 = energy_at(400.0)?;
    Ok((1.0 - e500 / e700, 1.0 - e400 / e500))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_the_sweep() {
        let t = fig7_table().unwrap();
        assert_eq!(t.row_count(), 16);
    }

    #[test]
    fn savings_match_paper_shape() {
        // ≥43 % at 500 mV for every port count.
        for ports in 1..=4 {
            let (s500, _) = fig7_savings(ports).unwrap();
            assert!(s500 > 0.40, "p={ports}: 500 mV saving {s500:.3}");
        }
        // 400 mV: helps 1–2 ports, hurts 3–4 ports.
        assert!(fig7_savings(1).unwrap().1 > 0.0);
        assert!(fig7_savings(2).unwrap().1 > 0.0);
        assert!(fig7_savings(3).unwrap().1 < 0.0);
        assert!(fig7_savings(4).unwrap().1 < 0.0);
    }

    #[test]
    fn access_time_falls_with_ports() {
        let t = fig7_table().unwrap();
        // Within each rail, time/port decreases with port count.
        for rail_index in 0..4 {
            let mut prev = f64::INFINITY;
            for port_index in 0..4 {
                let row = rail_index * 4 + port_index;
                let v: f64 = t.cell(row, 2).unwrap().parse().unwrap();
                assert!(
                    v < prev,
                    "rail {rail_index}: time/port must fall with ports"
                );
                prev = v;
            }
        }
    }
}
