//! Integrity experiment: what SECDED self-checking buys under transient
//! weight upsets **with the oracle restore disabled**, and what the mesh's
//! CRC/NACK transport costs under in-flight packet corruption.
//!
//! Two sweeps, both seeded and reproducible to the bit:
//!
//! 1. **Protection curves** — the same flip-rate sweep run three times,
//!    once per [`IntegrityMode`]: `off` is the unprotected baseline
//!    (oracle toggle-out, the only thing that keeps an unprotected array
//!    serviceable), `detect` checks and counts but delivers raw data,
//!    `correct` repairs single-bit rows in the delivered data and scrubs
//!    the store after every frame. Per point: agreement with the
//!    fault-free baseline, the fraction of frames with bit-identical
//!    logits, and the corrected / detected-uncorrectable / silent event
//!    counts. The headline is the `correct` row staying at 1.0 exact
//!    through rates that visibly degrade `off` — and the `silent` column
//!    staying 0 wherever no row collects ≥ 3 flips.
//! 2. **Mesh corruption** — a packet-corrupt-rate sweep on the 3-core
//!    mesh: every in-flight upset is caught by the consumer's CRC verify
//!    and NACK-retransmitted (budget [`MAX_RETRANSMITS`]); exhausted
//!    budgets fall to the recovery pass. Results stay exact while the
//!    deterministically charged CRC + retransmit cycles inflate link
//!    traffic.
//!
//! `repro integrity --json` emits one machine-readable object for
//! snapshot diffing, like `faults`/`mesh`/`observe`.
//!
//! [`MAX_RETRANSMITS`]: esam_mesh::MAX_RETRANSMITS

use esam_core::{EsamSystem, IntegrityMode, SystemConfig};
use esam_fault::{FaultConfig, FaultPlan};
use esam_mesh::{MeshConfig, MeshSystem};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;

use crate::{BenchError, Table};

/// Swept transient weight-bit flip rates (per bit, per frame). Nested
/// fault sites make every curve monotone in this.
pub const FLIP_RATES: [f64; 4] = [0.0, 5e-4, 2e-3, 8e-3];

/// Swept mesh packet-corruption rates (per link hand-off attempt).
pub const CORRUPT_RATES: [f64; 4] = [0.0, 0.05, 0.2, 0.5];

/// Plan seed shared by both sweeps.
const SEED: u64 = 0x1DE7;

/// The three protection levels, in sweep order.
const MODES: [(IntegrityMode, &str); 3] = [
    (IntegrityMode::Off, "off"),
    (IntegrityMode::Detect, "detect"),
    (IntegrityMode::Correct, "correct"),
];

/// One flip-rate point under one integrity mode.
#[derive(Debug, Clone)]
pub struct ProtectionPoint {
    /// Transient weight-bit flip rate.
    pub rate: f64,
    /// Fraction of frames whose prediction matched the fault-free
    /// baseline.
    pub agreement: f64,
    /// Fraction of frames whose logits were bit-identical to the
    /// fault-free baseline (stricter than agreement).
    pub exact: f64,
    /// Weight bits actually flipped across the run.
    pub weight_flips: u64,
    /// Single-bit rows observed on the read path (repaired in the
    /// delivered data under `correct`, counted raw under `detect`).
    pub corrected: u64,
    /// Detected-uncorrectable reads plus scrub reloads from the golden
    /// image — the events that drive worker quarantine in `esam-serve`.
    pub uncorrectable: u64,
    /// Rows the scrub's golden audit caught carrying corruption the
    /// syndrome path missed or miscorrected (≥ 3-bit upsets aliasing to
    /// a clean or single-bit verdict).
    pub silent: u64,
}

/// One integrity mode's flip-rate curve.
#[derive(Debug, Clone)]
pub struct ProtectionCurve {
    /// Mode label: `"off"`, `"detect"` or `"correct"`.
    pub mode: &'static str,
    /// One point per entry of [`FLIP_RATES`], ascending.
    pub points: Vec<ProtectionPoint>,
}

/// One mesh corruption-rate point.
#[derive(Debug, Clone)]
pub struct MeshCorruptPoint {
    /// Injected per-hand-off corruption probability.
    pub corrupt_rate: f64,
    /// Transmission attempts whose payload was struck and flagged by the
    /// consumer's CRC verify (all of them — a miss aborts the run).
    pub packets_corrupted: u64,
    /// NACK-triggered retransmissions issued after those mismatches.
    pub retransmits: u64,
    /// Frames whose retry budget was exhausted and that were re-run on
    /// the fault-exempt recovery pass.
    pub frames_recovered: u64,
    /// Total link busy cycles (hop + serialization + CRC checks +
    /// retransmissions).
    pub link_busy_cycles: u64,
    /// `link_busy_cycles` relative to the zero-rate point.
    pub link_inflation: f64,
    /// Whether the batch matched the plain single-core system bit for
    /// bit.
    pub exact: bool,
}

/// Results of the integrity experiment.
#[derive(Debug, Clone)]
pub struct IntegrityResults {
    /// One curve per integrity mode, in sweep order: off, detect, correct.
    pub curves: Vec<ProtectionCurve>,
    /// Frames evaluated per curve point.
    pub frames: usize,
    /// Mesh corruption sweep, one point per entry of [`CORRUPT_RATES`].
    pub mesh: Vec<MeshCorruptPoint>,
    /// Frames per mesh point.
    pub mesh_frames: usize,
}

/// Deterministic ~20 %-density input frames (same stride idiom as the
/// `faults` experiment).
fn synthetic_frames(width: usize, count: usize) -> Vec<esam_bits::BitVec> {
    (0..count)
        .map(|f| {
            let mut frame = esam_bits::BitVec::new(width);
            for k in 0..width / 5 {
                frame.set((f * 131 + k * 17 + (f * k) % 13) % width, true);
            }
            frame
        })
        .collect()
}

/// Sweeps [`FLIP_RATES`] under one integrity mode. All three modes see
/// the *same* fault sites (same seed), so the curves are directly
/// comparable point by point.
fn protection_curve(
    mode: IntegrityMode,
    label: &'static str,
    topology: &[usize],
    frames: &[esam_bits::BitVec],
) -> Result<ProtectionCurve, BenchError> {
    let net = BnnNetwork::new(topology, 0x3E54)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), topology).build()?;
    let mut system = EsamSystem::from_model(&model, &config)?;
    let baseline: Vec<_> = frames
        .iter()
        .map(|f| system.infer(f))
        .collect::<Result<_, _>>()?;
    system.set_integrity_mode(mode);

    let mut points = Vec::new();
    for rate in FLIP_RATES {
        let plan = FaultPlan::seeded(SEED, FaultConfig::none().with_weight_flip_rate(rate));
        system.set_fault_plan(plan)?;
        system.reset_stats();
        let mut agree = 0usize;
        let mut exact = 0usize;
        for (id, frame) in frames.iter().enumerate() {
            let result = system.infer_checked(frame, id as u64)?;
            if result.prediction == baseline[id].prediction {
                agree += 1;
            }
            if result.logits == baseline[id].logits {
                exact += 1;
            }
        }
        let integrity = system.integrity_tally();
        let faults = *system.fault_tally();
        points.push(ProtectionPoint {
            rate,
            agreement: agree as f64 / frames.len() as f64,
            exact: exact as f64 / frames.len() as f64,
            weight_flips: faults.weight_flips,
            corrected: integrity.corrected,
            uncorrectable: integrity.uncorrectable(),
            silent: integrity.silent,
        });
    }
    Ok(ProtectionCurve {
        mode: label,
        points,
    })
}

/// Sweeps [`CORRUPT_RATES`] on a 3-core mesh: every upset is caught,
/// retransmitted (or recovered), and charged.
fn mesh_under_corruption(samples: usize) -> Result<(Vec<MeshCorruptPoint>, usize), BenchError> {
    let topology = [128usize, 64, 32, 10];
    let net = BnnNetwork::new(&topology, 0x3E54)?;
    let model = SnnModel::from_bnn(&net)?;
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &topology).build()?;
    let frames = synthetic_frames(topology[0], (samples.max(1) * 4).max(20));
    let mut plain = EsamSystem::from_model(&model, &config)?;
    let expected: Vec<_> = frames
        .iter()
        .map(|f| plain.infer(f))
        .collect::<Result<_, _>>()?;

    let mut points: Vec<MeshCorruptPoint> = Vec::new();
    let mut clean_busy = None;
    for rate in CORRUPT_RATES {
        let plan = FaultPlan::seeded(SEED, FaultConfig::none().with_packet_corrupt_rate(rate));
        let mesh_config = MeshConfig::with_cores(3).faults(plan);
        let mut mesh = MeshSystem::from_model(&model, &config, &mesh_config)?;
        let results = mesh.run(&frames)?;
        let tally = *mesh.tally();
        let metrics = mesh.finalize_metrics()?;
        let busy: u64 = metrics.links.iter().map(|l| l.busy_cycles).sum();
        let baseline = *clean_busy.get_or_insert(busy);
        points.push(MeshCorruptPoint {
            corrupt_rate: rate,
            packets_corrupted: tally.packets_corrupted,
            retransmits: tally.retransmits,
            frames_recovered: tally.frames_recovered,
            link_busy_cycles: busy,
            link_inflation: busy as f64 / baseline as f64,
            exact: results == expected,
        });
    }
    Ok((points, frames.len()))
}

/// Runs both integrity sweeps. `samples` scales the frame counts.
///
/// # Errors
///
/// Propagates model-construction and inference errors.
pub fn integrity_results(samples: usize) -> Result<IntegrityResults, BenchError> {
    let topology = [128usize, 64, 32, 10];
    let frames = synthetic_frames(topology[0], (samples.max(1) * 4).max(20));
    let curves = MODES
        .iter()
        .map(|&(mode, label)| protection_curve(mode, label, &topology, &frames))
        .collect::<Result<Vec<_>, _>>()?;
    let (mesh, mesh_frames) = mesh_under_corruption(samples)?;
    Ok(IntegrityResults {
        curves,
        frames: frames.len(),
        mesh,
        mesh_frames,
    })
}

/// Renders the protection curves.
pub fn integrity_protection_table(results: &IntegrityResults) -> Table {
    let mut table = Table::new(
        "Integrity — SECDED protection vs transient weight upsets (oracle restore disabled)",
        &[
            "mode",
            "flip rate",
            "agreement",
            "exact",
            "flips",
            "corrected",
            "uncorrectable",
            "silent",
        ],
    );
    for curve in &results.curves {
        for point in &curve.points {
            table.row_owned(vec![
                curve.mode.into(),
                format!("{:.0e}", point.rate),
                format!("{:.1}%", 100.0 * point.agreement),
                format!("{:.1}%", 100.0 * point.exact),
                point.weight_flips.to_string(),
                point.corrected.to_string(),
                point.uncorrectable.to_string(),
                point.silent.to_string(),
            ]);
        }
    }
    table.note("all three modes see the same seeded fault sites; `off` is the oracle-restored unprotected baseline, `correct` repairs single-bit rows on read and scrubs after every frame — its `exact` column holds 100% whenever no row takes ≥2 flips between scrubs (uncorrectable = silent = 0), and `silent` counts only ≥3-bit rows aliasing past SECDED");
    table
}

/// Renders the mesh corruption sweep.
pub fn integrity_mesh_table(results: &IntegrityResults) -> Table {
    let mut table = Table::new(
        "Integrity — 3-core mesh under in-flight packet corruption (CRC verify + NACK/retransmit)",
        &[
            "corrupt rate",
            "corrupted",
            "retransmits",
            "recovered",
            "link busy",
            "traffic",
            "outputs",
        ],
    );
    for point in &results.mesh {
        table.row_owned(vec![
            format!("{:.0e}", point.corrupt_rate),
            point.packets_corrupted.to_string(),
            point.retransmits.to_string(),
            point.frames_recovered.to_string(),
            point.link_busy_cycles.to_string(),
            format!("{:.2}x", point.link_inflation),
            if point.exact {
                "bit-identical"
            } else {
                "MISMATCH"
            }
            .into(),
        ]);
    }
    table.note("every struck hand-off is flagged by the consumer's CRC-32 and NACK-retransmitted (budget 3); exhausted budgets fall to the fault-exempt recovery pass — outputs stay exact while the CRC + retransmit cycles are charged deterministically into the link model");
    table
}

/// Renders the results as one machine-readable JSON object (hand-rolled:
/// the workspace is offline and serde is not vendored).
pub fn integrity_json(results: &IntegrityResults) -> String {
    let curves: Vec<String> = results
        .curves
        .iter()
        .map(|c| {
            let points: Vec<String> = c
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"rate\":{:e},\"agreement\":{:.4},\"exact\":{:.4},\"weight_flips\":{},\"corrected\":{},\"uncorrectable\":{},\"silent\":{}}}",
                        p.rate, p.agreement, p.exact, p.weight_flips, p.corrected, p.uncorrectable, p.silent
                    )
                })
                .collect();
            format!(
                "{{\"mode\":\"{}\",\"points\":[{}]}}",
                c.mode,
                points.join(",")
            )
        })
        .collect();
    let mesh: Vec<String> = results
        .mesh
        .iter()
        .map(|p| {
            format!(
                "{{\"corrupt_rate\":{:e},\"packets_corrupted\":{},\"retransmits\":{},\"frames_recovered\":{},\"link_busy_cycles\":{},\"link_inflation\":{:.4},\"exact\":{}}}",
                p.corrupt_rate,
                p.packets_corrupted,
                p.retransmits,
                p.frames_recovered,
                p.link_busy_cycles,
                p.link_inflation,
                p.exact
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"integrity\",\"frames\":{},\"protection\":[{}],\"mesh_frames\":{},\"mesh\":[{}]}}",
        results.frames,
        curves.join(","),
        results.mesh_frames,
        mesh.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_mode_holds_the_exactness_floor_the_baseline_loses() {
        let results = integrity_results(8).unwrap();
        assert_eq!(results.curves.len(), 3);
        let by_mode = |m: &str| results.curves.iter().find(|c| c.mode == m).unwrap();
        let (off, detect, correct) = (by_mode("off"), by_mode("detect"), by_mode("correct"));
        for curve in &results.curves {
            assert_eq!(curve.points.len(), FLIP_RATES.len());
            let first = &curve.points[0];
            assert_eq!(first.agreement, 1.0, "{}: rate 0 is clean", curve.mode);
            assert_eq!(first.exact, 1.0);
            assert_eq!(
                first.corrected + first.uncorrectable + first.silent,
                0,
                "{}: no events without upsets",
                curve.mode
            );
        }
        // Same seed → same sites: off and detect run the same raw data
        // through the cascade, so their accuracy columns are identical;
        // detect additionally *counts* what it saw.
        for (o, d) in off.points.iter().zip(&detect.points) {
            assert_eq!(o.agreement, d.agreement);
            assert_eq!(o.exact, d.exact);
            assert_eq!(o.weight_flips, d.weight_flips);
            assert_eq!(
                o.corrected + o.uncorrectable + o.silent,
                0,
                "off never checks"
            );
        }
        let top_detect = detect.points.last().unwrap();
        assert!(
            top_detect.corrected > 0,
            "the top rate lands single-bit rows"
        );
        // The tentpole: correction restores bit-exact logits at rates
        // where the unprotected baseline has already drifted.
        let top_off = off.points.last().unwrap();
        assert!(
            top_off.exact < 1.0,
            "the top rate must perturb the baseline"
        );
        for point in &correct.points {
            if point.uncorrectable == 0 && point.silent == 0 {
                assert_eq!(
                    point.exact, 1.0,
                    "rate {:.0e}: single-bit upsets correct to bit-identity",
                    point.rate
                );
            }
        }
        assert!(
            correct.points.last().unwrap().corrected > 0,
            "correction actually fired"
        );
    }

    #[test]
    fn mesh_corruption_recovers_exactly_and_charges_the_links() {
        let (points, frames) = mesh_under_corruption(8).unwrap();
        assert_eq!(points.len(), CORRUPT_RATES.len());
        assert!(frames >= 20);
        assert_eq!(points[0].packets_corrupted, 0);
        assert_eq!(points[0].link_inflation, 1.0);
        for point in &points {
            assert!(point.exact, "corrupt rate {:.0e}", point.corrupt_rate);
            assert!(
                point.retransmits <= point.packets_corrupted,
                "a retransmission needs a flagged packet first"
            );
        }
        let last = points.last().unwrap();
        assert!(last.packets_corrupted > 0, "upsets fired at the top rate");
        assert!(last.retransmits > 0);
        assert!(
            last.link_inflation > 1.0,
            "CRC + retransmit cycles inflate link traffic"
        );
    }

    #[test]
    fn json_is_structurally_sound_and_reproducible() {
        let results = integrity_results(2).unwrap();
        let json = integrity_json(&results);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"experiment\":\"integrity\""));
        for mode in ["off", "detect", "correct"] {
            assert!(json.contains(&format!("\"mode\":\"{mode}\"")));
        }
        assert_eq!(json.matches("\"rate\"").count(), 3 * FLIP_RATES.len());
        assert_eq!(
            json.matches("\"corrupt_rate\"").count(),
            CORRUPT_RATES.len()
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(
            json,
            integrity_json(&integrity_results(2).unwrap()),
            "the snapshot is seeded and must not wobble"
        );
        let tables = [
            integrity_protection_table(&results),
            integrity_mesh_table(&results),
        ];
        assert_eq!(tables[0].row_count(), 3 * FLIP_RATES.len());
        assert_eq!(tables[1].row_count(), CORRUPT_RATES.len());
    }
}
