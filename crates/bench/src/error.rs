//! Error type for the experiment harness.

use std::fmt;

use esam_circuit::CircuitError;
use esam_core::CoreError;
use esam_logic::LogicError;
use esam_nn::NnError;
use esam_sram::SramError;

/// Errors produced while reproducing experiments.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// Propagated system-model error.
    Core(CoreError),
    /// Propagated network error.
    Nn(NnError),
    /// Propagated SRAM error.
    Sram(SramError),
    /// Propagated gate-level netlist/simulation error.
    Logic(LogicError),
    /// Propagated transient-solver error.
    Circuit(CircuitError),
    /// Unknown experiment id requested from the CLI.
    UnknownExperiment(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Core(e) => write!(f, "{e}"),
            BenchError::Nn(e) => write!(f, "{e}"),
            BenchError::Sram(e) => write!(f, "{e}"),
            BenchError::Logic(e) => write!(f, "{e}"),
            BenchError::Circuit(e) => write!(f, "{e}"),
            BenchError::UnknownExperiment(id) => write!(
                f,
                "unknown experiment '{id}' (try: area, fig6, fig7, table2, arbiter, nbl, sta, transient, addertree, corners, hot_path, serve, mesh, faults, observe, learning, learning_curve, fig8, table3, accuracy, batch, all)"
            ),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Core(e) => Some(e),
            BenchError::Nn(e) => Some(e),
            BenchError::Sram(e) => Some(e),
            BenchError::Logic(e) => Some(e),
            BenchError::Circuit(e) => Some(e),
            BenchError::UnknownExperiment(_) => None,
        }
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> Self {
        BenchError::Core(e)
    }
}

impl From<NnError> for BenchError {
    fn from(e: NnError) -> Self {
        BenchError::Nn(e)
    }
}

impl From<SramError> for BenchError {
    fn from(e: SramError) -> Self {
        BenchError::Sram(e)
    }
}

impl From<LogicError> for BenchError {
    fn from(e: LogicError) -> Self {
        BenchError::Logic(e)
    }
}

impl From<CircuitError> for BenchError {
    fn from(e: CircuitError) -> Self {
        BenchError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = BenchError::UnknownExperiment("bogus".into());
        assert!(e.to_string().contains("bogus"));
        assert!(std::error::Error::source(&e).is_none());
        let e: BenchError = NnError::EmptyDataset.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
