//! Plain-text result tables with aligned columns and CSV export.

use std::fmt;

/// A labelled table of experiment results.
///
/// # Examples
///
/// ```
/// use esam_bench::Table;
///
/// let mut t = Table::new("Demo", &["cell", "value"]);
/// t.row(&["1RW", "1.0"]);
/// t.row(&["1RW+4R", "2.625"]);
/// assert!(t.to_string().contains("1RW+4R"));
/// assert!(t.to_csv().starts_with("cell,value"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends one row from owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(cells);
    }

    /// Adds a free-text footnote printed under the table.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (`row`, `col`), `None` when out of range.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// CSV rendering (headers + rows; notes are omitted).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let mut header = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            header.push_str(&format!("{:width$}  ", h, width = widths[i]));
        }
        writeln!(f, "{}", header.trim_end())?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                line.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["xxxxxxxx", "1"]);
        t.note("hello");
        let text = t.to_string();
        assert!(text.contains("== T =="));
        assert!(text.contains("note: hello"));
        assert_eq!(t.to_csv(), "a,long-header\nxxxxxxxx,1\n");
        assert_eq!(t.cell(0, 0), Some("xxxxxxxx"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("T", &["a", "b"]).row(&["only-one"]);
    }
}
