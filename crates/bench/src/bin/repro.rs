//! `repro` — regenerate the ESAM paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--json] [--samples N] [--threads N] <experiment>... | all
//! ```
//!
//! Experiments: area, fig6, fig7, table2, arbiter, nbl, sta, transient,
//! addertree, corners, hot_path, serve, mesh, faults, integrity, observe,
//! learning, learning_curve, fig8, table3, accuracy, batch — or `all`.
//! `--quick` trims the BNN training budget; `--samples` bounds the test
//! images used by system-level experiments, the length of the
//! `learning_curve` training stream, the request counts of the `serve`
//! and `observe` experiments and
//! the frames per point of the `mesh`, `faults` and `integrity` sweeps
//! (default 200); `--threads` caps the worker sweep of the `batch`
//! experiment and the worker pools of the `serve` and `faults`
//! experiments (default: all cores); `--json` emits machine-readable
//! output for experiments that
//! support it (`hot_path`, `serve`, `mesh`, `faults`, `integrity`,
//! `observe`). With `ESAM_OBSERVE_DIR=dir` set, `observe` also writes
//! `dir/trace.json` (Perfetto-loadable), `dir/metrics.prom` and
//! `dir/metrics.json`.

use std::process::ExitCode;

use esam_bench::{run_experiments, Fidelity};

fn main() -> ExitCode {
    let mut fidelity = Fidelity::Full;
    let mut samples = 200usize;
    let mut threads = 0usize; // 0 = available parallelism
    let mut json = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--json" => json = true,
            "--samples" => {
                let Some(value) = args.next() else {
                    eprintln!("--samples needs a value");
                    return ExitCode::FAILURE;
                };
                match value.parse() {
                    Ok(n) if n > 0 => samples = n,
                    _ => {
                        eprintln!("--samples needs a positive integer, got '{value}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--threads" => {
                let Some(value) = args.next() else {
                    eprintln!("--threads needs a value");
                    return ExitCode::FAILURE;
                };
                match value.parse() {
                    Ok(n) if n > 0 => threads = n,
                    _ => {
                        eprintln!("--threads needs a positive integer, got '{value}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--json] [--samples N] [--threads N] <experiment>... | all\n\
                     experiments: area fig6 fig7 table2 arbiter nbl sta transient addertree corners hot_path serve mesh faults integrity observe learning learning_curve fig8 table3 accuracy batch"
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }

    match run_experiments(&ids, fidelity, samples, threads, json) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro failed: {e}");
            ExitCode::FAILURE
        }
    }
}
