//! Probe: which teaching policy recovers accuracy under drift?
use esam_bench::{ExperimentContext, Fidelity};
use esam_bits::BitVec;
use esam_core::{EsamSystem, OnlineLearningEngine, SystemConfig};
use esam_nn::{Dataset, DigitsConfig, Split, StdpRule, TeacherSignal};
use esam_sram::BitcellKind;

fn accuracy(system: &mut EsamSystem, split: &Split, n: usize) -> f64 {
    let count = n.min(split.len());
    let mut ok = 0;
    for i in 0..count {
        if system.infer(&split.spikes(i)).unwrap().prediction == split.label(i) as usize {
            ok += 1;
        }
    }
    ok as f64 / count as f64
}

fn main() {
    let context = ExperimentContext::prepare(Fidelity::Quick).unwrap();
    let shifted = Dataset::generate(&DigitsConfig {
        train_count: 500,
        test_count: 300,
        noise: 0.06,
        max_shear: 3,
        seed: 99,
        ..DigitsConfig::default()
    })
    .unwrap();
    for (label, p_pot, depress, passes, margin, adapt_count) in [
        (
            "specialize n=100 m=30 p=0.08",
            0.08,
            false,
            6usize,
            Some(30.0f32),
            100usize,
        ),
        ("specialize n=100 m=inf p=0.08", 0.08, false, 6, None, 100),
        (
            "specialize n=300 m=30 p=0.06",
            0.06,
            false,
            6,
            Some(30.0),
            300,
        ),
    ] {
        let config = SystemConfig::paper_default(BitcellKind::multiport(4).unwrap());
        let mut system = EsamSystem::from_model(context.model(), &config).unwrap();
        let before = accuracy(&mut system, &shifted.test, 200);
        let mut engine = OnlineLearningEngine::new(StdpRule::new(p_pot, 0.0), 7);
        let out = system.tiles().len() - 1;
        let mut accs = vec![];
        for _ in 0..passes {
            for i in 0..adapt_count.min(shifted.train.len()) {
                let frame = shifted.train.spikes(i);
                let target = shifted.train.label(i) as usize;
                let traced = system.infer_traced(&frame).unwrap();
                let r = &traced.result;
                if r.prediction == target {
                    continue;
                }
                if let Some(m) = margin {
                    // Only teach near-miss samples; hopeless ones destabilize.
                    if r.logits[r.prediction] - r.logits[target] > m {
                        continue;
                    }
                }
                let pre: BitVec = traced.layer_inputs[out].clone();
                engine
                    .teach_system(&mut system, out, &pre, target, TeacherSignal::ShouldFire)
                    .unwrap();
                if depress {
                    engine
                        .teach_system(
                            &mut system,
                            out,
                            &pre,
                            r.prediction,
                            TeacherSignal::ShouldNotFire,
                        )
                        .unwrap();
                }
            }
            // Accuracy on the adaptation set itself (environment specialization)
            // and on held-out shifted data.
            let mut ok = 0;
            for i in 0..adapt_count.min(shifted.train.len()) {
                if system.infer(&shifted.train.spikes(i)).unwrap().prediction
                    == shifted.train.label(i) as usize
                {
                    ok += 1;
                }
            }
            let own = 100.0 * ok as f64 / adapt_count.min(shifted.train.len()) as f64;
            let held = 100.0 * accuracy(&mut system, &shifted.test, 200);
            accs.push(format!("{own:.0}/{held:.0}"));
        }
        println!(
            "{label}: before {:.1}% → own/held: {}",
            100.0 * before,
            accs.join(" → ")
        );
    }
}
