//! Criterion bench + reproduction of the §4.4.2 accuracy pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::accuracy::{accuracy_numbers, accuracy_table};
use esam_bench::{ExperimentContext, Fidelity};

fn bench(c: &mut Criterion) {
    let context = ExperimentContext::prepare(Fidelity::Quick).expect("context");
    let numbers = accuracy_numbers(&context, 60).expect("accuracy");
    println!("{}", accuracy_table(&numbers));

    let frame = context.dataset().test.spikes(0);
    c.bench_function("accuracy/golden_snn_forward", |b| {
        b.iter(|| std::hint::black_box(context.model().classify(&frame).unwrap()))
    });
    let image: Vec<f32> = context.dataset().test.image(0).to_vec();
    c.bench_function("accuracy/bnn_forward", |b| {
        b.iter(|| std::hint::black_box(context.network().classify(&image).unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
