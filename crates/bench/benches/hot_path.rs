//! Criterion bench for the word-parallel inference hot path.
//!
//! Three tiers, so a regression can be localized in one run:
//!
//! * `neuron_integrate` — the `NeuronArray` word-parallel ±1 decode alone;
//! * `tile_step` — one tile clock cycle (arbitration + SRAM reads + row
//!   assembly + integration) under a saturated request register;
//! * `frame_pipeline` — a full frame through the paper-default
//!   768:256:256:256:10 cascade (`EsamSystem::infer`).
//!
//! The workload is synthetic and deterministic (seed-initialized BNN,
//! fixed-stride frames): no dataset, no training, comparable run to run.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bits::BitVec;
use esam_core::{EsamSystem, SystemConfig, Tile};
use esam_neuron::{NeuronArray, NeuronConfig};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;

fn frame(width: usize, seed: usize) -> BitVec {
    let mut f = BitVec::new(width);
    for k in 0..width / 5 {
        f.set((seed * 131 + k * 17) % width, true);
    }
    f
}

fn bench(c: &mut Criterion) {
    let cell = BitcellKind::multiport(4).unwrap();

    // --- neuron_integrate: 256 columns, 4 valid port rows per cycle.
    let mut neurons = NeuronArray::with_uniform_threshold(NeuronConfig::paper_default(), 256, 8);
    let rows: Vec<BitVec> = (0..4).map(|p| frame(256, p + 1)).collect();
    let valid = [true; 4];
    c.bench_function("neuron_integrate", |b| {
        b.iter(|| {
            neurons.integrate(&rows, &valid);
            std::hint::black_box(neurons.membranes().len())
        })
    });

    // --- tile_step: a 768:256 tile (6 arbiters × 2 column groups) with a
    // re-injected dense frame so every step serves a full grant set.
    let net = BnnNetwork::new(&[768, 256], 7).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(cell, &[768, 256])
        .build()
        .expect("valid configuration");
    let mut tile = Tile::new(768, 256, &config).expect("tile");
    tile.load_layer(&model.layers()[0]).expect("load");
    let dense = frame(768, 3);
    c.bench_function("tile_step", |b| {
        b.iter(|| {
            if tile.is_drained() {
                tile.inject(&dense).expect("inject");
            }
            std::hint::black_box(tile.step().expect("step"))
        })
    });

    // --- frame_pipeline: full paper-default cascade, one frame.
    let topology = [768usize, 256, 256, 256, 10];
    let net = BnnNetwork::new(&topology, 0xE5A).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(cell, &topology)
        .build()
        .expect("valid configuration");
    let mut system = EsamSystem::from_model(&model, &config).expect("system");
    let input = frame(768, 11);
    let mut group = c.benchmark_group("hot_path");
    group.sample_size(20);
    group.bench_function("frame_pipeline", |b| {
        b.iter(|| std::hint::black_box(system.infer(&input).expect("infer").prediction))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
