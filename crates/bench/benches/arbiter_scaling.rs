//! Criterion bench + reproduction of the §3.3 arbiter comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_arbiter::MultiPortArbiter;
use esam_bench::experiments::arbiter::{arbiter_scaling_table, arbiter_table};
use esam_bits::BitVec;

fn bench(c: &mut Criterion) {
    println!("{}", arbiter_table().expect("arbiter reproduces"));
    println!("{}", arbiter_scaling_table().expect("scaling reproduces"));
    let arbiter = MultiPortArbiter::paper_default();
    let dense = BitVec::from_indices(128, &(0..128).step_by(2).collect::<Vec<_>>());
    let sparse = BitVec::from_indices(128, &[5, 77, 126]);
    c.bench_function("arbiter/arbitrate_dense_64_requests", |b| {
        b.iter(|| std::hint::black_box(arbiter.arbitrate(&dense).count()))
    });
    c.bench_function("arbiter/arbitrate_sparse_3_requests", |b| {
        b.iter(|| std::hint::black_box(arbiter.arbitrate(&sparse).count()))
    });
    c.bench_function("arbiter/drain_64_requests", |b| {
        b.iter(|| {
            let mut pending = dense.clone();
            let mut cycles = 0u32;
            while pending.any() {
                pending = arbiter.arbitrate(&pending).remaining().clone();
                cycles += 1;
            }
            std::hint::black_box(cycles)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
