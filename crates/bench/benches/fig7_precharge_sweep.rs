//! Criterion bench + reproduction of Fig. 7 (V_prech / port-count sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::fig7::{fig7_table, RAILS_MV};
use esam_sram::{ArrayConfig, BitcellKind, EnergyAnalysis, TimingAnalysis};
use esam_tech::units::Volts;

fn bench(c: &mut Criterion) {
    println!("{}", fig7_table().expect("fig7 reproduces"));
    c.bench_function("fig7/full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &rail in &RAILS_MV {
                for ports in 1..=4u8 {
                    let cfg =
                        ArrayConfig::builder(128, 128, BitcellKind::multiport(ports).unwrap())
                            .vprech(Volts::from_mv(rail))
                            .build()
                            .unwrap();
                    acc += TimingAnalysis::new(&cfg).inference_read().total().ps();
                    acc += EnergyAnalysis::new(&cfg).inference_read(64).fj();
                }
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
