//! Criterion bench + reproduction of Table 3 (SOTA comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::accuracy::accuracy_numbers;
use esam_bench::experiments::fig8::fig8_results;
use esam_bench::experiments::table3::table3_table;
use esam_bench::{ExperimentContext, Fidelity};
use esam_core::baselines::sota_entries;

fn bench(c: &mut Criterion) {
    let context = ExperimentContext::prepare(Fidelity::Quick).expect("context");
    let results = fig8_results(&context, 40).expect("fig8");
    let accuracy = accuracy_numbers(&context, 40).expect("accuracy");
    println!(
        "{}",
        table3_table(results.four_port(), accuracy.hardware * 100.0)
    );

    c.bench_function("table3/sota_entry_lookup", |b| {
        b.iter(|| std::hint::black_box(sota_entries().len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
