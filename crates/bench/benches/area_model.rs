//! Criterion bench + reproduction of the §4.2 cell-area model.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::area::area_table;
use esam_sram::BitcellKind;

fn bench(c: &mut Criterion) {
    println!("{}", area_table());
    c.bench_function("area_model/full_family", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for cell in BitcellKind::ALL {
                total += std::hint::black_box(cell.area().value());
            }
            total
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
