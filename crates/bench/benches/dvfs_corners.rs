//! Criterion bench + reproduction of the DVFS/HVT corner projection.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::corners::{corner_set, corners_table};
use esam_tech::dvfs::OperatingPoint;
use esam_tech::finfet::VtFlavor;
use esam_tech::units::Volts;

fn bench(c: &mut Criterion) {
    println!("{}", corners_table());

    let nominal = OperatingPoint::nominal();
    c.bench_function("corners/project_four_corners", |b| {
        b.iter(|| {
            corner_set()
                .iter()
                .map(|(_, corner)| {
                    corner.frequency_scale(&nominal)
                        + corner.dynamic_power_scale(&nominal)
                        + corner.leakage_power_scale(&nominal)
                })
                .sum::<f64>()
        })
    });
    c.bench_function("corners/vdd_sweep_350_points", |b| {
        b.iter(|| {
            (370..=700)
                .map(|mv| {
                    OperatingPoint::new(Volts::from_mv(mv as f64), VtFlavor::Svt)
                        .dynamic_power_scale(&nominal)
                })
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
