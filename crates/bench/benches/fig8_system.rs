//! Criterion bench + reproduction of Fig. 8 (system-level sweep).
//!
//! Uses the quick-fidelity context (reduced training budget) so the bench
//! harness stays fast; the `repro` binary produces the full-fidelity tables.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::fig8::{fig8_results, fig8_table, headline_table};
use esam_bench::{ExperimentContext, Fidelity};
use esam_core::{EsamSystem, SystemConfig};
use esam_sram::BitcellKind;

fn bench(c: &mut Criterion) {
    let context = ExperimentContext::prepare(Fidelity::Quick).expect("context");
    let results = fig8_results(&context, 60).expect("fig8 reproduces");
    println!("{}", fig8_table(&results));
    println!("{}", headline_table(&results));

    let config = SystemConfig::paper_default(BitcellKind::multiport(4).unwrap());
    let mut system = EsamSystem::from_model(context.model(), &config).expect("system");
    let frames = context.test_frames(20);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    group.bench_function("single_inference_4port", |b| {
        let mut index = 0usize;
        b.iter(|| {
            let frame = &frames[index % frames.len()];
            index += 1;
            std::hint::black_box(system.infer(frame).unwrap().prediction)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
