//! Criterion bench for the multi-core mesh: pipeline-parallel `run` vs
//! core count on the deep synthetic workload.
//!
//! Prints the mesh-scaling table first (modeled cycle-domain speedup +
//! bit-identity check against the plain single-core system), then benches
//! `MeshSystem::run` at each core count so regressions in the channel
//! plumbing or the per-core handlers show up as ns/iter shifts.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::mesh::{mesh_results, mesh_table};
use esam_bits::BitVec;
use esam_core::SystemConfig;
use esam_mesh::{MeshConfig, MeshSystem};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;

fn bench(c: &mut Criterion) {
    let results = mesh_results(16).expect("mesh scaling runs");
    println!("{}", mesh_table(&results));
    assert!(
        results
            .workloads
            .iter()
            .all(|w| w.points.iter().all(|p| p.identical)),
        "mesh outputs diverged from the plain single-core system"
    );

    let topology = [256usize, 256, 256, 256, 256, 10];
    let net = BnnNetwork::new(&topology, 0x3E54).expect("network");
    let model = SnnModel::from_bnn(&net).expect("model");
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &topology)
        .build()
        .expect("config");
    let frames: Vec<BitVec> = (0..32)
        .map(|f| BitVec::from_indices(256, &[f % 256, (f * 31 + 5) % 256, (f * 97 + 11) % 256]))
        .collect();

    let mut group = c.benchmark_group("mesh");
    group.sample_size(10);
    for cores in [1usize, 2, 4] {
        let mut mesh =
            MeshSystem::from_model(&model, &config, &MeshConfig::with_cores(cores)).expect("mesh");
        group.bench_function(format!("run_{cores}_cores"), |b| {
            b.iter(|| std::hint::black_box(mesh.run(&frames).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
