//! Criterion bench + reproduction of the gate-level STA cross-check.
//!
//! Prints the structural flat-vs-tree table, then measures the cost of
//! netlist generation, STA and event simulation at the paper's 128-wide
//! 4-port size.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_arbiter::{EncoderStructure, StructuralArbiter};
use esam_bench::experiments::sta::sta_table;
use esam_bits::BitVec;
use esam_logic::{GateTiming, Level, Simulator, TimingAnalysis};

fn bench(c: &mut Criterion) {
    println!("{}", sta_table().expect("sta cross-check reproduces"));

    let timing = GateTiming::finfet_3nm();
    let tree = StructuralArbiter::new(128, 4, EncoderStructure::Tree { base_width: 16 })
        .expect("paper-size arbiter builds");
    let requests = BitVec::from_indices(128, &(0..128).step_by(3).collect::<Vec<_>>());
    let stimulus: Vec<Level> = requests
        .to_bools()
        .iter()
        .map(|&b| Level::from(b))
        .collect();

    c.bench_function("sta/generate_tree_netlist_128x4", |b| {
        b.iter(|| {
            std::hint::black_box(
                StructuralArbiter::new(128, 4, EncoderStructure::Tree { base_width: 16 })
                    .expect("builds")
                    .gate_count(),
            )
        })
    });
    c.bench_function("sta/analyze_tree_netlist_128x4", |b| {
        b.iter(|| {
            std::hint::black_box(
                TimingAnalysis::run(tree.netlist(), &timing)
                    .expect("valid netlist")
                    .critical_path()
                    .delay(),
            )
        })
    });
    c.bench_function("sta/event_sim_tree_128x4", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(tree.netlist(), timing).expect("valid netlist");
            std::hint::black_box(sim.settle(&stimulus).expect("settles").0)
        })
    });
    c.bench_function("sta/evaluate_grants_128x4", |b| {
        b.iter(|| std::hint::black_box(tree.arbitrate(&requests).expect("evaluates").count()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
