//! Criterion bench + reproduction of the adder-tree vs CIM-P sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::addertree::{addertree_table, DENSITIES};
use esam_core::{energy_crossover, sparsity_sweep, AdderTreeMacro};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        addertree_table().expect("adder-tree sweep reproduces")
    );

    c.bench_function("addertree/generate_128_column_model", |b| {
        b.iter(|| std::hint::black_box(AdderTreeMacro::new(128, 128).expect("builds").tree_gates()))
    });
    c.bench_function("addertree/sparsity_sweep_6_points", |b| {
        b.iter(|| std::hint::black_box(sparsity_sweep(128, 128, 4, &DENSITIES).expect("sweeps")))
    });
    c.bench_function("addertree/energy_crossover_bisection", |b| {
        b.iter(|| std::hint::black_box(energy_crossover(128, 128, 4).expect("converges")))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
