//! Criterion bench + reproduction of the MNA transient cross-check.
//!
//! Prints the analytical-vs-numerical bitline table, then measures the
//! transient solver on representative bitline problems.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::transient::transient_table;
use esam_circuit::{Circuit, RcLadder, Waveform};

fn discharge_circuit(segments: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let top = ckt.add_node("rbl_top");
    let ladder =
        RcLadder::build(&mut ckt, top, segments, 40e3, 3.2e-15, "rbl").expect("ladder builds");
    for &node in ladder.nodes() {
        ckt.set_initial_voltage(node, 0.5).expect("node exists");
    }
    ckt.add_switch(ladder.output(), Circuit::GROUND, 8e3, 0.0, None)
        .expect("nodes exist");
    ckt
}

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        transient_table().expect("transient cross-check reproduces")
    );

    for segments in [8usize, 32, 128] {
        let ckt = discharge_circuit(segments);
        c.bench_function(
            format!("transient/bitline_discharge_{segments}_segments"),
            |b| b.iter(|| std::hint::black_box(ckt.transient(2e-9, 2e-12).expect("solves").len())),
        );
    }

    // Precharge-style charge through a driver: the refactor-free fast path.
    let mut ckt = Circuit::new();
    let supply = ckt.add_node("v");
    let bl = ckt.add_node("bl");
    ckt.add_voltage_source(supply, Circuit::GROUND, Waveform::dc(0.5))
        .expect("builds");
    ckt.add_resistor(supply, bl, 2e3).expect("builds");
    ckt.add_capacitor(bl, Circuit::GROUND, 4e-15)
        .expect("builds");
    c.bench_function("transient/precharge_2000_steps", |b| {
        b.iter(|| {
            std::hint::black_box(
                ckt.transient(16e-12 * 2000.0, 16e-12)
                    .expect("solves")
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
