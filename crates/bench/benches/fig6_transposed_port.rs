//! Criterion bench + reproduction of Fig. 6 (transposed-port timing/energy).

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::fig6::fig6_table;
use esam_sram::{ArrayConfig, BitcellKind, EnergyAnalysis, TimingAnalysis};

fn bench(c: &mut Criterion) {
    println!("{}", fig6_table().expect("fig6 reproduces"));
    let config = ArrayConfig::paper_default(BitcellKind::multiport(4).unwrap());
    c.bench_function("fig6/rw_write_timing_analysis", |b| {
        let timing = TimingAnalysis::new(&config);
        b.iter(|| std::hint::black_box(timing.rw_write().unwrap().total()))
    });
    c.bench_function("fig6/rw_write_energy_analysis", |b| {
        let energy = EnergyAnalysis::new(&config);
        b.iter(|| std::hint::black_box(energy.rw_write_per_cell().unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
