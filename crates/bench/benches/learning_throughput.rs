//! Criterion bench: end-to-end online-learning throughput (samples/s) of
//! the streaming STDP session, multiport vs 6T — the system-level workload
//! whose per-update cost §4.4.1 quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::learning_curve::{learning_curve_results, learning_curve_table};
use esam_core::{EsamSystem, OnlineLearningEngine, SystemConfig};
use esam_nn::{BnnNetwork, Dataset, DigitsConfig, SnnModel, StdpRule};
use esam_sram::BitcellKind;

fn sample_pool() -> Vec<(esam_bits::BitVec, u8)> {
    let data = Dataset::generate(&DigitsConfig {
        train_count: 64,
        test_count: 1,
        ..DigitsConfig::default()
    })
    .expect("dataset generates");
    data.train.stream(1).collect()
}

fn system(cell: BitcellKind) -> EsamSystem {
    let net = BnnNetwork::new(&[768, 10], 1).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(cell, &[768, 10])
        .build()
        .expect("valid configuration");
    EsamSystem::from_model(&model, &config).expect("topologies match")
}

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        learning_curve_table(&learning_curve_results(120).expect("learning curve reproduces"))
    );
    let samples = sample_pool();
    let mut group = c.benchmark_group("learning_throughput");
    for cell in [BitcellKind::multiport(4).unwrap(), BitcellKind::Std6T] {
        let mut system = system(cell);
        let mut engine = OnlineLearningEngine::new(StdpRule::new(0.25, 0.05), 1);
        let mut cursor = 0usize;
        group.bench_function(format!("learn_sample/{cell}"), |b| {
            b.iter(|| {
                let (frame, label) = &samples[cursor % samples.len()];
                cursor += 1;
                std::hint::black_box(
                    system
                        .learn_sample(&mut engine, frame, *label as usize)
                        .expect("sample learns")
                        .cost
                        .cycles,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
