//! Criterion bench for the parallel batch engine: frames/sec vs threads.
//!
//! Prints the batch-scaling table (wall-clock speedup + bit-identity check
//! against the sequential walk), then benches `BatchEngine::measure` at
//! each swept thread count so regressions in either the simulator hot path
//! or the engine's scheduling show up as ns/iter shifts.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::batch::{batch_results, batch_table};
use esam_bench::{ExperimentContext, Fidelity};
use esam_core::{BatchConfig, BatchEngine, EsamSystem, SystemConfig};
use esam_sram::BitcellKind;

fn bench(c: &mut Criterion) {
    let context = ExperimentContext::prepare(Fidelity::Quick).expect("context");
    let results = batch_results(&context, 48, 0).expect("batch scaling runs");
    println!("{}", batch_table(&results));
    assert!(
        results.points.iter().all(|p| p.identical),
        "parallel metrics diverged from the sequential reference"
    );

    let config = SystemConfig::paper_default(BitcellKind::multiport(4).unwrap());
    let system = EsamSystem::from_model(context.model(), &config).expect("system");
    let frames = context.test_frames(24);

    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(10);
    // One engine across the sweep: `set_threads` resizes the worker pool
    // in place, so per-point numbers exclude pool construction.
    let mut engine = BatchEngine::new(&system, &BatchConfig::sequential());
    for threads in [1usize, 2, 4] {
        engine.set_threads(threads);
        group.bench_function(format!("measure_{threads}_threads"), |b| {
            b.iter(|| std::hint::black_box(engine.measure(&frames).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
