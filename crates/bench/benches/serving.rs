//! Criterion bench for the `esam-serve` serving layer.
//!
//! Three tiers isolate where serving time goes:
//!
//! * `submit_wait_roundtrip` — one request through a single-worker
//!   service (queue + ticket + condvar overhead on top of one inference);
//! * `closed_loop_burst` — 64 requests from 4 closed-loop clients through
//!   a 2-worker pool with greedy micro-batching (the capacity shape);
//! * `direct_infer_reference` — the same frame served by a bare
//!   `EsamSystem::infer` call, the no-service floor.
//!
//! The workload is the small 128:64:10 system so one iteration stays in
//! the microsecond class; absolute capacity numbers live in
//! `repro serve --json`.

use criterion::{criterion_group, criterion_main, Criterion};
use esam_core::{EsamSystem, SystemConfig};
use esam_nn::{BnnNetwork, SnnModel};
use esam_serve::{BatchPolicy, EsamService, LoadGenerator, LoadMode, ServeConfig};
use esam_sram::BitcellKind;

fn system() -> EsamSystem {
    let net = BnnNetwork::new(&[128, 64, 10], 11).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[128, 64, 10])
        .build()
        .expect("valid configuration");
    EsamSystem::from_model(&model, &config).expect("system")
}

fn bench(c: &mut Criterion) {
    let generator = LoadGenerator::synthetic(128, 16, 0xE5A);

    // --- direct_infer_reference: the no-service floor.
    let mut bare = system();
    c.bench_function("direct_infer_reference", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(bare.infer(generator.frame(i)).expect("infer").prediction)
        })
    });

    // --- submit_wait_roundtrip: one request, one worker.
    let single = EsamService::start(
        &system(),
        ServeConfig::with_workers(1).batch(BatchPolicy::unbatched()),
    );
    c.bench_function("submit_wait_roundtrip", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let response = single
                .infer(generator.frame(i).clone())
                .expect("round trip");
            std::hint::black_box(response.prediction)
        })
    });
    single.shutdown();

    // --- closed_loop_burst: 64 requests, 4 clients, 2 workers.
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let service = EsamService::start(
        &system(),
        ServeConfig::with_workers(2).batch(BatchPolicy::greedy(8)),
    );
    group.bench_function("closed_loop_burst", |b| {
        b.iter(|| {
            let report = generator.run(&service, LoadMode::ClosedLoop { clients: 4 }, 64);
            assert_eq!(report.completed, 64);
            std::hint::black_box(report.completed)
        })
    });
    group.finish();
    service.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
