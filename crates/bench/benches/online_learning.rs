//! Criterion bench + reproduction of §4.4.1 (online-learning access cost).

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::learning::learning_table;
use esam_bits::BitVec;
use esam_core::{OnlineLearningEngine, PipelineTiming, SystemConfig, Tile};
use esam_nn::{StdpRule, TeacherSignal};
use esam_sram::BitcellKind;

fn bench(c: &mut Criterion) {
    println!("{}", learning_table().expect("learning reproduces"));
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[128, 128, 10])
        .build()
        .unwrap();
    let clock = PipelineTiming::analyze(&config).unwrap().clock_period();
    let pre = BitVec::from_indices(128, &[3, 40, 77, 101]);
    c.bench_function("learning/transposed_column_update", |b| {
        let mut tile = Tile::new(128, 128, &config).unwrap();
        let mut engine = OnlineLearningEngine::new(StdpRule::paper_default(), 1);
        b.iter(|| {
            std::hint::black_box(
                engine
                    .teach(&mut tile, clock, &pre, 0, TeacherSignal::ShouldFire)
                    .unwrap()
                    .cycles,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
