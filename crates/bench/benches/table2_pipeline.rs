//! Criterion bench + reproduction of Table 2 (pipeline stages).

use criterion::{criterion_group, criterion_main, Criterion};
use esam_bench::experiments::table2::table2_table;
use esam_core::{PipelineTiming, SystemConfig};
use esam_sram::BitcellKind;

fn bench(c: &mut Criterion) {
    println!("{}", table2_table().expect("table2 reproduces"));
    c.bench_function("table2/pipeline_analysis_all_cells", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cell in BitcellKind::ALL {
                let timing = PipelineTiming::analyze(&SystemConfig::paper_default(cell)).unwrap();
                acc += timing.clock_period().ps();
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
