//! Elmore-style RC delay estimation.
//!
//! Spectre's transient analyses are replaced by the classical first-order
//! delay expressions used throughout memory design:
//!
//! * lumped RC step response to 50 %: `t = 0.69·R·C`
//! * distributed wire (RC ladder) to 50 %: `t = 0.38·R_w·C_w`
//! * driver + distributed wire + lumped far-end load:
//!   `t = 0.69·R_d·(C_w + C_L) + 0.38·R_w·C_w + 0.69·R_w·C_L`
//!
//! These capture exactly the scaling the paper attributes to parasitics:
//! longer bitlines (wider multiport cells) and narrower, more resistive
//! wordlines.
//!
//! # Examples
//!
//! ```
//! use esam_tech::elmore::driven_wire_delay;
//! use esam_tech::units::{Farads, Ohms};
//!
//! let t = driven_wire_delay(
//!     Ohms::new(2_000.0),              // driver
//!     Ohms::new(3_000.0),              // wire R
//!     Farads::from_ff(5.0),            // wire C
//!     Farads::from_ff(2.0),            // far-end load
//! );
//! assert!(t.ps() > 0.0);
//! ```

use crate::units::{Farads, Ohms, Seconds};

/// 50 % step-response delay of a lumped RC: `0.69·R·C`.
#[inline]
pub fn lumped_rc_delay(r: Ohms, c: Farads) -> Seconds {
    0.69 * (r * c)
}

/// 50 % step-response delay of a distributed RC line: `0.38·R·C`.
#[inline]
pub fn distributed_rc_delay(r: Ohms, c: Farads) -> Seconds {
    0.38 * (r * c)
}

/// Delay of a driver with effective resistance `r_driver` charging a
/// distributed wire (`r_wire`, `c_wire`) terminated by a lumped load
/// `c_load`.
#[inline]
pub fn driven_wire_delay(r_driver: Ohms, r_wire: Ohms, c_wire: Farads, c_load: Farads) -> Seconds {
    lumped_rc_delay(r_driver, c_wire + c_load)
        + distributed_rc_delay(r_wire, c_wire)
        + lumped_rc_delay(r_wire, c_load)
}

/// Time for a constant current `i` to move a capacitance `c` through a
/// voltage swing `dv`: `t = C·ΔV / I`. This models the cell pull-down
/// discharging a read bitline.
///
/// # Panics
///
/// Panics if `i` is zero or negative.
#[inline]
pub fn constant_current_slew(c: Farads, dv: crate::units::Volts, i: crate::units::Amps) -> Seconds {
    assert!(i.value() > 0.0, "discharge current must be positive");
    Seconds::new(c.value() * dv.v() / i.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Amps, Volts};

    #[test]
    fn lumped_beats_distributed() {
        let r = Ohms::new(1_000.0);
        let c = Farads::from_ff(10.0);
        assert!(lumped_rc_delay(r, c) > distributed_rc_delay(r, c));
    }

    #[test]
    fn known_values() {
        // 1 kΩ × 10 fF = 10 ps τ; 0.69τ = 6.9 ps.
        let t = lumped_rc_delay(Ohms::new(1_000.0), Farads::from_ff(10.0));
        assert!((t.ps() - 6.9).abs() < 1e-9);
        let t = distributed_rc_delay(Ohms::new(1_000.0), Farads::from_ff(10.0));
        assert!((t.ps() - 3.8).abs() < 1e-9);
    }

    #[test]
    fn driven_wire_is_sum_of_terms() {
        let rd = Ohms::new(2_000.0);
        let rw = Ohms::new(3_000.0);
        let cw = Farads::from_ff(5.0);
        let cl = Farads::from_ff(2.0);
        let total = driven_wire_delay(rd, rw, cw, cl);
        let by_hand =
            lumped_rc_delay(rd, cw + cl) + distributed_rc_delay(rw, cw) + lumped_rc_delay(rw, cl);
        assert!((total.ps() - by_hand.ps()).abs() < 1e-9);
    }

    #[test]
    fn slew_linear_in_capacitance() {
        let i = Amps::from_ua(10.0);
        let dv = Volts::from_mv(210.0);
        let t1 = constant_current_slew(Farads::from_ff(4.0), dv, i);
        let t2 = constant_current_slew(Farads::from_ff(8.0), dv, i);
        assert!((t2.ps() / t1.ps() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_current_slew_panics() {
        constant_current_slew(Farads::from_ff(1.0), Volts::from_mv(100.0), Amps::ZERO);
    }
}
