//! Interconnect parasitics: per-µm wire resistance and capacitance.
//!
//! At the 3nm node local interconnect is *resistance-dominated* (the paper's
//! refs \[19\] and \[21\] are exactly about this). The model exposes two wire
//! widths: the standard width, and the narrowed width the multiport bitcell
//! is forced to use for its wordline so that RBL0–RBL3 fit in the same metal
//! layer (§4.2) — the cause of the jump in transposed-port access times in
//! Fig. 6.
//!
//! # Examples
//!
//! ```
//! use esam_tech::wire::{WireSegment, WireSpec, WireWidth};
//! use esam_tech::units::MicroMeters;
//!
//! let std_wl = WireSegment::new(WireSpec::new(WireWidth::Standard), MicroMeters::new(11.1));
//! let narrow_wl = WireSegment::new(WireSpec::new(WireWidth::Narrow), MicroMeters::new(11.1));
//! assert!(narrow_wl.resistance().value() > 2.0 * std_wl.resistance().value());
//! ```

use crate::calibration::fitted;
use crate::units::{Farads, MicroMeters, Ohms};

/// Drawn width class of a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireWidth {
    /// Standard-width local interconnect.
    #[default]
    Standard,
    /// Narrowed wire: the multiport cell's WL, squeezed by the added
    /// read bitlines routed in the same layer (§4.2).
    Narrow,
}

/// Electrical description of a routing track.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireSpec {
    width: WireWidth,
}

impl WireSpec {
    /// Creates a spec for the given width class.
    pub fn new(width: WireWidth) -> Self {
        Self { width }
    }

    /// Width class.
    pub fn width(self) -> WireWidth {
        self.width
    }

    /// Resistance per micrometre of run length.
    pub fn r_per_um(self) -> Ohms {
        let base = fitted::WIRE_R_PER_UM_STD;
        match self.width {
            WireWidth::Standard => Ohms::new(base),
            WireWidth::Narrow => Ohms::new(base * fitted::NARROW_WIRE_R_FACTOR),
        }
    }

    /// Capacitance per micrometre of run length.
    pub fn c_per_um(self) -> Farads {
        let base = fitted::WIRE_C_PER_UM_STD;
        match self.width {
            WireWidth::Standard => Farads::new(base),
            WireWidth::Narrow => Farads::new(base * fitted::NARROW_WIRE_C_FACTOR),
        }
    }
}

/// A routed wire of a given spec and length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSegment {
    spec: WireSpec,
    length: MicroMeters,
}

impl WireSegment {
    /// Creates a wire segment.
    ///
    /// # Panics
    ///
    /// Panics if the length is negative.
    pub fn new(spec: WireSpec, length: MicroMeters) -> Self {
        assert!(length.value() >= 0.0, "wire length must be non-negative");
        Self { spec, length }
    }

    /// The wire's spec.
    pub fn spec(self) -> WireSpec {
        self.spec
    }

    /// Run length.
    pub fn length(self) -> MicroMeters {
        self.length
    }

    /// Total distributed resistance.
    pub fn resistance(self) -> Ohms {
        self.spec.r_per_um() * self.length.um()
    }

    /// Total distributed capacitance (wire only, excluding attached devices).
    pub fn capacitance(self) -> Farads {
        self.spec.c_per_um() * self.length.um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_wire_parasitics() {
        let w = WireSegment::new(WireSpec::default(), MicroMeters::new(10.0));
        assert!((w.resistance().value() - 3000.0).abs() < 1.0);
        assert!((w.capacitance().ff() - 1.9).abs() < 1e-9);
    }

    #[test]
    fn narrow_wire_is_more_resistive_less_capacitive() {
        let std = WireSpec::new(WireWidth::Standard);
        let narrow = WireSpec::new(WireWidth::Narrow);
        assert!(narrow.r_per_um().value() > std.r_per_um().value());
        assert!(narrow.c_per_um().value() < std.c_per_um().value());
    }

    #[test]
    fn parasitics_scale_linearly_with_length() {
        let spec = WireSpec::default();
        let short = WireSegment::new(spec, MicroMeters::new(1.0));
        let long = WireSegment::new(spec, MicroMeters::new(4.0));
        assert!((long.resistance().value() / short.resistance().value() - 4.0).abs() < 1e-9);
        assert!((long.capacitance().value() / short.capacitance().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_wire_is_free() {
        let w = WireSegment::new(WireSpec::default(), MicroMeters::ZERO);
        assert!(w.resistance().is_zero());
        assert!(w.capacitance().is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_panics() {
        WireSegment::new(WireSpec::default(), MicroMeters::new(-1.0));
    }
}
