//! Technology substrate for the ESAM reproduction: an analytical stand-in
//! for IMEC's 3nm FinFET PDK plus the EDA flow the paper used.
//!
//! The paper (Table 1) characterizes its circuits with Cadence Spectre,
//! Calibre PEX parasitics, ±3σ process variation and a Negative-Bitline
//! write-assist methodology \[19\]. None of those are available outside the
//! IMEC ecosystem, so this crate provides the calibrated analytical
//! equivalents the rest of the workspace builds on:
//!
//! * [`units`] — strongly-typed physical quantities (seconds, volts, farads,
//!   joules, watts, µm², …) so model code cannot mix dimensions.
//! * [`finfet`] — alpha-power-law FinFET drive current, capacitance and
//!   leakage per fin.
//! * [`wire`] — resistance-dominated 3nm interconnect, including the
//!   narrowed multiport wordline of §4.2.
//! * [`elmore`] — first-order RC delay estimation.
//! * [`process`] — ±3σ worst-case derating and seeded Monte-Carlo mismatch.
//! * [`nbl`] — the write-margin rule that limits arrays to 128×128.
//! * [`calibration`] — every paper datapoint used as a model anchor, with
//!   provenance.
//!
//! # Examples
//!
//! Estimate how long a worst-case cell takes to discharge a read bitline:
//!
//! ```
//! use esam_tech::elmore::constant_current_slew;
//! use esam_tech::finfet::{FinFet, Polarity, VtFlavor};
//! use esam_tech::process::VariationModel;
//! use esam_tech::units::{Farads, Volts};
//!
//! let cell = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1);
//! let nominal = cell.on_current(Volts::from_mv(700.0));
//! let worst = nominal * VariationModel::paper_default().worst_case_current_factor();
//! let t = constant_current_slew(Farads::from_ff(4.8), Volts::from_mv(210.0), worst);
//! assert!(t.ps() > 10.0 && t.ps() < 200.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod dvfs;
pub mod elmore;
pub mod finfet;
pub mod nbl;
pub mod process;
pub mod units;
pub mod wire;
