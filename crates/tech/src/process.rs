//! Process variation: worst-case derating and Monte-Carlo sampling.
//!
//! The paper simulates at ±3σ process variation and targets the *worst-case*
//! cell/row/column (Table 1). [`VariationModel`] captures that contract: a
//! deterministic worst-case derating factor for analytical timing, plus a
//! seeded Monte-Carlo sampler (Box–Muller over ChaCha8) for distribution
//! studies.
//!
//! # Examples
//!
//! ```
//! use esam_tech::process::VariationModel;
//!
//! let var = VariationModel::paper_default();
//! // Worst cell at −3σ drives ~24 % less current than nominal.
//! let factor = var.worst_case_current_factor();
//! assert!(factor < 1.0 && factor > 0.5);
//! ```

use rand::{Rng, RngExt};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::calibration::fitted;

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// `rand_distr` is intentionally not a dependency; two uniform draws are all
/// Monte-Carlo needs here.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    f64::sqrt(-2.0 * u1.ln()) * (std::f64::consts::TAU * u2).cos()
}

/// Statistical model of cell-to-cell mismatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    current_sigma: f64,
    n_sigma: f64,
}

impl VariationModel {
    /// Builds a model with the given fractional σ of cell read current and
    /// the number of sigmas for the worst-case corner.
    ///
    /// # Panics
    ///
    /// Panics if `current_sigma` is not in `[0, 0.5)` or `n_sigma` is
    /// negative.
    pub fn new(current_sigma: f64, n_sigma: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&current_sigma),
            "current sigma fraction must be in [0, 0.5)"
        );
        assert!(n_sigma >= 0.0, "sigma count must be non-negative");
        Self {
            current_sigma,
            n_sigma,
        }
    }

    /// The paper's setup: ±3σ with the fitted current mismatch.
    pub fn paper_default() -> Self {
        Self::new(fitted::CELL_CURRENT_SIGMA, 3.0)
    }

    /// A variation-free model (nominal corner), useful in unit tests.
    pub fn nominal() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Fractional σ of the cell read current.
    pub fn current_sigma(&self) -> f64 {
        self.current_sigma
    }

    /// Number of sigmas used for worst-case analysis.
    pub fn n_sigma(&self) -> f64 {
        self.n_sigma
    }

    /// Multiplicative derating applied to cell drive current for the
    /// worst-case cell: `1 − n·σ`, floored at 10 % of nominal.
    pub fn worst_case_current_factor(&self) -> f64 {
        (1.0 - self.n_sigma * self.current_sigma).max(0.1)
    }

    /// Worst-case slowdown of any current-limited delay (reciprocal of the
    /// current factor).
    pub fn worst_case_delay_factor(&self) -> f64 {
        1.0 / self.worst_case_current_factor()
    }

    /// Samples one cell's current factor from the mismatch distribution.
    pub fn sample_current_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (1.0 + standard_normal(rng) * self.current_sigma).max(0.05)
    }

    /// Runs an `n`-sample Monte-Carlo of cell current factors with a fixed
    /// seed and returns the samples, worst (minimum) first.
    pub fn monte_carlo(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut samples: Vec<f64> = (0..n)
            .map(|_| self.sample_current_factor(&mut rng))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        samples
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_derates_current() {
        let v = VariationModel::paper_default();
        let f = v.worst_case_current_factor();
        assert!((f - (1.0 - 3.0 * fitted::CELL_CURRENT_SIGMA)).abs() < 1e-12);
        assert!(v.worst_case_delay_factor() > 1.0);
    }

    #[test]
    fn nominal_model_is_identity() {
        let v = VariationModel::nominal();
        assert_eq!(v.worst_case_current_factor(), 1.0);
        assert_eq!(v.worst_case_delay_factor(), 1.0);
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let v = VariationModel::paper_default();
        assert_eq!(v.monte_carlo(100, 7), v.monte_carlo(100, 7));
        assert_ne!(v.monte_carlo(100, 7), v.monte_carlo(100, 8));
    }

    #[test]
    fn monte_carlo_statistics_are_sane() {
        let v = VariationModel::paper_default();
        let samples = v.monte_carlo(20_000, 42);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        let var: f64 =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let sigma = var.sqrt();
        assert!(
            (sigma - fitted::CELL_CURRENT_SIGMA).abs() < 0.01,
            "sigma {sigma}"
        );
        // Sorted ascending: first sample is the worst cell.
        assert!(samples[0] < samples[samples.len() - 1]);
    }

    #[test]
    fn worst_case_floor() {
        let v = VariationModel::new(0.4, 3.0);
        assert!((v.worst_case_current_factor() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma fraction")]
    fn absurd_sigma_panics() {
        VariationModel::new(0.9, 3.0);
    }

    #[test]
    fn standard_normal_has_zero_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| standard_normal(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }
}
