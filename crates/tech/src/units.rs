//! Strongly-typed physical quantities.
//!
//! Every electrical quantity in the ESAM models is carried in a newtype
//! (`C-NEWTYPE`): a time can never be added to an energy, and a precharge
//! voltage can never be passed where a capacitance is expected. All values
//! are stored in base SI units (`f64`) with convenience constructors and
//! accessors for the magnitudes the paper uses (ps/ns, mV, fF, fJ/pJ, mW,
//! µm²).
//!
//! # Examples
//!
//! ```
//! use esam_tech::units::{Farads, Ohms, Seconds, Volts};
//!
//! let r = Ohms::new(5_000.0);
//! let c = Farads::from_ff(5.0);
//! let tau: Seconds = r * c; // Ω × F = s, checked at compile time
//! assert!(tau.ps() > 0.0);
//! let swing = Volts::from_mv(700.0) - Volts::from_mv(500.0);
//! assert!((swing.mv() - 200.0).abs() < 1e-9);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Formats `value` with an engineering prefix (e.g. `1.23 ns`, `607 pJ`).
fn eng_format(f: &mut fmt::Formatter<'_>, value: f64, unit: &str) -> fmt::Result {
    if value == 0.0 {
        return write!(f, "0 {unit}");
    }
    if !value.is_finite() {
        return write!(f, "{value} {unit}");
    }
    const PREFIXES: [(f64, &str); 11] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1e0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
    ];
    let magnitude = value.abs();
    let (scale, prefix) = PREFIXES
        .iter()
        .find(|(s, _)| magnitude >= *s)
        .copied()
        .unwrap_or((1e-18, "a"));
    let scaled = value / scale;
    if let Some(precision) = f.precision() {
        write!(f, "{scaled:.precision$} {prefix}{unit}")
    } else {
        write!(f, "{scaled:.3} {prefix}{unit}")
    }
}

macro_rules! unit_type {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: Self = Self(0.0);

            /// Creates a value expressed in base SI units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Raw value in base SI units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 { self } else { other }
            }

            /// Smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 { self } else { other }
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` when the value is finite (not NaN or ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `true` when the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                eng_format(f, self.0, $unit)
            }
        }
    };
}

unit_type!(
    /// A duration in seconds.
    Seconds,
    "s"
);
unit_type!(
    /// An electric potential in volts.
    Volts,
    "V"
);
unit_type!(
    /// A capacitance in farads.
    Farads,
    "F"
);
unit_type!(
    /// A resistance in ohms.
    Ohms,
    "Ω"
);
unit_type!(
    /// An energy in joules.
    Joules,
    "J"
);
unit_type!(
    /// A power in watts.
    Watts,
    "W"
);
unit_type!(
    /// A current in amperes.
    Amps,
    "A"
);
unit_type!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);
unit_type!(
    /// A silicon area in square micrometres.
    ///
    /// Unlike the other units this one is *not* SI-based: layout areas in the
    /// paper are quoted in µm² (the 6T cell is 0.01512 µm²), so µm² is the
    /// base unit here.
    AreaUm2,
    "µm²"
);
unit_type!(
    /// A length in micrometres (layout dimension base unit).
    MicroMeters,
    "µm"
);

impl Seconds {
    /// Creates a duration from picoseconds.
    #[inline]
    pub fn from_ps(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Value in picoseconds.
    #[inline]
    pub fn ps(self) -> f64 {
        self.0 * 1e12
    }

    /// Value in nanoseconds.
    #[inline]
    pub fn ns(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in microseconds.
    #[inline]
    pub fn us(self) -> f64 {
        self.0 * 1e6
    }

    /// The frequency whose period is this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero or negative.
    #[inline]
    pub fn to_frequency(self) -> Hertz {
        assert!(self.0 > 0.0, "period must be positive to form a frequency");
        Hertz(1.0 / self.0)
    }
}

impl Volts {
    /// Creates a potential from millivolts.
    #[inline]
    pub fn from_mv(mv: f64) -> Self {
        Self(mv * 1e-3)
    }

    /// Value in millivolts.
    #[inline]
    pub fn mv(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in volts (alias of [`Volts::value`] for readability).
    #[inline]
    pub fn v(self) -> f64 {
        self.0
    }
}

impl Farads {
    /// Creates a capacitance from femtofarads.
    #[inline]
    pub fn from_ff(ff: f64) -> Self {
        Self(ff * 1e-15)
    }

    /// Creates a capacitance from picofarads.
    #[inline]
    pub fn from_pf(pf: f64) -> Self {
        Self(pf * 1e-12)
    }

    /// Value in femtofarads.
    #[inline]
    pub fn ff(self) -> f64 {
        self.0 * 1e15
    }
}

impl Joules {
    /// Creates an energy from femtojoules.
    #[inline]
    pub fn from_fj(fj: f64) -> Self {
        Self(fj * 1e-15)
    }

    /// Creates an energy from picojoules.
    #[inline]
    pub fn from_pj(pj: f64) -> Self {
        Self(pj * 1e-12)
    }

    /// Creates an energy from nanojoules.
    #[inline]
    pub fn from_nj(nj: f64) -> Self {
        Self(nj * 1e-9)
    }

    /// Value in femtojoules.
    #[inline]
    pub fn fj(self) -> f64 {
        self.0 * 1e15
    }

    /// Value in picojoules.
    #[inline]
    pub fn pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Value in nanojoules.
    #[inline]
    pub fn nj(self) -> f64 {
        self.0 * 1e9
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    #[inline]
    pub fn from_mw(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[inline]
    pub fn from_uw(uw: f64) -> Self {
        Self(uw * 1e-6)
    }

    /// Creates a power from nanowatts.
    #[inline]
    pub fn from_nw(nw: f64) -> Self {
        Self(nw * 1e-9)
    }

    /// Value in milliwatts.
    #[inline]
    pub fn mw(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in microwatts.
    #[inline]
    pub fn uw(self) -> f64 {
        self.0 * 1e6
    }
}

impl Amps {
    /// Creates a current from microamperes.
    #[inline]
    pub fn from_ua(ua: f64) -> Self {
        Self(ua * 1e-6)
    }

    /// Creates a current from nanoamperes.
    #[inline]
    pub fn from_na(na: f64) -> Self {
        Self(na * 1e-9)
    }

    /// Value in microamperes.
    #[inline]
    pub fn ua(self) -> f64 {
        self.0 * 1e6
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Value in megahertz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.0 * 1e-6
    }

    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[inline]
    pub fn to_period(self) -> Seconds {
        assert!(self.0 > 0.0, "frequency must be positive to form a period");
        Seconds(1.0 / self.0)
    }
}

impl MicroMeters {
    /// Creates a length from nanometres.
    #[inline]
    pub fn from_nm(nm: f64) -> Self {
        Self(nm * 1e-3)
    }

    /// Value in nanometres.
    #[inline]
    pub fn nm(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in micrometres (alias of [`MicroMeters::value`]).
    #[inline]
    pub fn um(self) -> f64 {
        self.0
    }
}

// ---- Cross-unit arithmetic -------------------------------------------------

impl Mul<Farads> for Ohms {
    type Output = Seconds;
    /// `Ω × F = s` — an RC time constant.
    #[inline]
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Farads {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Ohms) -> Seconds {
        rhs * self
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    /// `V × A = W`.
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// `W × s = J`.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// `J / s = W`.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    /// `V / A = Ω`.
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

impl Div<Ohms> for Volts {
    type Output = Amps;
    /// `V / Ω = A`.
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

impl Mul<MicroMeters> for MicroMeters {
    type Output = AreaUm2;
    /// `µm × µm = µm²`.
    #[inline]
    fn mul(self, rhs: MicroMeters) -> AreaUm2 {
        AreaUm2(self.0 * rhs.0)
    }
}

/// Switching (dynamic) energy of charging a capacitance `c` through a supply
/// at `v_supply` over a voltage swing `v_swing`: `E = C · V_supply · ΔV`.
///
/// For a full-rail transition (`v_swing == v_supply`) this reduces to the
/// familiar `C·V²`. Limited-swing bitlines (differential sensing) pass the
/// actual developed swing instead.
///
/// # Examples
///
/// ```
/// use esam_tech::units::{dynamic_energy, Farads, Volts};
/// let e = dynamic_energy(Farads::from_ff(10.0), Volts::from_mv(700.0), Volts::from_mv(700.0));
/// assert!((e.fj() - 4.9).abs() < 1e-9); // 10 fF × 0.7 V × 0.7 V
/// ```
#[inline]
pub fn dynamic_energy(c: Farads, v_supply: Volts, v_swing: Volts) -> Joules {
    Joules(c.0 * v_supply.0 * v_swing.0)
}

/// Charge-based energy drawn from a supply `v_supply` when moving charge
/// `q = C·ΔV`: identical to [`dynamic_energy`]; provided for readability at
/// call sites that think in charge.
#[inline]
pub fn charge_energy(c: Farads, v_supply: Volts, delta_v: Volts) -> Joules {
    dynamic_energy(c, v_supply, delta_v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert!((Seconds::from_ns(1.2).ps() - 1200.0).abs() < 1e-9);
        assert!((Volts::from_mv(700.0).v() - 0.7).abs() < 1e-12);
        assert!((Farads::from_ff(5.0).value() - 5e-15).abs() < 1e-27);
        assert!((Joules::from_pj(607.0).nj() - 0.607).abs() < 1e-9);
        assert!((Watts::from_mw(29.0).value() - 0.029).abs() < 1e-12);
        assert!((Hertz::from_mhz(810.0).to_period().ns() - 1.2345679).abs() < 1e-3);
        assert!((MicroMeters::from_nm(174.0).um() - 0.174).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_within_unit() {
        let a = Seconds::from_ns(1.0) + Seconds::from_ns(0.5);
        assert!((a.ns() - 1.5).abs() < 1e-12);
        let b = a - Seconds::from_ns(0.5);
        assert!((b.ns() - 1.0).abs() < 1e-12);
        assert!((2.0 * b).ns() > b.ns());
        assert!(((b / 2.0).ns() - 0.5).abs() < 1e-12);
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cross_unit_arithmetic() {
        let tau: Seconds = Ohms::new(1000.0) * Farads::from_ff(1.0);
        assert!((tau.ps() - 1e-3 * 1000.0).abs() < 1e-9); // 1 kΩ × 1 fF = 1 ps
        let p: Watts = Volts::new(0.7) * Amps::from_ua(10.0);
        assert!((p.uw() - 7.0).abs() < 1e-9);
        let e: Joules = p * Seconds::from_ns(1.0);
        assert!((e.fj() - 7.0).abs() < 1e-9);
        let back: Watts = e / Seconds::from_ns(1.0);
        assert!((back.uw() - 7.0).abs() < 1e-9);
        let r: Ohms = Volts::new(0.7) / Amps::from_ua(70.0);
        assert!((r.value() - 10_000.0).abs() < 1e-6);
        let i: Amps = Volts::new(0.7) / Ohms::new(10_000.0);
        assert!((i.ua() - 70.0).abs() < 1e-9);
        let area: AreaUm2 = MicroMeters::from_nm(174.0) * MicroMeters::from_nm(87.0);
        assert!((area.value() - 0.015138).abs() < 1e-6);
    }

    #[test]
    fn dynamic_energy_full_rail() {
        let e = dynamic_energy(Farads::from_ff(1.0), Volts::new(0.7), Volts::new(0.7));
        assert!((e.fj() - 0.49).abs() < 1e-12);
    }

    #[test]
    fn max_min_abs() {
        let a = Seconds::from_ns(1.0);
        let b = Seconds::from_ns(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((-a).abs(), a);
        assert!(a.is_finite());
        assert!(Seconds::ZERO.is_zero());
    }

    #[test]
    fn sum_iterator() {
        let total: Joules = (0..4).map(|_| Joules::from_pj(1.0)).sum();
        assert!((total.pj() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(format!("{}", Seconds::from_ns(1.23)), "1.230 ns");
        assert_eq!(format!("{}", Joules::from_pj(607.0)), "607.000 pJ");
        assert_eq!(format!("{}", Watts::from_mw(29.0)), "29.000 mW");
        assert_eq!(format!("{:.1}", Hertz::from_mhz(810.0)), "810.0 MHz");
        assert_eq!(format!("{}", Seconds::ZERO), "0 s");
    }

    #[test]
    fn period_frequency_roundtrip() {
        let f = Hertz::from_mhz(810.0);
        let p = f.to_period();
        assert!((p.to_frequency().mhz() - 810.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        Seconds::ZERO.to_frequency();
    }
}
