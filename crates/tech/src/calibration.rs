//! Calibration anchors: every datapoint the paper publishes, in one place.
//!
//! The analytical device/wire models in this crate have free coefficients
//! (drive strengths, wire parasitics, leakage densities). Those coefficients
//! are chosen once, here, so that the model reproduces the datapoints the
//! paper reports from Spectre/Genus on IMEC's 3nm FinFET PDK. Each constant
//! cites the paper location it is anchored to, and `EXPERIMENTS.md` records
//! model-vs-paper for every figure and table.
//!
//! Nothing outside this module hard-codes paper numbers: the experiments are
//! *computed* from the physical models, and the constants below are only used
//! (a) as model inputs (e.g. supply voltages) and (b) as expected values in
//! shape/band assertions.

/// Datapoints quoted verbatim in the paper (for model input and validation).
pub mod paper {
    /// 6T SRAM bitcell area in IMEC 3nm FinFET, §4.2 / ref \[20\].
    pub const CELL_AREA_6T_UM2: f64 = 0.01512;

    /// Cell-area multipliers vs 6T for 1RW, 1RW+1R … 1RW+4R (§4.2).
    pub const CELL_AREA_MULTIPLIERS: [f64; 5] = [1.0, 1.5, 1.875, 2.25, 2.625];

    /// Adding a fifth read port would widen the cell by another 87.5 % of the
    /// 6T area (§4.2), i.e. to 3.5×; the paper rejects it as area-inefficient.
    pub const FIFTH_PORT_EXTRA_AREA_FRACTION: f64 = 0.875;

    /// Nominal supply voltage (Table 1).
    pub const VDD_MV: f64 = 700.0;

    /// Selected precharge voltage for the decoupled single-ended read ports
    /// (Table 1, §4.2: chosen for ≥43 % energy savings at ≤19 % slower access).
    pub const VPRECH_MV: f64 = 500.0;

    /// NBL write-assist validity limit: a required `V_WD < −400 mV` marks the
    /// array size as non-implementable due to low yield (§4.1, ref \[19\]).
    pub const VWD_LIMIT_MV: f64 = -400.0;

    /// Largest valid array dimension under the NBL rule (§4.1).
    pub const MAX_ARRAY_DIM: usize = 128;

    /// Table 2 — Arbiter pipeline-stage duration (ns), incl. slack, for
    /// 1RW, +1R … +4R.
    pub const TABLE2_ARBITER_NS: [f64; 5] = [1.01, 1.01, 1.04, 1.03, 1.01];

    /// Table 2 — SRAM read + Neuron accumulation stage duration (ns).
    pub const TABLE2_SRAM_NEURON_NS: [f64; 5] = [0.69, 1.08, 1.18, 1.14, 1.23];

    /// §3.3 — flat 128-wide 4-port arbiter critical path exceeds this (ps).
    pub const ARBITER_FLAT_CRITICAL_PS: f64 = 1100.0;

    /// §3.3 — tree-structured arbiter critical path is below this (ps).
    pub const ARBITER_TREE_CRITICAL_PS: f64 = 800.0;

    /// §3.3 — area overhead of the tree arbiter over the flat one.
    pub const ARBITER_TREE_AREA_OVERHEAD: f64 = 0.08;

    /// §4.4.1 — row-wise (non-transposable 6T) full-array weight read+write:
    /// 2×128 cycles, 257.8 ns, 157 pJ.
    pub const LEARN_ROWWISE_CYCLES: u64 = 2 * 128;
    /// §4.4.1 row-wise read+write latency (ns).
    pub const LEARN_ROWWISE_NS: f64 = 257.8;
    /// §4.4.1 row-wise read+write energy (pJ).
    pub const LEARN_ROWWISE_PJ: f64 = 157.0;

    /// §4.4.1 — transposed full-column read+write on the 4-port cell:
    /// 2×4 cycles at a 1.2 ns clock.
    pub const LEARN_TRANSPOSED_CYCLES: u64 = 2 * 4;
    /// §4.4.1 transposed-learning clock period (ns); the 4-port cell is the
    /// worst performer on the transposed port.
    pub const LEARN_TRANSPOSED_CLOCK_NS: f64 = 1.2;
    /// §4.4.1 quoted speedup of transposed column access (26.0×), i.e.
    /// 257.8 ns / 26.0 ≈ 9.9 ns.
    pub const LEARN_TIME_GAIN: f64 = 26.0;
    /// §4.4.1 quoted energy gain (19.5×), i.e. 157 pJ / 19.5 ≈ 8.04 pJ.
    /// (The paper prints "8.04 ns"; 157/19.5 = 8.05 pJ shows the unit is pJ.)
    pub const LEARN_ENERGY_GAIN: f64 = 19.5;

    /// §4.2 / Fig. 7 — lowering Vprech 700→500 mV saves at least this energy
    /// fraction…
    pub const VPRECH_500_ENERGY_SAVING_MIN: f64 = 0.43;
    /// …at the cost of at most this access-time increase.
    pub const VPRECH_500_TIME_PENALTY_MAX: f64 = 0.19;

    /// Network topology used for the system evaluation (§4.4.2).
    pub const NETWORK_TOPOLOGY: [usize; 5] = [768, 256, 256, 256, 10];

    /// §4.4.2 — reported Binary-SNN MNIST accuracy (%).
    pub const MNIST_ACCURACY_PERCENT: f64 = 97.64;

    /// Table 3 — "This Work" system figures (1RW+4R cells).
    pub const SYSTEM_CLOCK_MHZ: f64 = 810.0;
    /// Table 3 — throughput (inferences per second).
    pub const SYSTEM_THROUGHPUT_INF_S: f64 = 44.0e6;
    /// Table 3 — energy per inference (pJ).
    pub const SYSTEM_ENERGY_PER_INF_PJ: f64 = 607.0;
    /// Table 3 — total power (mW).
    pub const SYSTEM_POWER_MW: f64 = 29.0;
    /// Table 3 — neuron count (256+256+256+10).
    pub const SYSTEM_NEURON_COUNT: usize = 778;
    /// Table 3 — synapse count (768·256 + 256·256 + 256·256 + 256·10).
    pub const SYSTEM_SYNAPSE_COUNT: usize = 330_240;

    /// Abstract/§4.4.2 — speedup of the multiport design vs single-port.
    pub const HEADLINE_SPEEDUP: f64 = 3.1;
    /// Abstract/§4.4.2 — energy-efficiency gain vs single-port.
    pub const HEADLINE_ENERGY_GAIN: f64 = 2.2;

    /// Fig. 8 — area of the 1RW+4R system relative to the 1RW system.
    pub const SYSTEM_AREA_RATIO_4R: f64 = 2.4;
}

/// Free model coefficients, fitted to the anchors in [`paper`].
///
/// These describe the *technology*, not the experiments: they are consumed by
/// the FinFET, wire, sense-amplifier and leakage models, which in turn produce
/// the figure/table values. Fitting was done by matching §4.4.1 (row-wise
/// 257.8 ns / 157 pJ and transposed 9.9 ns / 8.04 pJ), Table 2 stage times,
/// and the Table 3 system figures.
pub mod fitted {
    /// NMOS per-fin on-current coefficient `k` of the alpha-power model
    /// `I_on = k · fins · (V_GS − V_th)^α` (A/V^α). Chosen so an LVT fin at
    /// `V_GS = 700 mV` drives ≈ 45 µA — representative of published
    /// 3nm-class FinFET/nanosheet drive currents.
    pub const NMOS_K_PER_FIN: f64 = 109e-6;

    /// PMOS drive relative to NMOS (hole mobility penalty).
    pub const PMOS_DRIVE_RATIO: f64 = 0.78;

    /// Alpha-power-law velocity-saturation exponent for 3nm FinFET.
    pub const ALPHA: f64 = 1.35;

    /// Gate capacitance per fin (F), including Miller overlap.
    pub const GATE_CAP_PER_FIN: f64 = 0.12e-15;

    /// Source/drain junction + contact capacitance per fin (F).
    pub const DRAIN_CAP_PER_FIN: f64 = 0.055e-15;

    /// Sub-threshold leakage per fin at 700 mV, 25 °C, by Vt flavor
    /// (A): [LVT, SVT, HVT].
    pub const LEAK_PER_FIN: [f64; 3] = [2.2e-9, 0.50e-9, 0.10e-9];

    /// Standard-width local-interconnect (M0/M1) sheet resistance per µm (Ω).
    /// 3nm metals are resistance-dominated (refs \[19\], \[21\]).
    pub const WIRE_R_PER_UM_STD: f64 = 300.0;

    /// Wire capacitance per µm (F) at standard width.
    pub const WIRE_C_PER_UM_STD: f64 = 0.19e-15;

    /// Resistance penalty of the narrowed wordline in multiport cells
    /// (§4.2: the WL must shrink so RBL0–RBL3 fit in the same metal layer).
    pub const NARROW_WIRE_R_FACTOR: f64 = 2.2;

    /// Capacitance change of the narrowed wire (less sidewall area).
    pub const NARROW_WIRE_C_FACTOR: f64 = 0.88;

    /// σ of cell read-current mismatch as a fraction of nominal; the paper
    /// evaluates the worst-case ±3σ cell (Table 1).
    pub const CELL_CURRENT_SIGMA: f64 = 0.08;

    /// Differential sense-amplifier input swing required on BL/BLB (V).
    pub const DIFF_SA_SWING: f64 = 0.11;

    /// Differential SA resolve delay (s).
    pub const DIFF_SA_DELAY: f64 = 32e-12;

    /// Switching threshold of the cascaded-inverter sense amplifier (V).
    /// The sensing margin `V_prech − INV_SA_VT` shrinks as the precharge
    /// rail is lowered, which slows the resolve and raises crossover
    /// current — the Fig. 7 trade-off.
    pub const INV_SA_VT: f64 = 0.28;

    /// Cascaded-inverter SA resolve delay at the nominal 500 mV rail (s);
    /// scales with the inverse sensing margin raised to
    /// [`INV_SA_DELAY_MARGIN_EXP`]. Slower than the differential SA, as
    /// §3.2 states.
    pub const INV_SA_DELAY_AT_500MV: f64 = 280e-12;

    /// Margin exponent of the inverter-SA resolve delay (sub-linear: the
    /// later chain stages regenerate).
    pub const INV_SA_DELAY_MARGIN_EXP: f64 = 0.6;

    /// Crossover (short-circuit) power of one inverter SA while its input
    /// traverses the transition region, at the 500 mV rail (W); scales with
    /// the inverse *square* of the sensing margin — negligible at 700 mV,
    /// dominant at 400 mV, which is what turns the lowest rail
    /// counter-productive for the 3–4-port cells (Fig. 7).
    pub const INV_SA_SC_POWER_AT_500MV: f64 = 0.20e-6;

    /// Effective RBL swing used for discharge timing (V). In the triode
    /// region the cell current scales with the drain voltage, making the
    /// discharge time nearly independent of the precharge rail; the
    /// constant-swing model captures that.
    pub const RBL_TIMING_SWING: f64 = 0.25;

    /// Ratioed trip point of the Vprech-supplied inverter chain: the RBL
    /// falls to half the rail before the restore, so the restore energy is
    /// `C · V_prech · (V_prech/2)`.
    pub const RBL_RESTORE_SWING_FRACTION: f64 = 0.5;

    /// Energy per sense-amplifier fire (J), differential.
    pub const DIFF_SA_ENERGY: f64 = 0.8e-15;

    /// Energy per sense-amplifier evaluation (J), cascaded inverter.
    pub const INV_SA_ENERGY: f64 = 0.55e-15;

    /// Wordline driver effective resistance (Ω) — a multi-stage buffer
    /// sized for the 128-cell load.
    pub const WL_DRIVER_RES: f64 = 1_200.0;

    /// Precharge PMOS conductance coefficient: effective resistance is
    /// `PRECHARGE_R0_OHM_V2 / (V_ov · min(V_ov, PRECHARGE_VSAT))` (Ω·V²) — a
    /// square-law device that velocity-saturates at high overdrive. The
    /// 700→500 mV slowdown is modest, but at 400 mV the overdrive collapses
    /// quadratically (§4.2: "power savings at the cost of slower
    /// precharging"; Fig. 7's 400 mV pathology).
    pub const PRECHARGE_R0_OHM_V2: f64 = 322.0;

    /// Overdrive at which the precharge device velocity-saturates (V).
    pub const PRECHARGE_VSAT: f64 = 0.30;

    /// PMOS threshold magnitude used for the precharge overdrive (V).
    pub const PRECHARGE_VTP: f64 = 0.22;

    /// Write-driver effective resistance (Ω), including the NBL kick circuit.
    pub const WRITE_DRIVER_RES: f64 = 1_900.0;

    /// Cell internal flip time at nominal conditions (s) — latch regeneration
    /// after the bitline differential is established.
    pub const CELL_FLIP_TIME: f64 = 55e-12;

    /// Fraction of a clock cycle consumed by launch/setup margins when a
    /// synthesized stage is reported "including slack" (Table 2).
    pub const STAGE_SLACK_FRACTION: f64 = 0.08;

    /// Clock-tree + pipeline-register energy per tile-cycle per neuron
    /// column (J). Dominates the per-cycle energy floor that makes
    /// energy/inference drop with added ports (Fig. 8 discussion).
    pub const CLOCK_ENERGY_PER_COLUMN_CYCLE: f64 = 0.9e-15;

    /// Arbiter dynamic energy per granted spike (J).
    pub const ARBITER_ENERGY_PER_GRANT: f64 = 2.4e-15;

    /// Arbiter static/idle energy per cycle per 128-wide unit (J).
    pub const ARBITER_ENERGY_PER_CYCLE: f64 = 9.0e-15;

    /// Neuron accumulate energy per valid port bit (J) — decode + adder slice.
    pub const NEURON_ACCUM_ENERGY_PER_BIT: f64 = 0.62e-15;

    /// Neuron fire/compare energy per neuron per timestep (J).
    pub const NEURON_FIRE_ENERGY: f64 = 2.0e-15;

    /// Per-subblock delay of the fixed-priority encoder chain (s); the flat
    /// 128-wide 4-port arbiter must exceed 1100 ps (§3.3).
    pub const PE_SUBBLOCK_DELAY: f64 = 7.6e-12;

    /// Fixed overhead of one priority-encoder stage (s): input buffering and
    /// grant re-encode.
    pub const PE_STAGE_OVERHEAD: f64 = 58e-12;

    /// Delay of the `R' = R & !G` masking between cascaded 1-port arbiters (s).
    pub const CASCADE_MASK_DELAY: f64 = 26e-12;

    /// OR-reduction of a base group's requests feeding the higher-level
    /// encoder of the tree arbiter (s).
    pub const PE_OR_REDUCE_DELAY: f64 = 80e-12;

    /// Broadcast of the higher-level selection back down to the base
    /// encoders (s).
    pub const PE_BROADCAST_DELAY: f64 = 320e-12;

    /// Per-grant qualification AND of base grants with the group select (s).
    pub const PE_QUALIFY_DELAY: f64 = 37e-12;

    /// Pipeline register overhead (clk→Q plus setup) of the arbiter stage (s).
    pub const ARBITER_REGISTER_OVERHEAD: f64 = 180e-12;

    /// Priority-encoder subblock area (µm²) — used for the 8 % tree overhead.
    pub const PE_SUBBLOCK_AREA_UM2: f64 = 0.14;

    /// Mask/glue logic area as a fraction of subblock area (flat arbiter).
    pub const ARBITER_GLUE_AREA_FRACTION: f64 = 0.05;

    /// Additional qualification-gate area fraction of the tree arbiter,
    /// fitted so the 128-wide 4-port tree costs 8.0 % over flat (§3.3).
    pub const TREE_GLUE_AREA_FRACTION: f64 = 0.0165;

    /// Neuron adder stage delay (s) per stage of the small accumulation tree.
    pub const NEURON_ADD_STAGE_DELAY: f64 = 34e-12;

    /// Neuron Vmem-register + threshold-compare delay (s).
    pub const NEURON_COMPARE_DELAY: f64 = 88e-12;

    /// Area of one neuron datapath (µm²): adder tree, m-bit Vmem register,
    /// t-bit Vth register, compare (synthesized estimate).
    pub const NEURON_AREA_UM2: f64 = 1.9;

    /// Periphery area fraction of an SRAM macro relative to its cell array
    /// (decoders, precharge, SAs, write drivers, mux).
    pub const MACRO_PERIPHERY_AREA_FRACTION: f64 = 0.16;

    /// Average fins per transistor in the bitcell (pull-down 1, access 1,
    /// pull-up 1 at 3nm cell design points).
    pub const BITCELL_FINS_PER_TRANSISTOR: f64 = 1.0;

    /// Periphery leakage as a fraction of array leakage.
    pub const PERIPHERY_LEAK_FRACTION: f64 = 0.45;

    /// Row-wise learning baseline: energy overhead factor covering decoder,
    /// clocking and write-verify contributions on top of raw bitline energy;
    /// fitted to the 157 pJ anchor.
    pub const LEARN_ROWWISE_OVERHEAD: f64 = 1.0;

    /// Series-stack degradation of the 6T pass-gate/pull-down read path
    /// relative to a single device.
    pub const RW_READ_STACK_FACTOR: f64 = 0.75;

    /// Series-stack degradation of the decoupled M7–M8 read path; the
    /// mirror device M7 is minimum-size in the dense multiport layout.
    pub const DECOUPLED_READ_STACK_FACTOR: f64 = 0.62;

    /// Row/column decoder + wordline-driver chain delay ahead of the WL (s).
    pub const WL_DECODE_DELAY: f64 = 40e-12;

    /// Extra delay of the 4:1 row mux pass gate in the transposed path (s).
    pub const MUX_PASS_DELAY: f64 = 40e-12;

    /// Settling time of the negative-bitline kick during a write (s).
    pub const NBL_KICK_TIME: f64 = 80e-12;

    /// Charge-pump inefficiency of the NBL kick: the below-ground excursion
    /// costs `PUMP × C·(2·V_DD·|V_WD| + V_WD²)` on top of the rail-to-rail
    /// `C·V_DD²`.
    pub const NBL_PUMP_FACTOR: f64 = 0.5;

    /// Per-cell bitline contact/via capacitance (F) on top of the junction
    /// capacitance.
    pub const BITLINE_CONTACT_CAP: f64 = 0.015e-15;

    /// Address decode + control energy per array access (J).
    pub const DECODE_ENERGY_PER_ACCESS: f64 = 8.0e-15;

    /// Internal latch-flip energy per written cell (J).
    pub const CELL_FLIP_ENERGY: f64 = 0.5e-15;

    /// Fraction of VDD swing developed on half-selected BL pairs during a
    /// row-muxed transposed write: the open WL lets the 96 unselected cells
    /// of the column fight their floating bitlines.
    pub const HALF_SELECT_SWING_FRACTION: f64 = 0.7;

    /// Pipeline register overhead (clk→Q + setup + clock uncertainty) of the
    /// SRAM-read + neuron stage (s).
    pub const PIPELINE_REGISTER_OVERHEAD: f64 = 150e-12;

    /// Wordline pulse width of a differential (RW-port) read (s). While the
    /// pulse is open every accessed cell statically drives its bitline pair
    /// — the limited-swing clamp does not stop the cell current — so each
    /// pair burns `I_cell · V_DD · t_pulse` of DC energy per read. The
    /// decoupled single-ended ports do not pay this: their RBL stops drawing
    /// once discharged.
    pub const RW_WL_PULSE_WIDTH: f64 = 0.2e-9;

    /// System control + clock-tree energy per neuron column per active tile
    /// cycle (J). Fitted to the Table 3 / Fig. 8 system anchors: this bucket
    /// carries the synthesized control FSM, clock tree and inter-tile fabric
    /// that the paper's Genus-based system numbers include.
    pub const CONTROL_ENERGY_PER_COLUMN_CYCLE: f64 = 17.1e-15;

    /// Pipeline-register + per-port datapath energy per port-bit per active
    /// tile cycle (J): sensed-data latch, validity gating, ±1 decode and
    /// adder slice. Fitted jointly with
    /// [`CONTROL_ENERGY_PER_COLUMN_CYCLE`] to the 607 pJ / 1335 pJ
    /// (2.2× gain) system anchors.
    pub const PIPE_ENERGY_PER_PORT_BIT_CYCLE: f64 = 5.05e-15;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_consistency() {
        // Energy/Inf × throughput must reproduce (most of) the quoted power.
        let dynamic_mw =
            paper::SYSTEM_ENERGY_PER_INF_PJ * 1e-12 * paper::SYSTEM_THROUGHPUT_INF_S * 1e3;
        assert!(
            dynamic_mw < paper::SYSTEM_POWER_MW,
            "dynamic power {dynamic_mw} mW must leave headroom for leakage below 29 mW"
        );
        assert!(dynamic_mw > 0.8 * paper::SYSTEM_POWER_MW);
    }

    #[test]
    fn synapse_count_matches_topology() {
        let t = paper::NETWORK_TOPOLOGY;
        let synapses: usize = t.windows(2).map(|w| w[0] * w[1]).sum();
        assert_eq!(synapses, paper::SYSTEM_SYNAPSE_COUNT);
        let neurons: usize = t[1..].iter().sum();
        assert_eq!(neurons, paper::SYSTEM_NEURON_COUNT);
    }

    #[test]
    fn learning_anchors_are_self_consistent() {
        // 257.8 ns over 256 cycles ⇒ ~1.007 ns clock — the Table 2 1RW period.
        let clock_ns = paper::LEARN_ROWWISE_NS / paper::LEARN_ROWWISE_CYCLES as f64;
        assert!((clock_ns - paper::TABLE2_ARBITER_NS[0]).abs() < 0.01);
        // 2×4 cycles at 1.2 ns ≈ 9.6 ns ≈ 257.8/26.0.
        let transposed_ns =
            paper::LEARN_TRANSPOSED_CYCLES as f64 * paper::LEARN_TRANSPOSED_CLOCK_NS;
        let quoted = paper::LEARN_ROWWISE_NS / paper::LEARN_TIME_GAIN;
        assert!((transposed_ns - quoted).abs() / quoted < 0.05);
    }

    #[test]
    fn area_multipliers_are_monotone() {
        let m = paper::CELL_AREA_MULTIPLIERS;
        assert!(m.windows(2).all(|w| w[1] > w[0]));
        // The rejected 5th port lands at 2.625 + 0.875 = 3.5×.
        assert!((m[4] + paper::FIFTH_PORT_EXTRA_AREA_FRACTION - 3.5).abs() < 1e-12);
    }
}
