//! Dynamic voltage/frequency scaling and Vt-flavor corners.
//!
//! Table 3's closing note: *"For applications that have lower throughput
//! demands, a lower VDD, lower clock frequency, and HVT transistors can be
//! utilized to significantly reduce power consumption, while maintaining
//! similar energy/Inference."* This module makes that claim quantitative:
//!
//! * achievable clock frequency follows the alpha-power law,
//!   `f ∝ (V − V_t)^α / V`;
//! * dynamic power scales as `C·V²·f`;
//! * leakage power scales with the flavor's per-fin leakage and the rail.
//!
//! The `corners` experiment in `esam-bench` projects the paper's 4R system
//! across these corners.

use crate::calibration::{fitted, paper};
use crate::finfet::VtFlavor;
use crate::units::{Hertz, Volts};

/// An operating corner: supply voltage plus logic Vt flavor.
///
/// # Examples
///
/// ```
/// use esam_tech::dvfs::OperatingPoint;
/// use esam_tech::finfet::VtFlavor;
/// use esam_tech::units::Volts;
///
/// let nominal = OperatingPoint::nominal();
/// let eco = OperatingPoint::new(Volts::from_mv(500.0), VtFlavor::Hvt);
/// // The slow corner trades clock for a large power saving.
/// assert!(eco.frequency_scale(&nominal) < 0.5);
/// assert!(eco.dynamic_power_scale(&nominal) < 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    vdd: Volts,
    flavor: VtFlavor,
}

impl OperatingPoint {
    /// Creates a corner.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd` leaves at least 50 mV of overdrive above the
    /// flavor's threshold — below that the alpha-power model (and the
    /// silicon) stops switching.
    pub fn new(vdd: Volts, flavor: VtFlavor) -> Self {
        assert!(
            vdd.v() >= flavor.threshold().v() + 0.05,
            "V_DD {vdd} leaves no overdrive above {flavor} threshold {}",
            flavor.threshold()
        );
        Self { vdd, flavor }
    }

    /// The paper's operating point: 700 mV, standard-Vt logic.
    pub fn nominal() -> Self {
        Self {
            vdd: Volts::from_mv(paper::VDD_MV),
            flavor: VtFlavor::Svt,
        }
    }

    /// Supply voltage.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Logic Vt flavor.
    pub fn flavor(&self) -> VtFlavor {
        self.flavor
    }

    /// Alpha-power-law drive factor `(V − V_t)^α / V` (arbitrary units,
    /// meaningful only as a ratio between corners).
    fn drive(&self) -> f64 {
        let overdrive = self.vdd.v() - self.flavor.threshold().v();
        overdrive.powf(fitted::ALPHA) / self.vdd.v()
    }

    /// Achievable clock relative to `reference` (1.0 = same speed).
    pub fn frequency_scale(&self, reference: &OperatingPoint) -> f64 {
        self.drive() / reference.drive()
    }

    /// Achievable clock at this corner given the clock `reference_clock`
    /// closed at the `reference` corner.
    pub fn max_clock(&self, reference: &OperatingPoint, reference_clock: Hertz) -> Hertz {
        reference_clock * self.frequency_scale(reference)
    }

    /// Dynamic power relative to `reference` when running at each corner's
    /// own maximum clock: `C·V²·f` with C fixed.
    pub fn dynamic_power_scale(&self, reference: &OperatingPoint) -> f64 {
        let v = self.vdd.v() / reference.vdd.v();
        v * v * self.frequency_scale(reference)
    }

    /// Dynamic energy per operation relative to `reference` (`C·V²`,
    /// clock-independent — the reason energy/inference survives DVFS).
    pub fn energy_scale(&self, reference: &OperatingPoint) -> f64 {
        let v = self.vdd.v() / reference.vdd.v();
        v * v
    }

    /// Leakage power relative to `reference`: per-fin leakage ratio of the
    /// flavors times the rail ratio (subthreshold current is
    /// first-order rail-independent; power is `I·V`).
    pub fn leakage_power_scale(&self, reference: &OperatingPoint) -> f64 {
        let leak = |f: VtFlavor| fitted::LEAK_PER_FIN[leak_index(f)];
        (leak(self.flavor) / leak(reference.flavor)) * (self.vdd.v() / reference.vdd.v())
    }
}

fn leak_index(flavor: VtFlavor) -> usize {
    match flavor {
        VtFlavor::Lvt => 0,
        VtFlavor::Svt => 1,
        VtFlavor::Hvt => 2,
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scales_to_unity() {
        let nominal = OperatingPoint::nominal();
        assert!((nominal.frequency_scale(&nominal) - 1.0).abs() < 1e-12);
        assert!((nominal.dynamic_power_scale(&nominal) - 1.0).abs() < 1e-12);
        assert!((nominal.energy_scale(&nominal) - 1.0).abs() < 1e-12);
        assert!((nominal.leakage_power_scale(&nominal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_vdd_is_slower_and_cheaper() {
        let nominal = OperatingPoint::nominal();
        let low = OperatingPoint::new(Volts::from_mv(500.0), VtFlavor::Svt);
        assert!(low.frequency_scale(&nominal) < 1.0);
        assert!(low.dynamic_power_scale(&nominal) < low.frequency_scale(&nominal));
        assert!(low.energy_scale(&nominal) < 1.0);
    }

    #[test]
    fn hvt_cuts_leakage_by_an_order_of_magnitude() {
        let nominal = OperatingPoint::nominal();
        let hvt = OperatingPoint::new(nominal.vdd(), VtFlavor::Hvt);
        let scale = hvt.leakage_power_scale(&nominal);
        assert!(scale < 0.3, "HVT leakage scale {scale}");
        // ...while costing speed.
        assert!(hvt.frequency_scale(&nominal) < 1.0);
    }

    #[test]
    fn energy_per_op_is_frequency_independent() {
        // Same V and flavor at an (implicitly) lower clock: energy scale
        // depends only on V².
        let nominal = OperatingPoint::nominal();
        let same = OperatingPoint::new(nominal.vdd(), VtFlavor::Svt);
        assert!((same.energy_scale(&nominal) - 1.0).abs() < 1e-12);
        let low = OperatingPoint::new(Volts::from_mv(490.0), VtFlavor::Svt);
        let expect = (0.49f64 / nominal.vdd().v()).powi(2);
        assert!((low.energy_scale(&nominal) - expect).abs() < 1e-9);
    }

    #[test]
    fn table3_note_holds_quantitatively() {
        // The paper's escape hatch: 500 mV + HVT should cut total power by
        // several× while keeping energy/inference within ~2× (it actually
        // *improves* energy thanks to V²).
        let nominal = OperatingPoint::nominal();
        let eco = OperatingPoint::new(Volts::from_mv(500.0), VtFlavor::Hvt);
        let power = eco.dynamic_power_scale(&nominal);
        let energy = eco.energy_scale(&nominal);
        assert!(
            power < 0.25,
            "eco dynamic power scale {power} (want ≥4× cut)"
        );
        assert!(energy < 1.0, "eco energy scale {energy}");
        assert!(eco.frequency_scale(&nominal) > 0.02, "still usable clock");
    }

    #[test]
    fn max_clock_applies_the_scale() {
        let nominal = OperatingPoint::nominal();
        let low = OperatingPoint::new(Volts::from_mv(600.0), VtFlavor::Svt);
        let clock = low.max_clock(&nominal, Hertz::from_mhz(810.0));
        assert!(clock.mhz() < 810.0);
        assert!(clock.mhz() > 100.0);
    }

    #[test]
    #[should_panic(expected = "no overdrive")]
    fn sub_threshold_corner_is_rejected() {
        let _ = OperatingPoint::new(Volts::from_mv(300.0), VtFlavor::Hvt);
    }
}
