//! Negative-Bitline (NBL) write-assist model.
//!
//! Writing an SRAM cell at resistance-dominated nodes needs help: the write
//! driver under-drives the complementary bitline to a voltage `V_WD < V_SS`
//! to force the cell to flip (§4.1, ref \[19\]). How deep `V_WD` must go grows
//! with the bitline parasitics — more cells on the line and wider (multiport)
//! cells both hurt. A required `V_WD` below −400 mV marks the array size as
//! non-implementable for yield reasons; this is what restricts ESAM arrays
//! to ≤128 rows and columns.
//!
//! The model is quadratic in electrical bitline length (IR drop across a
//! distributed RC grows superlinearly) with a linear term for the extra
//! internal-node loading of multiport cells:
//!
//! ```text
//! |V_WD| = a · n̂ · (1 + b·(mult − 1)) + c · n̂²      with n̂ = cells/128
//! ```
//!
//! # Examples
//!
//! ```
//! use esam_tech::nbl::NblModel;
//!
//! let nbl = NblModel::paper_default();
//! // A 128-cell bitline of 6T cells needs a mild assist...
//! let v = nbl.required_assist(128, 1.0).unwrap();
//! assert!(v.mv() < 0.0 && v.mv() > -400.0);
//! // ...but 256 cells violate the −400 mV yield limit.
//! assert!(nbl.required_assist(256, 1.0).is_err());
//! ```

use std::fmt;

use crate::calibration::paper;
use crate::units::Volts;

/// Error returned when an array size cannot be written reliably.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteMarginError {
    required: Volts,
    limit: Volts,
    cells_on_bitline: usize,
    width_multiplier: f64,
}

impl WriteMarginError {
    /// The assist voltage the configuration would need.
    pub fn required(&self) -> Volts {
        self.required
    }

    /// The yield limit it violates.
    pub fn limit(&self) -> Volts {
        self.limit
    }
}

impl fmt::Display for WriteMarginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write margin violation: {} cells on bitline at {:.3}x width need V_WD = {:.1} mV, below the {:.0} mV yield limit",
            self.cells_on_bitline,
            self.width_multiplier,
            self.required.mv(),
            self.limit.mv()
        )
    }
}

impl std::error::Error for WriteMarginError {}

/// Negative-bitline assist requirement model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NblModel {
    linear_mv: f64,
    width_coupling: f64,
    quadratic_mv: f64,
    limit: Volts,
}

impl NblModel {
    /// Builds a model from raw coefficients (millivolts at the 128-cell
    /// reference length).
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or the limit is positive.
    pub fn new(linear_mv: f64, width_coupling: f64, quadratic_mv: f64, limit: Volts) -> Self {
        assert!(linear_mv >= 0.0 && width_coupling >= 0.0 && quadratic_mv >= 0.0);
        assert!(limit.mv() < 0.0, "the yield limit is a negative voltage");
        Self {
            linear_mv,
            width_coupling,
            quadratic_mv,
            limit,
        }
    }

    /// Coefficients fitted to the paper's constraints: 128-cell lines are
    /// valid for every cell type (6T needs a mild assist, the 4-port cell a
    /// deep but legal one), while 256-cell lines fail for all of them.
    pub fn paper_default() -> Self {
        Self::new(30.0, 3.2, 90.0, Volts::from_mv(paper::VWD_LIMIT_MV))
    }

    /// Required assist voltage (negative) for `cells_on_bitline` cells of
    /// relative width `width_multiplier` sharing one write bitline.
    ///
    /// # Errors
    ///
    /// Returns [`WriteMarginError`] when the requirement is below the yield
    /// limit (§4.1: such array sizes are considered non-valid).
    ///
    /// # Panics
    ///
    /// Panics if `cells_on_bitline == 0` or `width_multiplier < 1.0`.
    pub fn required_assist(
        &self,
        cells_on_bitline: usize,
        width_multiplier: f64,
    ) -> Result<Volts, WriteMarginError> {
        assert!(cells_on_bitline > 0, "a bitline carries at least one cell");
        assert!(
            width_multiplier >= 1.0,
            "width multiplier is relative to the 6T cell (≥ 1.0)"
        );
        let n_hat = cells_on_bitline as f64 / 128.0;
        let magnitude_mv =
            self.linear_mv * n_hat * (1.0 + self.width_coupling * (width_multiplier - 1.0))
                + self.quadratic_mv * n_hat * n_hat;
        let required = Volts::from_mv(-magnitude_mv);
        if required < self.limit {
            Err(WriteMarginError {
                required,
                limit: self.limit,
                cells_on_bitline,
                width_multiplier,
            })
        } else {
            Ok(required)
        }
    }

    /// The yield limit (−400 mV in the paper).
    pub fn limit(&self) -> Volts {
        self.limit
    }

    /// Per-cell write-failure probability given the assist headroom.
    ///
    /// The −400 mV rule is a proxy for yield \[19\]: the deeper the required
    /// `V_WD` sits below the limit the less margin remains against local
    /// write-margin variation. We model the cell-to-cell write margin as
    /// Gaussian with `WRITE_MARGIN_SIGMA_MV` of σ; a cell fails when
    /// variation eats the whole headroom. Returns a probability in `[0, 1]`.
    pub fn cell_write_failure_probability(
        &self,
        cells_on_bitline: usize,
        width_multiplier: f64,
    ) -> f64 {
        let headroom_mv = match self.required_assist(cells_on_bitline, width_multiplier) {
            Ok(v) => v.mv() - self.limit.mv(),             // positive headroom
            Err(e) => e.required().mv() - self.limit.mv(), // negative
        };
        gaussian_tail(headroom_mv / WRITE_MARGIN_SIGMA_MV)
    }

    /// Expected yield of a full `rows × cols` array: every cell must write.
    pub fn array_yield(&self, rows: usize, cols: usize, width_multiplier: f64) -> f64 {
        let cells_on_bitline = cols.max(rows); // conservative: the longer dim
        let p_fail = self.cell_write_failure_probability(cells_on_bitline, width_multiplier);
        (1.0 - p_fail).powi((rows * cols) as i32).max(0.0)
    }

    /// Largest bitline length (cells) that stays within the yield limit for
    /// a given cell width.
    pub fn max_valid_cells(&self, width_multiplier: f64) -> usize {
        let mut lo = 1usize;
        let mut hi = 4096usize;
        while self.required_assist(hi, width_multiplier).is_ok() {
            hi *= 2;
        }
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.required_assist(mid, width_multiplier).is_ok() {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

impl Default for NblModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// σ of local write-margin variation (mV), referred to the assist voltage.
const WRITE_MARGIN_SIGMA_MV: f64 = 22.0;

/// Upper-tail probability `P(X > x)` of a standard normal, via the
/// Abramowitz–Stegun complementary-error-function approximation (7.1.26) —
/// accurate to ~1.5e-7, ample for yield estimates.
fn gaussian_tail(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - gaussian_tail(-x);
    }
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    0.5 * poly * (-z * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::paper::CELL_AREA_MULTIPLIERS;

    #[test]
    fn all_cell_types_valid_at_128() {
        let nbl = NblModel::paper_default();
        for &mult in &CELL_AREA_MULTIPLIERS {
            let v = nbl
                .required_assist(128, mult)
                .unwrap_or_else(|e| panic!("128 cells at {mult}x must be valid: {e}"));
            assert!(v.mv() <= 0.0);
        }
    }

    #[test]
    fn no_cell_type_valid_at_256() {
        let nbl = NblModel::paper_default();
        for &mult in &CELL_AREA_MULTIPLIERS {
            assert!(
                nbl.required_assist(256, mult).is_err(),
                "256 cells at {mult}x must violate the yield limit"
            );
        }
    }

    #[test]
    fn deeper_assist_for_wider_cells() {
        let nbl = NblModel::paper_default();
        let v6t = nbl.required_assist(128, 1.0).unwrap();
        let v4r = nbl.required_assist(128, 2.625).unwrap();
        assert!(v4r < v6t, "multiport cells need a deeper V_WD");
    }

    #[test]
    fn deeper_assist_for_longer_bitlines() {
        let nbl = NblModel::paper_default();
        let short = nbl.required_assist(64, 1.0).unwrap();
        let long = nbl.required_assist(128, 1.0).unwrap();
        assert!(long < short);
    }

    #[test]
    fn max_valid_cells_is_128_class() {
        let nbl = NblModel::paper_default();
        let max_6t = nbl.max_valid_cells(1.0);
        assert!(
            (128..256).contains(&max_6t),
            "6T max bitline {max_6t} should sit between 128 and 256"
        );
        let max_4r = nbl.max_valid_cells(2.625);
        assert!(max_4r >= 128, "the paper implements 128-cell 4R arrays");
        assert!(max_4r < max_6t, "wider cells cap out earlier");
    }

    #[test]
    fn error_is_informative() {
        let nbl = NblModel::paper_default();
        let err = nbl.required_assist(512, 2.625).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("write margin violation"));
        assert!(err.required() < err.limit());
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        NblModel::paper_default().required_assist(0, 1.0).ok();
    }

    #[test]
    fn gaussian_tail_sanity() {
        assert!((gaussian_tail(0.0) - 0.5).abs() < 1e-6);
        assert!((gaussian_tail(1.0) - 0.158655).abs() < 1e-4);
        assert!((gaussian_tail(-1.0) - 0.841345).abs() < 1e-4);
        assert!(gaussian_tail(6.0) < 1e-8);
    }

    #[test]
    fn yield_is_high_inside_the_limit_and_collapses_outside() {
        let nbl = NblModel::paper_default();
        // The paper's 128×128 arrays: near-perfect yield for every cell.
        for &mult in &CELL_AREA_MULTIPLIERS {
            let y = nbl.array_yield(128, 128, mult);
            assert!(y > 0.95, "128x128 at {mult}x: yield {y}");
        }
        // Slightly past the 4R validity boundary the yield collapses —
        // exactly why the −400 mV rule exists.
        let boundary = nbl.max_valid_cells(2.625);
        let just_past = nbl.array_yield(128, boundary + 24, 2.625);
        assert!(just_past < 0.5, "yield past the limit: {just_past}");
        // And it is monotone in array size.
        assert!(nbl.array_yield(128, 128, 2.625) > nbl.array_yield(128, boundary, 2.625));
    }

    #[test]
    fn failure_probability_grows_with_loading() {
        let nbl = NblModel::paper_default();
        let p128 = nbl.cell_write_failure_probability(128, 2.625);
        let p192 = nbl.cell_write_failure_probability(192, 2.625);
        assert!(p192 > p128);
        assert!(p128 < 1e-6, "inside the limit failures are rare: {p128}");
    }

    #[test]
    #[should_panic(expected = "width multiplier")]
    fn sub_unity_width_panics() {
        NblModel::paper_default().required_assist(128, 0.5).ok();
    }
}
