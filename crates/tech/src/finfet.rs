//! Analytical 3nm FinFET device model.
//!
//! The paper characterizes its circuits with Cadence Spectre on IMEC's 3nm
//! FinFET PDK (Table 1). We replace the PDK with an alpha-power-law
//! transistor model — the standard analytical abstraction for
//! velocity-saturated short-channel devices:
//!
//! ```text
//! I_on = k · n_fins · (V_GS − V_th)^α
//! ```
//!
//! Together with per-fin gate/drain capacitances and per-fin sub-threshold
//! leakage this is enough to derive every delay and energy the paper's
//! figures need. Coefficients are documented in
//! [`calibration::fitted`](crate::calibration::fitted).
//!
//! # Examples
//!
//! ```
//! use esam_tech::finfet::{FinFet, Polarity, VtFlavor};
//! use esam_tech::units::Volts;
//!
//! let pull_down = FinFet::new(Polarity::Nmos, VtFlavor::Lvt, 1);
//! let i = pull_down.on_current(Volts::from_mv(700.0));
//! assert!(i.ua() > 30.0 && i.ua() < 60.0); // ~45 µA/fin class device
//! ```

use std::fmt;

use crate::calibration::fitted;
use crate::units::{Amps, Farads, Ohms, Volts, Watts};

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Threshold-voltage flavor offered by the technology.
///
/// The paper notes that low-throughput applications can use HVT devices to
/// cut power (§4.4.2); the SRAM bitcell itself uses the standard (SVT)
/// flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VtFlavor {
    /// Low threshold: fastest, leakiest.
    Lvt,
    /// Standard threshold.
    #[default]
    Svt,
    /// High threshold: slowest, lowest leakage.
    Hvt,
}

impl VtFlavor {
    /// Threshold voltage magnitude for this flavor at the 3nm node.
    pub fn threshold(self) -> Volts {
        match self {
            VtFlavor::Lvt => Volts::from_mv(180.0),
            VtFlavor::Svt => Volts::from_mv(250.0),
            VtFlavor::Hvt => Volts::from_mv(320.0),
        }
    }

    fn leak_index(self) -> usize {
        match self {
            VtFlavor::Lvt => 0,
            VtFlavor::Svt => 1,
            VtFlavor::Hvt => 2,
        }
    }
}

impl fmt::Display for VtFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VtFlavor::Lvt => "LVT",
            VtFlavor::Svt => "SVT",
            VtFlavor::Hvt => "HVT",
        };
        f.write_str(s)
    }
}

/// One FinFET device: polarity, Vt flavor and fin count.
///
/// Fin count plays the role of transistor width at this node — drive current,
/// capacitance and leakage all scale linearly with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FinFet {
    polarity: Polarity,
    flavor: VtFlavor,
    fins: u32,
}

impl FinFet {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if `fins == 0`; a zero-width transistor is meaningless.
    pub fn new(polarity: Polarity, flavor: VtFlavor, fins: u32) -> Self {
        assert!(fins > 0, "a FinFET needs at least one fin");
        Self {
            polarity,
            flavor,
            fins,
        }
    }

    /// Polarity of the device.
    pub fn polarity(self) -> Polarity {
        self.polarity
    }

    /// Vt flavor of the device.
    pub fn flavor(self) -> VtFlavor {
        self.flavor
    }

    /// Number of fins.
    pub fn fins(self) -> u32 {
        self.fins
    }

    /// Saturation (on) current at gate drive `v_gs` via the alpha-power law.
    ///
    /// Returns zero current when the overdrive is non-positive — the device
    /// is off (sub-threshold conduction is modeled separately as
    /// [`leakage_current`](Self::leakage_current)).
    pub fn on_current(self, v_gs: Volts) -> Amps {
        let overdrive = v_gs.v() - self.flavor.threshold().v();
        if overdrive <= 0.0 {
            return Amps::ZERO;
        }
        let k = match self.polarity {
            Polarity::Nmos => fitted::NMOS_K_PER_FIN,
            Polarity::Pmos => fitted::NMOS_K_PER_FIN * fitted::PMOS_DRIVE_RATIO,
        };
        Amps::new(k * self.fins as f64 * overdrive.powf(fitted::ALPHA))
    }

    /// Effective switching resistance for RC delay estimation, using the
    /// standard switch model `R_eff ≈ V_DD / (2·I_on(V_DD))`.
    ///
    /// # Panics
    ///
    /// Panics if the device does not conduct at `v_dd` (overdrive ≤ 0).
    pub fn effective_resistance(self, v_dd: Volts) -> Ohms {
        let i = self.on_current(v_dd);
        assert!(
            i.value() > 0.0,
            "device with Vt {} does not conduct at {v_dd}",
            self.flavor.threshold()
        );
        Volts::new(v_dd.v() / 2.0) / i
    }

    /// Total gate capacitance.
    pub fn gate_capacitance(self) -> Farads {
        Farads::new(fitted::GATE_CAP_PER_FIN * self.fins as f64)
    }

    /// Source/drain junction + contact capacitance (one terminal).
    pub fn drain_capacitance(self) -> Farads {
        Farads::new(fitted::DRAIN_CAP_PER_FIN * self.fins as f64)
    }

    /// Sub-threshold (off-state) leakage current at nominal conditions.
    pub fn leakage_current(self) -> Amps {
        Amps::new(fitted::LEAK_PER_FIN[self.flavor.leak_index()] * self.fins as f64)
    }

    /// Static leakage power when biased at `v_dd`.
    pub fn leakage_power(self, v_dd: Volts) -> Watts {
        v_dd * self.leakage_current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: Volts = Volts::new(0.7);

    #[test]
    fn lvt_fin_drives_about_45_ua() {
        let t = FinFet::new(Polarity::Nmos, VtFlavor::Lvt, 1);
        let i = t.on_current(VDD).ua();
        assert!((i - 45.0).abs() < 5.0, "got {i} µA");
    }

    #[test]
    fn current_scales_with_fins() {
        let one = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1).on_current(VDD);
        let three = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 3).on_current(VDD);
        assert!((three.value() / one.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pmos_is_weaker_than_nmos() {
        let n = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1).on_current(VDD);
        let p = FinFet::new(Polarity::Pmos, VtFlavor::Svt, 1).on_current(VDD);
        assert!(p.value() < n.value());
    }

    #[test]
    fn vt_ordering_in_current_and_leakage() {
        let lvt = FinFet::new(Polarity::Nmos, VtFlavor::Lvt, 1);
        let svt = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1);
        let hvt = FinFet::new(Polarity::Nmos, VtFlavor::Hvt, 1);
        assert!(lvt.on_current(VDD).value() > svt.on_current(VDD).value());
        assert!(svt.on_current(VDD).value() > hvt.on_current(VDD).value());
        assert!(lvt.leakage_current().value() > svt.leakage_current().value());
        assert!(svt.leakage_current().value() > hvt.leakage_current().value());
    }

    #[test]
    fn off_below_threshold() {
        let t = FinFet::new(Polarity::Nmos, VtFlavor::Hvt, 2);
        assert_eq!(t.on_current(Volts::from_mv(300.0)), Amps::ZERO);
    }

    #[test]
    fn effective_resistance_is_kohm_class() {
        let t = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1);
        let r = t.effective_resistance(VDD).value();
        assert!(r > 3_000.0 && r < 20_000.0, "got {r} Ω");
    }

    #[test]
    #[should_panic(expected = "does not conduct")]
    fn effective_resistance_panics_when_off() {
        FinFet::new(Polarity::Nmos, VtFlavor::Hvt, 1).effective_resistance(Volts::from_mv(100.0));
    }

    #[test]
    #[should_panic(expected = "at least one fin")]
    fn zero_fins_panics() {
        FinFet::new(Polarity::Nmos, VtFlavor::Svt, 0);
    }

    #[test]
    fn lower_vdd_means_less_current() {
        let t = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1);
        assert!(t.on_current(Volts::from_mv(500.0)).value() < t.on_current(VDD).value());
    }

    #[test]
    fn leakage_power_scale() {
        // An SVT fin leaks ~0.5 nA ⇒ ~0.35 nW at 0.7 V.
        let p = FinFet::new(Polarity::Nmos, VtFlavor::Svt, 1).leakage_power(VDD);
        assert!(p.value() > 0.1e-9 && p.value() < 1.0e-9, "got {p}");
    }
}
