//! Calibration probe: full-system Fig. 8 sweep with the overhead-bucket
//! statistics used to fit CONTROL/PIPE energy constants.
use esam_core::{EsamSystem, SystemConfig};
use esam_nn::{BnnNetwork, Dataset, DigitsConfig, SnnModel, TrainConfig, Trainer};
use esam_sram::BitcellKind;

fn main() {
    let data = Dataset::generate(&DigitsConfig::default()).unwrap();
    let mut net = BnnNetwork::new(&[768, 256, 256, 256, 10], 42).unwrap();
    Trainer::new(TrainConfig::default())
        .train(&mut net, &data.train)
        .unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let frames: Vec<_> = (0..200).map(|i| data.test.spikes(i)).collect();
    let n = frames.len() as f64;
    for cell in BitcellKind::ALL {
        let config = SystemConfig::paper_default(cell);
        let mut system = EsamSystem::from_model(&model, &config).unwrap();
        let m = system.measure_batch(&frames).unwrap();
        // overhead-bucket stats
        let p = cell.inference_parallelism() as f64;
        let mut cc = 0f64; // column-cycles per inf
        for t in system.tiles() {
            cc += (t.stats().active_cycles * t.outputs() as u64) as f64 / n;
        }
        let pb = cc * p; // port-bit-cycles per inf
        let ca = 15.5e-15;
        let cb = 5.46e-15;
        let r = m.energy_per_inf.pj() - (cc * ca + pb * cb) * 1e12;
        println!(
            "{:8} clk={:6.1}MHz cyc={:5.1} T={:6.2}M E={:7.1}pJ P={:5.2}mW leak={:4.2} CC={:7.0} PB={:7.0} R={:6.1}pJ",
            cell.name(), m.clock.mhz(), m.bottleneck_cycles, m.throughput_minf_s(),
            m.energy_per_inf.pj(), m.total_power().mw(), m.leakage_power.mw(), cc, pb, r
        );
    }
}
