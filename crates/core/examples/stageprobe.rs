//! Calibration probe: prints the Table 2 pipeline stages per cell kind.

fn main() {
    use esam_core::{PipelineTiming, SystemConfig};
    use esam_sram::BitcellKind;
    for cell in BitcellKind::ALL {
        let t = PipelineTiming::analyze(&SystemConfig::paper_default(cell)).unwrap();
        println!(
            "{:8} arb={:.3}ns sram+neuron={:.3}ns clock={:.3}ns",
            cell.name(),
            t.arbiter_stage.ns(),
            t.sram_neuron_stage.ns(),
            t.clock_period().ns()
        );
    }
}
