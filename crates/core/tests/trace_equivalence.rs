//! The observability contract of the inference hot path:
//!
//! 1. [`EsamSystem::infer_scoped`] with [`TraceScope::Off`] is *exactly*
//!    [`EsamSystem::infer`] — bit-identical results and not one extra heap
//!    allocation (the disabled tracer is a single branch).
//! 2. With tracing **on**, the results are still bit-identical and the
//!    recording itself is allocation-free: events are `Copy` into the
//!    track's preallocated ring.
//! 3. The per-layer spans tile the frame's cycle interval exactly
//!    (`sum(layer spans) == total_cycles`), and the cycle-domain Chrome
//!    export is byte-identical across repeated runs.
//!
//! Like `step_no_alloc.rs`, the allocation counter is thread-local and
//! this file holds only tests that depend on it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use esam_bits::BitVec;
use esam_core::{EsamSystem, SystemConfig, TraceScope, TrackTrace};
use esam_nn::{BnnNetwork, SnnModel};
use esam_obs::{EventKind, TimeDomain, Trace};
use esam_sram::BitcellKind;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator with a thread-local allocation counter.
struct CountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator; the
// only addition is a thread-local counter bump, which cannot allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn system(seed: u64) -> EsamSystem {
    let net = BnnNetwork::new(&[128, 64, 10], seed).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &[128, 64, 10])
        .build()
        .unwrap();
    EsamSystem::from_model(&model, &config).unwrap()
}

fn frames(count: usize) -> Vec<BitVec> {
    (0..count)
        .map(|i| (0..128).map(|b| (b * 7 + i * 13) % 5 == 0).collect())
        .collect()
}

#[test]
fn scoped_off_is_bit_identical_and_allocates_exactly_like_infer() {
    let mut plain = system(11);
    let mut scoped = system(11);
    for frame in frames(8) {
        // Warm both paths once so lazy one-time allocations (none are
        // expected, but the contract is steady-state) cannot skew the
        // comparison.
        plain.infer(&frame).unwrap();
        scoped.infer_scoped(&frame, &mut TraceScope::Off).unwrap();

        let before = allocations();
        let baseline = plain.infer(&frame).unwrap();
        let baseline_allocs = allocations() - before;

        let before = allocations();
        let traced = scoped.infer_scoped(&frame, &mut TraceScope::Off).unwrap();
        let scoped_allocs = allocations() - before;

        assert_eq!(baseline, traced, "Off-scope result must be bit-identical");
        assert_eq!(
            scoped_allocs, baseline_allocs,
            "a disabled scope must add zero allocations"
        );
    }
}

#[test]
fn scoped_on_is_bit_identical_and_recording_is_allocation_free() {
    let mut plain = system(23);
    let mut scoped = system(23);
    let mut track = TrackTrace::new(0, 0, "core".to_string(), 4096);
    for frame in frames(8) {
        plain.infer(&frame).unwrap();
        scoped
            .infer_scoped(&frame, &mut TraceScope::On(&mut track))
            .unwrap();

        let before = allocations();
        let baseline = plain.infer(&frame).unwrap();
        let baseline_allocs = allocations() - before;

        let before = allocations();
        let traced = scoped
            .infer_scoped(&frame, &mut TraceScope::On(&mut track))
            .unwrap();
        let scoped_allocs = allocations() - before;

        assert_eq!(baseline, traced, "On-scope result must be bit-identical");
        assert_eq!(
            scoped_allocs, baseline_allocs,
            "recording into the preallocated ring must add zero allocations"
        );
    }
    assert!(!track.is_empty(), "spans were recorded");
    assert_eq!(track.dropped(), 0, "the ring never filled");
}

#[test]
fn layer_spans_tile_the_frame_interval_exactly() {
    let mut sys = system(7);
    let mut track = TrackTrace::new(0, 0, "core".to_string(), 1024);
    let frame = &frames(1)[0];
    let result = sys
        .infer_scoped(frame, &mut TraceScope::On(&mut track))
        .unwrap();

    let spans: Vec<_> = track
        .events()
        .filter(|e| e.kind == EventKind::Span)
        .collect();
    assert_eq!(spans.len(), result.per_tile_cycles.len());
    let mut cursor = 0u64;
    for (layer, span) in spans.iter().enumerate() {
        assert_eq!(
            span.cycles,
            cursor,
            "layer {layer} starts where {0} ended",
            layer.max(1) - 1
        );
        assert_eq!(span.cycle_dur, result.per_tile_cycles[layer]);
        assert_eq!(span.args[0], Some(("layer", layer as u64)));
        cursor += span.cycle_dur;
    }
    assert_eq!(
        cursor,
        result.total_cycles(),
        "the layer spans must tile the frame's full latency"
    );
    assert_eq!(track.cursor(), result.total_cycles());
}

#[test]
fn block_scoped_matches_infer_block_bit_for_bit() {
    let mut plain = system(31);
    let mut scoped = system(31);
    // 70 frames straddles the 64-lane block width: one full block plus a
    // ragged 6-lane tail, each contributing its own layer-block spans.
    let batch = frames(70);
    let mut track = TrackTrace::new(0, 0, "block".to_string(), 1024);
    let baseline = plain.infer_block(&batch).unwrap();
    let traced = scoped
        .infer_block_scoped(&batch, &mut TraceScope::On(&mut track))
        .unwrap();
    assert_eq!(baseline, traced);

    // Two blocks × two tiles of spans, lane counts attached.
    let spans: Vec<_> = track
        .events()
        .filter(|e| e.kind == EventKind::Span)
        .collect();
    assert_eq!(spans.len(), 4);
    assert_eq!(spans[0].args[1], Some(("lanes", 64)));
    assert_eq!(spans[3].args[1], Some(("lanes", 6)));
    // Each block's layer span is the max over its lanes.
    let expect: u64 = baseline[..64]
        .iter()
        .map(|r| r.per_tile_cycles[0])
        .max()
        .unwrap();
    assert_eq!(spans[0].cycle_dur, expect);

    // Off scope: same results, no events anywhere.
    let mut off = system(31);
    assert_eq!(
        off.infer_block_scoped(&batch, &mut TraceScope::Off)
            .unwrap(),
        baseline
    );
}

#[test]
fn cycle_domain_export_is_byte_identical_across_runs() {
    let export = |seed: u64| {
        let mut sys = system(seed);
        let mut track = TrackTrace::new(0, 0, "core".to_string(), 1024);
        for frame in frames(5) {
            sys.infer_scoped(&frame, &mut TraceScope::On(&mut track))
                .unwrap();
        }
        let mut trace = Trace::new();
        trace.name_process(0, "esam-core");
        trace.push(track);
        trace.chrome_json(TimeDomain::Cycles)
    };
    assert_eq!(export(3), export(3), "same seed → byte-identical trace");
    assert_ne!(export(3), export(4), "different weights → different cycles");
}
