//! Property tests for the workspace merge law's integer tallies: folding
//! per-frame tallies shard-by-shard (any random partition, any shard
//! order within the partition law's constraints) must equal the
//! sequential fold bit-for-bit. This pins the exact-u64 half of the merge
//! law that `BatchEngine`, the mesh and the serving layer all rely on,
//! now routed through `esam_obs::tally_add` (debug-loud, release-
//! saturating).

use esam_core::BatchTally;
use esam_fault::FaultTally;
use proptest::prelude::*;

/// Deterministic per-frame tally stream from a splitmix64 walk.
fn frame_tallies(seed: u64, count: usize) -> Vec<BatchTally> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| BatchTally {
            frames: 1,
            bottleneck_cycles: next() % 10_000,
            latency_cycles: next() % 100_000,
            correct: next() % 2,
            learning_updates: next() % 64,
            learning_cycles: next() % 4_096,
            learning_bits_flipped: next() % 512,
        })
        .collect()
}

/// Splits `items` at the given fractions and folds each shard
/// independently, then merges the shard tallies in order.
fn sharded_fold(items: &[BatchTally], cuts: &[usize]) -> BatchTally {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (items.len() + 1)).collect();
    bounds.push(0);
    bounds.push(items.len());
    bounds.sort_unstable();
    let mut merged = BatchTally::default();
    for pair in bounds.windows(2) {
        let mut shard = BatchTally::default();
        for tally in &items[pair[0]..pair[1]] {
            shard.merge(tally);
        }
        merged.merge(&shard);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random partition of a frame stream merges to exactly the
    /// sequential tally — the associativity/commutativity contract the
    /// parallel engines assume.
    #[test]
    fn sharded_merge_equals_sequential(
        seed in any::<u64>(),
        count in 1usize..200,
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let frames = frame_tallies(seed, count);
        let mut sequential = BatchTally::default();
        for tally in &frames {
            sequential.merge(tally);
        }
        let sharded = sharded_fold(&frames, &cuts);
        prop_assert_eq!(sequential, sharded);
    }

    /// Merge order across shards does not matter either (commutativity):
    /// fold the same shards in reverse and get the same integers.
    #[test]
    fn shard_merge_is_commutative(
        seed in any::<u64>(),
        count in 2usize..100,
        split in 1usize..99,
    ) {
        let frames = frame_tallies(seed, count);
        let cut = 1 + split % (count - 1).max(1);
        let (left, right) = frames.split_at(cut.min(count - 1));
        let fold = |chunk: &[BatchTally]| {
            let mut t = BatchTally::default();
            chunk.iter().for_each(|x| t.merge(x));
            t
        };
        let (a, b) = (fold(left), fold(right));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// The fault-injection tally obeys the same law.
    #[test]
    fn fault_tally_sharded_merge_equals_sequential(
        flips in proptest::collection::vec((0u64..1_000, 0u64..1_000), 1..50),
        cut in any::<usize>(),
    ) {
        let tallies: Vec<FaultTally> = flips
            .iter()
            .map(|&(w, m)| FaultTally { weight_flips: w, membrane_flips: m })
            .collect();
        let mut sequential = FaultTally::default();
        for t in &tallies {
            sequential.merge(t);
        }
        let split = cut % tallies.len();
        let fold = |chunk: &[FaultTally]| {
            let mut t = FaultTally::default();
            chunk.iter().for_each(|x| t.merge(x));
            t
        };
        let mut sharded = fold(&tallies[..split]);
        sharded.merge(&fold(&tallies[split..]));
        prop_assert_eq!(sequential, sharded);
    }
}
