//! The batch-major bit-sliced path must be bit-identical to the sequential
//! walk: `EsamSystem::infer_block` over any batch has to reproduce looping
//! `infer` exactly — predictions, logits, membranes, output spikes,
//! per-tile cycle counts, `TileStats` and `AccessStats`, for full blocks,
//! ragged tails and every bitcell. This battery pins that contract the same
//! way `hot_path_equivalence.rs` pins the word-parallel single-frame path.

use esam_bits::BitVec;
use esam_core::{BatchConfig, BatchEngine, EsamSystem, SystemConfig};
use esam_neuron::{NeuronConfig, ResetPolicy};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;
use proptest::prelude::*;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn system_with_config(topology: &[usize], seed: u64, config: SystemConfig) -> EsamSystem {
    let net = BnnNetwork::new(topology, seed).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    EsamSystem::from_model(&model, &config).unwrap()
}

fn system(topology: &[usize], seed: u64, cell: BitcellKind) -> EsamSystem {
    let config = SystemConfig::builder(cell, topology).build().unwrap();
    system_with_config(topology, seed, config)
}

fn frames(width: usize, count: usize, seed: u64, density: f64) -> Vec<BitVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..width).map(|_| rng.random_bool(density)).collect())
        .collect()
}

/// Runs the batch both ways from clones of the same starting system and
/// asserts results, post-state and every counter are identical.
fn assert_block_matches_sequential(template: &EsamSystem, batch: &[BitVec], label: &str) {
    let mut sequential = template.clone();
    let expected: Vec<_> = batch
        .iter()
        .map(|frame| sequential.infer(frame).unwrap())
        .collect();
    let mut bitsliced = template.clone();
    let got = bitsliced.infer_block(batch).unwrap();
    assert_eq!(got.len(), expected.len(), "{label}: result count");
    for (i, (got, want)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "{label}: frame {i}");
    }
    for (t, (seq, bs)) in sequential.tiles().iter().zip(bitsliced.tiles()).enumerate() {
        assert_eq!(seq.stats(), bs.stats(), "{label}: tile {t} TileStats");
        assert_eq!(
            seq.array_stats(),
            bs.array_stats(),
            "{label}: tile {t} AccessStats"
        );
        assert_eq!(
            seq.membranes(),
            bs.membranes(),
            "{label}: tile {t} post-state membranes"
        );
    }
}

#[test]
fn block_path_matches_sequential_for_pinned_batch_sizes() {
    // The sizes the issue pins: below, at, above and twice the lane width,
    // plus the trivial single frame.
    for cell in [
        BitcellKind::Std6T,
        BitcellKind::multiport(2).unwrap(),
        BitcellKind::multiport(4).unwrap(),
    ] {
        let template = system(&[128, 64, 10], 11, cell);
        for count in [1usize, 63, 64, 65, 128] {
            let batch = frames(128, count, 7 + count as u64, 0.25);
            assert_block_matches_sequential(&template, &batch, &format!("{cell} n={count}"));
        }
    }
}

#[test]
fn ragged_tails_and_extreme_frames_match() {
    let template = system(&[132, 96, 17], 5, BitcellKind::multiport(4).unwrap());
    // 97 = full block + 33-lane ragged tail.
    let mut batch = frames(132, 95, 3, 0.4);
    batch.push(BitVec::new(132)); // an all-zero frame in the tail
    batch.push((0..132).map(|_| true).collect()); // an all-one frame
    assert_block_matches_sequential(&template, &batch, "ragged 97");
}

#[test]
fn multi_row_group_tiles_match() {
    // 260 inputs = 3 row groups on the first tile; exercises the per-group
    // serve-cycle maximum and the per-array counter split.
    let template = system(&[260, 132, 10], 23, BitcellKind::multiport(2).unwrap());
    let batch = frames(260, 80, 41, 0.2);
    assert_block_matches_sequential(&template, &batch, "multi-rg");
}

#[test]
fn empty_batch_yields_no_results() {
    let mut system = system(&[128, 64, 10], 11, BitcellKind::multiport(4).unwrap());
    assert!(system.infer_block(&[]).unwrap().is_empty());
}

#[test]
fn on_fire_reset_falls_back_to_the_sequential_walk() {
    // A state-carrying reset policy makes frames order-dependent; the block
    // path must detect it and fall back — staying exact by construction.
    let topology = [128, 64, 10];
    let config = SystemConfig::builder(BitcellKind::multiport(4).unwrap(), &topology)
        .neuron(NeuronConfig::new(12, 12, ResetPolicy::OnFire))
        .build()
        .unwrap();
    let template = system_with_config(&topology, 11, config);
    let batch = frames(128, 70, 13, 0.25);
    assert_block_matches_sequential(&template, &batch, "OnFire fallback");
}

#[test]
fn narrow_membrane_registers_fall_back_to_the_sequential_walk() {
    // 6-bit membranes clamp at ±(2^5) < 128 inputs: the closed form would
    // be wrong, so eligibility must rule the block kernel out and the
    // sequential walk (which clamps cycle by cycle) must run instead.
    let topology = [128, 32, 10];
    let config = SystemConfig::builder(BitcellKind::multiport(2).unwrap(), &topology)
        .neuron(NeuronConfig::new(6, 12, ResetPolicy::EveryTimestep))
        .build()
        .unwrap();
    let template = system_with_config(&topology, 3, config);
    let batch = frames(128, 66, 17, 0.6);
    assert_block_matches_sequential(&template, &batch, "narrow membranes");
}

#[test]
fn bitsliced_measurement_is_bit_identical_at_every_thread_count() {
    let template = system(&[128, 64, 10], 11, BitcellKind::multiport(4).unwrap());
    let batch = frames(128, 150, 29, 0.25);
    let expected = template.clone().measure_batch(&batch).unwrap();
    assert_eq!(
        template.clone().measure_batch_bitsliced(&batch).unwrap(),
        expected,
        "single-threaded bit-sliced measurement"
    );
    for threads in [1, 2, 4, 7] {
        let mut engine = BatchEngine::new(&template, &BatchConfig::with_threads(threads));
        assert_eq!(
            engine.measure_bitsliced(&batch).unwrap(),
            expected,
            "bit-sliced measurement with {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random networks, shapes, densities and ragged batch sizes: the block
    /// path must track the sequential walk everywhere.
    #[test]
    fn block_path_matches_sequential_on_random_networks(
        seed in 0u64..10_000,
        shape in 0usize..3,
        count in 1usize..96,
        density_pct in 5u32..60,
    ) {
        let topology: &[usize] = [
            &[96, 40, 10][..],
            &[256, 132, 10][..],
            &[132, 96, 17][..],
        ][shape];
        let template = system(topology, seed, BitcellKind::multiport(4).unwrap());
        let batch = frames(topology[0], count, seed ^ 0xABCD, f64::from(density_pct) / 100.0);
        assert_block_matches_sequential(
            &template,
            &batch,
            &format!("random seed={seed} shape={shape} n={count}"),
        );
    }
}
