//! Proof that the steady-state inference hot path performs **zero heap
//! allocations**: a counting global allocator wraps the system allocator,
//! and the drain loop of [`Tile::step`] must not advance the counter.
//!
//! The counter is thread-local so the measurement cannot be polluted by
//! allocator traffic from other test threads; this file holds only
//! hot-path tests for the same reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use esam_bits::{BitVec, FrameBlock};
use esam_core::{SystemConfig, Tile};
use esam_sram::BitcellKind;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator with a thread-local allocation counter.
struct CountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator; the
// only addition is a thread-local counter bump, which cannot allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn dense_frame(width: usize) -> BitVec {
    // ~ every other bit set: the worst realistic arbitration load.
    (0..width).map(|i| i % 2 == 0).collect()
}

#[test]
fn steady_state_step_is_allocation_free() {
    for cell in [
        BitcellKind::Std6T,
        BitcellKind::multiport(2).unwrap(),
        BitcellKind::multiport(4).unwrap(),
    ] {
        // A multi-group tile with a ragged edge block (260 → 3 row groups,
        // 130 → 2 column groups) so every scratch-buffer shape is
        // exercised.
        let config = SystemConfig::builder(cell, &[260, 130]).build().unwrap();
        let mut tile = Tile::new(260, 130, &config).unwrap();

        // Warm-up frame: nothing in `step` allocates lazily, but keep the
        // measurement strictly steady-state as the contract states.
        tile.process_frame(&dense_frame(260)).unwrap();

        tile.inject(&dense_frame(260)).unwrap();
        let before = allocations();
        let mut served = 0usize;
        while !tile.is_drained() {
            served += tile.step().unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{cell}: the drain loop must not touch the heap"
        );
        assert_eq!(served, 130, "every injected spike is served exactly once");
        tile.finish_timestep();
    }
}

#[test]
fn integrity_modes_keep_the_drain_loop_allocation_free() {
    // `IntegrityMode::Off` must be bit-identical to the baseline including
    // its zero-allocation contract, and the SECDED syndrome check of the
    // protected modes piggybacks on the packed-row read without touching
    // the heap either.
    use esam_sram::IntegrityMode;
    let cell = BitcellKind::multiport(4).unwrap();
    let config = SystemConfig::builder(cell, &[260, 130]).build().unwrap();
    for mode in [
        IntegrityMode::Off,
        IntegrityMode::Detect,
        IntegrityMode::Correct,
    ] {
        let mut tile = Tile::new(260, 130, &config).unwrap();
        tile.set_integrity_mode(mode);
        tile.process_frame(&dense_frame(260)).unwrap();

        tile.inject(&dense_frame(260)).unwrap();
        let before = allocations();
        while !tile.is_drained() {
            tile.step().unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{mode:?}: the checked drain loop must not touch the heap"
        );
        tile.finish_timestep();
    }
}

#[test]
fn cloned_worker_tiles_inherit_the_allocation_free_contract() {
    // Batch-engine workers are `Tile::clone`s, so the scratch buffers'
    // capacity must survive cloning (a derived Vec clone would drop the
    // empty grant buffer's reservation).
    let cell = BitcellKind::multiport(4).unwrap();
    let config = SystemConfig::builder(cell, &[260, 130]).build().unwrap();
    let template = Tile::new(260, 130, &config).unwrap();
    let mut worker = template.clone();

    // No warm-up on the clone: its very first drain must already be
    // allocation-free.
    let frame = dense_frame(260);
    worker.inject(&frame).unwrap();
    let before = allocations();
    while !worker.is_drained() {
        worker.step().unwrap();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "a cloned tile's first drain loop must not touch the heap"
    );
}

#[test]
fn steady_state_block_step_is_allocation_free() {
    // The batch-major bit-sliced kernel must match the scalar hot path's
    // contract: with caller-provided output buffers, a steady-state
    // `step_block` touches only the tile's preallocated vertical-counter
    // scratch — zero heap allocations, full and ragged blocks alike.
    for cell in [
        BitcellKind::Std6T,
        BitcellKind::multiport(2).unwrap(),
        BitcellKind::multiport(4).unwrap(),
    ] {
        let config = SystemConfig::builder(cell, &[260, 130]).build().unwrap();
        let mut tile = Tile::new(260, 130, &config).unwrap();

        let full: Vec<BitVec> = (0..FrameBlock::LANES)
            .map(|lane| (0..260).map(|i| (i + lane) % 3 == 0).collect())
            .collect();
        let block = FrameBlock::from_frames(&full);
        let ragged = FrameBlock::from_frames(&full[..21]);
        let mut fired = FrameBlock::new(130, FrameBlock::LANES);
        let mut fired_ragged = FrameBlock::new(130, 21);
        let mut cycles = vec![0u64; FrameBlock::LANES];
        let mut membranes = vec![0i32; FrameBlock::LANES * 130];

        // Warm-up: nothing in `step_block` allocates lazily, but keep the
        // measurement strictly steady-state as the contract states.
        tile.step_block(&block, &mut fired, &mut cycles, Some(&mut membranes))
            .unwrap();

        let before = allocations();
        tile.step_block(&block, &mut fired, &mut cycles, Some(&mut membranes))
            .unwrap();
        tile.step_block(&block, &mut fired, &mut cycles, None)
            .unwrap();
        tile.step_block(&ragged, &mut fired_ragged, &mut cycles[..21], None)
            .unwrap();
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{cell}: the block step must not touch the heap"
        );
    }
}

#[test]
fn cloned_worker_tiles_block_step_is_allocation_free_too() {
    // Serve/batch workers are clones; the vertical-counter scratch must
    // survive cloning so a worker's first block step already honors the
    // contract.
    let cell = BitcellKind::multiport(4).unwrap();
    let config = SystemConfig::builder(cell, &[260, 130]).build().unwrap();
    let template = Tile::new(260, 130, &config).unwrap();
    let mut worker = template.clone();

    let frames: Vec<BitVec> = (0..FrameBlock::LANES)
        .map(|lane| (0..260).map(|i| (i * 5 + lane) % 4 == 0).collect())
        .collect();
    let block = FrameBlock::from_frames(&frames);
    let mut fired = FrameBlock::new(130, FrameBlock::LANES);
    let mut cycles = vec![0u64; FrameBlock::LANES];

    let before = allocations();
    worker
        .step_block(&block, &mut fired, &mut cycles, None)
        .unwrap();
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "a cloned tile's first block step must not touch the heap"
    );
}

#[test]
fn inject_and_idle_step_are_allocation_free() {
    let cell = BitcellKind::multiport(4).unwrap();
    let config = SystemConfig::builder(cell, &[128, 64]).build().unwrap();
    let mut tile = Tile::new(128, 64, &config).unwrap();
    tile.process_frame(&dense_frame(128)).unwrap();

    let frame = dense_frame(128);
    let before = allocations();
    tile.inject(&frame).unwrap();
    while !tile.is_drained() {
        tile.step().unwrap();
    }
    tile.step().unwrap(); // idle step (clock-gated)
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "inject + drain + idle step must not allocate"
    );
}
