//! Self-checking inference battery: with the oracle restore disabled, the
//! SECDED integrity ladder (checked reads → scrub → golden reload) must
//! carry the system through `FaultPlan` transient weight flips on its own.

use esam_bits::BitVec;
use esam_core::{EsamSystem, IntegrityMode, IntegrityTally, SystemConfig};
use esam_fault::{FaultConfig, FaultPlan};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn system(cell: BitcellKind) -> EsamSystem {
    let net = BnnNetwork::new(&[128, 64, 10], 11).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(cell, &[128, 64, 10]).build().unwrap();
    EsamSystem::from_model(&model, &config).unwrap()
}

fn frames(count: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..128).map(|_| rng.random_bool(0.25)).collect())
        .collect()
}

/// Weight-flips-only attacker (membranes clean so output bit-identity is
/// decidable).
fn flip_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::seeded(seed, FaultConfig::none().with_weight_flip_rate(rate))
}

fn weights_snapshot(system: &EsamSystem) -> Vec<esam_bits::BitMatrix> {
    system
        .tiles()
        .iter()
        .flat_map(|t| t.arrays().iter().map(|a| a.bits().clone()))
        .collect()
}

#[test]
fn off_mode_is_bit_identical_to_baseline() {
    // Outputs, membranes and *every* counter must match the untouched
    // baseline: `Off` systems never pay for the integrity layer.
    for cell in [BitcellKind::Std6T, BitcellKind::multiport(4).unwrap()] {
        let mut baseline = system(cell);
        let mut off = system(cell);
        off.set_integrity_mode(IntegrityMode::Off);
        for (id, frame) in frames(20, 1).iter().enumerate() {
            let expected = baseline.infer(frame).unwrap();
            let got = off.infer_checked(frame, id as u64).unwrap();
            assert_eq!(got, expected, "{cell} frame {id}");
        }
        assert_eq!(off.integrity_tally(), IntegrityTally::default());
        for (mine, theirs) in off.tiles().iter().zip(baseline.tiles()) {
            assert_eq!(mine.stats(), theirs.stats(), "{cell} tile stats");
            assert_eq!(
                mine.array_stats(),
                theirs.array_stats(),
                "{cell} array stats"
            );
        }
    }
}

#[test]
fn off_mode_with_faults_equals_the_oracle_baseline() {
    // With integrity off, `infer_checked` must fall back to exactly the
    // oracle-restore path — the unprotected baseline of the experiment.
    let plan = flip_plan(0xA11, 5e-3);
    let mut oracle = system(BitcellKind::multiport(4).unwrap());
    oracle.set_fault_plan(plan).unwrap();
    let mut checked = system(BitcellKind::multiport(4).unwrap());
    checked.set_fault_plan(plan).unwrap();
    for (id, frame) in frames(20, 2).iter().enumerate() {
        let expected = oracle.infer_faulted(frame, id as u64).unwrap();
        let got = checked.infer_checked(frame, id as u64).unwrap();
        assert_eq!(got, expected, "frame {id}");
    }
    assert_eq!(checked.fault_tally(), oracle.fault_tally());
}

#[test]
fn correct_mode_masks_targeted_single_bit_strikes() {
    // One strike per row (distinct inputs): every read of a struck row is
    // repaired in flight, so outputs are bit-identical to the pristine
    // system — no oracle involved anywhere.
    let cell = BitcellKind::multiport(4).unwrap();
    let mut pristine = system(cell);
    let mut struck = system(cell);
    struck.set_integrity_mode(IntegrityMode::Correct);
    let pristine_weights = weights_snapshot(&struck);
    for (layer, input, output) in [
        (0usize, 3usize, 17usize),
        (0, 90, 60),
        (1, 5, 9),
        (1, 40, 0),
    ] {
        struck
            .tile_mut(layer)
            .toggle_weight_bit(input, output)
            .unwrap();
    }
    for (id, frame) in frames(15, 3).iter().enumerate() {
        let expected = pristine.infer(frame).unwrap();
        let got = struck.infer_checked(frame, id as u64).unwrap();
        assert_eq!(got, expected, "frame {id}");
    }
    let tally = struck.integrity_tally();
    assert!(tally.corrected > 0, "struck rows were read and repaired");
    assert_eq!(tally.detected, 0);
    assert_eq!(tally.silent, 0);
    // The scrub pass heals the store itself back to the golden image.
    for layer in 0..2 {
        struck.tile_mut(layer).scrub_audited().unwrap();
    }
    assert_eq!(weights_snapshot(&struck), pristine_weights);
    let tally = struck.integrity_tally();
    assert_eq!(tally.scrub_corrected, 4, "one in-place heal per struck row");
    assert_eq!(tally.silent, 0);
}

#[test]
fn double_strikes_are_detected_never_silent() {
    let cell = BitcellKind::multiport(4).unwrap();
    let mut struck = system(cell);
    struck.set_integrity_mode(IntegrityMode::Correct);
    let pristine_weights = weights_snapshot(&struck);
    // Two strikes in the same weight row.
    struck.tile_mut(0).toggle_weight_bit(7, 11).unwrap();
    struck.tile_mut(0).toggle_weight_bit(7, 50).unwrap();
    for (id, frame) in frames(10, 4).iter().enumerate() {
        struck.infer_checked(frame, id as u64).unwrap();
    }
    let tally = struck.integrity_tally();
    assert!(tally.detected > 0, "double-bit rows are flagged on read");
    assert_eq!(
        tally.silent, 0,
        "SECDED never passes a double-bit row as clean"
    );
    // Scrub cannot heal a double-bit row in place — it reloads from golden.
    struck.tile_mut(0).scrub_audited().unwrap();
    assert_eq!(weights_snapshot(&struck), pristine_weights);
    assert!(struck.integrity_tally().scrub_reloaded >= 1);
}

#[test]
fn correct_mode_carries_plan_driven_flips_without_the_oracle() {
    // The acceptance scenario: FaultPlan transient weight flips, oracle
    // restore disabled, Correct mode carrying recovery. Whenever a frame
    // saw only single-bit-per-row upsets (detected == silent == 0 for the
    // frame), its outputs must be bit-identical to the fault-free run.
    let cell = BitcellKind::multiport(4).unwrap();
    // Rate chosen so no row collects three flips in one frame (SECDED's
    // guarantee covers <= 2 per row; beyond that the scrub's golden audit
    // still catches the corruption, but as a counted `silent` event).
    let mut fault_free = system(cell);
    let mut protected = system(cell);
    protected.set_fault_plan(flip_plan(0xECC, 1e-3)).unwrap();
    protected.set_integrity_mode(IntegrityMode::Correct);
    let batch = frames(40, 5);
    let mut exact = 0usize;
    let mut last = IntegrityTally::default();
    for (id, frame) in batch.iter().enumerate() {
        let expected = fault_free.infer(frame).unwrap();
        let got = protected.infer_checked(frame, id as u64).unwrap();
        let tally = protected.integrity_tally();
        if tally.detected == last.detected && tally.silent == last.silent {
            assert_eq!(got, expected, "single-bit-per-row frame {id}");
            exact += 1;
        }
        last = tally;
    }
    assert!(exact >= 30, "flips hit most frames singly, got {exact}");
    let tally = protected.integrity_tally();
    assert!(tally.corrected > 0, "the attacker actually struck");
    assert_eq!(tally.silent, 0, "no silent corruption at the tested rate");
    assert!(protected.fault_tally().weight_flips > 0);
}

#[test]
fn detect_mode_counts_but_delivers_raw_bits() {
    // Detect-mode outputs equal the *faulted* oracle baseline (same struck
    // weights, delivered unrepaired), while the tally records what ECC saw.
    let plan = flip_plan(0xDE7, 5e-3);
    let mut oracle = system(BitcellKind::multiport(4).unwrap());
    oracle.set_fault_plan(plan).unwrap();
    let mut detect = system(BitcellKind::multiport(4).unwrap());
    detect.set_fault_plan(plan).unwrap();
    detect.set_integrity_mode(IntegrityMode::Detect);
    for (id, frame) in frames(25, 6).iter().enumerate() {
        let expected = oracle.infer_faulted(frame, id as u64).unwrap();
        let got = detect.infer_checked(frame, id as u64).unwrap();
        assert_eq!(got, expected, "frame {id}");
    }
    let tally = detect.integrity_tally();
    assert!(tally.checked_reads > 0);
    assert!(
        tally.corrected + tally.detected > 0,
        "strikes were observed"
    );
    assert_eq!(tally.scrub_corrected, 0, "Detect never heals");
    assert_eq!(tally.silent, 0, "Detect restore is not an audit");
}

#[test]
fn integrity_tally_is_deterministic_across_sharding() {
    // Same seed, same frame ids → identical IntegrityTally whether the
    // batch ran on one system or sharded over K clones and merged — the
    // property the serving layer's health decisions depend on.
    let cell = BitcellKind::multiport(4).unwrap();
    let mut template = system(cell);
    template.set_fault_plan(flip_plan(0x5EED, 5e-3)).unwrap();
    template.set_integrity_mode(IntegrityMode::Correct);
    let batch = frames(24, 7);

    let mut sequential = template.clone();
    for (id, frame) in batch.iter().enumerate() {
        sequential.infer_checked(frame, id as u64).unwrap();
    }
    let expected = sequential.integrity_tally();
    assert!(expected.corrected > 0);

    for shards in [2usize, 4] {
        let mut workers: Vec<EsamSystem> = (0..shards).map(|_| template.clone()).collect();
        for (id, frame) in batch.iter().enumerate() {
            workers[id % shards]
                .infer_checked(frame, id as u64)
                .unwrap();
        }
        let mut merged = template.clone();
        merged.reset_stats();
        for worker in &workers {
            merged.absorb_stats(worker);
        }
        assert_eq!(merged.integrity_tally(), expected, "{shards} shards");
    }
}

#[test]
fn repeated_runs_reset_to_identical_tallies() {
    // Frame independence: the scrub restores the pristine store after
    // every frame, so re-running the same batch reproduces the tally.
    let mut protected = system(BitcellKind::multiport(4).unwrap());
    protected.set_fault_plan(flip_plan(0x4E9, 5e-3)).unwrap();
    protected.set_integrity_mode(IntegrityMode::Correct);
    let batch = frames(12, 8);
    let run = |sys: &mut EsamSystem| {
        sys.reset_stats();
        for (id, frame) in batch.iter().enumerate() {
            sys.infer_checked(frame, id as u64).unwrap();
        }
        sys.integrity_tally()
    };
    let first = run(&mut protected);
    let second = run(&mut protected);
    assert_eq!(first, second);
    assert!(first.checked_reads > 0);
}
