//! SRAM-domain fault-injection battery: determinism, exact revert,
//! zero-cost-when-disabled, and thread-count independence of fault sites.

use esam_bits::BitVec;
use esam_core::{BatchConfig, BatchEngine, EsamSystem, SystemConfig};
use esam_fault::{FaultConfig, FaultPlan};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;
use proptest::prelude::*;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn system(cell: BitcellKind) -> EsamSystem {
    let net = BnnNetwork::new(&[128, 64, 10], 11).unwrap();
    let model = SnnModel::from_bnn(&net).unwrap();
    let config = SystemConfig::builder(cell, &[128, 64, 10]).build().unwrap();
    EsamSystem::from_model(&model, &config).unwrap()
}

fn frames(count: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..128).map(|_| rng.random_bool(0.25)).collect())
        .collect()
}

fn output_weights(system: &EsamSystem) -> Vec<BitVec> {
    let tile = system.tiles().last().unwrap();
    (0..tile.outputs()).map(|n| tile.weight_column(n)).collect()
}

fn transient_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(
        seed,
        FaultConfig::none()
            .with_weight_flip_rate(2e-3)
            .with_membrane_flip_rate(5e-2),
    )
}

#[test]
fn none_plan_is_bit_identical_to_baseline() {
    for cell in [BitcellKind::Std6T, BitcellKind::multiport(4).unwrap()] {
        let mut baseline = system(cell);
        let mut faulted = system(cell);
        faulted.set_fault_plan(FaultPlan::none()).unwrap();
        for (id, frame) in frames(20, 1).iter().enumerate() {
            let expected = baseline.infer(frame).unwrap();
            let got = faulted.infer_faulted(frame, id as u64).unwrap();
            assert_eq!(got, expected, "{cell} frame {id}");
        }
        assert_eq!(faulted.fault_tally().weight_flips, 0);
        assert_eq!(faulted.fault_tally().membrane_flips, 0);
        assert_eq!(faulted.stuck_bits(), 0);
    }
}

#[test]
fn transient_faults_revert_exactly_between_frames() {
    let mut reference = system(BitcellKind::multiport(4).unwrap());
    let mut faulted = system(BitcellKind::multiport(4).unwrap());
    faulted.set_fault_plan(transient_plan(7)).unwrap();
    let batch = frames(12, 2);
    let clean_before: Vec<_> = batch.iter().map(|f| reference.infer(f).unwrap()).collect();
    let mut any_divergence = false;
    for (id, frame) in batch.iter().enumerate() {
        let got = faulted.infer_faulted(frame, id as u64).unwrap();
        any_divergence |= got != clean_before[id];
    }
    assert!(
        faulted.fault_tally().weight_flips > 0,
        "the 2e-3 rate must hit some of the ~8k weight bits over 12 frames"
    );
    assert!(any_divergence, "injected flips must perturb some result");
    // The toggles are involutive: after the faulted batch, the weights are
    // back to the originals and a disabled plan reproduces the baseline.
    faulted.set_fault_plan(FaultPlan::none()).unwrap();
    for (id, frame) in batch.iter().enumerate() {
        assert_eq!(
            faulted.infer(frame).unwrap(),
            clean_before[id],
            "frame {id} after revert"
        );
    }
}

#[test]
fn stuck_at_materializes_and_uninstall_restores_weights() {
    let mut faulted = system(BitcellKind::Std6T);
    let pristine = output_weights(&faulted);
    let plan = FaultPlan::seeded(3, FaultConfig::none().with_stuck_rate(5e-3));
    faulted.set_fault_plan(plan).unwrap();
    assert!(faulted.stuck_bits() > 0, "5e-3 over ~8k bits must pin some");
    // Stuck-at faults live in the weights: re-installing the same plan is
    // idempotent on content, and uninstalling restores the originals.
    let stuck = output_weights(&faulted);
    faulted.set_fault_plan(plan).unwrap();
    assert_eq!(output_weights(&faulted), stuck);
    faulted.set_fault_plan(FaultPlan::none()).unwrap();
    assert_eq!(output_weights(&faulted), pristine);
    assert_eq!(faulted.stuck_bits(), 0);
}

#[test]
fn stuck_at_keeps_the_block_path_transients_do_not() {
    let mut stuck = system(BitcellKind::multiport(4).unwrap());
    stuck
        .set_fault_plan(FaultPlan::seeded(
            5,
            FaultConfig::none().with_stuck_rate(1e-2),
        ))
        .unwrap();
    let batch = frames(70, 9);
    // The block path stays exact under stuck-at faults (they are ordinary
    // weights by the time inference runs): block == sequential on the
    // faulted system.
    let expected: Vec<_> = batch.iter().map(|f| stuck.infer(f).unwrap()).collect();
    let got = stuck.infer_block(&batch).unwrap();
    assert_eq!(got, expected);

    // Transient faults rule the block path out; infer_faulted still works
    // and the per-frame coordinates make it order-independent.
    let mut transient = system(BitcellKind::multiport(4).unwrap());
    transient.set_fault_plan(transient_plan(5)).unwrap();
    let forward: Vec<_> = (0..8)
        .map(|id| transient.infer_faulted(&batch[id], id as u64).unwrap())
        .collect();
    let backward: Vec<_> = (0..8)
        .rev()
        .map(|id| transient.infer_faulted(&batch[id], id as u64).unwrap())
        .collect();
    for (id, result) in forward.iter().enumerate() {
        assert_eq!(result, &backward[7 - id], "frame {id} order-dependent");
    }
}

#[test]
fn fault_sites_are_identical_across_thread_counts() {
    let plan = transient_plan(11);
    let batch = frames(40, 4);
    let mut source = system(BitcellKind::multiport(4).unwrap());
    source.set_fault_plan(plan).unwrap();
    let mut reference = None;
    for threads in [1usize, 2, 4, 7] {
        let mut engine = BatchEngine::new(&source, &BatchConfig::with_threads(threads));
        let results = engine.infer_batch(&batch).unwrap();
        // Fold the workers' fault tallies the same way serve does.
        let mut sink = source.clone();
        sink.reset_stats();
        for worker in engine.workers() {
            sink.absorb_stats(worker);
        }
        let tally = *sink.fault_tally();
        assert!(tally.weight_flips > 0);
        match &reference {
            None => reference = Some((results, tally)),
            Some((expected, expected_tally)) => {
                assert_eq!(&results, expected, "{threads} threads");
                assert_eq!(&tally, expected_tally, "{threads} threads");
            }
        }
    }
}

#[test]
fn membrane_upsets_recompute_the_readout_consistently() {
    let mut faulted = system(BitcellKind::multiport(4).unwrap());
    faulted
        .set_fault_plan(FaultPlan::seeded(
            2,
            FaultConfig::none().with_membrane_flip_rate(0.5),
        ))
        .unwrap();
    let frame = &frames(1, 8)[0];
    let result = faulted.infer_faulted(frame, 0).unwrap();
    assert!(faulted.fault_tally().membrane_flips > 0, "rate 0.5 over 10");
    // The reported logits/prediction are consistent with the upset
    // membranes (recomputed, not stale).
    for (logit, membrane) in result.logits.iter().zip(&result.membranes) {
        let bias = logit - *membrane as f32;
        assert!(bias.is_finite());
    }
    let best = result
        .logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(result.prediction, best);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `FaultPlan::none()` is bit-identical to the unfaulted baseline on
    /// random frames (the zero-cost-when-disabled pin).
    #[test]
    fn none_plan_matches_baseline_on_random_frames(
        seed in 0u64..500,
        count in 1usize..12,
    ) {
        let mut baseline = system(BitcellKind::multiport(2).unwrap());
        let mut disabled = system(BitcellKind::multiport(2).unwrap());
        disabled.set_fault_plan(FaultPlan::none()).unwrap();
        for (id, frame) in frames(count, seed).iter().enumerate() {
            prop_assert_eq!(
                disabled.infer_faulted(frame, id as u64).unwrap(),
                baseline.infer(frame).unwrap()
            );
        }
    }

    /// Same seed ⇒ same faulted outputs, fresh systems each time.
    #[test]
    fn same_seed_reproduces_faulted_outputs(seed in 0u64..500) {
        let frame = &frames(1, seed)[0];
        let mut a = system(BitcellKind::Std6T);
        let mut b = system(BitcellKind::Std6T);
        a.set_fault_plan(transient_plan(seed)).unwrap();
        b.set_fault_plan(transient_plan(seed)).unwrap();
        prop_assert_eq!(
            a.infer_faulted(frame, 3).unwrap(),
            b.infer_faulted(frame, 3).unwrap()
        );
        prop_assert_eq!(a.fault_tally(), b.fault_tally());
    }
}
