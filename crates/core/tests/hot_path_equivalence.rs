//! Bit-identity of the word-parallel, allocation-free tile hot path
//! ([`Tile::step`]) against the retained scalar reference
//! ([`Tile::step_reference`]): over random layers and frame streams, both
//! paths must produce the same per-cycle serve counts, output spike
//! frames, membrane readouts **and** identical activity counters
//! ([`TileStats`] and every per-array [`AccessStats`]) — the counters are
//! what the energy reconstruction and the batch-engine merge law consume,
//! so "statistically equivalent" is not good enough.

use esam_bits::BitVec;
use esam_core::{SystemConfig, Tile, TileStats};
use esam_nn::{BnnNetwork, SnnModel};
use esam_sram::BitcellKind;
use proptest::prelude::*;
use proptest::TestCaseError;

fn loaded_tile_pair(inputs: usize, outputs: usize, seed: u64, cell: BitcellKind) -> (Tile, Tile) {
    let net = BnnNetwork::new(&[inputs, outputs], seed).expect("valid topology");
    let model = SnnModel::from_bnn(&net).expect("conversion");
    let config = SystemConfig::builder(cell, &[inputs, outputs])
        .build()
        .expect("valid configuration");
    let mut optimized = Tile::new(inputs, outputs, &config).expect("tile");
    optimized.load_layer(&model.layers()[0]).expect("load");
    let reference = optimized.clone();
    (optimized, reference)
}

/// Drives one frame through both paths cycle by cycle, comparing the
/// intermediate and final state.
fn check_frame(
    optimized: &mut Tile,
    reference: &mut Tile,
    frame: &BitVec,
) -> Result<(), TestCaseError> {
    optimized.inject(frame).expect("inject optimized");
    reference.inject(frame).expect("inject reference");
    let mut cycles = 0usize;
    while !optimized.is_drained() {
        let served_opt = optimized.step().expect("optimized step");
        let served_ref = reference.step_reference().expect("reference step");
        prop_assert_eq!(
            served_opt,
            served_ref,
            "serve counts diverged at cycle {}",
            cycles
        );
        cycles += 1;
        prop_assert!(cycles <= 4096, "frame must drain");
    }
    prop_assert!(reference.is_drained(), "reference must drain in lockstep");
    prop_assert_eq!(
        optimized.membranes(),
        reference.membranes(),
        "pre-fire membranes diverged"
    );
    let fired_opt = optimized.finish_timestep();
    let fired_ref = reference.finish_timestep();
    prop_assert_eq!(fired_opt, fired_ref, "output spike frames diverged");
    prop_assert_eq!(optimized.stats(), reference.stats(), "TileStats diverged");
    prop_assert_eq!(
        optimized.array_stats(),
        reference.array_stats(),
        "AccessStats diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-group and multi-group tiles (including ragged 130-wide edge
    /// blocks) over every cell kind: full `process_frame` streams must be
    /// bit-identical between the optimized and reference step paths.
    #[test]
    fn tile_step_matches_scalar_reference(
        seed in 0u64..200,
        shape_pick in 0usize..3,
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 260),
            1..6,
        ),
    ) {
        let (inputs, outputs) = [(96, 40), (256, 130), (260, 96)][shape_pick];
        for cell in [
            BitcellKind::Std6T,
            BitcellKind::multiport(2).unwrap(),
            BitcellKind::multiport(4).unwrap(),
        ] {
            let (mut optimized, mut reference) = loaded_tile_pair(inputs, outputs, seed, cell);
            for bools in &frames {
                let frame = BitVec::from_bools(&bools[..inputs]);
                check_frame(&mut optimized, &mut reference, &frame)?;
            }
            // Derived energy is a pure function of the (identical)
            // counters.
            prop_assert_eq!(
                optimized.dynamic_energy().expect("energy"),
                reference.dynamic_energy().expect("energy"),
                "{} energy diverged", cell
            );
        }
    }

    /// `process_frame` (the composed inject → drain → fire walk) agrees
    /// with a hand-rolled reference walk using `step_reference`.
    #[test]
    fn process_frame_matches_reference_walk(
        seed in 0u64..200,
        bools in proptest::collection::vec(any::<bool>(), 256),
    ) {
        let (mut optimized, mut reference) =
            loaded_tile_pair(256, 64, seed, BitcellKind::multiport(4).unwrap());
        let frame = BitVec::from_bools(&bools);
        let (fired_opt, cycles_opt) = optimized.process_frame(&frame).expect("process_frame");
        reference.inject(&frame).expect("inject");
        let mut cycles_ref = 0u64;
        while !reference.is_drained() {
            reference.step_reference().expect("reference step");
            cycles_ref += 1;
        }
        let fired_ref = reference.finish_timestep();
        cycles_ref += 1;
        prop_assert_eq!(fired_opt, fired_ref);
        prop_assert_eq!(cycles_opt, cycles_ref);
        prop_assert_eq!(optimized.stats(), reference.stats());
        prop_assert_eq!(optimized.array_stats(), reference.array_stats());
    }
}

#[test]
fn stats_struct_is_exhaustively_compared() {
    // A canary: if TileStats grows a field, the equivalence suite must
    // compare it (Eq derives keep this honest automatically — this test
    // just pins the current shape so a widening is a conscious decision).
    let stats = TileStats {
        active_cycles: 1,
        grants: 2,
        spikes_in: 3,
        timesteps: 4,
        neuron_bits: 5,
    };
    let mut merged = TileStats::default();
    merged.merge(&stats);
    assert_eq!(merged, stats);
}
