//! Error type for system construction and simulation.

use std::fmt;

use esam_arbiter::ArbiterError;
use esam_nn::NnError;
use esam_sram::SramError;

/// Errors produced by the ESAM system model.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Propagated SRAM macro error (write margin, port bounds, …).
    Sram(SramError),
    /// Propagated arbiter construction error.
    Arbiter(ArbiterError),
    /// Propagated network/conversion error.
    Nn(NnError),
    /// The SNN model's topology does not match the system configuration.
    TopologyMismatch {
        /// Topology expected by the configuration.
        expected: Vec<usize>,
        /// Topology of the provided model.
        got: Vec<usize>,
    },
    /// An input spike frame had the wrong width.
    InputWidthMismatch {
        /// Expected input width.
        expected: usize,
        /// Received width.
        got: usize,
    },
    /// Invalid system configuration.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sram(e) => write!(f, "sram: {e}"),
            CoreError::Arbiter(e) => write!(f, "arbiter: {e}"),
            CoreError::Nn(e) => write!(f, "network: {e}"),
            CoreError::TopologyMismatch { expected, got } => {
                write!(
                    f,
                    "topology mismatch: system expects {expected:?}, model has {got:?}"
                )
            }
            CoreError::InputWidthMismatch { expected, got } => {
                write!(
                    f,
                    "input frame width mismatch: expected {expected}, got {got}"
                )
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid system configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sram(e) => Some(e),
            CoreError::Arbiter(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SramError> for CoreError {
    fn from(e: SramError) -> Self {
        CoreError::Sram(e)
    }
}

impl From<ArbiterError> for CoreError {
    fn from(e: ArbiterError) -> Self {
        CoreError::Arbiter(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: CoreError = ArbiterError::ZeroWidth.into();
        assert!(e.to_string().contains("arbiter"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::TopologyMismatch {
            expected: vec![768, 10],
            got: vec![768, 20],
        };
        assert!(e.to_string().contains("768"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
