//! System-level figures of merit (the quantities Fig. 8 and Table 3 report)
//! and the batch engine's merge law.
//!
//! # The merge law
//!
//! A batch measurement is built from two kinds of state, both of which merge
//! exactly across workload shards:
//!
//! 1. **Cycle tallies** ([`BatchTally`]): per-frame bottleneck/latency cycle
//!    counts summed as `u64`. Addition is associative and commutative, so
//!    any partition of the frames produces the same sums.
//! 2. **Activity counters** ([`TileStats`](crate::TileStats) and the
//!    per-array access counters): also plain `u64` sums.
//!
//! [`SystemMetrics`] is then a *pure function* of (merged tally, merged
//! counters, static system properties): the same merged integers go through
//! the same float arithmetic, so a parallel measurement is **bit-identical**
//! to the sequential one — not merely statistically equivalent. The
//! float-level shortcut [`SystemMetrics::merge`] also exists for combining
//! already-finalized metrics, but being float arithmetic it is exact only up
//! to rounding; the engine always merges the integer state instead.

use std::fmt;

use esam_obs::tally_add;
use esam_tech::units::{AreaUm2, Hertz, Joules, Seconds, Watts};

use crate::learning::{LearningCost, SampleOutcome};
use crate::system::InferenceResult;

/// Raw cycle tallies accumulated while running a batch (or a shard of one).
///
/// This is the integer half of the merge law (see the module docs): tallies
/// from any partition of a batch [`merge`](Self::merge) into exactly the
/// tallies of the sequential run. Online-learning activity folds in through
/// the same law — the learning fields are plain `u64` counters advanced by
/// [`record_outcome`](Self::record_outcome) and stay zero for
/// pure-inference batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchTally {
    /// Frames processed.
    pub frames: u64,
    /// Summed bottleneck-tile cycles (pipelined throughput numerator).
    pub bottleneck_cycles: u64,
    /// Summed whole-cascade cycles (latency numerator).
    pub latency_cycles: u64,
    /// Predictions that matched their label *before* any weight update
    /// (online accuracy numerator; zero for unlabelled batches).
    pub correct: u64,
    /// Weight-column updates applied by the learning engine.
    pub learning_updates: u64,
    /// SRAM cycles consumed by those updates.
    pub learning_cycles: u64,
    /// Weight bits flipped by those updates.
    pub learning_bits_flipped: u64,
}

impl BatchTally {
    /// Records one inference.
    pub fn record(&mut self, result: &InferenceResult) {
        self.frames += 1;
        self.bottleneck_cycles += result.bottleneck_cycles();
        self.latency_cycles += result.total_cycles();
    }

    /// Records one learning sample: its inference cycles *and* the learning
    /// activity its teacher signals triggered.
    pub fn record_outcome(&mut self, outcome: &SampleOutcome) {
        self.frames += 1;
        self.bottleneck_cycles += outcome.bottleneck_cycles;
        self.latency_cycles += outcome.total_cycles;
        self.correct += u64::from(outcome.correct);
        self.learning_updates += outcome.updates as u64;
        self.learning_cycles += outcome.cost.cycles;
        self.learning_bits_flipped += outcome.cost.bits_flipped as u64;
    }

    /// Adds another shard's tallies into this one (exact). Overflow is
    /// loud in debug builds and saturates in release, so a pegged counter
    /// can never wrap into a plausible-looking small number.
    pub fn merge(&mut self, other: &BatchTally) {
        tally_add(&mut self.frames, other.frames);
        tally_add(&mut self.bottleneck_cycles, other.bottleneck_cycles);
        tally_add(&mut self.latency_cycles, other.latency_cycles);
        tally_add(&mut self.correct, other.correct);
        tally_add(&mut self.learning_updates, other.learning_updates);
        tally_add(&mut self.learning_cycles, other.learning_cycles);
        tally_add(&mut self.learning_bits_flipped, other.learning_bits_flipped);
    }
}

/// Aggregate cost/accuracy of an online-learning run (a session or one
/// epoch shard).
///
/// The integer fields merge exactly; `cost` carries the float
/// latency/energy sums, which shard merges fold in a *fixed shard order* so
/// any thread count reproduces the same float result (see
/// [`BatchEngine::learn_epoch`](crate::batch::BatchEngine::learn_epoch)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LearningTally {
    /// Labelled samples processed.
    pub samples: u64,
    /// Predictions matching their label before the update.
    pub correct: u64,
    /// Weight-column updates applied.
    pub updates: u64,
    /// Total access cost of those updates.
    pub cost: LearningCost,
}

impl LearningTally {
    /// Records one sample outcome.
    pub fn record(&mut self, outcome: &SampleOutcome) {
        self.samples += 1;
        self.correct += u64::from(outcome.correct);
        self.updates += outcome.updates as u64;
        self.cost += outcome.cost;
    }

    /// Adds another shard's tally into this one.
    pub fn merge(&mut self, other: &LearningTally) {
        self.samples += other.samples;
        self.correct += other.correct;
        self.updates += other.updates;
        self.cost += other.cost;
    }

    /// Online accuracy: the fraction of samples the system predicted
    /// correctly *before* each update (0 when empty).
    pub fn online_accuracy(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.correct as f64 / self.samples as f64
    }
}

/// Online-learning activity folded into a [`SystemMetrics`] measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningSummary {
    /// Labelled samples that drove learning.
    pub samples: u64,
    /// Weight-column updates applied.
    pub updates: u64,
    /// Online accuracy over the batch (prediction-before-update).
    pub online_accuracy: f64,
    /// Total access cost of the updates (cycles, latency, energy, flips).
    pub cost: LearningCost,
}

/// Measured system-level metrics over a batch of inferences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemMetrics {
    /// Pipeline clock frequency.
    pub clock: Hertz,
    /// Average clock cycles consumed by the bottleneck tile per inference.
    pub bottleneck_cycles: f64,
    /// Pipelined throughput (inferences per second).
    pub throughput_inf_s: f64,
    /// End-to-end latency of one inference through all tiles.
    pub latency: Seconds,
    /// Dynamic energy per inference.
    pub energy_per_inf: Joules,
    /// Dynamic power at the measured throughput.
    pub dynamic_power: Watts,
    /// Static leakage power.
    pub leakage_power: Watts,
    /// Total silicon area.
    pub area: AreaUm2,
    /// Online-learning activity folded into this measurement (`None` for a
    /// pure-inference batch). When present, the learning writes' energy is
    /// *included* in [`energy_per_inf`](Self::energy_per_inf) — they hit
    /// the same array counters — and broken out here.
    pub learning: Option<LearningSummary>,
}

impl SystemMetrics {
    /// Total power: dynamic at full throughput plus leakage.
    pub fn total_power(&self) -> Watts {
        self.dynamic_power + self.leakage_power
    }

    /// Throughput in mega-inferences per second (Table 3's unit).
    pub fn throughput_minf_s(&self) -> f64 {
        self.throughput_inf_s / 1e6
    }

    /// Combines two finalized measurements of the *same system* over
    /// disjoint batches of `self_frames` and `other_frames` frames.
    ///
    /// Per-inference quantities are frame-weighted averages; throughput and
    /// dynamic power are re-derived from the merged averages. This is the
    /// closed-form counterpart of re-measuring the concatenated batch —
    /// exact up to float rounding. The batch engine does **not** use this
    /// shortcut: it merges the underlying integer tallies/counters and
    /// finalizes once, which is bit-exact (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics when both frame counts are zero (an empty merge has no
    /// meaning), or in debug builds when the static properties (clock,
    /// area) differ — i.e. the measurements came from different systems.
    pub fn merge(&self, other: &SystemMetrics, self_frames: u64, other_frames: u64) -> Self {
        assert!(
            self_frames + other_frames > 0,
            "merging two empty measurements"
        );
        debug_assert_eq!(self.clock, other.clock, "metrics from different systems");
        debug_assert_eq!(self.area, other.area, "metrics from different systems");
        let total = (self_frames + other_frames) as f64;
        let wa = self_frames as f64 / total;
        let wb = other_frames as f64 / total;
        let bottleneck_cycles = self.bottleneck_cycles * wa + other.bottleneck_cycles * wb;
        let throughput = self.clock.value() / bottleneck_cycles;
        let energy_per_inf = self.energy_per_inf * wa + other.energy_per_inf * wb;
        let learning = match (&self.learning, &other.learning) {
            (None, None) => None,
            (a, b) => {
                let a = a.unwrap_or(EMPTY_LEARNING);
                let b = b.unwrap_or(EMPTY_LEARNING);
                let samples = a.samples + b.samples;
                let correct =
                    (a.online_accuracy * a.samples as f64) + (b.online_accuracy * b.samples as f64);
                Some(LearningSummary {
                    samples,
                    updates: a.updates + b.updates,
                    online_accuracy: if samples == 0 {
                        0.0
                    } else {
                        correct / samples as f64
                    },
                    cost: a.cost + b.cost,
                })
            }
        };
        SystemMetrics {
            clock: self.clock,
            bottleneck_cycles,
            throughput_inf_s: throughput,
            latency: self.latency * wa + other.latency * wb,
            energy_per_inf,
            dynamic_power: Watts::new(energy_per_inf.value() * throughput),
            leakage_power: self.leakage_power,
            area: self.area,
            learning,
        }
    }
}

/// The identity element for [`LearningSummary`] folds.
const EMPTY_LEARNING: LearningSummary = LearningSummary {
    samples: 0,
    updates: 0,
    online_accuracy: 0.0,
    cost: LearningCost {
        cycles: 0,
        latency: Seconds::ZERO,
        energy: Joules::ZERO,
        bits_flipped: 0,
    },
};

impl fmt::Display for SystemMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "clock:        {:.1}", self.clock)?;
        writeln!(f, "throughput:   {:.2} MInf/s", self.throughput_minf_s())?;
        writeln!(f, "latency:      {:.2}", self.latency)?;
        writeln!(f, "energy/inf:   {:.1}", self.energy_per_inf)?;
        writeln!(
            f,
            "power:        {:.2} (dynamic {:.2} + leakage {:.2})",
            self.total_power(),
            self.dynamic_power,
            self.leakage_power
        )?;
        write!(f, "area:         {:.0}", self.area)?;
        if let Some(learning) = &self.learning {
            write!(
                f,
                "\nlearning:     {} updates over {} samples ({:.1}% online), {} cycles, {:.2}, {:.2}",
                learning.updates,
                learning.samples,
                100.0 * learning.online_accuracy,
                learning.cost.cycles,
                learning.cost.latency,
                learning.cost.energy
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bottleneck: f64, energy_pj: f64) -> SystemMetrics {
        let clock = Hertz::from_mhz(810.0);
        let throughput = clock.value() / bottleneck;
        SystemMetrics {
            clock,
            bottleneck_cycles: bottleneck,
            throughput_inf_s: throughput,
            latency: Seconds::from_ns(80.0),
            energy_per_inf: Joules::from_pj(energy_pj),
            dynamic_power: Watts::new(Joules::from_pj(energy_pj).value() * throughput),
            leakage_power: Watts::from_mw(2.3),
            area: AreaUm2::new(20_000.0),
            learning: None,
        }
    }

    #[test]
    fn tally_merge_is_plain_addition() {
        let mut a = BatchTally {
            frames: 3,
            bottleneck_cycles: 30,
            latency_cycles: 90,
            correct: 2,
            learning_updates: 4,
            learning_cycles: 32,
            learning_bits_flipped: 11,
        };
        let b = BatchTally {
            frames: 2,
            bottleneck_cycles: 25,
            latency_cycles: 70,
            correct: 1,
            learning_updates: 1,
            learning_cycles: 8,
            learning_bits_flipped: 3,
        };
        a.merge(&b);
        assert_eq!(a.frames, 5);
        assert_eq!(a.bottleneck_cycles, 55);
        assert_eq!(a.latency_cycles, 160);
        assert_eq!(a.correct, 3);
        assert_eq!(a.learning_updates, 5);
        assert_eq!(a.learning_cycles, 40);
        assert_eq!(a.learning_bits_flipped, 14);
    }

    #[test]
    fn learning_tally_accumulates_and_merges() {
        let outcome = SampleOutcome {
            prediction: 3,
            label: 5,
            correct: false,
            updates: 2,
            cost: LearningCost {
                cycles: 16,
                latency: Seconds::from_ns(20.0),
                energy: Joules::from_pj(4.0),
                bits_flipped: 7,
            },
            bottleneck_cycles: 9,
            total_cycles: 12,
        };
        let mut tally = LearningTally::default();
        tally.record(&outcome);
        tally.record(&SampleOutcome {
            correct: true,
            updates: 0,
            cost: LearningCost::default(),
            ..outcome
        });
        assert_eq!(tally.samples, 2);
        assert_eq!(tally.correct, 1);
        assert_eq!(tally.updates, 2);
        assert_eq!(tally.cost.cycles, 16);
        assert!((tally.online_accuracy() - 0.5).abs() < 1e-12);
        let mut merged = LearningTally::default();
        merged.merge(&tally);
        merged.merge(&tally);
        assert_eq!(merged.samples, 4);
        assert_eq!(merged.cost.bits_flipped, 14);
        assert_eq!(LearningTally::default().online_accuracy(), 0.0);
    }

    #[test]
    fn metrics_merge_weights_by_frames() {
        let a = sample(10.0, 100.0);
        let b = sample(20.0, 400.0);
        let merged = a.merge(&b, 1, 3);
        assert!((merged.bottleneck_cycles - 17.5).abs() < 1e-12);
        assert!((merged.energy_per_inf.pj() - 325.0).abs() < 1e-9);
        // Throughput re-derived from the merged cycle count.
        assert!((merged.throughput_inf_s - merged.clock.value() / 17.5).abs() < 1.0);
        // Merging with itself at equal weight is the identity.
        let same = a.merge(&a, 5, 5);
        assert!((same.bottleneck_cycles - a.bottleneck_cycles).abs() < 1e-12);
    }

    #[test]
    fn totals_and_display() {
        let mut m = SystemMetrics {
            clock: Hertz::from_mhz(810.0),
            bottleneck_cycles: 17.0,
            throughput_inf_s: 44e6,
            latency: Seconds::from_ns(80.0),
            energy_per_inf: Joules::from_pj(607.0),
            dynamic_power: Watts::from_mw(26.7),
            leakage_power: Watts::from_mw(2.3),
            area: AreaUm2::new(20_000.0),
            learning: None,
        };
        assert!((m.total_power().mw() - 29.0).abs() < 1e-9);
        assert!((m.throughput_minf_s() - 44.0).abs() < 1e-9);
        let text = m.to_string();
        assert!(text.contains("MInf/s"));
        assert!(text.contains("energy/inf"));
        assert!(!text.contains("learning:"));
        m.learning = Some(LearningSummary {
            samples: 10,
            updates: 7,
            online_accuracy: 0.6,
            cost: LearningCost {
                cycles: 56,
                latency: Seconds::from_ns(70.0),
                energy: Joules::from_pj(12.0),
                bits_flipped: 20,
            },
        });
        let text = m.to_string();
        assert!(text.contains("learning:"));
        assert!(text.contains("7 updates over 10 samples"));
    }

    #[test]
    fn metrics_merge_folds_learning_summaries() {
        let mut a = sample(10.0, 100.0);
        a.learning = Some(LearningSummary {
            samples: 4,
            updates: 3,
            online_accuracy: 0.5,
            cost: LearningCost {
                cycles: 24,
                latency: Seconds::from_ns(30.0),
                energy: Joules::from_pj(6.0),
                bits_flipped: 9,
            },
        });
        let b = sample(10.0, 100.0); // learning: None
        let merged = a.merge(&b, 4, 4);
        let learning = merged.learning.expect("one side learned");
        assert_eq!(learning.samples, 4);
        assert_eq!(learning.updates, 3);
        assert_eq!(learning.cost.cycles, 24);
        assert!((learning.online_accuracy - 0.5).abs() < 1e-12);
        assert!(sample(10.0, 100.0).merge(&b, 1, 1).learning.is_none());
    }
}
