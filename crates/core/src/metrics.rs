//! System-level figures of merit (the quantities Fig. 8 and Table 3 report).

use std::fmt;

use esam_tech::units::{AreaUm2, Hertz, Joules, Seconds, Watts};

/// Measured system-level metrics over a batch of inferences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemMetrics {
    /// Pipeline clock frequency.
    pub clock: Hertz,
    /// Average clock cycles consumed by the bottleneck tile per inference.
    pub bottleneck_cycles: f64,
    /// Pipelined throughput (inferences per second).
    pub throughput_inf_s: f64,
    /// End-to-end latency of one inference through all tiles.
    pub latency: Seconds,
    /// Dynamic energy per inference.
    pub energy_per_inf: Joules,
    /// Dynamic power at the measured throughput.
    pub dynamic_power: Watts,
    /// Static leakage power.
    pub leakage_power: Watts,
    /// Total silicon area.
    pub area: AreaUm2,
}

impl SystemMetrics {
    /// Total power: dynamic at full throughput plus leakage.
    pub fn total_power(&self) -> Watts {
        self.dynamic_power + self.leakage_power
    }

    /// Throughput in mega-inferences per second (Table 3's unit).
    pub fn throughput_minf_s(&self) -> f64 {
        self.throughput_inf_s / 1e6
    }
}

impl fmt::Display for SystemMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "clock:        {:.1}", self.clock)?;
        writeln!(f, "throughput:   {:.2} MInf/s", self.throughput_minf_s())?;
        writeln!(f, "latency:      {:.2}", self.latency)?;
        writeln!(f, "energy/inf:   {:.1}", self.energy_per_inf)?;
        writeln!(f, "power:        {:.2} (dynamic {:.2} + leakage {:.2})",
            self.total_power(), self.dynamic_power, self.leakage_power)?;
        write!(f, "area:         {:.0}", self.area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let m = SystemMetrics {
            clock: Hertz::from_mhz(810.0),
            bottleneck_cycles: 17.0,
            throughput_inf_s: 44e6,
            latency: Seconds::from_ns(80.0),
            energy_per_inf: Joules::from_pj(607.0),
            dynamic_power: Watts::from_mw(26.7),
            leakage_power: Watts::from_mw(2.3),
            area: AreaUm2::new(20_000.0),
        };
        assert!((m.total_power().mw() - 29.0).abs() < 1e-9);
        assert!((m.throughput_minf_s() - 44.0).abs() < 1e-9);
        let text = m.to_string();
        assert!(text.contains("MInf/s"));
        assert!(text.contains("energy/inf"));
    }
}
