//! System-level figures of merit (the quantities Fig. 8 and Table 3 report)
//! and the batch engine's merge law.
//!
//! # The merge law
//!
//! A batch measurement is built from two kinds of state, both of which merge
//! exactly across workload shards:
//!
//! 1. **Cycle tallies** ([`BatchTally`]): per-frame bottleneck/latency cycle
//!    counts summed as `u64`. Addition is associative and commutative, so
//!    any partition of the frames produces the same sums.
//! 2. **Activity counters** ([`TileStats`](crate::TileStats) and the
//!    per-array access counters): also plain `u64` sums.
//!
//! [`SystemMetrics`] is then a *pure function* of (merged tally, merged
//! counters, static system properties): the same merged integers go through
//! the same float arithmetic, so a parallel measurement is **bit-identical**
//! to the sequential one — not merely statistically equivalent. The
//! float-level shortcut [`SystemMetrics::merge`] also exists for combining
//! already-finalized metrics, but being float arithmetic it is exact only up
//! to rounding; the engine always merges the integer state instead.

use std::fmt;

use esam_tech::units::{AreaUm2, Hertz, Joules, Seconds, Watts};

use crate::system::InferenceResult;

/// Raw cycle tallies accumulated while running a batch (or a shard of one).
///
/// This is the integer half of the merge law (see the module docs): tallies
/// from any partition of a batch [`merge`](Self::merge) into exactly the
/// tallies of the sequential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchTally {
    /// Frames processed.
    pub frames: u64,
    /// Summed bottleneck-tile cycles (pipelined throughput numerator).
    pub bottleneck_cycles: u64,
    /// Summed whole-cascade cycles (latency numerator).
    pub latency_cycles: u64,
}

impl BatchTally {
    /// Records one inference.
    pub fn record(&mut self, result: &InferenceResult) {
        self.frames += 1;
        self.bottleneck_cycles += result.bottleneck_cycles();
        self.latency_cycles += result.total_cycles();
    }

    /// Adds another shard's tallies into this one (exact).
    pub fn merge(&mut self, other: &BatchTally) {
        self.frames += other.frames;
        self.bottleneck_cycles += other.bottleneck_cycles;
        self.latency_cycles += other.latency_cycles;
    }
}

/// Measured system-level metrics over a batch of inferences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemMetrics {
    /// Pipeline clock frequency.
    pub clock: Hertz,
    /// Average clock cycles consumed by the bottleneck tile per inference.
    pub bottleneck_cycles: f64,
    /// Pipelined throughput (inferences per second).
    pub throughput_inf_s: f64,
    /// End-to-end latency of one inference through all tiles.
    pub latency: Seconds,
    /// Dynamic energy per inference.
    pub energy_per_inf: Joules,
    /// Dynamic power at the measured throughput.
    pub dynamic_power: Watts,
    /// Static leakage power.
    pub leakage_power: Watts,
    /// Total silicon area.
    pub area: AreaUm2,
}

impl SystemMetrics {
    /// Total power: dynamic at full throughput plus leakage.
    pub fn total_power(&self) -> Watts {
        self.dynamic_power + self.leakage_power
    }

    /// Throughput in mega-inferences per second (Table 3's unit).
    pub fn throughput_minf_s(&self) -> f64 {
        self.throughput_inf_s / 1e6
    }

    /// Combines two finalized measurements of the *same system* over
    /// disjoint batches of `self_frames` and `other_frames` frames.
    ///
    /// Per-inference quantities are frame-weighted averages; throughput and
    /// dynamic power are re-derived from the merged averages. This is the
    /// closed-form counterpart of re-measuring the concatenated batch —
    /// exact up to float rounding. The batch engine does **not** use this
    /// shortcut: it merges the underlying integer tallies/counters and
    /// finalizes once, which is bit-exact (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics when both frame counts are zero (an empty merge has no
    /// meaning), or in debug builds when the static properties (clock,
    /// area) differ — i.e. the measurements came from different systems.
    pub fn merge(&self, other: &SystemMetrics, self_frames: u64, other_frames: u64) -> Self {
        assert!(
            self_frames + other_frames > 0,
            "merging two empty measurements"
        );
        debug_assert_eq!(self.clock, other.clock, "metrics from different systems");
        debug_assert_eq!(self.area, other.area, "metrics from different systems");
        let total = (self_frames + other_frames) as f64;
        let wa = self_frames as f64 / total;
        let wb = other_frames as f64 / total;
        let bottleneck_cycles = self.bottleneck_cycles * wa + other.bottleneck_cycles * wb;
        let throughput = self.clock.value() / bottleneck_cycles;
        let energy_per_inf = self.energy_per_inf * wa + other.energy_per_inf * wb;
        SystemMetrics {
            clock: self.clock,
            bottleneck_cycles,
            throughput_inf_s: throughput,
            latency: self.latency * wa + other.latency * wb,
            energy_per_inf,
            dynamic_power: Watts::new(energy_per_inf.value() * throughput),
            leakage_power: self.leakage_power,
            area: self.area,
        }
    }
}

impl fmt::Display for SystemMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "clock:        {:.1}", self.clock)?;
        writeln!(f, "throughput:   {:.2} MInf/s", self.throughput_minf_s())?;
        writeln!(f, "latency:      {:.2}", self.latency)?;
        writeln!(f, "energy/inf:   {:.1}", self.energy_per_inf)?;
        writeln!(
            f,
            "power:        {:.2} (dynamic {:.2} + leakage {:.2})",
            self.total_power(),
            self.dynamic_power,
            self.leakage_power
        )?;
        write!(f, "area:         {:.0}", self.area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bottleneck: f64, energy_pj: f64) -> SystemMetrics {
        let clock = Hertz::from_mhz(810.0);
        let throughput = clock.value() / bottleneck;
        SystemMetrics {
            clock,
            bottleneck_cycles: bottleneck,
            throughput_inf_s: throughput,
            latency: Seconds::from_ns(80.0),
            energy_per_inf: Joules::from_pj(energy_pj),
            dynamic_power: Watts::new(Joules::from_pj(energy_pj).value() * throughput),
            leakage_power: Watts::from_mw(2.3),
            area: AreaUm2::new(20_000.0),
        }
    }

    #[test]
    fn tally_merge_is_plain_addition() {
        let mut a = BatchTally {
            frames: 3,
            bottleneck_cycles: 30,
            latency_cycles: 90,
        };
        let b = BatchTally {
            frames: 2,
            bottleneck_cycles: 25,
            latency_cycles: 70,
        };
        a.merge(&b);
        assert_eq!(a.frames, 5);
        assert_eq!(a.bottleneck_cycles, 55);
        assert_eq!(a.latency_cycles, 160);
    }

    #[test]
    fn metrics_merge_weights_by_frames() {
        let a = sample(10.0, 100.0);
        let b = sample(20.0, 400.0);
        let merged = a.merge(&b, 1, 3);
        assert!((merged.bottleneck_cycles - 17.5).abs() < 1e-12);
        assert!((merged.energy_per_inf.pj() - 325.0).abs() < 1e-9);
        // Throughput re-derived from the merged cycle count.
        assert!((merged.throughput_inf_s - merged.clock.value() / 17.5).abs() < 1.0);
        // Merging with itself at equal weight is the identity.
        let same = a.merge(&a, 5, 5);
        assert!((same.bottleneck_cycles - a.bottleneck_cycles).abs() < 1e-12);
    }

    #[test]
    fn totals_and_display() {
        let m = SystemMetrics {
            clock: Hertz::from_mhz(810.0),
            bottleneck_cycles: 17.0,
            throughput_inf_s: 44e6,
            latency: Seconds::from_ns(80.0),
            energy_per_inf: Joules::from_pj(607.0),
            dynamic_power: Watts::from_mw(26.7),
            leakage_power: Watts::from_mw(2.3),
            area: AreaUm2::new(20_000.0),
        };
        assert!((m.total_power().mw() - 29.0).abs() < 1e-9);
        assert!((m.throughput_minf_s() - 44.0).abs() < 1e-9);
        let text = m.to_string();
        assert!(text.contains("MInf/s"));
        assert!(text.contains("energy/inf"));
    }
}
